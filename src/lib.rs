//! # mhrp-suite — the MHRP reproduction, in one import
//!
//! A complete reproduction of **David B. Johnson, "Scalable and Robust
//! Internetwork Routing for Mobile Hosts" (ICDCS 1994)** — the Mobile
//! Host Routing Protocol that preceded IETF Mobile IP — together with
//! every substrate it needs and the five §7 baseline protocols it is
//! compared against.
//!
//! This crate is a facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`netsim`] | deterministic discrete-event internetwork simulator |
//! | [`ip`] | IPv4/ICMP/UDP/ARP wire formats (from scratch) |
//! | [`netstack`] | routing, ARP, forwarding, plain host/router nodes |
//! | [`mhrp`] | the paper's protocol: agents, mobile host, robustness |
//! | [`baselines`] | Sunshine-Postel, Columbia, Sony VIP, Matsushita, IBM LSRR |
//! | [`scenarios`] | the Figure 1 topology, workloads, experiments E01–E10 |
//!
//! # Quickstart
//!
//! Build the paper's Figure 1 internetwork, carry the mobile host to a
//! foreign wireless cell, and watch a correspondent's traffic follow it:
//!
//! ```rust
//! use mhrp_suite::prelude::*;
//!
//! let mut f = Figure1::build(Figure1Options::default());
//! f.world.run_until(SimTime::from_secs(2));
//!
//! // Carry M from its home network to R4's wireless cell.
//! f.move_m_to_d();
//! assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
//! f.world.run_for(SimDuration::from_secs(2));
//!
//! // S pings M's *home* address; the home agent tunnels it to R4.
//! let m_addr = f.addrs.m;
//! f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| { s.ping(ctx, m_addr); });
//! f.world.run_for(SimDuration::from_secs(2));
//! assert_eq!(f.world.node::<MhrpHostNode>(f.s).log().echo_replies.len(), 1);
//! ```
//!
//! See `examples/` for runnable walkthroughs and `cargo run -p bench --bin
//! report` for the full experiment suite.

pub use baselines;
pub use ip;
pub use mhrp;
pub use netsim;
pub use netstack;
pub use scenarios;

/// The names most programs need.
pub mod prelude {
    pub use ip::{PacketError, Prefix};
    pub use mhrp::{Attachment, MhrpConfig, MhrpHostNode, MhrpRouterNode, MobileHostNode};
    pub use netsim::time::{SimDuration, SimTime};
    pub use netsim::{AdminOp, IfaceId, NodeId, SegmentParams, World};
    pub use netstack::nodes::{HostNode, RouterNode};
    pub use scenarios::topology::{CorrespondentKind, Figure1, Figure1Addrs, Figure1Options};
}

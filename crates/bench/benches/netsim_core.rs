//! Criterion benches of the raw `netsim` event loop — the substrate
//! whose per-event cost bounds every experiment's scale. Same workloads
//! as the `simcore` binary (`BENCH_simcore.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::simworlds::{broadcast_fanout, timer_churn, unicast_pingpong};

fn bench_netsim_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim_core");
    g.sample_size(10);
    g.bench_function("broadcast_fanout_32n_256B", |b| {
        b.iter(|| black_box(broadcast_fanout(1, 32, 256, 500)))
    });
    g.bench_function("unicast_pingpong_16pairs_256B", |b| {
        b.iter(|| black_box(unicast_pingpong(1, 16, 256, 500)))
    });
    g.bench_function("timer_churn_32n_8chains", |b| {
        b.iter(|| black_box(timer_churn(1, 32, 8, 500)))
    });
    g.finish();
}

criterion_group!(benches, bench_netsim_core);
criterion_main!(benches);

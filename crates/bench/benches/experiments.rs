//! End-to-end experiment benchmarks: one target per reproduced
//! table/figure (DESIGN.md E01–E10). Each iteration runs the experiment's
//! full simulation, so these double as regression timers for the
//! simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use scenarios::experiments::{
    e01_header, e02_overhead, e03_path, e04_handoff, e05_loops, e06_recovery, e07_scalability,
    e08_rate_limit, e09_icmp_errors, e10_at_home,
};
use scenarios::shootout::{mhrp_driver, run_comparison};

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("e01_header_table", |b| b.iter(|| black_box(e01_header::run())));
    g.bench_function("e02_overhead_mhrp_only", |b| b.iter(|| run_comparison(mhrp_driver(1), 10)));
    g.bench_function("e03_path_lengths", |b| b.iter(|| black_box(e03_path::run(1))));
    g.bench_function("e04_handoff", |b| {
        b.iter(|| black_box(e04_handoff::run_one(1, true, "bench")))
    });
    g.bench_function("e05_loops_detected", |b| {
        b.iter(|| black_box(e05_loops::run_one(1, true, 10)))
    });
    g.bench_function("e06_recovery_query", |b| {
        b.iter(|| {
            black_box(e06_recovery::run_one(
                1,
                e06_recovery::CrashMode::RebootWithQuery,
                false,
                "bench",
            ))
        })
    });
    g.bench_function("e07_mhrp_4_mobiles", |b| {
        b.iter(|| black_box(e07_scalability::mhrp_point(1, 4)))
    });
    g.bench_function("e08_rate_limit", |b| {
        b.iter(|| black_box(e08_rate_limit::run(1, 20, 1_000, 5_000)))
    });
    g.bench_function("e09_error_reverse_path", |b| {
        b.iter(|| black_box(e09_icmp_errors::run_sender_built(1)))
    });
    g.bench_function("e10_at_home", |b| b.iter(|| black_box(e10_at_home::run(1))));
    g.finish();
}

fn bench_full_shootout(c: &mut Criterion) {
    let mut g = c.benchmark_group("shootout");
    g.sample_size(10);
    g.bench_function("e02_all_protocols", |b| b.iter(|| black_box(e02_overhead::run(1, 10))));
    g.finish();
}

criterion_group!(benches, bench_experiments, bench_full_shootout);
criterion_main!(benches);

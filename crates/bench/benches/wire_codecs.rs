//! Micro-benchmarks of the wire codecs exercised on every simulated hop
//! (supports E01: the header machinery is cheap as well as small).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::net::Ipv4Addr;

use ip::checksum::internet_checksum;
use ip::icmp::{IcmpMessage, LocationUpdate, LocationUpdateCode};
use ip::ipv4::Ipv4Packet;
use mhrp::MhrpHeader;

fn a(x: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, x)
}

fn bench_ipv4(c: &mut Criterion) {
    let pkt = Ipv4Packet::new(a(1), a(2), ip::proto::UDP, vec![0x5a; 512]);
    let bytes = pkt.encode();
    c.bench_function("ipv4_encode_512B", |b| b.iter(|| black_box(&pkt).encode()));
    c.bench_function("ipv4_decode_512B", |b| {
        b.iter(|| Ipv4Packet::decode(black_box(&bytes)).unwrap())
    });
}

fn bench_mhrp_header(c: &mut Criterion) {
    let mut h = MhrpHeader::new(ip::proto::TCP, a(7));
    h.prev_sources = vec![a(1), a(2), a(3), a(4)];
    let bytes = h.encode();
    c.bench_function("mhrp_header_encode_4prev", |b| b.iter(|| black_box(&h).encode()));
    c.bench_function("mhrp_header_decode_4prev", |b| {
        b.iter(|| MhrpHeader::decode(black_box(&bytes)).unwrap())
    });
}

fn bench_checksum(c: &mut Criterion) {
    let data = vec![0xa5u8; 1500];
    c.bench_function("internet_checksum_1500B", |b| b.iter(|| internet_checksum(black_box(&data))));
}

fn bench_icmp(c: &mut Criterion) {
    let msg = IcmpMessage::LocationUpdate(LocationUpdate {
        code: LocationUpdateCode::Bind,
        mobile: a(7),
        foreign_agent: a(100),
        mac: None,
    });
    let bytes = msg.encode();
    c.bench_function("location_update_encode", |b| b.iter(|| black_box(&msg).encode()));
    c.bench_function("location_update_decode", |b| {
        b.iter(|| IcmpMessage::decode(black_box(&bytes)).unwrap())
    });
}

fn bench_tunnel_transform(c: &mut Criterion) {
    let plain = Ipv4Packet::new(a(1), a(7), ip::proto::UDP, vec![0; 256]);
    c.bench_function("mhrp_encapsulate_256B", |b| {
        b.iter_batched(
            || plain.clone(),
            |mut pkt| {
                mhrp::tunnel::encapsulate(&mut pkt, a(50), a(100), false);
                pkt
            },
            BatchSize::SmallInput,
        )
    });
    let mut tunneled = plain.clone();
    mhrp::tunnel::encapsulate(&mut tunneled, a(50), a(100), false);
    c.bench_function("mhrp_decapsulate_256B", |b| {
        b.iter_batched(
            || tunneled.clone(),
            |mut pkt| {
                mhrp::tunnel::decapsulate(&mut pkt).unwrap();
                pkt
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ipv4, bench_mhrp_header, bench_checksum, bench_icmp, bench_tunnel_transform
}
criterion_main!(benches);

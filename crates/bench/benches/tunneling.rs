//! Benchmarks of the §4.4/§5.3/§4.5 tunnel machinery: re-tunneling with
//! list growth, loop detection, and error reversal.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::net::Ipv4Addr;

use ip::ipv4::Ipv4Packet;
use mhrp::tunnel;

fn a(x: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, x)
}

fn tunneled(prev: usize) -> Ipv4Packet {
    let mut pkt = Ipv4Packet::new(a(1), a(7), ip::proto::UDP, vec![0; 64]).with_ttl(200);
    tunnel::encapsulate(&mut pkt, a(50), a(100), false);
    for i in 0..prev {
        tunnel::retunnel(&mut pkt, a(100 + i as u8), a(101 + i as u8), 64).unwrap();
    }
    pkt
}

fn bench_retunnel(c: &mut Criterion) {
    for prev in [1usize, 4, 8] {
        let pkt = tunneled(prev);
        c.bench_function(format!("retunnel_list_{prev}"), |b| {
            b.iter_batched(
                || pkt.clone(),
                |mut p| {
                    tunnel::retunnel(&mut p, a(200), a(201), 64).unwrap();
                    p
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_loop_detection(c: &mut Criterion) {
    // Worst case: the list is long and we are not on it.
    let pkt = tunneled(8);
    c.bench_function("loop_check_miss_8", |b| {
        b.iter_batched(
            || pkt.clone(),
            |mut p| tunnel::retunnel(&mut p, a(250), a(251), 64).unwrap(),
            BatchSize::SmallInput,
        )
    });
    // Hit: our address is on the list.
    c.bench_function("loop_check_hit_8", |b| {
        b.iter_batched(
            || pkt.clone(),
            |mut p| tunnel::retunnel(&mut p, a(104), a(251), 64).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_error_reversal(c: &mut Criterion) {
    let pkt = tunneled(4);
    let original = pkt.encode();
    c.bench_function("icmp_error_reverse_4", |b| {
        b.iter(|| black_box(tunnel::reverse_icmp_original(black_box(&original), a(104))))
    });
}

fn bench_contraction(c: &mut Criterion) {
    c.bench_function("loop_contraction_8_cap4", |b| {
        b.iter(|| scenarios::experiments::e05_loops::contraction_transits(8, 4))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_retunnel, bench_loop_detection, bench_error_reversal, bench_contraction
}
criterion_main!(benches);

//! Criterion benches of the structured-telemetry cost on the `netsim`
//! hot path. Three configurations of the same unicast/broadcast worlds:
//!
//! * **disabled** — runtime flag off (the default): the per-event cost is
//!   one branch, and must stay within noise of the plain workloads in
//!   `netsim_core` (the counting-allocator test separately proves the
//!   disabled path allocates nothing per delivered frame).
//! * **enabled** — typed events recorded into the bounded ring and a
//!   journey id minted/propagated per packet; the acceptable price of a
//!   fully observable run.
//!
//! The compile-out case (`--no-default-features` on `netsim`) cannot live
//! in this binary; it is covered by the workspace's no-default-features
//! check instead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::simworlds::{broadcast_fanout_with, unicast_pingpong_with, Telemetry};

const RING: usize = 1 << 16;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(10);
    g.bench_function("unicast_disabled", |b| {
        b.iter(|| black_box(unicast_pingpong_with(1, 16, 256, 500, Telemetry::Off)))
    });
    g.bench_function("unicast_enabled", |b| {
        b.iter(|| black_box(unicast_pingpong_with(1, 16, 256, 500, Telemetry::On { ring: RING })))
    });
    g.bench_function("broadcast_disabled", |b| {
        b.iter(|| black_box(broadcast_fanout_with(1, 32, 256, 500, Telemetry::Off)))
    });
    g.bench_function("broadcast_enabled", |b| {
        b.iter(|| black_box(broadcast_fanout_with(1, 32, 256, 500, Telemetry::On { ring: RING })))
    });
    g.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);

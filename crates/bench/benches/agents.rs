//! Micro-benchmarks of the agent data structures: the location cache the
//! paper says fits "in the same table" as ICMP redirects (§4.3) and the
//! §4.3 update rate limiter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::net::Ipv4Addr;

use mhrp::{LocationCache, UpdateRateLimiter};
use netsim::time::{SimDuration, SimTime};

fn addr(i: u32) -> Ipv4Addr {
    Ipv4Addr::from(0x0a00_0000 + i)
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("location_cache_hit_64", |b| {
        let mut cache = LocationCache::new(64);
        for i in 0..64 {
            cache.insert(addr(i), addr(1000 + i), SimTime::from_millis(u64::from(i)));
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(cache.lookup(addr(i), SimTime::from_secs(1)))
        })
    });
    c.bench_function("location_cache_lru_churn_64", |b| {
        let mut cache = LocationCache::new(64);
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            cache.insert(addr(i), addr(9), SimTime::from_nanos(u64::from(i)));
        })
    });
}

fn bench_rate_limiter(c: &mut Criterion) {
    c.bench_function("rate_limiter_allow_128", |b| {
        let mut rl = UpdateRateLimiter::new(SimDuration::from_secs(5), 128);
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            black_box(rl.allow(addr(i % 256), SimTime::from_nanos(u64::from(i) * 1_000_000)))
        })
    });
}

fn bench_routing_table(c: &mut Criterion) {
    use netstack::route::{NextHop, RoutingTable};
    let mut t = RoutingTable::new();
    for i in 0..64u32 {
        t.add(
            ip::Prefix::new(addr(i * 256), 24),
            NextHop::Gateway { iface: netsim::IfaceId(0), via: addr(1) },
        );
    }
    t.add(ip::Prefix::default_route(), NextHop::Direct { iface: netsim::IfaceId(0) });
    c.bench_function("routing_lpm_64_prefixes", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            black_box(t.lookup(addr(i % 20_000)))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_rate_limiter, bench_routing_table
}
criterion_main!(benches);

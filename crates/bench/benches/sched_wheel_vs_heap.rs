//! Microbench isolating the scheduler swap: the hierarchical
//! [`TimerWheel`] against the `BinaryHeap` it replaced, on the queue's
//! dominant workload — short-horizon timer churn (schedule one, pop one,
//! re-arm) at several outstanding-population sizes.
//!
//! The macro effect shows up in `BENCH_simcore.json` (`timer_churn`,
//! `mega_world_*`); this bench pins the micro-level cause so a
//! regression in either structure is attributable.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::time::SimTime;
use netsim::TimerWheel;

/// Timer horizon in nanoseconds: ~97 wheel ticks, like the simulator's
/// sub-millisecond protocol timers.
const HORIZON_NS: u64 = 100 * 1000;
/// Churn operations measured per iteration.
const OPS: u64 = 100_000;

/// Steady-state churn through the wheel: `outstanding` timers in flight,
/// each pop immediately re-arming one `HORIZON_NS` ahead.
fn churn_wheel(outstanding: u64) -> u64 {
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    wheel.reserve(outstanding as usize);
    for i in 0..outstanding {
        wheel.schedule(SimTime::from_nanos(i), i);
    }
    let mut acc = 0u64;
    for _ in 0..OPS {
        let (at, _, v) = wheel.pop().expect("population is constant");
        acc = acc.wrapping_add(v);
        wheel.schedule(SimTime::from_nanos(at.as_nanos() + HORIZON_NS), v);
    }
    acc
}

/// The same churn through the pre-wheel queue: a `BinaryHeap` of
/// `Reverse<(at, seq)>` with a monotonically increasing sequence.
fn churn_heap(outstanding: u64) -> u64 {
    let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> =
        BinaryHeap::with_capacity(outstanding as usize + 1);
    let mut seq = 0u64;
    for i in 0..outstanding {
        heap.push(Reverse((i, seq, i)));
        seq += 1;
    }
    let mut acc = 0u64;
    for _ in 0..OPS {
        let Reverse((at, _, v)) = heap.pop().expect("population is constant");
        acc = acc.wrapping_add(v);
        heap.push(Reverse((at + HORIZON_NS, seq, v)));
        seq += 1;
    }
    acc
}

fn bench_sched(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_wheel_vs_heap");
    g.sample_size(10);
    for outstanding in [256u64, 4096, 65_536] {
        g.bench_function(format!("wheel_churn_{outstanding}"), |b| {
            b.iter(|| black_box(churn_wheel(black_box(outstanding))))
        });
        g.bench_function(format!("heap_churn_{outstanding}"), |b| {
            b.iter(|| black_box(churn_heap(black_box(outstanding))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);

//! Shared helpers for the benchmark harness (see the `report` binary).
//!
//! [`simworlds`] holds the simulator-throughput workloads driven both by
//! the criterion bench (`benches/netsim_core.rs`) and by the `simcore`
//! binary that emits machine-readable `BENCH_simcore.json`, so the
//! interactive numbers and the committed perf trajectory always measure
//! the same worlds.
//!
//! [`cache_churn`] isolates the location-cache replacement policy (old
//! linear-scan eviction vs the O(1) list) and [`megaworld`] runs the
//! hierarchical generator at 1k/10k/100k mobile hosts.

pub mod cache_churn;
pub mod megaworld;
pub mod simworlds;

//! Shared helpers for the benchmark harness (see the `report` binary).

//! Shared helpers for the benchmark harness (see the `report` binary).
//!
//! [`simworlds`] holds the simulator-throughput workloads driven both by
//! the criterion bench (`benches/netsim_core.rs`) and by the `simcore`
//! binary that emits machine-readable `BENCH_simcore.json`, so the
//! interactive numbers and the committed perf trajectory always measure
//! the same worlds.

pub mod simworlds;

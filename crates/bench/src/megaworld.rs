//! Full-protocol scale workload: the `scenarios::hierarchy` generator at
//! 1k/10k/100k mobile hosts, run through its startup registration storm.
//! Unlike the raw [`crate::simworlds`] loops, every event here crosses
//! the complete stack — ARP, agent discovery, registration and the
//! home-agent location database — so this is the end-to-end cost of a
//! paper-scale world.

use netsim::time::SimDuration;
use scenarios::hierarchy::{Hierarchy, HierarchyParams, ShardedHierarchy};

use crate::simworlds::Throughput;

/// Builds a hierarchical world of `regions * mobiles_per_region` mobile
/// hosts, runs it for `sim_ms` simulated milliseconds (enough to cover
/// agent discovery and the registration storm at the default intervals),
/// and reports throughput. Panics if fewer than 99% of the hosts finished
/// registering — a wrong result must not pass as a fast one.
pub fn mega_world(
    seed: u64,
    regions: usize,
    fas_per_region: usize,
    mobiles_per_region: usize,
    sim_ms: u64,
    hierarchical: bool,
) -> Throughput {
    let params = HierarchyParams {
        regions,
        fas_per_region,
        mobiles_per_region,
        correspondent: true,
        hierarchical,
        seed,
        ..Default::default()
    };
    let hosts = params.host_count();
    let mut h = Hierarchy::build(params);
    let start = std::time::Instant::now();
    h.world.run_for(SimDuration::from_millis(sim_ms));
    let wall_seconds = start.elapsed().as_secs_f64();
    let attached = h.attached_count();
    assert!(
        attached * 100 >= hosts * 99,
        "only {attached}/{hosts} mobile hosts registered in {sim_ms} ms"
    );
    Throughput { events: h.world.events_processed(), wall_seconds }
}

/// The sharded counterpart of [`mega_world`]: the same hierarchy run as
/// a [`ShardedHierarchy`] over `shards` region-owned shards (one event
/// wheel, node arena and stats hub per shard, backbone as the portal).
/// The same 99%-registered assertion applies — parallel execution must
/// not trade correctness for speed.
pub fn mega_world_sharded(
    seed: u64,
    regions: usize,
    fas_per_region: usize,
    mobiles_per_region: usize,
    sim_ms: u64,
    shards: usize,
    hierarchical: bool,
) -> Throughput {
    let params = HierarchyParams {
        regions,
        fas_per_region,
        mobiles_per_region,
        correspondent: true,
        hierarchical,
        seed,
        ..Default::default()
    };
    let hosts = params.host_count();
    let mut h = ShardedHierarchy::build(params, shards);
    let start = std::time::Instant::now();
    h.world.run_for(SimDuration::from_millis(sim_ms));
    let wall_seconds = start.elapsed().as_secs_f64();
    let attached = h.attached_count();
    assert!(
        attached * 100 >= hosts * 99,
        "only {attached}/{hosts} mobile hosts registered in {sim_ms} ms ({shards} shards)"
    );
    Throughput { events: h.world.events_processed(), wall_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_mega_world_registers_and_counts_events() {
        let t = mega_world(1994, 2, 4, 40, 8_000, false);
        assert!(t.events > 1_000, "events {}", t.events);
    }

    #[test]
    fn small_sharded_mega_world_registers_and_counts_events() {
        let t = mega_world_sharded(1994, 2, 4, 40, 8_000, 2, false);
        assert!(t.events > 1_000, "events {}", t.events);
    }

    #[test]
    fn small_hierarchical_mega_world_registers_and_counts_events() {
        let t = mega_world(1994, 2, 4, 40, 8_000, true);
        assert!(t.events > 1_000, "events {}", t.events);
    }
}

//! `report` — regenerates every reproduced table and figure.
//!
//! ```text
//! cargo run -p bench --bin report            # all experiments
//! cargo run -p bench --bin report -- e02 e05 # a subset
//! ```
//!
//! Output is the plain-text form of the tables recorded in EXPERIMENTS.md.

use scenarios::experiments::{
    e01_header, e02_overhead, e03_path, e04_handoff, e05_loops, e06_recovery, e07_scalability,
    e08_rate_limit, e09_icmp_errors, e10_at_home,
};
use scenarios::report::{f2, table};

const SEED: u64 = 1994;

fn e01() {
    println!("\n== E01 — Figures 2/3: MHRP header sizes and layout ==");
    let rows = e01_header::run();
    println!(
        "{}",
        table(
            &["case", "paper (bytes)", "measured (bytes)"],
            rows.iter()
                .map(|r| vec![
                    r.case.into(),
                    r.paper_bytes.to_string(),
                    r.measured_bytes.to_string()
                ])
                .collect(),
        )
    );
    let golden = e01_header::golden_header();
    println!("golden header bytes: {golden:02x?}");
}

fn e02() {
    println!("\n== E02 — §7: per-packet overhead comparison ==");
    let rows = e02_overhead::run(SEED, e02_overhead::DEFAULT_PACKETS);
    println!(
        "{}",
        table(
            &["protocol", "paper B/pkt", "measured B/pkt", "fwd hops", "delivered", "control msgs"],
            rows.iter()
                .map(|r| vec![
                    r.protocol.clone(),
                    r.paper_overhead.into(),
                    f2(r.overhead_per_packet),
                    f2(r.avg_forward_hops),
                    format!("{}/{}", r.delivered, r.data_packets_sent),
                    r.control_messages.to_string(),
                ])
                .collect(),
        )
    );
}

fn e03() {
    println!("\n== E03 — §6.1/§6.2: routing path length ==");
    let rows = e03_path::run(SEED);
    println!(
        "{}",
        table(
            &["regime", "router hops"],
            rows.iter().map(|r| vec![r.regime.into(), r.hops.to_string()]).collect(),
        )
    );
    println!(
        "home-anchored contrast (Matsushita forwarding mode): {} hops",
        f2(e03_path::anchored_hops(SEED))
    );
}

fn e04() {
    println!("\n== E04 — §6.3: handoff between foreign agents ==");
    let rows = e04_handoff::run(SEED);
    println!(
        "{}",
        table(
            &["configuration", "sent during move", "delivered", "disruption (ms)", "updates"],
            rows.iter()
                .map(|r| vec![
                    r.label.clone(),
                    r.sent_during_move.to_string(),
                    r.delivered_during_move.to_string(),
                    if r.disruption_ms == u64::MAX {
                        "never".into()
                    } else {
                        r.disruption_ms.to_string()
                    },
                    r.location_updates.to_string(),
                ])
                .collect(),
        )
    );
}

fn e05() {
    println!("\n== E05 — §5.3: routing-loop robustness ==");
    let rows = e05_loops::run(SEED, 20);
    println!(
        "{}",
        table(
            &["configuration", "loops detected", "tunnel transits"],
            rows.iter()
                .map(|r| vec![
                    r.label.clone(),
                    r.loops_detected.to_string(),
                    r.tunnel_transits.to_string(),
                ])
                .collect(),
        )
    );
    println!("loop contraction (pure, §5.3): transits until detection");
    println!(
        "{}",
        table(
            &["loop size", "list cap", "transits"],
            [(3usize, 8usize), (4, 8), (6, 3), (8, 4)]
                .iter()
                .map(|&(n, cap)| vec![
                    n.to_string(),
                    cap.to_string(),
                    e05_loops::contraction_transits(n, cap).to_string(),
                ])
                .collect(),
        )
    );
}

fn e06() {
    println!("\n== E06 — §5.2: foreign-agent crash recovery ==");
    let rows = e06_recovery::run(SEED);
    println!(
        "{}",
        table(
            &["configuration", "recovery (ms)", "packets lost"],
            rows.iter()
                .map(|r| vec![
                    r.label.clone(),
                    r.recovery_ms.map(|v| v.to_string()).unwrap_or_else(|| "never".into()),
                    r.packets_lost.to_string(),
                ])
                .collect(),
        )
    );
}

fn e07() {
    println!("\n== E07 — §7: scalability with mobile-host population ==");
    let points = e07_scalability::run(SEED, &[1, 2, 4, 8]);
    println!(
        "{}",
        table(
            &["protocol", "mobiles", "ctl msgs/move", "max node state", "temp addrs"],
            points
                .iter()
                .map(|p| vec![
                    p.protocol.clone(),
                    p.mobiles.to_string(),
                    f2(p.control_msgs_per_move),
                    p.max_node_state.to_string(),
                    p.temp_addrs_used.to_string(),
                ])
                .collect(),
        )
    );
}

fn e08() {
    println!("\n== E08 — §4.3: location-update rate limiting ==");
    let rows: Vec<(u64, e08_rate_limit::RateLimitResult)> = [200u64, 1_000, 5_000]
        .iter()
        .map(|&ms| (ms, e08_rate_limit::run(SEED, 40, 2_000, ms)))
        .collect();
    println!(
        "{}",
        table(
            &["min interval (ms)", "packets", "updates sent", "suppressed"],
            rows.iter()
                .map(|(ms, r)| vec![
                    ms.to_string(),
                    r.packets_sent.to_string(),
                    r.updates_sent.to_string(),
                    r.updates_suppressed.to_string(),
                ])
                .collect(),
        )
    );
}

fn e09() {
    println!("\n== E09 — §4.5: ICMP error reverse path ==");
    let rows = e09_icmp_errors::run(SEED);
    println!(
        "{}",
        table(
            &["configuration", "sender saw error", "cache purged", "reversals"],
            rows.iter()
                .map(|r| vec![
                    r.label.clone(),
                    r.sender_errors.to_string(),
                    r.cache_purged.to_string(),
                    r.reversals.to_string(),
                ])
                .collect(),
        )
    );
}

fn e10() {
    println!("\n== E10 — §1/§8: zero penalty at home ==");
    let r = e10_at_home::run(SEED);
    println!(
        "{}",
        table(
            &["metric", "MHRP world", "plain-IP world"],
            vec![
                vec!["ping RTT (us)".into(), r.mhrp_rtt_us.to_string(), r.plain_rtt_us.to_string()],
                vec![
                    "reply TTL".into(),
                    r.mhrp_reply_ttl.to_string(),
                    r.plain_reply_ttl.to_string()
                ],
                vec!["MHRP overhead bytes".into(), r.mhrp_overhead_bytes.to_string(), "-".into()],
                vec!["registrations".into(), r.registrations.to_string(), "-".into()],
                vec!["location updates".into(), r.updates.to_string(), "-".into()],
            ],
        )
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a.eq_ignore_ascii_case(name));
    println!("MHRP reproduction report (seed {SEED}) — paper: Johnson, ICDCS 1994");
    if want("e01") {
        e01();
    }
    if want("e02") {
        e02();
    }
    if want("e03") {
        e03();
    }
    if want("e04") {
        e04();
    }
    if want("e05") {
        e05();
    }
    if want("e06") {
        e06();
    }
    if want("e07") {
        e07();
    }
    if want("e08") {
        e08();
    }
    if want("e09") {
        e09();
    }
    if want("e10") {
        e10();
    }
}

//! `report` — regenerates every reproduced table and figure.
//!
//! ```text
//! cargo run -p bench --bin report            # all experiments
//! cargo run -p bench --bin report -- e02 e05 # a subset
//! ```
//!
//! Output is the plain-text form of the tables recorded in EXPERIMENTS.md.
//!
//! Every experiment also runs a set of *shape checks* — the qualitative
//! claims its table is supposed to exhibit (the same invariants pinned in
//! `tests/paper_claims.rs`). A failed check is reported on stderr and the
//! binary exits non-zero, so CI catches a run whose numbers no longer
//! support the paper's claims.

use scenarios::experiments::{
    e01_header, e02_overhead, e03_path, e04_handoff, e05_loops, e06_recovery, e07_scalability,
    e08_rate_limit, e09_icmp_errors, e10_at_home, e11_flapping, e12_partition, e13_provenance,
    e14_cache_capacity, e15_mobility_rate, e16_flash_crowd, e17_hierarchy, e18_handoff_latency,
    e19_forged_registration, e20_registration_storm, e21_ping_pong,
};
use scenarios::report::{f2, table};

const SEED: u64 = 1994;

/// Records a failed shape check.
fn check(failures: &mut Vec<String>, experiment: &str, ok: bool, claim: &str) {
    if !ok {
        failures.push(format!("{experiment}: {claim}"));
    }
}

fn e01(failures: &mut Vec<String>) {
    println!("\n== E01 — Figures 2/3: MHRP header sizes and layout ==");
    let rows = e01_header::run();
    println!(
        "{}",
        table(
            &["case", "paper (bytes)", "measured (bytes)"],
            rows.iter()
                .map(|r| vec![
                    r.case.into(),
                    r.paper_bytes.to_string(),
                    r.measured_bytes.to_string()
                ])
                .collect(),
        )
    );
    let golden = e01_header::golden_header();
    println!("golden header bytes: {golden:02x?}");
    for r in &rows {
        check(
            failures,
            "e01",
            r.measured_bytes == r.paper_bytes,
            &format!("{}: measured {} B != paper {} B", r.case, r.measured_bytes, r.paper_bytes),
        );
    }
}

fn e02(failures: &mut Vec<String>) {
    println!("\n== E02 — §7: per-packet overhead comparison ==");
    let rows = e02_overhead::run(SEED, e02_overhead::DEFAULT_PACKETS);
    println!(
        "{}",
        table(
            &[
                "protocol",
                "workload",
                "paper B/pkt",
                "measured B/pkt",
                "fwd hops",
                "lat p50 (us)",
                "lat p99 (us)",
                "hops p50",
                "hops p99",
                "delivered",
                "control msgs",
            ],
            rows.iter()
                .map(|r| vec![
                    r.protocol.clone(),
                    r.workload.clone(),
                    r.paper_overhead.into(),
                    f2(r.overhead_per_packet),
                    f2(r.avg_forward_hops),
                    r.latency_us.p50().to_string(),
                    r.latency_us.p99().to_string(),
                    r.hops_hist.p50().to_string(),
                    r.hops_hist.p99().to_string(),
                    format!("{}/{}", r.delivered, r.data_packets_sent),
                    r.control_messages.to_string(),
                ])
                .collect(),
        )
    );
    for r in &rows {
        check(failures, "e02", r.delivered > 0, &format!("{} delivered nothing", r.protocol));
    }
}

fn e03(failures: &mut Vec<String>) {
    println!("\n== E03 — §6.1/§6.2: routing path length ==");
    let rows = e03_path::run(SEED);
    println!(
        "{}",
        table(
            &["regime", "router hops"],
            rows.iter().map(|r| vec![r.regime.into(), r.hops.to_string()]).collect(),
        )
    );
    println!(
        "home-anchored contrast (Matsushita forwarding mode): {} hops",
        f2(e03_path::anchored_hops(SEED))
    );
    check(failures, "e03", !rows.is_empty(), "no path-length rows");
    for r in &rows {
        check(failures, "e03", r.hops > 0, &format!("{}: zero hops", r.regime));
    }
}

fn e04(failures: &mut Vec<String>) {
    println!("\n== E04 — §6.3: handoff between foreign agents ==");
    let rows = e04_handoff::run(SEED);
    println!(
        "{}",
        table(
            &["configuration", "sent during move", "delivered", "disruption (ms)", "updates"],
            rows.iter()
                .map(|r| vec![
                    r.label.clone(),
                    r.sent_during_move.to_string(),
                    r.delivered_during_move.to_string(),
                    if r.disruption_ms == u64::MAX {
                        "never".into()
                    } else {
                        r.disruption_ms.to_string()
                    },
                    r.location_updates.to_string(),
                ])
                .collect(),
        )
    );
    // The §2 forwarding pointer must visibly matter: both the mid-stream
    // outage rows and the long-partition rows diverge.
    check(
        failures,
        "e04",
        rows[0].delivered_during_move > rows[1].delivered_during_move,
        "with-pointer row does not beat without-pointer row during the HA outage",
    );
    check(
        failures,
        "e04",
        rows[2].delivered_during_move >= rows[2].sent_during_move / 2,
        "pointer failed to carry the stream while the HA was dark",
    );
    check(
        failures,
        "e04",
        rows[3].delivered_during_move == 0,
        "pointerless HA-dark row unexpectedly delivered",
    );
}

fn e05(failures: &mut Vec<String>) {
    println!("\n== E05 — §5.3: routing-loop robustness ==");
    let rows = e05_loops::run(SEED, 20);
    println!(
        "{}",
        table(
            &["configuration", "loops detected", "tunnel transits"],
            rows.iter()
                .map(|r| vec![
                    r.label.clone(),
                    r.loops_detected.to_string(),
                    r.tunnel_transits.to_string(),
                ])
                .collect(),
        )
    );
    println!("loop contraction (pure, §5.3): transits until detection");
    println!(
        "{}",
        table(
            &["loop size", "list cap", "transits"],
            [(3usize, 8usize), (4, 8), (6, 3), (8, 4)]
                .iter()
                .map(|&(n, cap)| vec![
                    n.to_string(),
                    cap.to_string(),
                    e05_loops::contraction_transits(n, cap).to_string(),
                ])
                .collect(),
        )
    );
    check(
        failures,
        "e05",
        rows.iter().any(|r| r.loops_detected > 0),
        "no configuration detected a loop",
    );
}

fn e06(failures: &mut Vec<String>) {
    println!("\n== E06 — §5.2: foreign-agent crash recovery ==");
    let rows = e06_recovery::run(SEED);
    println!(
        "{}",
        table(
            &["configuration", "recovery (ms)", "packets lost"],
            rows.iter()
                .map(|r| vec![
                    r.label.clone(),
                    r.recovery_ms.map(|v| v.to_string()).unwrap_or_else(|| "never".into()),
                    r.packets_lost.to_string(),
                ])
                .collect(),
        )
    );
    for r in &rows {
        check(failures, "e06", r.recovery_ms.is_some(), &format!("{} never recovered", r.label));
    }
}

fn e07(failures: &mut Vec<String>) {
    println!("\n== E07 — §7: scalability with mobile-host population ==");
    let points = e07_scalability::run(SEED, &[1, 2, 4, 8]);
    println!(
        "{}",
        table(
            &["protocol", "mobiles", "ctl msgs/move", "max node state", "temp addrs"],
            points
                .iter()
                .map(|p| vec![
                    p.protocol.clone(),
                    p.mobiles.to_string(),
                    f2(p.control_msgs_per_move),
                    p.max_node_state.to_string(),
                    p.temp_addrs_used.to_string(),
                ])
                .collect(),
        )
    );
    check(failures, "e07", !points.is_empty(), "no scalability points");
}

fn e08(failures: &mut Vec<String>) {
    println!("\n== E08 — §4.3: location-update rate limiting ==");
    let rows: Vec<(u64, e08_rate_limit::RateLimitResult)> = [200u64, 1_000, 5_000]
        .iter()
        .map(|&ms| (ms, e08_rate_limit::run(SEED, 40, 2_000, ms)))
        .collect();
    println!(
        "{}",
        table(
            &["min interval (ms)", "packets", "updates sent", "suppressed"],
            rows.iter()
                .map(|(ms, r)| vec![
                    ms.to_string(),
                    r.packets_sent.to_string(),
                    r.updates_sent.to_string(),
                    r.updates_suppressed.to_string(),
                ])
                .collect(),
        )
    );
    check(
        failures,
        "e08",
        rows.last().is_some_and(|(_, r)| r.updates_suppressed > 0),
        "widest interval suppressed nothing",
    );
}

fn e09(failures: &mut Vec<String>) {
    println!("\n== E09 — §4.5: ICMP error reverse path ==");
    let rows = e09_icmp_errors::run(SEED);
    println!(
        "{}",
        table(
            &["configuration", "sender saw error", "cache purged", "reversals"],
            rows.iter()
                .map(|r| vec![
                    r.label.clone(),
                    r.sender_errors.to_string(),
                    r.cache_purged.to_string(),
                    r.reversals.to_string(),
                ])
                .collect(),
        )
    );
    check(
        failures,
        "e09",
        rows.iter().any(|r| r.reversals > 0),
        "no configuration reversed an ICMP error",
    );
}

fn e10(failures: &mut Vec<String>) {
    println!("\n== E10 — §1/§8: zero penalty at home ==");
    let r = e10_at_home::run(SEED);
    println!(
        "{}",
        table(
            &["metric", "MHRP world", "plain-IP world"],
            vec![
                vec!["ping RTT (us)".into(), r.mhrp_rtt_us.to_string(), r.plain_rtt_us.to_string()],
                vec![
                    "reply TTL".into(),
                    r.mhrp_reply_ttl.to_string(),
                    r.plain_reply_ttl.to_string()
                ],
                vec!["MHRP overhead bytes".into(), r.mhrp_overhead_bytes.to_string(), "-".into()],
                vec!["registrations".into(), r.registrations.to_string(), "-".into()],
                vec!["location updates".into(), r.updates.to_string(), "-".into()],
            ],
        )
    );
    check(failures, "e10", r.mhrp_overhead_bytes == 0, "MHRP added overhead at home");
    check(failures, "e10", r.mhrp_rtt_us == r.plain_rtt_us, "MHRP changed the at-home RTT");
}

fn e11(failures: &mut Vec<String>) {
    println!("\n== E11 — registration under flapping links ==");
    let rows = e11_flapping::run(SEED);
    println!(
        "{}",
        table(
            &["schedule", "attach (ms)", "reg msgs", "reg failed", "solicits", "delivered"],
            rows.iter()
                .map(|r| vec![
                    r.label.clone(),
                    r.attach_ms.map(|v| v.to_string()).unwrap_or_else(|| "never".into()),
                    r.registration_msgs.to_string(),
                    r.registrations_failed.to_string(),
                    r.solicits.to_string(),
                    format!("{}/{}", r.delivered, r.sent),
                ])
                .collect(),
        )
    );
    for r in &rows {
        check(failures, "e11", r.attached, &format!("{}: M never attached", r.label));
        check(failures, "e11", r.delivered > 0, &format!("{}: nothing delivered", r.label));
    }
    check(
        failures,
        "e11",
        rows[1].attach_ms >= rows[0].attach_ms,
        "flapping link attached no later than the stable link",
    );
    check(
        failures,
        "e11",
        rows[1].registration_msgs >= rows[0].registration_msgs,
        "flapping link spent no extra registration traffic",
    );
}

fn e12(failures: &mut Vec<String>) {
    println!("\n== E12 — partition and heal: cache reconvergence ==");
    let rows = e12_partition::run(SEED);
    println!(
        "{}",
        table(
            &[
                "configuration",
                "partition (ms)",
                "probes",
                "pointer at heal",
                "reconverge (ms)",
                "delivered after heal",
                "HA reconverged",
                "cache corrected",
            ],
            rows.iter()
                .map(|r| vec![
                    r.label.clone(),
                    r.partition_ms.to_string(),
                    r.probes_sent.to_string(),
                    r.pointer_at_heal.to_string(),
                    r.reconverge_ms.map(|v| v.to_string()).unwrap_or_else(|| "never".into()),
                    format!("{}/{}", r.delivered_after_heal, r.sent_after_heal),
                    r.ha_reconverged.to_string(),
                    r.cache_corrected.to_string(),
                ])
                .collect(),
        )
    );
    for r in &rows {
        check(failures, "e12", r.probes_sent > 0, &format!("{}: no probes sent", r.label));
        check(failures, "e12", r.ha_reconverged, &format!("{}: HA never reconverged", r.label));
        check(
            failures,
            "e12",
            r.delivered_after_heal >= r.sent_after_heal / 2,
            &format!("{}: post-heal delivery below half", r.label),
        );
        check(failures, "e12", r.cache_corrected, &format!("{}: S's cache stayed stale", r.label));
    }
    check(failures, "e12", rows[0].pointer_at_heal, "pointer row held no pointer at heal");
    check(failures, "e12", !rows[1].pointer_at_heal, "pointerless row held a pointer");
}

fn e13(failures: &mut Vec<String>) {
    println!("\n== E13 — path provenance: telemetry journeys across a handoff ==");
    let r = e13_provenance::run(SEED);
    println!(
        "{}",
        table(
            &["packet", "reconstructed path (receiving nodes)", "encaps"],
            vec![
                vec![
                    "first after move".into(),
                    format!("S -> {}", r.home_routed.join(" -> ")),
                    r.home_routed_encaps.to_string(),
                ],
                vec![
                    "after §6.1 update".into(),
                    format!("S -> {}", r.optimized.join(" -> ")),
                    r.optimized_encaps.to_string(),
                ],
            ],
        )
    );
    println!("packets home-routed before the path converged: {}", r.packets_until_optimized);
    check(
        failures,
        "e13",
        r.home_routed == ["R1", "R2", "R3", "R4", "M"],
        &format!("home-routed path was {:?}", r.home_routed),
    );
    check(
        failures,
        "e13",
        r.optimized == ["R1", "R3", "R4", "M"],
        &format!("optimized path was {:?}", r.optimized),
    );
    check(
        failures,
        "e13",
        r.packets_until_optimized == 1,
        &format!("{} packets paid the triangle (§6.1 claims 1)", r.packets_until_optimized),
    );
    check(failures, "e13", r.home_routed_encaps >= 1, "home agent never encapsulated");
    check(failures, "e13", r.optimized_encaps >= 1, "sender never encapsulated");
}

fn e14(failures: &mut Vec<String>) {
    println!("\n== E14 — §2/§4.3: cache capacity vs triangle routing (hierarchy) ==");
    let rows = e14_cache_capacity::run(SEED);
    println!(
        "{}",
        table(
            &[
                "cache capacity",
                "sent",
                "delivered",
                "sender-tunneled",
                "via home agent",
                "evictions",
                "updates sent",
                "suppressed",
                "overhead bytes",
            ],
            rows.iter()
                .map(|r| vec![
                    r.cache_capacity.to_string(),
                    r.packets_sent.to_string(),
                    r.delivered.to_string(),
                    r.tunneled_by_sender.to_string(),
                    r.tunneled_via_home.to_string(),
                    r.cache_evictions.to_string(),
                    r.updates_sent.to_string(),
                    r.updates_suppressed.to_string(),
                    r.overhead_bytes.to_string(),
                ])
                .collect(),
        )
    );
    for r in &rows {
        check(
            failures,
            "e14",
            r.delivered == r.packets_sent,
            &format!("capacity {}: delivery not total", r.cache_capacity),
        );
    }
    let (small, large) = (&rows[0], &rows[rows.len() - 1]);
    check(failures, "e14", small.cache_evictions > 0, "starved cache never evicted");
    check(
        failures,
        "e14",
        small.tunneled_via_home > large.tunneled_via_home,
        "starved cache did not pay more triangle routing",
    );
    check(
        failures,
        "e14",
        large.tunneled_by_sender > small.tunneled_by_sender,
        "ample cache did not tunnel more from the sender",
    );
}

fn e15(failures: &mut Vec<String>) {
    println!("\n== E15 — §5: handoff loss vs mobility rate (workload engine) ==");
    let rows = e15_mobility_rate::run(SEED);
    println!(
        "{}",
        table(
            &[
                "commuter period (ms)",
                "handoffs",
                "sent",
                "delivered",
                "lost/handoff",
                "lat p99 (us)",
                "updates sent",
                "overhead bytes",
            ],
            rows.iter()
                .map(|r| vec![
                    r.period_ms.to_string(),
                    r.handoffs.to_string(),
                    r.sent.to_string(),
                    r.delivered.to_string(),
                    f2(r.loss_per_handoff),
                    r.latency_p99_us.to_string(),
                    r.updates_sent.to_string(),
                    r.overhead_bytes.to_string(),
                ])
                .collect(),
        )
    );
    for r in &rows {
        check(
            failures,
            "e15",
            r.handoffs > 0,
            &format!("period {} ms: no handoffs happened", r.period_ms),
        );
        // §5's bound, aggregated over the soak: at most one packet lost
        // per handoff, at every mobility rate.
        check(
            failures,
            "e15",
            r.loss_per_handoff <= 1.0,
            &format!(
                "period {} ms: {:.2} packets lost/handoff (> 1)",
                r.period_ms, r.loss_per_handoff
            ),
        );
        check(
            failures,
            "e15",
            r.delivered > 0,
            &format!("period {} ms: nothing delivered", r.period_ms),
        );
    }
    check(
        failures,
        "e15",
        rows.last().map(|r| r.handoffs) > rows.first().map(|r| r.handoffs),
        "shrinking the period did not raise the handoff count",
    );
    check(
        failures,
        "e15",
        rows.last().map(|r| r.updates_sent) > rows.first().map(|r| r.updates_sent),
        "faster mobility did not provoke more location updates",
    );
}

fn e16(failures: &mut Vec<String>) {
    println!("\n== E16 — §2/§7: flash crowd vs cache capacity (workload engine) ==");
    let rows = e16_flash_crowd::run(SEED);
    println!(
        "{}",
        table(
            &[
                "cache capacity",
                "crowd joiners",
                "sent",
                "delivered",
                "evictions",
                "pre p50/p99 (us)",
                "crowd p50/p99 (us)",
            ],
            rows.iter()
                .map(|r| vec![
                    r.cache_capacity.to_string(),
                    r.crowd_joiners.to_string(),
                    r.sent.to_string(),
                    r.delivered.to_string(),
                    r.cache_evictions.to_string(),
                    format!("{}/{}", r.pre_p50_us, r.pre_p99_us),
                    format!("{}/{}", r.crowd_p50_us, r.crowd_p99_us),
                ])
                .collect(),
        )
    );
    for r in &rows {
        check(
            failures,
            "e16",
            r.delivery_ratio() >= 0.9,
            &format!(
                "capacity {}: delivery ratio {:.3} below 0.9",
                r.cache_capacity,
                r.delivery_ratio()
            ),
        );
        check(
            failures,
            "e16",
            r.crowd_samples > 0,
            &format!("capacity {}: empty crowd latency window", r.cache_capacity),
        );
        check(
            failures,
            "e16",
            r.crowd_joiners > 0,
            &format!("capacity {}: nobody joined the crowd", r.cache_capacity),
        );
    }
    let (small, large) = (&rows[0], &rows[rows.len() - 1]);
    check(
        failures,
        "e16",
        small.cache_evictions > large.cache_evictions,
        "the starved cache did not churn harder under the crowd",
    );
}

fn e17(failures: &mut Vec<String>) {
    println!("\n== E17 — DESIGN.md §12: regional tier vs backbone registration load ==");
    let rows = e17_hierarchy::run(SEED);
    println!(
        "{}",
        table(
            &[
                "mode",
                "mobiles",
                "handoffs",
                "HA registrations",
                "regional registrations",
                "local handoffs",
                "reg msgs",
            ],
            rows.iter()
                .map(|r| vec![
                    r.mode.into(),
                    r.mobiles.to_string(),
                    r.handoffs.to_string(),
                    r.ha_registrations.to_string(),
                    r.reg_registrations.to_string(),
                    r.reg_handoffs_local.to_string(),
                    r.registration_msgs.to_string(),
                ])
                .collect(),
        )
    );
    // Rows come in (flat, hierarchical) pairs per world size.
    for pair in rows.chunks(2) {
        let (flat, hier) = (&pair[0], &pair[1]);
        check(
            failures,
            "e17",
            flat.handoffs == hier.handoffs,
            &format!("{} hosts: move plans diverged across modes", flat.mobiles),
        );
        // The §12 claim, machine-checked up to the 10k commuter world:
        // the regional tier strictly reduces home-agent (backbone)
        // registration traffic.
        check(
            failures,
            "e17",
            hier.ha_registrations < flat.ha_registrations,
            &format!(
                "{} hosts: hierarchical HA registrations {} not below flat {}",
                flat.mobiles, hier.ha_registrations, flat.ha_registrations
            ),
        );
        check(
            failures,
            "e17",
            hier.reg_handoffs_local > 0,
            &format!("{} hosts: regional tier absorbed no handoffs", flat.mobiles),
        );
        check(
            failures,
            "e17",
            flat.reg_registrations == 0,
            &format!("{} hosts: flat mode touched the regional tier", flat.mobiles),
        );
    }
}

fn e18(failures: &mut Vec<String>) {
    println!("\n== E18 — DESIGN.md §12: flash-crowd registration latency, flat vs hierarchical ==");
    let rows = e18_handoff_latency::run(SEED);
    println!(
        "{}",
        table(
            &["mode", "handoffs", "acked", "mean (us)", "max (us)", "HA registrations"],
            rows.iter()
                .map(|r| vec![
                    r.mode.into(),
                    r.handoffs.to_string(),
                    r.acked.to_string(),
                    r.latency_mean_us.to_string(),
                    r.latency_max_us.to_string(),
                    r.ha_registrations.to_string(),
                ])
                .collect(),
        )
    );
    let (flat, hier) = (&rows[0], &rows[1]);
    check(failures, "e18", flat.acked > 0 && hier.acked > 0, "a mode matched no acks");
    check(
        failures,
        "e18",
        hier.latency_mean_us < flat.latency_mean_us,
        &format!(
            "hierarchical mean latency {} us not below flat {} us",
            hier.latency_mean_us, flat.latency_mean_us
        ),
    );
    check(
        failures,
        "e18",
        hier.ha_registrations == flat.ha_registrations,
        "first-arrival upstream registrations should keep HA counts equal",
    );
}

fn e19(failures: &mut Vec<String>) {
    println!("\n== E19 — DESIGN.md §13: forged registrations and cache poisoning ==");
    let rows = e19_forged_registration::run(SEED);
    println!(
        "{}",
        table(
            &[
                "mode",
                "delivered",
                "delivery",
                "diverted flows",
                "control",
                "auth rejected",
                "poison dropped",
            ],
            rows.iter()
                .map(|r| vec![
                    r.mode.label().into(),
                    format!("{}/{}", r.delivered, r.sent),
                    f2(r.delivery),
                    r.diverted_flows.to_string(),
                    f2(r.control_delivery),
                    r.auth_rejected.to_string(),
                    r.poison_dropped.to_string(),
                ])
                .collect(),
        )
    );
    let (benign, open, auth) = (&rows[0], &rows[1], &rows[2]);
    check(failures, "e19", benign.delivery > 0.95, "benign baseline below 95% delivery");
    check(failures, "e19", benign.auth_rejected == 0, "benign run rejected something");
    // Without authentication the attack must demonstrably win: at least
    // one victim's traffic diverted, aggregate delivery collapsed.
    check(failures, "e19", open.diverted_flows >= 1, "attack diverted no flow without auth");
    check(
        failures,
        "e19",
        open.delivery < benign.delivery - 0.2,
        &format!(
            "no-auth delivery {} not collapsed vs benign {}",
            f2(open.delivery),
            f2(benign.delivery)
        ),
    );
    // With authentication the forgeries must be counted and neutralised:
    // delivery back at the benign baseline.
    check(failures, "e19", auth.auth_rejected > 0, "auth run rejected no forgery");
    check(failures, "e19", auth.poison_dropped > 0, "auth run dropped no poisoned update");
    check(failures, "e19", auth.diverted_flows == 0, "auth run still had a diverted flow");
    check(
        failures,
        "e19",
        auth.delivery > benign.delivery - 0.02,
        &format!("auth delivery {} below benign {}", f2(auth.delivery), f2(benign.delivery)),
    );
}

fn e20(failures: &mut Vec<String>) {
    println!("\n== E20 — §4.3/§5.1: forged-tunnel update storm at the rate limiter ==");
    let rows = e20_registration_storm::run(SEED);
    println!(
        "{}",
        table(
            &["mode", "delivered", "updates sent", "rate limited", "evictions", "readmitted"],
            rows.iter()
                .map(|r| vec![
                    if r.storm { "storm" } else { "calm" }.into(),
                    format!("{}/{}", r.delivered, r.sent),
                    r.updates_sent.to_string(),
                    r.updates_rate_limited.to_string(),
                    r.limiter_evictions.to_string(),
                    r.limiter_readmitted.to_string(),
                ])
                .collect(),
        )
    );
    let (calm, storm) = (&rows[0], &rows[1]);
    check(
        failures,
        "e20",
        storm.updates_sent > calm.updates_sent * 3,
        "storm did not amplify update traffic",
    );
    check(
        failures,
        "e20",
        storm.limiter_evictions > calm.limiter_evictions,
        "storm did not churn the limiter LRU",
    );
    check(failures, "e20", storm.limiter_readmitted > 0, "no storm-evicted hot entry readmitted");
    check(
        failures,
        "e20",
        storm.delivery > calm.delivery - 0.02,
        &format!("storm delivery {} fell below calm {}", f2(storm.delivery), f2(calm.delivery)),
    );
}

fn e21(failures: &mut Vec<String>) {
    println!("\n== E21 — §5: ping-pong handoff oscillation, with and without auth ==");
    let rows = e21_ping_pong::run(SEED);
    println!(
        "{}",
        table(
            &["auth", "handoffs", "delivered", "loss/handoff", "updates", "registrations"],
            rows.iter()
                .map(|r| vec![
                    if r.auth { "on" } else { "off" }.into(),
                    r.handoffs.to_string(),
                    format!("{}/{}", r.delivered, r.sent),
                    f2(r.loss_per_handoff),
                    r.updates_sent.to_string(),
                    r.registrations.to_string(),
                ])
                .collect(),
        )
    );
    let (open, auth) = (&rows[0], &rows[1]);
    check(failures, "e21", open.handoffs > 4, "oscillation performed too few handoffs");
    check(failures, "e21", open.handoffs == auth.handoffs, "auth changed the handoff count");
    check(
        failures,
        "e21",
        open.loss_per_handoff <= 1.0,
        &format!("no-auth loss/handoff {} above the §5 bound", f2(open.loss_per_handoff)),
    );
    check(
        failures,
        "e21",
        auth.loss_per_handoff <= 1.0,
        &format!("auth loss/handoff {} above the §5 bound", f2(auth.loss_per_handoff)),
    );
}

/// Re-runs the Figure 1 handoff with telemetry + pcap capture on and
/// writes `trace.json` and `figure1.pcap` into `dir` (CI publishes them
/// as workflow artifacts; the pcap opens in Wireshark).
fn export_artifacts(dir: &std::path::Path) -> std::io::Result<()> {
    use mhrp::{Attachment, MhrpHostNode};
    use netsim::time::{SimDuration, SimTime};
    use scenarios::topology::{CorrespondentKind, Figure1, Figure1Options};

    std::fs::create_dir_all(dir)?;
    let mut f = Figure1::build(Figure1Options {
        correspondent: CorrespondentKind::Mhrp,
        seed: SEED,
        ..Default::default()
    });
    f.world.set_telemetry(true);
    f.world.set_telemetry_capacity(1 << 16);
    f.world.start_pcap_capture();
    f.world.run_until(SimTime::from_secs(2));
    let m_addr = f.addrs.m;
    let send = |f: &mut Figure1, marker: u8| {
        f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
            s.send_udp(ctx, m_addr, 7777, 7777, vec![marker; 32]);
        });
    };
    send(&mut f, 1);
    f.world.run_for(SimDuration::from_secs(2));
    f.move_m_to_d();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(2));
    send(&mut f, 2); // home-routed triangle
    f.world.run_for(SimDuration::from_secs(2));
    send(&mut f, 3); // optimized, sender-tunneled
    f.world.run_for(SimDuration::from_secs(2));

    let json = netsim::telemetry::json::trace_json(f.world.telemetry().events());
    std::fs::write(dir.join("trace.json"), json)?;
    let frames = f.world.pcap_frame_count();
    let pcap = f.world.take_pcap().expect("capture was started");
    std::fs::write(dir.join("figure1.pcap"), pcap)?;
    println!(
        "\nartifacts: wrote {} ({} events) and {} ({frames} frames)",
        dir.join("trace.json").display(),
        f.world.telemetry().len(),
        dir.join("figure1.pcap").display(),
    );
    Ok(())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let artifacts_dir = match args.iter().position(|a| a == "--artifacts") {
        Some(i) => {
            args.remove(i);
            if i >= args.len() {
                eprintln!("--artifacts requires a directory argument");
                std::process::exit(2);
            }
            Some(std::path::PathBuf::from(args.remove(i)))
        }
        None => None,
    };
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a.eq_ignore_ascii_case(name));
    println!("MHRP reproduction report (seed {SEED}) — paper: Johnson, ICDCS 1994");
    let mut failures = Vec::new();
    if want("e01") {
        e01(&mut failures);
    }
    if want("e02") {
        e02(&mut failures);
    }
    if want("e03") {
        e03(&mut failures);
    }
    if want("e04") {
        e04(&mut failures);
    }
    if want("e05") {
        e05(&mut failures);
    }
    if want("e06") {
        e06(&mut failures);
    }
    if want("e07") {
        e07(&mut failures);
    }
    if want("e08") {
        e08(&mut failures);
    }
    if want("e09") {
        e09(&mut failures);
    }
    if want("e10") {
        e10(&mut failures);
    }
    if want("e11") {
        e11(&mut failures);
    }
    if want("e12") {
        e12(&mut failures);
    }
    if want("e13") {
        e13(&mut failures);
    }
    if want("e14") {
        e14(&mut failures);
    }
    if want("e15") {
        e15(&mut failures);
    }
    if want("e16") {
        e16(&mut failures);
    }
    if want("e17") {
        e17(&mut failures);
    }
    if want("e18") {
        e18(&mut failures);
    }
    if want("e19") {
        e19(&mut failures);
    }
    if want("e20") {
        e20(&mut failures);
    }
    if want("e21") {
        e21(&mut failures);
    }
    if let Some(dir) = artifacts_dir {
        if let Err(e) = export_artifacts(&dir) {
            eprintln!("artifact export failed: {e}");
            std::process::exit(1);
        }
    }
    if failures.is_empty() {
        println!("\nall shape checks passed");
    } else {
        eprintln!("\n{} shape check(s) FAILED:", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}

//! Location-cache churn microbench: the same keyed insert/lookup stream
//! driven through the O(1) [`mhrp::LruMap`] and through a faithful copy of
//! the linear-scan eviction it replaced, at several capacities.
//!
//! The point being demonstrated: the old eviction picked its victim with a
//! `min_by_key` scan over the whole table, so per-op cost grew linearly
//! with capacity (and tie-breaking fell to `HashMap` iteration order); the
//! list-based replacement is flat in capacity and deterministic.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use mhrp::LruMap;
use netsim::time::SimTime;

use crate::simworlds::Throughput;

/// The pre-replacement cache: `HashMap` entries stamped with a
/// `last_used` age, evicting via a full scan. Kept here (not in `mhrp`)
/// purely as the bench baseline.
struct LinearLru {
    capacity: usize,
    entries: HashMap<Ipv4Addr, (Ipv4Addr, SimTime)>,
}

impl LinearLru {
    fn new(capacity: usize) -> LinearLru {
        LinearLru { capacity, entries: HashMap::new() }
    }

    fn lookup(&mut self, mobile: Ipv4Addr, now: SimTime) -> Option<Ipv4Addr> {
        let e = self.entries.get_mut(&mobile)?;
        e.1 = now;
        Some(e.0)
    }

    fn insert(&mut self, mobile: Ipv4Addr, fa: Ipv4Addr, now: SimTime) {
        if !self.entries.contains_key(&mobile) && self.entries.len() >= self.capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.1) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(mobile, (fa, now));
    }
}

/// Which implementation a churn run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheImpl {
    /// The old linear-scan eviction (bench-local baseline copy).
    Linear,
    /// The intrusive-list [`mhrp::LruMap`] now backing `LocationCache`.
    Lru,
}

/// Deterministic key stream: a 64-bit LCG mapped into `universe` distinct
/// addresses (4× capacity, so most inserts of new keys evict).
fn key(state: &mut u64, universe: u32) -> Ipv4Addr {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    Ipv4Addr::from(0x0a00_0001 + ((*state >> 33) as u32) % universe)
}

/// Runs `ops` churn operations (2 lookups per insert, keys drawn from a
/// universe of `4 * capacity`) against the chosen implementation and
/// reports wall time. `events` is the op count, so `events_per_sec` is
/// ops/second.
pub fn cache_churn(which: CacheImpl, capacity: usize, ops: u64) -> Throughput {
    let universe = u32::try_from(capacity * 4).expect("universe");
    let fa = Ipv4Addr::new(10, 99, 0, 1);
    let mut state = 0x1994_1994_1994_1994u64;
    let start = std::time::Instant::now();
    match which {
        CacheImpl::Linear => {
            let mut c = LinearLru::new(capacity);
            for i in 0..ops {
                let now = SimTime::from_micros(i);
                match i % 3 {
                    0 => c.insert(key(&mut state, universe), fa, now),
                    _ => {
                        std::hint::black_box(c.lookup(key(&mut state, universe), now));
                    }
                }
            }
            std::hint::black_box(c.entries.len());
        }
        CacheImpl::Lru => {
            let mut c = LruMap::new(capacity);
            for i in 0..ops {
                match i % 3 {
                    0 => {
                        std::hint::black_box(c.insert(key(&mut state, universe), fa));
                    }
                    _ => {
                        std::hint::black_box(c.touch(key(&mut state, universe)));
                    }
                }
            }
            std::hint::black_box(c.len());
        }
    }
    Throughput { events: ops, wall_seconds: start.elapsed().as_secs_f64() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_implementations_complete_and_evict() {
        let lin = cache_churn(CacheImpl::Linear, 64, 10_000);
        let lru = cache_churn(CacheImpl::Lru, 64, 10_000);
        assert_eq!(lin.events, 10_000);
        assert_eq!(lru.events, 10_000);
    }

    #[test]
    fn key_stream_is_deterministic() {
        let mut a = 7u64;
        let mut b = 7u64;
        for _ in 0..100 {
            assert_eq!(key(&mut a, 256), key(&mut b, 256));
        }
    }
}

//! `soak` — the SLO-gated workload soak the CI smoke job runs.
//!
//! Builds a hierarchical MHRP world, drives the workload engine's
//! random-waypoint mobility plus mixed open/closed-loop traffic through
//! it, evaluates the run against the SLO thresholds, prints the
//! machine-readable report, and exits non-zero on any SLO breach.
//!
//! ```text
//! cargo run --release -p bench --bin soak                    # default 1k world
//! cargo run --release -p bench --bin soak -- --out slo_report.json
//! cargo run --release -p bench --bin soak -- --budget-seconds 120
//! cargo run --release -p bench --bin soak -- --regions 1 --fas 4 --mobiles 32
//! ```
//!
//! * `--out PATH` also writes the JSON report to `PATH` (the CI
//!   `slo_report.json` artifact).
//! * `--budget-seconds N` exits non-zero if the whole run (build +
//!   warmup + soak) takes more than `N` wall-clock seconds.
//! * `--regions/--fas/--mobiles` size the world (defaults 2 × 10 × 500 —
//!   the 1k-host hierarchy the `simcore` soak case also runs).
//! * `--duration-secs N` sets the simulated soak length (default 8).
//! * `--shards N` runs the soak on the sharded engine (DESIGN.md §10)
//!   with `N` region-owned shards and region-confined mobility; `N = 1`
//!   (the default) keeps the classic single-world path, and the typed
//!   event stream is identical either way on jitter-free worlds.
//! * `--hierarchical` runs the world with the regional registration
//!   tier (DESIGN.md §12): regional routers own their region's visitor
//!   bindings and cell foreign agents register visitors regionally. The
//!   same SLOs apply — the tier must not cost delivery or latency.
//! * `--adversarial` runs the soak under attack (DESIGN.md §13): one
//!   attacker host floods forged registrations and cache-poisoning
//!   updates at region 0 while the authentication extension is on. The
//!   ordinary SLOs still gate the run — the defense must neutralise
//!   the attack — and an extra `auth_rejected_min` check fails the run
//!   if no forgery was ever rejected (i.e. the attack never engaged).
//!   CI publishes this run's report as `slo_report_adv.json`.

use mhrp::MhrpConfig;
use netsim::time::SimDuration;
use scenarios::hierarchy::HierarchyParams;
use scenarios::soak::{run_random_waypoint_soak, RwSoakConfig};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) => Some(v.clone()),
        None => {
            eprintln!("error: {flag} requires a value");
            std::process::exit(2);
        }
    }
}

fn parse_or_die<T: std::str::FromStr>(flag: &str, v: String) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} wants a number, got {v}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = flag_value(&args, "--out");
    let budget: Option<f64> =
        flag_value(&args, "--budget-seconds").map(|v| parse_or_die("--budget-seconds", v));
    let regions: usize = flag_value(&args, "--regions").map_or(2, |v| parse_or_die("--regions", v));
    let fas: usize = flag_value(&args, "--fas").map_or(10, |v| parse_or_die("--fas", v));
    let mobiles: usize =
        flag_value(&args, "--mobiles").map_or(500, |v| parse_or_die("--mobiles", v));
    let duration: u64 =
        flag_value(&args, "--duration-secs").map_or(8, |v| parse_or_die("--duration-secs", v));
    let shards: usize = flag_value(&args, "--shards").map_or(1, |v| parse_or_die("--shards", v));
    let hierarchical = args.iter().any(|a| a == "--hierarchical");
    let adversarial = args.iter().any(|a| a == "--adversarial");

    let harness_start = std::time::Instant::now();
    let hosts = regions * mobiles;
    let mut thresholds = scenarios::soak::RwSoakConfig::default().thresholds;
    // Population-dependent objectives: every wandering host registers and
    // provokes location updates (§4.3 rate-limits them *per host*), and a
    // fixed-size correspondent cache over a large population pays the
    // §6.1 home triangle (12 B inner + 8 B outer) on most packets.
    thresholds.max_update_rate_per_sec = (hosts as f64 * 0.5).max(50.0);
    // With the regional tier (DESIGN.md §12) a tunneled packet crosses
    // one extra agent (home agent → regional → cell FA), and every
    // re-tunnel appends one 4 B previous-source entry — so the expected
    // steady-state overhead shifts up by exactly that hop. Delivery and
    // latency objectives are identical across modes.
    thresholds.max_overhead_per_packet = if hierarchical { 28.0 } else { 24.0 };
    // Handoff loss scales with the offered rate: a handoff's physical
    // registration outage is ~200 ms (E11), so an open-loop flow at R
    // pkt/s expects up to ~0.2·R losses per handoff. Gate at a 350 ms
    // outage bound — generous for healthy registration, still tripped by
    // retry storms or stale-cache loops (the §5 ≤1-per-stale-hop claim
    // itself is verified in the low-rate regime by E15).
    let rate = RwSoakConfig::default().open_rate_per_sec;
    thresholds.max_handoff_loss_per_handoff = (rate * 0.35).max(1.0);
    let cfg = RwSoakConfig {
        params: HierarchyParams {
            regions,
            fas_per_region: fas,
            mobiles_per_region: mobiles,
            hierarchical,
            attackers: usize::from(adversarial),
            config: MhrpConfig {
                // The adversarial gate only makes sense with the §13
                // defense on: without it the forged registrations
                // simply win and every delivery SLO breaches.
                auth_key: adversarial.then_some(0x1994_0d0c_5bad_c0de),
                ..Default::default()
            },
            ..Default::default()
        },
        duration: SimDuration::from_secs(duration),
        thresholds,
        shards,
        adversarial,
        ..RwSoakConfig::default()
    };
    let run = run_random_waypoint_soak(&cfg);
    let harness_seconds = harness_start.elapsed().as_secs_f64();

    let json = run.report.to_json();
    println!("{json}");
    eprintln!(
        "soak: {} events in {:.2}s of measured window ({:.0} events/s), {:.1}s total",
        run.events,
        run.wall_seconds,
        run.events as f64 / run.wall_seconds.max(1e-9),
        harness_seconds,
    );
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    let mut failed = false;
    if let Some(limit) = budget {
        if harness_seconds > limit {
            eprintln!("budget exceeded: {harness_seconds:.1}s > {limit:.1}s");
            failed = true;
        } else {
            eprintln!("within budget: {harness_seconds:.1}s <= {limit:.1}s");
        }
    }
    if !run.report.pass {
        for c in run.report.checks.iter().filter(|c| !c.pass) {
            eprintln!(
                "SLO BREACH: {} measured {:.4} vs threshold {:.4}",
                c.name, c.measured, c.threshold
            );
        }
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("all SLOs met");
}

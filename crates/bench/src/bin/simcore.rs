//! `simcore` — measures raw simulator event throughput and emits the
//! machine-readable JSON recorded in `BENCH_simcore.json`, giving every
//! PR a comparable perf trajectory for the `netsim` hot path.
//!
//! ```text
//! cargo run --release -p bench --bin simcore            # print JSON
//! cargo run --release -p bench --bin simcore -- --out BENCH_simcore.json
//! cargo run --release -p bench --bin simcore -- --only mega_world_10k \
//!     --budget-seconds 120                              # CI smoke-scale
//! ```
//!
//! Each workload runs several times; the best run is reported (minimum
//! wall time — standard practice for throughput benches, since noise is
//! strictly additive). The big `mega_world` cases run fewer times to keep
//! the harness itself fast.
//!
//! * `--only SUBSTR` runs just the cases whose name contains `SUBSTR`.
//! * `--budget-seconds N` exits non-zero if the selected cases take more
//!   than `N` wall-clock seconds in total (the CI scale gate).
//! * `--floor NAME=EVENTS_PER_SEC` (repeatable) exits non-zero if the
//!   named case's best run falls below the given throughput — the CI
//!   perf-regression gate for the scheduler hot path.
//! * `--shards N` runs every `mega_world_*` scale case through the
//!   sharded engine (`ShardedHierarchy`, DESIGN.md §10) with `N`
//!   region-owned shards; `N = 1` (the default) keeps the classic
//!   single-world path. The fixed `mega_world_100k_s{2,4,8}` cases
//!   form the shard-scaling sweep and ignore the flag.

use bench::cache_churn::{cache_churn, CacheImpl};
use bench::megaworld::{mega_world, mega_world_sharded};
use bench::simworlds::{
    broadcast_fanout, broadcast_fanout_with, timer_churn, unicast_pingpong, unicast_pingpong_with,
    Telemetry, Throughput,
};
use netsim::time::SimDuration;
use scenarios::hierarchy::HierarchyParams;
use scenarios::soak::{run_random_waypoint_soak, RwSoakConfig};

const RUNS: usize = 5;
const SEED: u64 = 1994;
const CHURN_OPS: u64 = 1_000_000;

struct Case {
    name: &'static str,
    detail: &'static str,
    runs: usize,
    work: Box<dyn Fn() -> Throughput>,
}

fn best_of(runs: usize, f: &dyn Fn() -> Throughput) -> Throughput {
    (0..runs)
        .map(|_| f())
        .min_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds))
        .expect("at least one run")
}

fn churn_case(name: &'static str, detail: &'static str, which: CacheImpl, cap: usize) -> Case {
    Case { name, detail, runs: RUNS, work: Box::new(move || cache_churn(which, cap, CHURN_OPS)) }
}

/// Runs a `mega_world_*` case through the classic world (`shards <= 1`)
/// or the sharded engine, so `--shards N` re-points the whole scale
/// ladder at the parallel path without renaming the cases.
fn mega(
    seed: u64,
    regions: usize,
    fas: usize,
    mobiles: usize,
    sim_ms: u64,
    shards: usize,
    hierarchical: bool,
) -> Throughput {
    if shards > 1 {
        mega_world_sharded(seed, regions, fas, mobiles, sim_ms, shards, hierarchical)
    } else {
        mega_world(seed, regions, fas, mobiles, sim_ms, hierarchical)
    }
}

fn cases(shards: usize) -> Vec<Case> {
    vec![
        Case {
            name: "broadcast_fanout",
            detail: "32 nodes, 256B payload, 1ms beacons, 2s simulated",
            runs: RUNS,
            work: Box::new(|| broadcast_fanout(SEED, 32, 256, 2_000)),
        },
        Case {
            name: "unicast_pingpong",
            detail: "16 pairs, 256B payload, 2s simulated",
            runs: RUNS,
            work: Box::new(|| unicast_pingpong(SEED, 16, 256, 2_000)),
        },
        Case {
            name: "timer_churn",
            detail: "32 nodes x 8 timer chains, 2s simulated",
            runs: RUNS,
            work: Box::new(|| timer_churn(SEED, 32, 8, 2_000)),
        },
        Case {
            name: "unicast_pingpong_tele",
            detail: "16 pairs, 256B payload, 2s simulated, telemetry on (64Ki ring)",
            runs: RUNS,
            work: Box::new(|| {
                unicast_pingpong_with(SEED, 16, 256, 2_000, Telemetry::On { ring: 1 << 16 })
            }),
        },
        Case {
            name: "broadcast_fanout_tele",
            detail: "32 nodes, 256B payload, 1ms beacons, 2s simulated, telemetry on (64Ki ring)",
            runs: RUNS,
            work: Box::new(|| {
                broadcast_fanout_with(SEED, 32, 256, 2_000, Telemetry::On { ring: 1 << 16 })
            }),
        },
        churn_case(
            "location_cache_churn_linear_256",
            "old linear-scan eviction, capacity 256, 1M ops",
            CacheImpl::Linear,
            256,
        ),
        churn_case(
            "location_cache_churn_lru_256",
            "O(1) list eviction, capacity 256, 1M ops",
            CacheImpl::Lru,
            256,
        ),
        churn_case(
            "location_cache_churn_linear_4096",
            "old linear-scan eviction, capacity 4096, 1M ops",
            CacheImpl::Linear,
            4096,
        ),
        churn_case(
            "location_cache_churn_lru_4096",
            "O(1) list eviction, capacity 4096, 1M ops",
            CacheImpl::Lru,
            4096,
        ),
        churn_case(
            "location_cache_churn_linear_16384",
            "old linear-scan eviction, capacity 16384, 1M ops",
            CacheImpl::Linear,
            16384,
        ),
        churn_case(
            "location_cache_churn_lru_16384",
            "O(1) list eviction, capacity 16384, 1M ops",
            CacheImpl::Lru,
            16384,
        ),
        Case {
            name: "soak_rw_1k",
            detail: "random-waypoint soak, hierarchy 2 regions x 10 cells x 500 mobiles, \
                     8 flows, 8s simulated (workload engine + SLO evaluation included)",
            runs: 2,
            work: Box::new(|| {
                let run = run_random_waypoint_soak(&RwSoakConfig {
                    params: HierarchyParams {
                        regions: 2,
                        fas_per_region: 10,
                        mobiles_per_region: 500,
                        ..Default::default()
                    },
                    duration: SimDuration::from_secs(8),
                    ..RwSoakConfig::default()
                });
                Throughput { events: run.events, wall_seconds: run.wall_seconds }
            }),
        },
        Case {
            name: "mega_world_1k",
            detail: "hierarchy 2 regions x 10 cells x 500 mobiles, 6s simulated",
            runs: 3,
            work: Box::new(move || mega(SEED, 2, 10, 500, 6_000, shards, false)),
        },
        Case {
            name: "mega_world_10k",
            detail: "hierarchy 4 regions x 50 cells x 2500 mobiles, 6s simulated",
            runs: 2,
            work: Box::new(move || mega(SEED, 4, 50, 2_500, 6_000, shards, false)),
        },
        Case {
            name: "mega_world_100k",
            detail: "hierarchy 8 regions x 250 cells x 12500 mobiles, 6s simulated",
            runs: 1,
            work: Box::new(move || mega(SEED, 8, 250, 12_500, 6_000, shards, false)),
        },
        Case {
            name: "mega_world_100k_hier",
            detail: "hierarchy 8 regions x 250 cells x 12500 mobiles, 6s simulated, \
                     regional registration tier on (DESIGN.md S12)",
            runs: 1,
            work: Box::new(move || mega(SEED, 8, 250, 12_500, 6_000, shards, true)),
        },
        Case {
            name: "mega_world_100k_s2",
            detail: "hierarchy 8 regions x 250 cells x 12500 mobiles, 6s simulated, 2 shards",
            runs: 1,
            work: Box::new(|| mega_world_sharded(SEED, 8, 250, 12_500, 6_000, 2, false)),
        },
        Case {
            name: "mega_world_100k_s4",
            detail: "hierarchy 8 regions x 250 cells x 12500 mobiles, 6s simulated, 4 shards",
            runs: 1,
            work: Box::new(|| mega_world_sharded(SEED, 8, 250, 12_500, 6_000, 4, false)),
        },
        Case {
            name: "mega_world_100k_s8",
            detail: "hierarchy 8 regions x 250 cells x 12500 mobiles, 6s simulated, 8 shards",
            runs: 1,
            work: Box::new(|| mega_world_sharded(SEED, 8, 250, 12_500, 6_000, 8, false)),
        },
        Case {
            name: "mega_world_1m",
            detail: "hierarchy 40 regions x 250 cells x 25000 mobiles, 6s simulated \
                     (the DESIGN.md S10 1M-mobile target; minutes of wall time - run \
                     it explicitly with --only mega_world_1m, CI excludes it)",
            runs: 1,
            work: Box::new(move || mega(SEED, 40, 250, 25_000, 6_000, shards, false)),
        },
    ]
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) => Some(v.clone()),
        None => {
            eprintln!("error: {flag} requires a value");
            std::process::exit(2);
        }
    }
}

/// Parses every `--floor NAME=EVENTS_PER_SEC` occurrence.
fn floor_values(args: &[String]) -> Vec<(String, f64)> {
    let mut floors = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a != "--floor" {
            continue;
        }
        let Some(spec) = args.get(i + 1) else {
            eprintln!("error: --floor requires NAME=EVENTS_PER_SEC");
            std::process::exit(2);
        };
        let parsed = spec
            .split_once('=')
            .and_then(|(name, v)| v.parse::<f64>().ok().map(|floor| (name.to_string(), floor)));
        match parsed {
            Some(pair) => floors.push(pair),
            None => {
                eprintln!("error: --floor wants NAME=EVENTS_PER_SEC, got {spec}");
                std::process::exit(2);
            }
        }
    }
    floors
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = flag_value(&args, "--out");
    let only = flag_value(&args, "--only");
    let budget: Option<f64> = flag_value(&args, "--budget-seconds").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --budget-seconds wants a number, got {v}");
            std::process::exit(2);
        })
    });
    let shards: usize = flag_value(&args, "--shards").map_or(1, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --shards wants a number, got {v}");
            std::process::exit(2);
        })
    });

    // The 1M-mobile world takes minutes and ~10x the memory of every
    // other case combined; it only runs when named exactly, so that
    // neither the default sweep nor `--only mega_world` trips over it.
    let selected: Vec<Case> = cases(shards)
        .into_iter()
        .filter(|c| only.as_deref().is_none_or(|o| c.name.contains(o)))
        .filter(|c| c.name != "mega_world_1m" || only.as_deref() == Some("mega_world_1m"))
        .collect();
    if selected.is_empty() {
        eprintln!("error: --only {:?} matches no case", only.unwrap_or_default());
        std::process::exit(2);
    }

    let harness_start = std::time::Instant::now();
    let results: Vec<(&Case, Throughput)> =
        selected.iter().map(|c| (c, best_of(c.runs, &*c.work))).collect();
    let harness_seconds = harness_start.elapsed().as_secs_f64();

    let mut json = String::from("{\n  \"bench\": \"simcore\",\n  \"cases\": [\n");
    for (i, (c, best)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"detail\": \"{}\", \"events\": {}, \
             \"wall_seconds\": {:.6}, \"events_per_sec\": {:.0}}}{}\n",
            c.name,
            c.detail,
            best.events,
            best.wall_seconds,
            best.events_per_sec(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    print!("{json}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    if let Some(limit) = budget {
        if harness_seconds > limit {
            eprintln!("budget exceeded: {harness_seconds:.1}s > {limit:.1}s");
            std::process::exit(1);
        }
        eprintln!("within budget: {harness_seconds:.1}s <= {limit:.1}s");
    }
    for (name, floor) in floor_values(&args) {
        let Some((_, best)) = results.iter().find(|(c, _)| c.name == name) else {
            eprintln!("error: --floor {name} names a case that did not run");
            std::process::exit(2);
        };
        let got = best.events_per_sec();
        if got < floor {
            eprintln!("throughput floor violated: {name} ran {got:.0} ev/s < {floor:.0} ev/s");
            std::process::exit(1);
        }
        eprintln!("above floor: {name} ran {got:.0} ev/s >= {floor:.0} ev/s");
    }
}

//! `simcore` — measures raw simulator event throughput and emits the
//! machine-readable JSON recorded in `BENCH_simcore.json`, giving every
//! PR a comparable perf trajectory for the `netsim` hot path.
//!
//! ```text
//! cargo run --release -p bench --bin simcore            # print JSON
//! cargo run --release -p bench --bin simcore -- --out BENCH_simcore.json
//! ```
//!
//! Each workload runs several times; the best run is reported (minimum
//! wall time — standard practice for throughput benches, since noise is
//! strictly additive).

use bench::simworlds::{
    broadcast_fanout, broadcast_fanout_with, timer_churn, unicast_pingpong, unicast_pingpong_with,
    Telemetry, Throughput,
};

const RUNS: usize = 5;
const SEED: u64 = 1994;

struct Case {
    name: &'static str,
    detail: String,
    best: Throughput,
}

fn best_of(runs: usize, f: impl Fn() -> Throughput) -> Throughput {
    (0..runs)
        .map(|_| f())
        .min_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds))
        .expect("at least one run")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => match args.get(i + 1) {
            Some(p) => Some(p.clone()),
            None => {
                eprintln!("error: --out requires a file path");
                std::process::exit(2);
            }
        },
        None => None,
    };

    let cases = [
        Case {
            name: "broadcast_fanout",
            detail: "32 nodes, 256B payload, 1ms beacons, 2s simulated".into(),
            best: best_of(RUNS, || broadcast_fanout(SEED, 32, 256, 2_000)),
        },
        Case {
            name: "unicast_pingpong",
            detail: "16 pairs, 256B payload, 2s simulated".into(),
            best: best_of(RUNS, || unicast_pingpong(SEED, 16, 256, 2_000)),
        },
        Case {
            name: "timer_churn",
            detail: "32 nodes x 8 timer chains, 2s simulated".into(),
            best: best_of(RUNS, || timer_churn(SEED, 32, 8, 2_000)),
        },
        Case {
            name: "unicast_pingpong_tele",
            detail: "16 pairs, 256B payload, 2s simulated, telemetry on (64Ki ring)".into(),
            best: best_of(RUNS, || {
                unicast_pingpong_with(SEED, 16, 256, 2_000, Telemetry::On { ring: 1 << 16 })
            }),
        },
        Case {
            name: "broadcast_fanout_tele",
            detail: "32 nodes, 256B payload, 1ms beacons, 2s simulated, telemetry on (64Ki ring)"
                .into(),
            best: best_of(RUNS, || {
                broadcast_fanout_with(SEED, 32, 256, 2_000, Telemetry::On { ring: 1 << 16 })
            }),
        },
    ];

    let mut json = String::from("{\n  \"bench\": \"simcore\",\n  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"detail\": \"{}\", \"events\": {}, \
             \"wall_seconds\": {:.6}, \"events_per_sec\": {:.0}}}{}\n",
            c.name,
            c.detail,
            c.best.events,
            c.best.wall_seconds,
            c.best.events_per_sec(),
            if i + 1 < cases.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    print!("{json}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}

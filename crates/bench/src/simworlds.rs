//! Raw-simulator throughput workloads (no IP stack, no protocols): these
//! isolate the `netsim` event loop itself, the substrate every MHRP
//! experiment runs on. Three shapes stress the three hot paths:
//!
//! * **broadcast_fanout** — N nodes on one segment, each periodically
//!   broadcasting a payload; every send fans out to N−1 receivers, so the
//!   run is dominated by payload sharing and receiver collection.
//! * **unicast_pingpong** — node pairs bouncing a frame back and forth
//!   forever; the steady-state per-delivered-frame cost (the path that
//!   must be allocation-free).
//! * **timer_churn** — nodes re-arming timer chains with no frames at
//!   all; isolates queue and dispatch overhead.

use netsim::time::{SimDuration, SimTime};
use netsim::{Ctx, EtherType, Frame, IfaceId, Node, SegmentParams, TimerToken, World};

/// Result of one throughput run.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Events the world processed (frames + timers + admin).
    pub events: u64,
    /// Wall-clock seconds the run took.
    pub wall_seconds: f64,
}

impl Throughput {
    /// Events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.events as f64 / self.wall_seconds
        }
    }
}

/// A node that broadcasts `payload_len` zero bytes every `interval` and
/// counts receptions.
struct Broadcaster {
    interval: SimDuration,
    payload_len: usize,
    received: u64,
}

impl Node for Broadcaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.interval, TimerToken(0));
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
        let f = Frame::broadcast(
            ctx.mac(IfaceId(0)),
            EtherType::Other(0xbeef),
            vec![0u8; self.payload_len],
        );
        ctx.send_frame(IfaceId(0), f);
        ctx.set_timer(self.interval, TimerToken(0));
    }
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _i: IfaceId, _f: &Frame) {
        self.received += 1;
    }
}

/// A node that returns every received frame to its sender. One node of a
/// pair starts the rally on a timer.
struct PingPong {
    serve: bool,
    peer_payload: usize,
    exchanged: u64,
}

impl Node for PingPong {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.serve {
            ctx.set_timer(SimDuration::from_micros(10), TimerToken(0));
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
        let f = Frame::broadcast(
            ctx.mac(IfaceId(0)),
            EtherType::Other(0xb0b0),
            vec![0u8; self.peer_payload],
        );
        ctx.send_frame(IfaceId(0), f);
    }
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        self.exchanged += 1;
        let reply = Frame::new(ctx.mac(iface), frame.src, frame.ethertype, frame.payload.clone());
        ctx.send_frame(iface, reply);
    }
}

/// A node keeping `fanout` timer chains alive forever.
struct TimerSpinner {
    fanout: u64,
    fired: u64,
}

impl Node for TimerSpinner {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for t in 0..self.fanout {
            ctx.set_timer(SimDuration::from_micros(50 + t), TimerToken(t));
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, t: TimerToken) {
        self.fired += 1;
        ctx.set_timer(SimDuration::from_micros(50 + t.0), t);
    }
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _i: IfaceId, _f: &Frame) {}
}

/// Structured-telemetry configuration for a bench world (the overhead
/// being measured by `benches/telemetry_overhead.rs`).
#[derive(Debug, Clone, Copy)]
pub enum Telemetry {
    /// Runtime-disabled (the default; one branch per event).
    Off,
    /// Enabled with a ring of `ring` events.
    On {
        /// Event-ring capacity.
        ring: usize,
    },
}

fn timed(mut world: World, telemetry: Telemetry, sim_duration: SimDuration) -> Throughput {
    if let Telemetry::On { ring } = telemetry {
        world.set_telemetry(true);
        world.set_telemetry_capacity(ring);
    }
    world.start();
    let start = std::time::Instant::now();
    world.run_until(SimTime::ZERO + sim_duration);
    let wall_seconds = start.elapsed().as_secs_f64();
    Throughput { events: world.events_processed(), wall_seconds }
}

/// Broadcast-heavy world: `nodes` broadcasters of `payload_len`-byte
/// frames at 1 ms intervals on one shared segment, run for `sim_ms` of
/// simulated time.
pub fn broadcast_fanout(seed: u64, nodes: usize, payload_len: usize, sim_ms: u64) -> Throughput {
    broadcast_fanout_with(seed, nodes, payload_len, sim_ms, Telemetry::Off)
}

/// [`broadcast_fanout`] with an explicit telemetry configuration.
pub fn broadcast_fanout_with(
    seed: u64,
    nodes: usize,
    payload_len: usize,
    sim_ms: u64,
    telemetry: Telemetry,
) -> Throughput {
    let mut w = World::new(seed);
    let seg = w.add_segment(SegmentParams::default());
    for _ in 0..nodes {
        let id = w.add_node(Broadcaster {
            interval: SimDuration::from_millis(1),
            payload_len,
            received: 0,
        });
        w.add_iface(id, Some(seg));
    }
    timed(w, telemetry, SimDuration::from_millis(sim_ms))
}

/// Unicast-heavy world: `pairs` isolated two-node segments, each rallying
/// one `payload_len`-byte frame continuously, run for `sim_ms`.
pub fn unicast_pingpong(seed: u64, pairs: usize, payload_len: usize, sim_ms: u64) -> Throughput {
    unicast_pingpong_with(seed, pairs, payload_len, sim_ms, Telemetry::Off)
}

/// [`unicast_pingpong`] with an explicit telemetry configuration.
pub fn unicast_pingpong_with(
    seed: u64,
    pairs: usize,
    payload_len: usize,
    sim_ms: u64,
    telemetry: Telemetry,
) -> Throughput {
    let mut w = World::new(seed);
    for _ in 0..pairs {
        let seg = w.add_segment(SegmentParams::default());
        let a = w.add_node(PingPong { serve: true, peer_payload: payload_len, exchanged: 0 });
        w.add_iface(a, Some(seg));
        let b = w.add_node(PingPong { serve: false, peer_payload: payload_len, exchanged: 0 });
        w.add_iface(b, Some(seg));
    }
    timed(w, telemetry, SimDuration::from_millis(sim_ms))
}

/// Timer-only world: `nodes` spinners each keeping `fanout` timer chains
/// alive, run for `sim_ms`. No frames at all.
pub fn timer_churn(seed: u64, nodes: usize, fanout: u64, sim_ms: u64) -> Throughput {
    let mut w = World::new(seed);
    for _ in 0..nodes {
        let id = w.add_node(TimerSpinner { fanout, fired: 0 });
        w.add_iface(id, None);
    }
    timed(w, Telemetry::Off, SimDuration::from_millis(sim_ms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_process_events() {
        assert!(broadcast_fanout(1, 4, 64, 50).events > 0);
        assert!(unicast_pingpong(1, 2, 64, 50).events > 0);
        assert!(timer_churn(1, 2, 4, 50).events > 0);
    }

    #[test]
    fn workloads_are_deterministic_in_event_count() {
        let a = broadcast_fanout(7, 8, 128, 100).events;
        let b = broadcast_fanout(7, 8, 128, 100).events;
        assert_eq!(a, b);
    }
}

//! The Matsushita packet-forwarding protocol (Wada et al.) — baseline
//! four of the paper's §7.
//!
//! A **Packet Forwarding Server** (PFS) on the mobile host's home network
//! intercepts its packets and tunnels them with **IPTP** to the temporary
//! address the host obtained on the visited network. The tunnel adds
//! **40 bytes** (a new 20-byte IP header plus a 20-byte IPTP header, §7).
//!
//! * **Forwarding mode**: everything goes through the PFS — "optimization
//!   of the routing to avoid going through the home network is not
//!   possible".
//! * **Autonomous mode**: the sender caches the temporary address (learned
//!   from a PFS notification) and tunnels directly. Nothing updates that
//!   cache on movement; a stale temporary address surfaces as an
//!   unreachable error and the sender falls back to forwarding mode.

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use ip::icmp::IcmpMessage;
use ip::ipv4::Ipv4Packet;
use ip::udp::UdpDatagram;
use ip::{proto, PacketError, Prefix};
use netsim::time::SimDuration;
use netsim::{Counter, Ctx, Frame, IfaceId, LinkEvent, Node, TimerToken};
use netstack::nodes::Endpoint;
use netstack::route::NextHop;
use netstack::{IpStack, StackEvent};

use crate::common::{Beacon, TempAddrPool, BEACON_PORT, CONTROL_PORT};

const BEACON_TIMER: u64 = 1 << 57;

/// Beacon interval for address-assignment agents.
pub const BEACON_INTERVAL: SimDuration = SimDuration::from_secs(1);

/// IPTP header length; with the new outer IP header the per-packet
/// overhead is §7's 40 bytes.
pub const IPTP_HEADER_LEN: usize = 20;

/// Total per-packet tunnel overhead.
pub const IPTP_OVERHEAD: usize = 20 + IPTP_HEADER_LEN;

/// Control messages of the Matsushita protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IptpMessage {
    /// Mobile → assignment agent: give me a temporary address.
    TempRequest {
        /// The requesting mobile (home address).
        mobile: Ipv4Addr,
    },
    /// Agent → mobile: your temporary address (0 = exhausted).
    TempAssign {
        /// The requesting mobile.
        mobile: Ipv4Addr,
        /// The assigned address.
        temp: Ipv4Addr,
        /// Local prefix length.
        prefix_len: u8,
    },
    /// Mobile → PFS: tunnel my packets to `temp`.
    PfsRegister {
        /// The mobile host.
        mobile: Ipv4Addr,
        /// Its temporary address (0 = back home).
        temp: Ipv4Addr,
    },
    /// PFS → sender: `mobile` is reachable at `temp` (enables autonomous
    /// mode).
    TempNotify {
        /// The mobile host.
        mobile: Ipv4Addr,
        /// Its temporary address.
        temp: Ipv4Addr,
    },
}

impl IptpMessage {
    /// Encodes to control bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(10);
        match self {
            IptpMessage::TempRequest { mobile } => {
                buf.push(1);
                buf.extend_from_slice(&mobile.octets());
            }
            IptpMessage::TempAssign { mobile, temp, prefix_len } => {
                buf.push(2);
                buf.extend_from_slice(&mobile.octets());
                buf.extend_from_slice(&temp.octets());
                buf.push(*prefix_len);
            }
            IptpMessage::PfsRegister { mobile, temp } => {
                buf.push(3);
                buf.extend_from_slice(&mobile.octets());
                buf.extend_from_slice(&temp.octets());
            }
            IptpMessage::TempNotify { mobile, temp } => {
                buf.push(4);
                buf.extend_from_slice(&mobile.octets());
                buf.extend_from_slice(&temp.octets());
            }
        }
        buf
    }

    /// Decodes from control bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError`] on truncation or unknown type.
    pub fn decode(buf: &[u8]) -> Result<IptpMessage, PacketError> {
        let (&ty, rest) = buf.split_first().ok_or(PacketError::Truncated)?;
        let addr = |b: &[u8]| Ipv4Addr::new(b[0], b[1], b[2], b[3]);
        let need = |n: usize| if rest.len() < n { Err(PacketError::Truncated) } else { Ok(()) };
        Ok(match ty {
            1 => {
                need(4)?;
                IptpMessage::TempRequest { mobile: addr(&rest[..4]) }
            }
            2 => {
                need(9)?;
                IptpMessage::TempAssign {
                    mobile: addr(&rest[..4]),
                    temp: addr(&rest[4..8]),
                    prefix_len: rest[8],
                }
            }
            3 => {
                need(8)?;
                IptpMessage::PfsRegister { mobile: addr(&rest[..4]), temp: addr(&rest[4..8]) }
            }
            4 => {
                need(8)?;
                IptpMessage::TempNotify { mobile: addr(&rest[..4]), temp: addr(&rest[4..8]) }
            }
            _ => return Err(PacketError::BadField("iptp message type")),
        })
    }
}

/// Wraps `inner` in an IPTP tunnel (new outer IP header + 20-byte IPTP
/// header: 40 bytes total).
pub fn iptp_encapsulate(
    inner: &Ipv4Packet,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    ident: u16,
) -> Ipv4Packet {
    let mut payload = Vec::with_capacity(IPTP_HEADER_LEN + inner.wire_len());
    payload.extend_from_slice(&inner.dst.octets()); // ultimate destination
    payload.extend_from_slice(&inner.src.octets()); // original source
    payload.push(inner.protocol);
    payload.extend_from_slice(&[0; IPTP_HEADER_LEN - 9]);
    payload.extend_from_slice(&inner.encode());
    // Copy the inner TTL outward so hop counts survive the tunnel leg.
    Ipv4Packet::new(src, dst, proto::IPTP, payload).with_ident(ident).with_ttl(inner.ttl)
}

/// Unwraps an IPTP tunnel.
///
/// # Errors
///
/// Returns [`PacketError`] if the packet is not valid IPTP.
pub fn iptp_decapsulate(outer: &Ipv4Packet) -> Result<Ipv4Packet, PacketError> {
    if outer.protocol != proto::IPTP || outer.payload.len() < IPTP_HEADER_LEN {
        return Err(PacketError::Truncated);
    }
    let mut inner = Ipv4Packet::decode(&outer.payload[IPTP_HEADER_LEN..])?;
    inner.ttl = outer.ttl; // tunnel leg hops count toward the inner TTL
    Ok(inner)
}

/// The Packet Forwarding Server: a home-network router that intercepts
/// and tunnels its mobile hosts' packets.
#[derive(Debug)]
pub struct PfsNode {
    /// The IP engine (forwarding enabled).
    pub stack: IpStack,
    /// The home-network interface.
    pub home_iface: IfaceId,
    /// Whether the PFS notifies senders of temporary addresses, enabling
    /// autonomous mode.
    pub autonomous_notifications: bool,
    bindings: HashMap<Ipv4Addr, Ipv4Addr>,
    notified: HashSet<(Ipv4Addr, Ipv4Addr)>,
    // Per-forwarded-packet counters, cached to keep tunneling free of
    // name hashing.
    forwarded: Counter,
    overhead_bytes: Counter,
}

impl PfsNode {
    /// Creates a PFS on `home_iface`.
    pub fn new(home_iface: IfaceId) -> PfsNode {
        PfsNode {
            stack: IpStack::new(true),
            home_iface,
            autonomous_notifications: true,
            bindings: HashMap::new(),
            notified: HashSet::new(),
            forwarded: Counter::new("iptp.forwarded"),
            overhead_bytes: Counter::new("iptp.overhead_bytes"),
        }
    }

    /// The recorded temporary address for `mobile`.
    pub fn binding(&self, mobile: Ipv4Addr) -> Option<Ipv4Addr> {
        self.bindings.get(&mobile).copied()
    }

    fn self_addr(&self) -> Ipv4Addr {
        self.stack
            .iface_addr(self.home_iface)
            .map(|ia| ia.addr)
            .unwrap_or_else(|| self.stack.primary_addr())
    }
}

impl Node for PfsNode {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            match ev {
                StackEvent::Deliver { pkt, .. } => {
                    if self.stack.is_captured(pkt.dst) && !self.stack.is_local_addr(pkt.dst) {
                        // Forwarding mode: tunnel to the temporary address.
                        let mobile = pkt.dst;
                        let Some(&temp) = self.bindings.get(&mobile) else {
                            ctx.stats().incr("iptp.no_binding");
                            continue;
                        };
                        self.forwarded.incr(ctx.stats());
                        self.overhead_bytes.add(ctx.stats(), IPTP_OVERHEAD as u64);
                        let sender = pkt.src;
                        let ident = self.stack.next_ident();
                        let mut outer = iptp_encapsulate(&pkt, self.self_addr(), temp, ident);
                        // The PFS is a router hop for the tunneled packet.
                        outer.ttl = outer.ttl.saturating_sub(1);
                        self.stack.send(ctx, outer);
                        if self.autonomous_notifications && self.notified.insert((sender, mobile)) {
                            let n = IptpMessage::TempNotify { mobile, temp };
                            self.stack.send_udp(
                                ctx,
                                sender,
                                CONTROL_PORT,
                                CONTROL_PORT,
                                n.encode(),
                            );
                        }
                        continue;
                    }
                    match pkt.protocol {
                        proto::UDP => {
                            let Ok(d) = UdpDatagram::decode(&pkt.payload) else { continue };
                            if d.dst_port != CONTROL_PORT {
                                continue;
                            }
                            if let Ok(IptpMessage::PfsRegister { mobile, temp }) =
                                IptpMessage::decode(&d.payload)
                            {
                                ctx.stats().incr("iptp.registrations");
                                if temp.is_unspecified() {
                                    self.bindings.remove(&mobile);
                                    self.stack.remove_capture(mobile);
                                    self.stack.arp.remove_proxy(self.home_iface, mobile);
                                } else {
                                    self.bindings.insert(mobile, temp);
                                    self.stack.add_capture(mobile);
                                    self.stack.arp.add_proxy(self.home_iface, mobile);
                                    self.stack.send_gratuitous_arp(ctx, self.home_iface, mobile);
                                    // Movement invalidates who-was-notified.
                                    self.notified.retain(|(_, m)| *m != mobile);
                                }
                            }
                        }
                        proto::ICMP => {
                            netstack::nodes::handle_icmp_delivery(&mut self.stack, ctx, &pkt);
                        }
                        _ => {}
                    }
                }
                StackEvent::ForwardCandidate { pkt, .. } => self.stack.forward(ctx, pkt),
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        self.stack.on_timer(ctx, timer);
    }
}

/// An address-assignment agent on a visited network (router + pool).
#[derive(Debug)]
pub struct IptpAgentNode {
    /// The IP engine (forwarding enabled).
    pub stack: IpStack,
    /// The local interface visitors attach to.
    pub local_iface: IfaceId,
    /// The temporary address pool.
    pub pool: TempAddrPool,
}

impl IptpAgentNode {
    /// Creates an agent with `pool` on `local_iface`.
    pub fn new(local_iface: IfaceId, pool: TempAddrPool) -> IptpAgentNode {
        IptpAgentNode { stack: IpStack::new(true), local_iface, pool }
    }

    fn beacon(&mut self, ctx: &mut Ctx<'_>) {
        let Some(ia) = self.stack.iface_addr(self.local_iface) else { return };
        if !ctx.iface_attached(self.local_iface) {
            return;
        }
        let beacon = Beacon { agent: ia.addr, protocol: proto::IPTP };
        let d = UdpDatagram::new(BEACON_PORT, BEACON_PORT, beacon.encode());
        let ident = self.stack.next_ident();
        let pkt = Ipv4Packet::new(ia.addr, Ipv4Addr::BROADCAST, proto::UDP, d.encode())
            .with_ident(ident)
            .with_ttl(1);
        self.stack.send_link_broadcast(ctx, self.local_iface, pkt);
    }
}

impl Node for IptpAgentNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.beacon(ctx);
        ctx.set_timer(BEACON_INTERVAL, TimerToken(BEACON_TIMER));
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            match ev {
                StackEvent::Deliver { pkt, .. } => {
                    if pkt.protocol != proto::UDP {
                        if pkt.protocol == proto::ICMP {
                            netstack::nodes::handle_icmp_delivery(&mut self.stack, ctx, &pkt);
                        }
                        continue;
                    }
                    let Ok(d) = UdpDatagram::decode(&pkt.payload) else { continue };
                    if d.dst_port != CONTROL_PORT {
                        continue;
                    }
                    if let Ok(IptpMessage::TempRequest { mobile }) = IptpMessage::decode(&d.payload)
                    {
                        let temp = self.pool.allocate().unwrap_or(Ipv4Addr::UNSPECIFIED);
                        if temp.is_unspecified() {
                            ctx.stats().incr("iptp.pool_exhausted");
                        }
                        let reply = IptpMessage::TempAssign {
                            mobile,
                            temp,
                            prefix_len: self.pool.prefix().len(),
                        };
                        let dg = UdpDatagram::new(CONTROL_PORT, CONTROL_PORT, reply.encode());
                        let self_addr = self
                            .stack
                            .iface_addr(self.local_iface)
                            .map(|ia| ia.addr)
                            .unwrap_or(Ipv4Addr::UNSPECIFIED);
                        let ident = self.stack.next_ident();
                        let out = Ipv4Packet::new(
                            self_addr,
                            Ipv4Addr::BROADCAST,
                            proto::UDP,
                            dg.encode(),
                        )
                        .with_ident(ident)
                        .with_ttl(1);
                        self.stack.send_link_broadcast(ctx, self.local_iface, out);
                    }
                }
                StackEvent::ForwardCandidate { pkt, .. } => self.stack.forward(ctx, pkt),
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        if self.stack.on_timer(ctx, timer) {
            return;
        }
        if timer.0 & BEACON_TIMER != 0 {
            self.beacon(ctx);
            ctx.set_timer(BEACON_INTERVAL, TimerToken(BEACON_TIMER));
        }
    }

    fn on_link(&mut self, _ctx: &mut Ctx<'_>, iface: IfaceId, event: LinkEvent) {
        if event == LinkEvent::Detached {
            self.stack.arp.clear_iface(iface);
        }
    }
}

/// A Matsushita mobile host.
#[derive(Debug)]
pub struct MatsushitaMobileNode {
    /// The IP engine.
    pub stack: IpStack,
    /// The application layer.
    pub endpoint: Endpoint,
    /// Home address.
    pub home_addr: Ipv4Addr,
    /// Home network prefix.
    pub home_prefix: Prefix,
    /// Default gateway at home.
    pub home_gateway: Ipv4Addr,
    /// The PFS on the home network.
    pub pfs: Ipv4Addr,
    /// Current temporary address, if visiting.
    pub temp: Option<Ipv4Addr>,
    iface: IfaceId,
    awaiting_temp: bool,
    current_agent: Option<Ipv4Addr>,
}

impl MatsushitaMobileNode {
    /// Creates the mobile host (starts at home).
    pub fn new(
        home_addr: Ipv4Addr,
        home_prefix: Prefix,
        home_gateway: Ipv4Addr,
        pfs: Ipv4Addr,
    ) -> MatsushitaMobileNode {
        MatsushitaMobileNode {
            stack: IpStack::new(false),
            endpoint: Endpoint::new(),
            home_addr,
            home_prefix,
            home_gateway,
            pfs,
            temp: None,
            iface: IfaceId(0),
            awaiting_temp: false,
            current_agent: None,
        }
    }

    fn adopt_temp(&mut self, ctx: &mut Ctx<'_>, temp: Ipv4Addr, prefix_len: u8, gateway: Ipv4Addr) {
        ctx.stats().incr("iptp.mobile_moves");
        self.awaiting_temp = false;
        self.temp = Some(temp);
        self.stack.remove_iface_binding(self.iface);
        self.stack.add_iface(self.iface, temp, Prefix::new(temp, prefix_len));
        self.stack.add_capture(self.home_addr);
        self.stack.arp.clear_iface(self.iface);
        self.stack.routes.remove(Prefix::default_route());
        self.stack
            .routes
            .add(Prefix::default_route(), NextHop::Gateway { iface: self.iface, via: gateway });
        let reg = IptpMessage::PfsRegister { mobile: self.home_addr, temp };
        self.stack.send_udp(ctx, self.pfs, CONTROL_PORT, CONTROL_PORT, reg.encode());
    }

    fn deliver(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
        match pkt.protocol {
            proto::IPTP => {
                if let Ok(inner) = iptp_decapsulate(&pkt) {
                    ctx.stats().incr("iptp.mobile_decapsulated");
                    self.endpoint.deliver(&mut self.stack, ctx, &inner);
                }
            }
            proto::UDP => {
                if let Ok(d) = UdpDatagram::decode(&pkt.payload) {
                    if d.dst_port == BEACON_PORT {
                        if let Ok(b) = Beacon::decode(&d.payload) {
                            if b.protocol == proto::IPTP && self.current_agent != Some(b.agent) {
                                self.awaiting_temp = true;
                                self.current_agent = Some(b.agent);
                                let req = IptpMessage::TempRequest { mobile: self.home_addr };
                                let dg = UdpDatagram::new(CONTROL_PORT, CONTROL_PORT, req.encode());
                                let out = Ipv4Packet::new(
                                    self.home_addr,
                                    Ipv4Addr::BROADCAST,
                                    proto::UDP,
                                    dg.encode(),
                                )
                                .with_ttl(1);
                                self.stack.send_link_broadcast(ctx, self.iface, out);
                            }
                        }
                        return;
                    }
                    if d.dst_port == CONTROL_PORT {
                        if let Ok(IptpMessage::TempAssign { mobile, temp, prefix_len }) =
                            IptpMessage::decode(&d.payload)
                        {
                            if mobile == self.home_addr && self.awaiting_temp {
                                if temp.is_unspecified() {
                                    ctx.stats().incr("iptp.temp_denied");
                                } else {
                                    let gw = self.current_agent.unwrap_or(self.home_gateway);
                                    self.adopt_temp(ctx, temp, prefix_len, gw);
                                }
                            }
                        }
                        return;
                    }
                }
                self.endpoint.deliver(&mut self.stack, ctx, &pkt);
            }
            _ => {
                self.endpoint.deliver(&mut self.stack, ctx, &pkt);
            }
        }
    }
}

impl Node for MatsushitaMobileNode {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
        self.stack.add_iface(self.iface, self.home_addr, self.home_prefix);
        self.stack.routes.add(
            Prefix::default_route(),
            NextHop::Gateway { iface: self.iface, via: self.home_gateway },
        );
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            if let StackEvent::Deliver { pkt, .. } = ev {
                self.deliver(ctx, pkt);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        self.stack.on_timer(ctx, timer);
    }

    fn on_link(&mut self, _ctx: &mut Ctx<'_>, iface: IfaceId, event: LinkEvent) {
        if event == LinkEvent::Detached {
            self.stack.arp.clear_iface(iface);
            self.current_agent = None;
        }
    }
}

/// A correspondent host capable of autonomous mode.
#[derive(Debug)]
pub struct MatsushitaHostNode {
    /// The IP engine.
    pub stack: IpStack,
    /// The application layer.
    pub endpoint: Endpoint,
    /// Autonomous-mode cache: mobile home address → temporary address.
    bindings: HashMap<Ipv4Addr, Ipv4Addr>,
}

impl MatsushitaHostNode {
    /// Creates the correspondent host.
    pub fn new() -> MatsushitaHostNode {
        MatsushitaHostNode {
            stack: IpStack::new(false),
            endpoint: Endpoint::new(),
            bindings: HashMap::new(),
        }
    }

    /// The cached temporary address for `mobile` (tests/metrics).
    pub fn cached_temp(&self, mobile: Ipv4Addr) -> Option<Ipv4Addr> {
        self.bindings.get(&mobile).copied()
    }

    /// Sends `pkt`; tunnels directly (autonomous mode) when a temporary
    /// address is cached.
    pub fn send_data(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
        if let Some(&temp) = self.bindings.get(&pkt.dst) {
            ctx.stats().incr("iptp.autonomous_sent");
            ctx.stats().add("iptp.overhead_bytes", IPTP_OVERHEAD as u64);
            let src = pkt.src;
            let ident = self.stack.next_ident();
            let outer = iptp_encapsulate(&pkt, src, temp, ident);
            self.stack.send(ctx, outer);
        } else {
            self.stack.send(ctx, pkt);
        }
    }

    /// Convenience ping.
    pub fn ping(&mut self, ctx: &mut Ctx<'_>, dst: Ipv4Addr) {
        let src = self.stack.pick_src(dst).expect("host has an address");
        let (_seq, pkt) = self.endpoint.make_ping(ctx.now(), src, dst);
        self.send_data(ctx, pkt);
    }

    /// Convenience UDP send.
    pub fn send_udp(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) {
        let src = self.stack.pick_src(dst).expect("host has an address");
        let pkt = Endpoint::make_udp(src, dst, src_port, dst_port, payload);
        self.send_data(ctx, pkt);
    }
}

impl Default for MatsushitaHostNode {
    fn default() -> MatsushitaHostNode {
        MatsushitaHostNode::new()
    }
}

impl Node for MatsushitaHostNode {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            let StackEvent::Deliver { pkt, .. } = ev else { continue };
            match pkt.protocol {
                proto::UDP => {
                    if let Ok(d) = UdpDatagram::decode(&pkt.payload) {
                        if d.dst_port == CONTROL_PORT {
                            if let Ok(IptpMessage::TempNotify { mobile, temp }) =
                                IptpMessage::decode(&d.payload)
                            {
                                ctx.stats().incr("iptp.autonomous_enabled");
                                self.bindings.insert(mobile, temp);
                            }
                            continue;
                        }
                    }
                    self.endpoint.deliver(&mut self.stack, ctx, &pkt);
                }
                proto::ICMP => {
                    // Unreachable about a tunneled packet: the temporary
                    // address went stale — fall back to forwarding mode.
                    if let Ok(msg) = IcmpMessage::decode(&pkt.payload) {
                        if msg.is_error() {
                            if let Some(original) = msg.original() {
                                if original.len() >= 20 + 8 && original[9] == proto::IPTP {
                                    let hl = usize::from(original[0] & 0xf) * 4;
                                    if original.len() >= hl + 4 {
                                        let b = &original[hl..hl + 4];
                                        let mobile = Ipv4Addr::new(b[0], b[1], b[2], b[3]);
                                        ctx.stats().incr("iptp.fallback_to_forwarding");
                                        self.bindings.remove(&mobile);
                                        continue;
                                    }
                                }
                            }
                        }
                    }
                    self.endpoint.deliver(&mut self.stack, ctx, &pkt);
                }
                _ => {
                    self.endpoint.deliver(&mut self.stack, ctx, &pkt);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        self.stack.on_timer(ctx, timer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    #[test]
    fn messages_round_trip() {
        for m in [
            IptpMessage::TempRequest { mobile: a(1) },
            IptpMessage::TempAssign { mobile: a(1), temp: a(9), prefix_len: 24 },
            IptpMessage::PfsRegister { mobile: a(1), temp: a(9) },
            IptpMessage::PfsRegister { mobile: a(1), temp: Ipv4Addr::UNSPECIFIED },
            IptpMessage::TempNotify { mobile: a(1), temp: a(9) },
        ] {
            assert_eq!(IptpMessage::decode(&m.encode()).unwrap(), m);
        }
        assert!(IptpMessage::decode(&[42]).is_err());
    }

    #[test]
    fn iptp_overhead_is_40_bytes() {
        // §7: "The overhead added to each packet with their protocol is
        // 40 bytes."
        let inner = Ipv4Packet::new(a(1), a(7), proto::UDP, vec![0; 16]);
        let outer = iptp_encapsulate(&inner, a(100), a(101), 1);
        assert_eq!(outer.wire_len(), inner.wire_len() + IPTP_OVERHEAD);
        assert_eq!(IPTP_OVERHEAD, 40);
        assert_eq!(iptp_decapsulate(&outer).unwrap(), inner);
    }

    #[test]
    fn iptp_decap_rejects_garbage() {
        let not_iptp = Ipv4Packet::new(a(1), a(2), proto::UDP, vec![0; 30]);
        assert!(iptp_decapsulate(&not_iptp).is_err());
    }
}

//! The Columbia Mobile*IP protocol (Ioannidis et al., SIGCOMM '91) —
//! baseline two of the paper's §7.
//!
//! A campus is a set of networks, each served by a **Mobile Support
//! Router** (MSR). Every MSR advertises reachability for *all* of the
//! campus's mobile hosts (modeled here as address capture at each mobile
//! host's home MSR). Packets for a mobile host reach its home MSR, which
//! finds the MSR currently serving the host — **multicasting a query to
//! every other MSR on a cache miss** (the control-traffic cost §7 cites) —
//! and tunnels the packet with IP-in-IP, adding **24 bytes** (20-byte
//! outer IP header + the 4-byte campus shim).
//!
//! Outside the home campus ("popup" mode) the mobile host must obtain a
//! **temporary IP address** and all of its traffic is still anchored
//! through a home MSR: §7's "no provision for optimizing routing ...
//! outside its home campus".

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use ip::ipv4::Ipv4Packet;
use ip::udp::UdpDatagram;
use ip::{proto, PacketError, Prefix};
use netsim::time::{SimDuration, SimTime};
use netsim::{Counter, Ctx, Frame, IfaceId, LinkEvent, Node, TeleEventKind, TimerToken};
use netstack::nodes::Endpoint;
use netstack::route::NextHop;
use netstack::{IpStack, StackEvent};

use crate::common::{Beacon, BEACON_PORT, CONTROL_PORT};

const BEACON_TIMER: u64 = 1 << 57;

/// Beacon interval for MSRs.
pub const BEACON_INTERVAL: SimDuration = SimDuration::from_secs(1);

/// Visitor lease: the mobile host re-registers on every beacon; an MSR
/// whose visitor stops refreshing (it left the cell) forgets it — the
/// simulator's stand-in for the wireless layer's link-loss signal.
pub const VISITOR_LEASE: SimDuration = SimDuration::from_secs(3);

/// The 4-byte campus shim inside each IPIP tunnel (makes the measured
/// overhead exactly the 24 bytes §7 reports).
pub const IPIP_SHIM_LEN: usize = 4;

/// Total per-packet tunnel overhead: outer IP header + shim.
pub const IPIP_OVERHEAD: usize = 20 + IPIP_SHIM_LEN;

/// Control messages of the Columbia protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumbiaMessage {
    /// Mobile → local MSR: I am on your network.
    MsrRegister {
        /// The registering mobile host.
        mobile: Ipv4Addr,
    },
    /// MSR → every peer MSR: who serves `mobile`? (the §7 multicast)
    MsrQuery {
        /// The mobile host being located.
        mobile: Ipv4Addr,
    },
    /// Serving MSR → querying MSR: I do.
    MsrQueryReply {
        /// The mobile host.
        mobile: Ipv4Addr,
        /// The serving MSR.
        msr: Ipv4Addr,
    },
    /// Mobile (outside the campus) → home MSR: tunnel to my temporary
    /// address.
    PopupRegister {
        /// The mobile host (home address).
        mobile: Ipv4Addr,
        /// Its temporary address on the visited network.
        temp: Ipv4Addr,
    },
}

impl ColumbiaMessage {
    /// Encodes to control bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(9);
        match self {
            ColumbiaMessage::MsrRegister { mobile } => {
                buf.push(1);
                buf.extend_from_slice(&mobile.octets());
            }
            ColumbiaMessage::MsrQuery { mobile } => {
                buf.push(2);
                buf.extend_from_slice(&mobile.octets());
            }
            ColumbiaMessage::MsrQueryReply { mobile, msr } => {
                buf.push(3);
                buf.extend_from_slice(&mobile.octets());
                buf.extend_from_slice(&msr.octets());
            }
            ColumbiaMessage::PopupRegister { mobile, temp } => {
                buf.push(4);
                buf.extend_from_slice(&mobile.octets());
                buf.extend_from_slice(&temp.octets());
            }
        }
        buf
    }

    /// Decodes from control bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError`] on truncation or unknown type.
    pub fn decode(buf: &[u8]) -> Result<ColumbiaMessage, PacketError> {
        let (&ty, rest) = buf.split_first().ok_or(PacketError::Truncated)?;
        let addr = |b: &[u8]| Ipv4Addr::new(b[0], b[1], b[2], b[3]);
        let need = |n: usize| if rest.len() < n { Err(PacketError::Truncated) } else { Ok(()) };
        Ok(match ty {
            1 => {
                need(4)?;
                ColumbiaMessage::MsrRegister { mobile: addr(&rest[..4]) }
            }
            2 => {
                need(4)?;
                ColumbiaMessage::MsrQuery { mobile: addr(&rest[..4]) }
            }
            3 => {
                need(8)?;
                ColumbiaMessage::MsrQueryReply { mobile: addr(&rest[..4]), msr: addr(&rest[4..8]) }
            }
            4 => {
                need(8)?;
                ColumbiaMessage::PopupRegister { mobile: addr(&rest[..4]), temp: addr(&rest[4..8]) }
            }
            _ => return Err(PacketError::BadField("columbia message type")),
        })
    }
}

/// Wraps `inner` in an IP-in-IP tunnel from `src` to `dst` (24 bytes).
pub fn ipip_encapsulate(
    inner: &Ipv4Packet,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    ident: u16,
) -> Ipv4Packet {
    let mut payload = Vec::with_capacity(IPIP_SHIM_LEN + inner.wire_len());
    payload.extend_from_slice(&[0x4d, 0x49, 0x50, 0x00]); // "MIP\0" campus shim
    payload.extend_from_slice(&inner.encode());
    // Copy the inner TTL outward so hop counts survive the tunnel leg.
    Ipv4Packet::new(src, dst, proto::IPIP, payload).with_ident(ident).with_ttl(inner.ttl)
}

/// Unwraps an IP-in-IP tunnel.
///
/// # Errors
///
/// Returns [`PacketError`] if the packet is not valid IPIP.
pub fn ipip_decapsulate(outer: &Ipv4Packet) -> Result<Ipv4Packet, PacketError> {
    if outer.protocol != proto::IPIP || outer.payload.len() < IPIP_SHIM_LEN {
        return Err(PacketError::Truncated);
    }
    let mut inner = Ipv4Packet::decode(&outer.payload[IPIP_SHIM_LEN..])?;
    inner.ttl = outer.ttl; // tunnel leg hops count toward the inner TTL
    Ok(inner)
}

/// A Mobile Support Router.
#[derive(Debug)]
pub struct MsrNode {
    /// The IP engine (forwarding enabled).
    pub stack: IpStack,
    /// The interface mobile hosts connect on.
    pub local_iface: IfaceId,
    /// Addresses of every *other* MSR in the campus (the multicast group).
    pub peers: Vec<Ipv4Addr>,
    /// Campus mobile hosts whose home network this MSR serves (their
    /// addresses are captured here: "MSRs advertise reachability to all
    /// hosts on the home network, whether or not currently connected").
    pub home_mobiles: HashSet<Ipv4Addr>,
    visitors: HashMap<Ipv4Addr, SimTime>,
    msr_cache: HashMap<Ipv4Addr, Ipv4Addr>,
    popup_bindings: HashMap<Ipv4Addr, Ipv4Addr>,
    pending: HashMap<Ipv4Addr, Vec<Ipv4Packet>>,
    // Per-data-packet counters, cached to keep tunneling free of name
    // hashing.
    tunneled: Counter,
    overhead_bytes: Counter,
}

impl MsrNode {
    /// Creates an MSR serving `local_iface`.
    pub fn new(local_iface: IfaceId) -> MsrNode {
        MsrNode {
            stack: IpStack::new(true),
            local_iface,
            peers: Vec::new(),
            home_mobiles: HashSet::new(),
            visitors: HashMap::new(),
            msr_cache: HashMap::new(),
            popup_bindings: HashMap::new(),
            pending: HashMap::new(),
            tunneled: Counter::new("columbia.tunneled"),
            overhead_bytes: Counter::new("columbia.overhead_bytes"),
        }
    }

    /// Registers `mobile` as homed here (captures its address).
    pub fn add_home_mobile(&mut self, mobile: Ipv4Addr) {
        self.home_mobiles.insert(mobile);
        self.stack.add_capture(mobile);
        self.stack.arp.add_proxy(self.local_iface, mobile);
    }

    /// Whether `mobile` currently visits this MSR (lease unexpired).
    pub fn has_visitor(&self, mobile: Ipv4Addr, now: SimTime) -> bool {
        self.visitors.get(&mobile).is_some_and(|&t| now.since(t) < VISITOR_LEASE)
    }

    /// Cache size (state metric, E07).
    pub fn cache_len(&self) -> usize {
        self.msr_cache.len()
    }

    fn self_addr(&self) -> Ipv4Addr {
        self.stack
            .iface_addr(self.local_iface)
            .map(|ia| ia.addr)
            .unwrap_or_else(|| self.stack.primary_addr())
    }

    fn tunnel_to(&mut self, ctx: &mut Ctx<'_>, target: Ipv4Addr, inner: &Ipv4Packet) {
        self.tunneled.incr(ctx.stats());
        self.overhead_bytes.add(ctx.stats(), IPIP_OVERHEAD as u64);
        ctx.tele_event(TeleEventKind::Encap { by_sender: false });
        let ident = self.stack.next_ident();
        let mut outer = ipip_encapsulate(inner, self.self_addr(), target, ident);
        // The MSR is a router hop for the tunneled packet.
        outer.ttl = outer.ttl.saturating_sub(1);
        self.stack.send(ctx, outer);
    }

    fn locate_and_tunnel(&mut self, ctx: &mut Ctx<'_>, mobile: Ipv4Addr, inner: Ipv4Packet) {
        if self.has_visitor(mobile, ctx.now()) {
            self.stack.send_direct(ctx, self.local_iface, inner);
            return;
        }
        if let Some(&temp) = self.popup_bindings.get(&mobile) {
            self.tunnel_to(ctx, temp, &inner);
            return;
        }
        if let Some(&msr) = self.msr_cache.get(&mobile) {
            self.tunnel_to(ctx, msr, &inner);
            return;
        }
        // Cache miss: multicast a query to every peer MSR — the §7
        // control-traffic cost (one message per peer, per miss).
        ctx.stats().incr("columbia.query_rounds");
        ctx.stats().add("columbia.query_messages", self.peers.len() as u64);
        self.pending.entry(mobile).or_default().push(inner);
        let q = ColumbiaMessage::MsrQuery { mobile };
        let peers = self.peers.clone();
        for peer in peers {
            self.stack.send_udp(ctx, peer, CONTROL_PORT, CONTROL_PORT, q.encode());
        }
    }

    fn beacon(&mut self, ctx: &mut Ctx<'_>) {
        let Some(ia) = self.stack.iface_addr(self.local_iface) else { return };
        if !ctx.iface_attached(self.local_iface) {
            return;
        }
        let beacon = Beacon { agent: ia.addr, protocol: proto::IPIP };
        let d = UdpDatagram::new(BEACON_PORT, BEACON_PORT, beacon.encode());
        let ident = self.stack.next_ident();
        let pkt = Ipv4Packet::new(ia.addr, Ipv4Addr::BROADCAST, proto::UDP, d.encode())
            .with_ident(ident)
            .with_ttl(1);
        self.stack.send_link_broadcast(ctx, self.local_iface, pkt);
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_>, src: Ipv4Addr, msg: ColumbiaMessage) {
        match msg {
            ColumbiaMessage::MsrRegister { mobile } => {
                ctx.stats().incr("columbia.registrations");
                self.visitors.insert(mobile, ctx.now());
                self.msr_cache.remove(&mobile);
                for queued in self.pending.remove(&mobile).unwrap_or_default() {
                    self.stack.send_direct(ctx, self.local_iface, queued);
                }
            }
            ColumbiaMessage::MsrQuery { mobile } => {
                if self.has_visitor(mobile, ctx.now()) {
                    let reply = ColumbiaMessage::MsrQueryReply { mobile, msr: self.self_addr() };
                    self.stack.send_udp(ctx, src, CONTROL_PORT, CONTROL_PORT, reply.encode());
                }
            }
            ColumbiaMessage::MsrQueryReply { mobile, msr } => {
                self.msr_cache.insert(mobile, msr);
                for queued in self.pending.remove(&mobile).unwrap_or_default() {
                    self.tunnel_to(ctx, msr, &queued);
                }
            }
            ColumbiaMessage::PopupRegister { mobile, temp } => {
                ctx.stats().incr("columbia.popup_registrations");
                self.visitors.remove(&mobile);
                self.popup_bindings.insert(mobile, temp);
            }
        }
    }
}

impl Node for MsrNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.beacon(ctx);
        ctx.set_timer(BEACON_INTERVAL, TimerToken(BEACON_TIMER));
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            match ev {
                StackEvent::Deliver { pkt, .. } => {
                    // Captured home-mobile traffic.
                    if self.stack.is_captured(pkt.dst) && !self.stack.is_local_addr(pkt.dst) {
                        let mobile = pkt.dst;
                        self.locate_and_tunnel(ctx, mobile, pkt);
                        continue;
                    }
                    match pkt.protocol {
                        proto::IPIP => {
                            let Ok(inner) = ipip_decapsulate(&pkt) else { continue };
                            ctx.tele_event(TeleEventKind::Decap);
                            let mobile = inner.dst;
                            if self.has_visitor(mobile, ctx.now()) {
                                ctx.stats().incr("columbia.delivered");
                                self.stack.send_direct(ctx, self.local_iface, inner);
                            } else {
                                // Stale cache at the tunneling MSR: locate
                                // afresh from here.
                                ctx.stats().incr("columbia.stale_tunnel");
                                self.locate_and_tunnel(ctx, mobile, inner);
                            }
                        }
                        proto::UDP => {
                            let Ok(d) = UdpDatagram::decode(&pkt.payload) else { continue };
                            if d.dst_port == CONTROL_PORT {
                                if let Ok(msg) = ColumbiaMessage::decode(&d.payload) {
                                    self.on_control(ctx, pkt.src, msg);
                                }
                            }
                        }
                        proto::ICMP => {
                            netstack::nodes::handle_icmp_delivery(&mut self.stack, ctx, &pkt);
                        }
                        _ => {}
                    }
                }
                StackEvent::ForwardCandidate { pkt, .. } => self.stack.forward(ctx, pkt),
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        if self.stack.on_timer(ctx, timer) {
            return;
        }
        if timer.0 & BEACON_TIMER != 0 {
            self.beacon(ctx);
            ctx.set_timer(BEACON_INTERVAL, TimerToken(BEACON_TIMER));
        }
    }

    fn on_link(&mut self, _ctx: &mut Ctx<'_>, iface: IfaceId, event: LinkEvent) {
        if event == LinkEvent::Detached {
            self.stack.arp.clear_iface(iface);
        }
    }
}

/// A Columbia mobile host.
#[derive(Debug)]
pub struct ColumbiaMobileNode {
    /// The IP engine.
    pub stack: IpStack,
    /// The application layer.
    pub endpoint: Endpoint,
    /// Home (campus) address.
    pub home_addr: Ipv4Addr,
    /// The home network prefix.
    pub home_prefix: Prefix,
    /// The home MSR (anchor for popup mode).
    pub home_msr: Ipv4Addr,
    /// Current serving MSR inside the campus, if any.
    pub current_msr: Option<Ipv4Addr>,
    /// Temporary address while outside the campus, if any.
    pub temp_addr: Option<Ipv4Addr>,
    iface: IfaceId,
}

impl ColumbiaMobileNode {
    /// Creates the mobile host (starts at home; its home MSR is also its
    /// first serving MSR).
    pub fn new(home_addr: Ipv4Addr, home_prefix: Prefix, home_msr: Ipv4Addr) -> ColumbiaMobileNode {
        ColumbiaMobileNode {
            stack: IpStack::new(false),
            endpoint: Endpoint::new(),
            home_addr,
            home_prefix,
            home_msr,
            current_msr: None,
            temp_addr: None,
            iface: IfaceId(0),
        }
    }

    fn attach_via_msr(&mut self, ctx: &mut Ctx<'_>, msr: Ipv4Addr) {
        if self.current_msr == Some(msr) {
            // Lease refresh: re-register with the same MSR each beacon.
            let reg = ColumbiaMessage::MsrRegister { mobile: self.home_addr };
            let d = UdpDatagram::new(CONTROL_PORT, CONTROL_PORT, reg.encode());
            let ident = self.stack.next_ident();
            let pkt =
                Ipv4Packet::new(self.home_addr, msr, proto::UDP, d.encode()).with_ident(ident);
            self.stack.send_direct(ctx, self.iface, pkt);
            return;
        }
        self.temp_addr = None;
        self.stack.remove_capture(self.home_addr);
        self.stack.remove_iface_binding(self.iface);
        self.stack.add_iface(self.iface, self.home_addr, Prefix::host(self.home_addr));
        self.stack.arp.clear_iface(self.iface);
        self.stack.routes.remove(Prefix::default_route());
        self.stack
            .routes
            .add(Prefix::default_route(), NextHop::Gateway { iface: self.iface, via: msr });
        self.current_msr = Some(msr);
        ctx.stats().incr("columbia.mobile_moves");
        let reg = ColumbiaMessage::MsrRegister { mobile: self.home_addr };
        let d = UdpDatagram::new(CONTROL_PORT, CONTROL_PORT, reg.encode());
        let ident = self.stack.next_ident();
        let pkt = Ipv4Packet::new(self.home_addr, msr, proto::UDP, d.encode()).with_ident(ident);
        self.stack.send_direct(ctx, self.iface, pkt);
    }

    /// Enters popup mode on a network outside the campus: binds `temp`,
    /// routes via `gateway`, and registers the temporary address with the
    /// home MSR.
    pub fn popup(
        &mut self,
        ctx: &mut Ctx<'_>,
        temp: Ipv4Addr,
        temp_prefix: Prefix,
        gateway: Ipv4Addr,
    ) {
        self.current_msr = None;
        self.temp_addr = Some(temp);
        self.stack.remove_iface_binding(self.iface);
        self.stack.add_iface(self.iface, temp, temp_prefix);
        self.stack.add_capture(self.home_addr);
        self.stack.arp.clear_iface(self.iface);
        self.stack.routes.remove(Prefix::default_route());
        self.stack
            .routes
            .add(Prefix::default_route(), NextHop::Gateway { iface: self.iface, via: gateway });
        ctx.stats().incr("columbia.popups");
        let reg = ColumbiaMessage::PopupRegister { mobile: self.home_addr, temp };
        self.stack.send_udp(ctx, self.home_msr, CONTROL_PORT, CONTROL_PORT, reg.encode());
    }

    /// Pings `dst` (plain IP — Columbia senders never tunnel).
    pub fn ping(&mut self, ctx: &mut Ctx<'_>, dst: Ipv4Addr) {
        let (_seq, pkt) = self.endpoint.make_ping(ctx.now(), self.home_addr, dst);
        self.stack.send(ctx, pkt);
    }

    /// Sends UDP from the home address.
    pub fn send_udp(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) {
        let pkt = Endpoint::make_udp(self.home_addr, dst, src_port, dst_port, payload);
        self.stack.send(ctx, pkt);
    }
}

impl Node for ColumbiaMobileNode {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
        self.stack.add_iface(self.iface, self.home_addr, self.home_prefix);
        self.stack.routes.add(
            Prefix::default_route(),
            NextHop::Gateway { iface: self.iface, via: self.home_msr },
        );
        // The first beacon from the home MSR triggers registration (even
        // at home the MSR must know the host is present, since it always
        // advertises reachability for it).
        self.current_msr = None;
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            let StackEvent::Deliver { pkt, .. } = ev else { continue };
            match pkt.protocol {
                proto::IPIP => {
                    // Popup mode: tunnel terminates at our temp address.
                    if let Ok(inner) = ipip_decapsulate(&pkt) {
                        self.endpoint.deliver(&mut self.stack, ctx, &inner);
                    }
                }
                proto::UDP => {
                    if let Ok(d) = UdpDatagram::decode(&pkt.payload) {
                        if d.dst_port == BEACON_PORT {
                            if let Ok(b) = Beacon::decode(&d.payload) {
                                if b.protocol == proto::IPIP {
                                    self.attach_via_msr(ctx, b.agent);
                                }
                            }
                            continue;
                        }
                    }
                    self.endpoint.deliver(&mut self.stack, ctx, &pkt);
                }
                _ => {
                    self.endpoint.deliver(&mut self.stack, ctx, &pkt);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        self.stack.on_timer(ctx, timer);
    }

    fn on_link(&mut self, _ctx: &mut Ctx<'_>, iface: IfaceId, event: LinkEvent) {
        if event == LinkEvent::Detached {
            self.stack.arp.clear_iface(iface);
            self.current_msr = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    #[test]
    fn messages_round_trip() {
        for m in [
            ColumbiaMessage::MsrRegister { mobile: a(1) },
            ColumbiaMessage::MsrQuery { mobile: a(1) },
            ColumbiaMessage::MsrQueryReply { mobile: a(1), msr: a(2) },
            ColumbiaMessage::PopupRegister { mobile: a(1), temp: a(3) },
        ] {
            assert_eq!(ColumbiaMessage::decode(&m.encode()).unwrap(), m);
        }
        assert!(ColumbiaMessage::decode(&[99]).is_err());
    }

    #[test]
    fn ipip_overhead_is_24_bytes() {
        // §7: "Their protocol adds 24 bytes of overhead to each packet."
        let inner = Ipv4Packet::new(a(1), a(7), proto::UDP, vec![0; 32]);
        let outer = ipip_encapsulate(&inner, a(100), a(101), 1);
        assert_eq!(outer.wire_len(), inner.wire_len() + IPIP_OVERHEAD);
        assert_eq!(IPIP_OVERHEAD, 24);
        let back = ipip_decapsulate(&outer).unwrap();
        assert_eq!(back, inner);
    }

    #[test]
    fn ipip_decap_rejects_garbage() {
        let not_ipip = Ipv4Packet::new(a(1), a(2), proto::UDP, vec![0; 8]);
        assert!(ipip_decapsulate(&not_ipip).is_err());
        let short = Ipv4Packet::new(a(1), a(2), proto::IPIP, vec![0; 2]);
        assert!(ipip_decapsulate(&short).is_err());
    }
}

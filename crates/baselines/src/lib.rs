//! # Baseline mobile-host protocols (paper §7)
//!
//! Faithful behavioural models of the five prior protocols the paper
//! compares MHRP against, each implemented on the same `netsim`/`netstack`
//! substrate so the §7 comparison (per-packet overhead, routing paths,
//! control-message load, failure behaviour) can be *measured* rather than
//! quoted:
//!
//! | module | protocol | per-packet overhead (§7) | scaling limiter (§7) |
//! |---|---|---|---|
//! | [`sunshine_postel`] | Sunshine & Postel forwarders (IEN 135) | 8-byte source-route shim | the global database |
//! | [`columbia`] | Columbia Mobile*IP (IPIP / MSR) | 24 bytes | MSR multicast search, temp addresses |
//! | [`sony_vip`] | Sony Virtual IP | 28 bytes on *every* packet | flooding invalidation, temp addresses |
//! | [`matsushita`] | Matsushita PFS / IPTP | 40 bytes | no route optimization; temp addresses |
//! | [`ibm_lsrr`] | IBM loose source routing | 8 (+8 from the mobile) bytes | router slow path, broken LSRR implementations |
//!
//! Modeling substitutions are listed in the workspace DESIGN.md.

pub mod columbia;
pub mod common;
pub mod ibm_lsrr;
pub mod matsushita;
pub mod sony_vip;
pub mod sunshine_postel;

//! Infrastructure shared by the baseline protocols: agent beacons,
//! temporary-address pools, and the protocol numbers / ports they use.
//!
//! Every baseline needs two things MHRP also needs but solves within
//! itself: a way for mobile hosts to *find* the local support node
//! (forwarder / MSR / PFS / base station), and — for the Columbia, Sony
//! and Matsushita protocols — a **temporary IP address** on the visited
//! network. The paper's §7 scalability critique of those protocols rests
//! partly on that temporary-address requirement, so the pool is explicit
//! and exhaustible here.

use std::net::Ipv4Addr;

use ip::{PacketError, Prefix};

/// UDP port for baseline agent beacons (like MHRP's advertisements).
pub const BEACON_PORT: u16 = 9000;

/// UDP port for baseline control messages (registrations, queries).
pub const CONTROL_PORT: u16 = 9001;

/// IP protocol number for the Sunshine-Postel source-route shim.
pub const PROTO_SPFWD: u8 = 153;

/// A periodic beacon from a baseline support node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Beacon {
    /// The advertising support node's address on this network.
    pub agent: Ipv4Addr,
    /// Protocol discriminator (so co-located experiments don't confuse
    /// each other's agents).
    pub protocol: u8,
}

impl Beacon {
    /// Encodes to 8 bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8);
        buf.push(self.protocol);
        buf.extend_from_slice(&[0; 3]);
        buf.extend_from_slice(&self.agent.octets());
        buf
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError::Truncated`] if fewer than 8 bytes are given.
    pub fn decode(buf: &[u8]) -> Result<Beacon, PacketError> {
        if buf.len() < 8 {
            return Err(PacketError::Truncated);
        }
        Ok(Beacon { protocol: buf[0], agent: Ipv4Addr::new(buf[4], buf[5], buf[6], buf[7]) })
    }
}

/// A finite pool of temporary addresses on one network.
///
/// The Columbia, Sony and Matsushita protocols require each visiting
/// mobile host to obtain one; §7 argues this "places a limit on their
/// scalability, since the available IP address space within any foreign
/// network number is limited". [`TempAddrPool::exhausted`] makes that
/// limit measurable (experiment E07).
#[derive(Debug)]
pub struct TempAddrPool {
    prefix: Prefix,
    next: u32,
    limit: u32,
    allocated: Vec<Ipv4Addr>,
}

impl TempAddrPool {
    /// Creates a pool of `limit` addresses inside `prefix`, starting at
    /// host number `first`.
    pub fn new(prefix: Prefix, first: u32, limit: u32) -> TempAddrPool {
        TempAddrPool { prefix, next: first, limit, allocated: Vec::new() }
    }

    /// Allocates the next temporary address, or `None` when exhausted.
    pub fn allocate(&mut self) -> Option<Ipv4Addr> {
        if self.allocated.len() as u32 >= self.limit {
            return None;
        }
        let addr = self.prefix.host_at(self.next);
        self.next += 1;
        self.allocated.push(addr);
        Some(addr)
    }

    /// Returns `addr` to the pool.
    pub fn release(&mut self, addr: Ipv4Addr) {
        self.allocated.retain(|a| *a != addr);
    }

    /// Whether the pool has no more addresses.
    pub fn exhausted(&self) -> bool {
        self.allocated.len() as u32 >= self.limit
    }

    /// Number of outstanding allocations.
    pub fn in_use(&self) -> usize {
        self.allocated.len()
    }

    /// The pool's network prefix.
    pub fn prefix(&self) -> Prefix {
        self.prefix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beacon_round_trips() {
        let b = Beacon { agent: Ipv4Addr::new(10, 4, 0, 1), protocol: 7 };
        assert_eq!(Beacon::decode(&b.encode()).unwrap(), b);
        assert_eq!(b.encode().len(), 8);
        assert!(Beacon::decode(&[0; 4]).is_err());
    }

    #[test]
    fn pool_allocates_releases_and_exhausts() {
        let prefix: Prefix = "10.4.0.0/24".parse().unwrap();
        let mut pool = TempAddrPool::new(prefix, 100, 2);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        assert_ne!(a, b);
        assert!(prefix.contains(a) && prefix.contains(b));
        assert!(pool.exhausted());
        assert_eq!(pool.allocate(), None);
        pool.release(a);
        assert!(!pool.exhausted());
        assert!(pool.allocate().is_some());
        assert_eq!(pool.in_use(), 2);
    }
}

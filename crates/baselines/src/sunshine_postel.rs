//! The Sunshine–Postel forwarder protocol (IEN 135, 1980) — the earliest
//! baseline in the paper's §7.
//!
//! * A **global directory** records each mobile host's current forwarder;
//!   every sender queries it before transmitting — the global database the
//!   paper names as the protocol's scalability limit.
//! * **Forwarders** deliver packets locally to visiting mobile hosts;
//!   packets reach them inside a source-route-like 8-byte shim.
//! * After a move, the **old** forwarder answers arriving packets with
//!   *host unreachable*; the sender must re-query the directory and
//!   retransmit — the recovery story §7 contrasts with MHRP's in-band
//!   updates.
//!
//! Modeling notes (documented in DESIGN.md): forwarder visitor entries are
//! leases refreshed by the mobile host each beacon period, so a departed
//! host's entry expires promptly and the documented host-unreachable
//! behaviour is observable; senders keep a small retransmit buffer because
//! IEN 135's senders retransmit from their own transport state.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use ip::icmp::IcmpMessage;
use ip::ipv4::Ipv4Packet;
use ip::udp::UdpDatagram;
use ip::{proto, PacketError, Prefix};
use netsim::time::{SimDuration, SimTime};
use netsim::{Counter, Ctx, Frame, IfaceId, LinkEvent, Node, TimerToken};
use netstack::nodes::Endpoint;
use netstack::route::NextHop;
use netstack::{IpStack, StackEvent};

use crate::common::{Beacon, BEACON_PORT, CONTROL_PORT, PROTO_SPFWD};

const BEACON_TIMER: u64 = 1 << 57;
const QUERY_TIMER: u64 = 1 << 56;

/// Beacon interval for forwarders.
pub const BEACON_INTERVAL: SimDuration = SimDuration::from_secs(1);

/// Visitor lease: refreshed by each beacon-triggered re-registration.
pub const VISITOR_LEASE: SimDuration = SimDuration::from_secs(3);

/// Control messages of the Sunshine–Postel protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpMessage {
    /// Mobile → directory: my forwarder is `forwarder` (0 = at home).
    Register {
        /// The mobile host.
        mobile: Ipv4Addr,
        /// Its forwarder (0.0.0.0 when at home).
        forwarder: Ipv4Addr,
    },
    /// Sender → directory: where is `mobile`?
    Query {
        /// The host being asked about.
        mobile: Ipv4Addr,
    },
    /// Directory → sender: `mobile` is served by `forwarder` (0 = not
    /// registered / at home).
    Response {
        /// The host asked about.
        mobile: Ipv4Addr,
        /// Its forwarder (0.0.0.0 = send plainly).
        forwarder: Ipv4Addr,
    },
    /// Mobile → local forwarder: deliver my packets.
    FwdRegister {
        /// The registering mobile host.
        mobile: Ipv4Addr,
    },
}

impl SpMessage {
    /// Encodes to control bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(9);
        match self {
            SpMessage::Register { mobile, forwarder } => {
                buf.push(1);
                buf.extend_from_slice(&mobile.octets());
                buf.extend_from_slice(&forwarder.octets());
            }
            SpMessage::Query { mobile } => {
                buf.push(2);
                buf.extend_from_slice(&mobile.octets());
            }
            SpMessage::Response { mobile, forwarder } => {
                buf.push(3);
                buf.extend_from_slice(&mobile.octets());
                buf.extend_from_slice(&forwarder.octets());
            }
            SpMessage::FwdRegister { mobile } => {
                buf.push(4);
                buf.extend_from_slice(&mobile.octets());
            }
        }
        buf
    }

    /// Decodes from control bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError`] on truncation or unknown type.
    pub fn decode(buf: &[u8]) -> Result<SpMessage, PacketError> {
        let (&ty, rest) = buf.split_first().ok_or(PacketError::Truncated)?;
        let addr = |b: &[u8]| Ipv4Addr::new(b[0], b[1], b[2], b[3]);
        let need = |n: usize| if rest.len() < n { Err(PacketError::Truncated) } else { Ok(()) };
        Ok(match ty {
            1 => {
                need(8)?;
                SpMessage::Register { mobile: addr(&rest[..4]), forwarder: addr(&rest[4..8]) }
            }
            2 => {
                need(4)?;
                SpMessage::Query { mobile: addr(&rest[..4]) }
            }
            3 => {
                need(8)?;
                SpMessage::Response { mobile: addr(&rest[..4]), forwarder: addr(&rest[4..8]) }
            }
            4 => {
                need(4)?;
                SpMessage::FwdRegister { mobile: addr(&rest[..4]) }
            }
            _ => return Err(PacketError::BadField("sp message type")),
        })
    }
}

/// The 8-byte source-route shim: `orig_proto`, padding, the mobile host.
pub const SP_SHIM_LEN: usize = 8;

/// Wraps a plain packet for delivery via `forwarder`.
pub fn encapsulate(pkt: &mut Ipv4Packet, forwarder: Ipv4Addr) {
    let mut shim = Vec::with_capacity(SP_SHIM_LEN);
    shim.push(pkt.protocol);
    shim.extend_from_slice(&[0; 3]);
    shim.extend_from_slice(&pkt.dst.octets());
    shim.extend_from_slice(&pkt.payload);
    pkt.payload = shim;
    pkt.protocol = PROTO_SPFWD;
    pkt.dst = forwarder;
}

/// Unwraps a shimmed packet at the forwarder; returns the mobile host.
///
/// # Errors
///
/// Returns [`PacketError`] if the packet is not a valid shim packet.
pub fn decapsulate(pkt: &mut Ipv4Packet) -> Result<Ipv4Addr, PacketError> {
    if pkt.protocol != PROTO_SPFWD || pkt.payload.len() < SP_SHIM_LEN {
        return Err(PacketError::Truncated);
    }
    let mobile = Ipv4Addr::new(pkt.payload[4], pkt.payload[5], pkt.payload[6], pkt.payload[7]);
    pkt.protocol = pkt.payload[0];
    pkt.dst = mobile;
    pkt.payload.drain(..SP_SHIM_LEN);
    Ok(mobile)
}

/// The global directory service.
#[derive(Debug)]
pub struct SpDirectoryNode {
    /// The IP engine.
    pub stack: IpStack,
    db: HashMap<Ipv4Addr, Ipv4Addr>,
}

impl SpDirectoryNode {
    /// Creates an empty directory.
    pub fn new() -> SpDirectoryNode {
        SpDirectoryNode { stack: IpStack::new(false), db: HashMap::new() }
    }

    /// Directory size (the global state §7 objects to; metric for E07).
    pub fn db_size(&self) -> usize {
        self.db.len()
    }
}

impl Default for SpDirectoryNode {
    fn default() -> SpDirectoryNode {
        SpDirectoryNode::new()
    }
}

impl Node for SpDirectoryNode {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            let StackEvent::Deliver { pkt, .. } = ev else { continue };
            if pkt.protocol != proto::UDP {
                continue;
            }
            let Ok(d) = UdpDatagram::decode(&pkt.payload) else { continue };
            if d.dst_port != CONTROL_PORT {
                continue;
            }
            match SpMessage::decode(&d.payload) {
                Ok(SpMessage::Register { mobile, forwarder }) => {
                    ctx.stats().incr("sp.db_registrations");
                    if forwarder.is_unspecified() {
                        self.db.remove(&mobile);
                    } else {
                        self.db.insert(mobile, forwarder);
                    }
                }
                Ok(SpMessage::Query { mobile }) => {
                    ctx.stats().incr("sp.db_queries");
                    let forwarder = self.db.get(&mobile).copied().unwrap_or(Ipv4Addr::UNSPECIFIED);
                    let resp = SpMessage::Response { mobile, forwarder };
                    self.stack.send_udp(ctx, pkt.src, CONTROL_PORT, CONTROL_PORT, resp.encode());
                }
                _ => {}
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        self.stack.on_timer(ctx, timer);
    }
}

/// A router that is also a Sunshine–Postel forwarder on `local_iface`.
#[derive(Debug)]
pub struct SpForwarderNode {
    /// The IP engine (forwarding enabled).
    pub stack: IpStack,
    /// The interface visitors connect on.
    pub local_iface: IfaceId,
    visitors: HashMap<Ipv4Addr, SimTime>,
}

impl SpForwarderNode {
    /// Creates a forwarder serving `local_iface`.
    pub fn new(local_iface: IfaceId) -> SpForwarderNode {
        SpForwarderNode { stack: IpStack::new(true), local_iface, visitors: HashMap::new() }
    }

    /// Whether `mobile`'s lease is current.
    pub fn has_visitor(&self, mobile: Ipv4Addr, now: SimTime) -> bool {
        self.visitors.get(&mobile).is_some_and(|&t| now.since(t) < VISITOR_LEASE)
    }

    fn beacon(&mut self, ctx: &mut Ctx<'_>) {
        let Some(ia) = self.stack.iface_addr(self.local_iface) else { return };
        if !ctx.iface_attached(self.local_iface) {
            return;
        }
        let beacon = Beacon { agent: ia.addr, protocol: PROTO_SPFWD };
        let d = UdpDatagram::new(BEACON_PORT, BEACON_PORT, beacon.encode());
        let ident = self.stack.next_ident();
        let pkt = Ipv4Packet::new(ia.addr, Ipv4Addr::BROADCAST, proto::UDP, d.encode())
            .with_ident(ident)
            .with_ttl(1);
        self.stack.send_link_broadcast(ctx, self.local_iface, pkt);
    }
}

impl Node for SpForwarderNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.beacon(ctx);
        ctx.set_timer(BEACON_INTERVAL, TimerToken(BEACON_TIMER));
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            match ev {
                StackEvent::Deliver { pkt, .. } => match pkt.protocol {
                    PROTO_SPFWD => {
                        let mut pkt = pkt;
                        let Ok(mobile) = decapsulate(&mut pkt) else { continue };
                        if self.has_visitor(mobile, ctx.now()) {
                            ctx.stats().incr("sp.delivered");
                            self.stack.send_direct(ctx, self.local_iface, pkt);
                        } else {
                            // The documented behaviour: old forwarder
                            // answers "host unreachable"; the sender must
                            // re-query the directory.
                            ctx.stats().incr("sp.unreachable_returned");
                            // Reconstruct the shimmed packet for the error.
                            let mut orig = pkt;
                            let self_addr = self
                                .stack
                                .iface_addr(self.local_iface)
                                .map(|ia| ia.addr)
                                .unwrap_or(Ipv4Addr::UNSPECIFIED);
                            encapsulate(&mut orig, self_addr);
                            self.stack.send_host_unreachable(ctx, &orig);
                        }
                    }
                    proto::UDP => {
                        let Ok(d) = UdpDatagram::decode(&pkt.payload) else { continue };
                        if d.dst_port == CONTROL_PORT {
                            if let Ok(SpMessage::FwdRegister { mobile }) =
                                SpMessage::decode(&d.payload)
                            {
                                ctx.stats().incr("sp.fwd_registrations");
                                self.visitors.insert(mobile, ctx.now());
                            }
                        }
                    }
                    proto::ICMP => {
                        netstack::nodes::handle_icmp_delivery(&mut self.stack, ctx, &pkt);
                    }
                    _ => {}
                },
                StackEvent::ForwardCandidate { pkt, .. } => self.stack.forward(ctx, pkt),
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        if self.stack.on_timer(ctx, timer) {
            return;
        }
        if timer.0 & BEACON_TIMER != 0 {
            self.beacon(ctx);
            ctx.set_timer(BEACON_INTERVAL, TimerToken(BEACON_TIMER));
        }
    }

    fn on_link(&mut self, _ctx: &mut Ctx<'_>, iface: IfaceId, event: LinkEvent) {
        if event == LinkEvent::Detached {
            self.stack.arp.clear_iface(iface);
        }
    }
}

/// A mobile host under the Sunshine–Postel protocol: keeps its home
/// address, registers its current forwarder with the global directory.
#[derive(Debug)]
pub struct SpMobileNode {
    /// The IP engine.
    pub stack: IpStack,
    /// The application layer.
    pub endpoint: Endpoint,
    /// Home address (never changes).
    pub home_addr: Ipv4Addr,
    /// Home prefix.
    pub home_prefix: Prefix,
    /// Default gateway at home.
    pub home_gateway: Ipv4Addr,
    /// The global directory's address.
    pub directory: Ipv4Addr,
    /// Current forwarder, if visiting.
    pub forwarder: Option<Ipv4Addr>,
    iface: IfaceId,
}

impl SpMobileNode {
    /// Creates the mobile host (starts at home).
    pub fn new(
        home_addr: Ipv4Addr,
        home_prefix: Prefix,
        home_gateway: Ipv4Addr,
        directory: Ipv4Addr,
    ) -> SpMobileNode {
        SpMobileNode {
            stack: IpStack::new(false),
            endpoint: Endpoint::new(),
            home_addr,
            home_prefix,
            home_gateway,
            directory,
            forwarder: None,
            iface: IfaceId(0),
        }
    }

    fn attach_via(&mut self, ctx: &mut Ctx<'_>, forwarder: Ipv4Addr) {
        let is_new = self.forwarder != Some(forwarder);
        if is_new {
            self.stack.remove_iface_binding(self.iface);
            self.stack.add_iface(self.iface, self.home_addr, Prefix::host(self.home_addr));
            self.stack.arp.clear_iface(self.iface);
            self.stack.routes.remove(Prefix::default_route());
            self.stack.routes.add(
                Prefix::default_route(),
                NextHop::Gateway { iface: self.iface, via: forwarder },
            );
            self.forwarder = Some(forwarder);
            // Register with the global directory (the §7 bottleneck).
            ctx.stats().incr("sp.mobile_registrations");
            let reg = SpMessage::Register { mobile: self.home_addr, forwarder };
            self.stack.send_udp(ctx, self.directory, CONTROL_PORT, CONTROL_PORT, reg.encode());
        }
        // (Re-)register the local lease every beacon.
        let reg = SpMessage::FwdRegister { mobile: self.home_addr };
        let d = UdpDatagram::new(CONTROL_PORT, CONTROL_PORT, reg.encode());
        let ident = self.stack.next_ident();
        let pkt =
            Ipv4Packet::new(self.home_addr, forwarder, proto::UDP, d.encode()).with_ident(ident);
        self.stack.send_direct(ctx, self.iface, pkt);
    }
}

impl Node for SpMobileNode {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
        self.stack.add_iface(self.iface, self.home_addr, self.home_prefix);
        self.stack.routes.add(
            Prefix::default_route(),
            NextHop::Gateway { iface: self.iface, via: self.home_gateway },
        );
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            let StackEvent::Deliver { pkt, .. } = ev else { continue };
            if pkt.protocol == proto::UDP {
                if let Ok(d) = UdpDatagram::decode(&pkt.payload) {
                    if d.dst_port == BEACON_PORT {
                        if let Ok(b) = Beacon::decode(&d.payload) {
                            if b.protocol == PROTO_SPFWD {
                                self.attach_via(ctx, b.agent);
                            }
                        }
                        continue;
                    }
                }
            }
            self.endpoint.deliver(&mut self.stack, ctx, &pkt);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        self.stack.on_timer(ctx, timer);
    }

    fn on_link(&mut self, _ctx: &mut Ctx<'_>, iface: IfaceId, event: LinkEvent) {
        if event == LinkEvent::Detached {
            self.stack.arp.clear_iface(iface);
            self.forwarder = None;
        }
    }
}

/// A correspondent host under the Sunshine–Postel protocol: queries the
/// directory before sending, re-queries on host-unreachable.
#[derive(Debug)]
pub struct SpHostNode {
    /// The IP engine.
    pub stack: IpStack,
    /// The application layer.
    pub endpoint: Endpoint,
    /// The global directory's address.
    pub directory: Ipv4Addr,
    bindings: HashMap<Ipv4Addr, Ipv4Addr>, // dst -> forwarder (0 = plain)
    pending: HashMap<Ipv4Addr, Vec<Ipv4Packet>>,
    recent: HashMap<Ipv4Addr, Vec<Ipv4Packet>>,
    // Per-data-packet counters, cached to keep the send path free of
    // name hashing.
    via_forwarder: Counter,
    overhead_bytes: Counter,
}

/// How many recently sent packets are kept per destination for
/// retransmission after a re-query.
pub const RETRANSMIT_BUFFER: usize = 4;

impl SpHostNode {
    /// Creates a correspondent host using `directory`.
    pub fn new(directory: Ipv4Addr) -> SpHostNode {
        SpHostNode {
            stack: IpStack::new(false),
            endpoint: Endpoint::new(),
            directory,
            bindings: HashMap::new(),
            pending: HashMap::new(),
            recent: HashMap::new(),
            via_forwarder: Counter::new("sp.data_via_forwarder"),
            overhead_bytes: Counter::new("sp.overhead_bytes"),
        }
    }

    /// Sends `pkt` under the protocol: query-first, then via forwarder.
    pub fn send_data(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
        let dst = pkt.dst;
        match self.bindings.get(&dst) {
            Some(fwd) if fwd.is_unspecified() => {
                self.remember(dst, &pkt);
                self.stack.send(ctx, pkt);
            }
            Some(&fwd) => {
                self.remember(dst, &pkt);
                let mut pkt = pkt;
                self.via_forwarder.incr(ctx.stats());
                self.overhead_bytes.add(ctx.stats(), SP_SHIM_LEN as u64);
                encapsulate(&mut pkt, fwd);
                self.stack.send(ctx, pkt);
            }
            None => {
                self.pending.entry(dst).or_default().push(pkt);
                self.query(ctx, dst);
            }
        }
    }

    /// Convenience ping under the protocol.
    pub fn ping(&mut self, ctx: &mut Ctx<'_>, dst: Ipv4Addr) {
        let src = self.stack.pick_src(dst).expect("host has an address");
        let (_seq, pkt) = self.endpoint.make_ping(ctx.now(), src, dst);
        self.send_data(ctx, pkt);
    }

    /// Convenience UDP send under the protocol.
    pub fn send_udp(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) {
        let src = self.stack.pick_src(dst).expect("host has an address");
        let pkt = Endpoint::make_udp(src, dst, src_port, dst_port, payload);
        self.send_data(ctx, pkt);
    }

    fn remember(&mut self, dst: Ipv4Addr, pkt: &Ipv4Packet) {
        let buf = self.recent.entry(dst).or_default();
        if buf.len() >= RETRANSMIT_BUFFER {
            buf.remove(0);
        }
        buf.push(pkt.clone());
    }

    fn query(&mut self, ctx: &mut Ctx<'_>, mobile: Ipv4Addr) {
        ctx.stats().incr("sp.host_queries");
        let q = SpMessage::Query { mobile };
        self.stack.send_udp(ctx, self.directory, CONTROL_PORT, CONTROL_PORT, q.encode());
        ctx.set_timer(SimDuration::from_secs(2), TimerToken(QUERY_TIMER));
    }
}

impl Node for SpHostNode {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            let StackEvent::Deliver { pkt, .. } = ev else { continue };
            match pkt.protocol {
                proto::UDP => {
                    if let Ok(d) = UdpDatagram::decode(&pkt.payload) {
                        if d.dst_port == CONTROL_PORT {
                            if let Ok(SpMessage::Response { mobile, forwarder }) =
                                SpMessage::decode(&d.payload)
                            {
                                self.bindings.insert(mobile, forwarder);
                                for queued in self.pending.remove(&mobile).unwrap_or_default() {
                                    self.send_data(ctx, queued);
                                }
                            }
                            continue;
                        }
                    }
                    self.endpoint.deliver(&mut self.stack, ctx, &pkt);
                }
                proto::ICMP => {
                    // Host unreachable about a shimmed packet: purge the
                    // binding, re-query, retransmit the recent window.
                    if let Ok(msg) = IcmpMessage::decode(&pkt.payload) {
                        if let Some(original) = msg.original() {
                            if original.len() >= 20 + SP_SHIM_LEN && original[9] == PROTO_SPFWD {
                                let hl = usize::from(original[0] & 0xf) * 4;
                                if original.len() >= hl + 8 {
                                    let b = &original[hl + 4..hl + 8];
                                    let mobile = Ipv4Addr::new(b[0], b[1], b[2], b[3]);
                                    ctx.stats().incr("sp.requery_after_unreachable");
                                    self.bindings.remove(&mobile);
                                    let buffered =
                                        self.recent.get(&mobile).cloned().unwrap_or_default();
                                    for p in buffered {
                                        self.pending.entry(mobile).or_default().push(p);
                                    }
                                    self.query(ctx, mobile);
                                    continue;
                                }
                            }
                        }
                    }
                    self.endpoint.deliver(&mut self.stack, ctx, &pkt);
                }
                _ => {
                    self.endpoint.deliver(&mut self.stack, ctx, &pkt);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        if self.stack.on_timer(ctx, timer) {
            return;
        }
        if timer.0 & QUERY_TIMER != 0 {
            // Re-issue any queries whose answers never came.
            let waiting: Vec<Ipv4Addr> = self.pending.keys().copied().collect();
            for mobile in waiting {
                self.query(ctx, mobile);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    #[test]
    fn messages_round_trip() {
        for m in [
            SpMessage::Register { mobile: a(1), forwarder: a(2) },
            SpMessage::Query { mobile: a(1) },
            SpMessage::Response { mobile: a(1), forwarder: Ipv4Addr::UNSPECIFIED },
            SpMessage::FwdRegister { mobile: a(1) },
        ] {
            assert_eq!(SpMessage::decode(&m.encode()).unwrap(), m);
        }
        assert!(SpMessage::decode(&[]).is_err());
        assert!(SpMessage::decode(&[9]).is_err());
    }

    #[test]
    fn shim_adds_exactly_8_bytes_and_round_trips() {
        let mut pkt = Ipv4Packet::new(a(1), a(7), proto::UDP, b"payload".to_vec());
        let before = pkt.wire_len();
        encapsulate(&mut pkt, a(100));
        assert_eq!(pkt.wire_len(), before + SP_SHIM_LEN);
        assert_eq!(pkt.dst, a(100));
        assert_eq!(pkt.protocol, PROTO_SPFWD);
        let mobile = decapsulate(&mut pkt).unwrap();
        assert_eq!(mobile, a(7));
        assert_eq!(pkt.dst, a(7));
        assert_eq!(pkt.protocol, proto::UDP);
        assert_eq!(pkt.payload, b"payload");
    }

    #[test]
    fn decapsulate_rejects_non_shim() {
        let mut pkt = Ipv4Packet::new(a(1), a(7), proto::UDP, vec![]);
        assert!(decapsulate(&mut pkt).is_err());
    }

    #[test]
    fn visitor_lease_expires() {
        let mut f = SpForwarderNode::new(IfaceId(0));
        f.visitors.insert(a(7), SimTime::from_secs(0));
        assert!(f.has_visitor(a(7), SimTime::from_secs(1)));
        assert!(!f.has_visitor(a(7), SimTime::from_secs(10)));
    }
}

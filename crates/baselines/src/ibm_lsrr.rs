//! The IBM loose-source-route proposal (Perkins & Rekhter) — baseline
//! five of the paper's §7.
//!
//! The mobile host registers with a **base station** on the visited
//! network. Every packet the mobile host sends travels through the base
//! station carrying an **LSRR option** (8 bytes); a *correct* receiver
//! saves and reverses the recorded route, so its replies also route via
//! the base station with an 8-byte option — §7's "8 bytes ... although
//! 8 bytes must also be added to each packet sent *from* a mobile host".
//!
//! The paper's two §7 criticisms are both modeled:
//!
//! * **Broken implementations** — hosts that fail to reverse/record the
//!   route ([`LsrrHostNode::broken`]) send replies to the mobile host's
//!   home address, where they are lost.
//! * **Slow path** — every router forwarding an optioned packet takes the
//!   slow path; use `RouterNode::option_penalty` (already in `netstack`)
//!   and the `ip.slow_path` counter.
//!
//! There is no home agent in this scheme: packets addressed to a moved
//! mobile host without a recorded route simply die at the home network.

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use ip::icmp::IcmpMessage;
use ip::ipv4::{Ipv4Option, Ipv4Packet};
use ip::udp::UdpDatagram;
use ip::{proto, PacketError, Prefix};
use netsim::time::SimDuration;
use netsim::{Counter, Ctx, Frame, IfaceId, LinkEvent, Node, TimerToken};
use netstack::nodes::Endpoint;
use netstack::route::NextHop;
use netstack::{IpStack, StackEvent};

use crate::common::{Beacon, BEACON_PORT, CONTROL_PORT};

const BEACON_TIMER: u64 = 1 << 57;

/// Beacon interval for base stations.
pub const BEACON_INTERVAL: SimDuration = SimDuration::from_secs(1);

/// Marker protocol discriminator used in beacons.
pub const LSRR_PROTO_TAG: u8 = 131;

/// Encoded size of a one-hop LSRR option with padding (§7's 8 bytes).
pub const LSRR_OPTION_BYTES: usize = 8;

/// Control messages: just the registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsrrMessage {
    /// Mobile → base station: serve me.
    Register {
        /// The registering mobile host.
        mobile: Ipv4Addr,
    },
}

impl LsrrMessage {
    /// Encodes to control bytes.
    pub fn encode(&self) -> Vec<u8> {
        let LsrrMessage::Register { mobile } = self;
        let mut buf = vec![1];
        buf.extend_from_slice(&mobile.octets());
        buf
    }

    /// Decodes from control bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError`] on truncation or unknown type.
    pub fn decode(buf: &[u8]) -> Result<LsrrMessage, PacketError> {
        let (&ty, rest) = buf.split_first().ok_or(PacketError::Truncated)?;
        if ty != 1 || rest.len() < 4 {
            return Err(PacketError::BadField("lsrr message"));
        }
        Ok(LsrrMessage::Register { mobile: Ipv4Addr::new(rest[0], rest[1], rest[2], rest[3]) })
    }
}

/// Processes the LSRR option at an addressed hop per RFC 791: swaps the
/// destination with the next route slot, recording our own address.
/// Returns `true` if the packet should continue to a new destination.
pub fn lsrr_advance(pkt: &mut Ipv4Packet, self_addr: Ipv4Addr) -> bool {
    for opt in &mut pkt.options {
        if let Ipv4Option::Lsrr { pointer, route } = opt {
            let idx = (usize::from(*pointer) - 4) / 4;
            if idx >= route.len() {
                return false; // route exhausted: we are the destination
            }
            pkt.dst = route[idx];
            route[idx] = self_addr;
            *pointer += 4;
            return true;
        }
    }
    false
}

/// The recorded route of a received LSRR packet (the hops it visited).
pub fn lsrr_recorded(pkt: &Ipv4Packet) -> Option<Vec<Ipv4Addr>> {
    pkt.lsrr().map(|(pointer, route)| {
        let visited = ((usize::from(*pointer)) - 4) / 4;
        route.iter().take(visited.min(route.len())).copied().collect()
    })
}

/// A base station: a router that relays LSRR traffic for its visitors.
#[derive(Debug)]
pub struct BaseStationNode {
    /// The IP engine (forwarding enabled).
    pub stack: IpStack,
    /// The interface visitors attach to.
    pub local_iface: IfaceId,
    visitors: HashSet<Ipv4Addr>,
}

impl BaseStationNode {
    /// Creates a base station serving `local_iface`.
    pub fn new(local_iface: IfaceId) -> BaseStationNode {
        BaseStationNode { stack: IpStack::new(true), local_iface, visitors: HashSet::new() }
    }

    /// Whether `mobile` is registered here.
    pub fn has_visitor(&self, mobile: Ipv4Addr) -> bool {
        self.visitors.contains(&mobile)
    }

    fn beacon(&mut self, ctx: &mut Ctx<'_>) {
        let Some(ia) = self.stack.iface_addr(self.local_iface) else { return };
        if !ctx.iface_attached(self.local_iface) {
            return;
        }
        let beacon = Beacon { agent: ia.addr, protocol: LSRR_PROTO_TAG };
        let d = UdpDatagram::new(BEACON_PORT, BEACON_PORT, beacon.encode());
        let ident = self.stack.next_ident();
        let pkt = Ipv4Packet::new(ia.addr, Ipv4Addr::BROADCAST, proto::UDP, d.encode())
            .with_ident(ident)
            .with_ttl(1);
        self.stack.send_link_broadcast(ctx, self.local_iface, pkt);
    }
}

impl Node for BaseStationNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.beacon(ctx);
        ctx.set_timer(BEACON_INTERVAL, TimerToken(BEACON_TIMER));
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            match ev {
                StackEvent::Deliver { mut pkt, .. } => {
                    // An LSRR packet addressed to us: advance the source
                    // route and forward (possibly to a local visitor).
                    if pkt.has_options() {
                        let self_addr = self
                            .stack
                            .iface_addr(self.local_iface)
                            .map(|ia| ia.addr)
                            .unwrap_or_else(|| self.stack.primary_addr());
                        if lsrr_advance(&mut pkt, self_addr) {
                            ctx.stats().incr("lsrr.bs_relayed");
                            if self.visitors.contains(&pkt.dst) {
                                self.stack.send_direct(ctx, self.local_iface, pkt);
                            } else if self.stack.routes.lookup(pkt.dst).is_some() {
                                self.stack.forward(ctx, pkt);
                            } else {
                                // Moved away and no route: the §7 gap.
                                ctx.stats().incr("lsrr.bs_dead_ends");
                                self.stack.send_host_unreachable(ctx, &pkt);
                            }
                            continue;
                        }
                    }
                    match pkt.protocol {
                        proto::UDP => {
                            if let Ok(d) = UdpDatagram::decode(&pkt.payload) {
                                if d.dst_port == CONTROL_PORT {
                                    if let Ok(LsrrMessage::Register { mobile }) =
                                        LsrrMessage::decode(&d.payload)
                                    {
                                        ctx.stats().incr("lsrr.registrations");
                                        self.visitors.insert(mobile);
                                    }
                                }
                            }
                        }
                        proto::ICMP => {
                            netstack::nodes::handle_icmp_delivery(&mut self.stack, ctx, &pkt);
                        }
                        _ => {}
                    }
                }
                StackEvent::ForwardCandidate { pkt, .. } => self.stack.forward(ctx, pkt),
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        if self.stack.on_timer(ctx, timer) {
            return;
        }
        if timer.0 & BEACON_TIMER != 0 {
            self.beacon(ctx);
            ctx.set_timer(BEACON_INTERVAL, TimerToken(BEACON_TIMER));
        }
    }

    fn on_link(&mut self, _ctx: &mut Ctx<'_>, iface: IfaceId, event: LinkEvent) {
        if event == LinkEvent::Detached {
            self.stack.arp.clear_iface(iface);
        }
    }
}

/// A correspondent host; `broken` models the deployed implementations
/// that fail to reverse recorded routes (§7).
#[derive(Debug)]
pub struct LsrrHostNode {
    /// The IP engine.
    pub stack: IpStack,
    /// The application layer.
    pub endpoint: Endpoint,
    /// Whether this host's LSRR implementation is broken.
    pub broken: bool,
    reverse_routes: HashMap<Ipv4Addr, Vec<Ipv4Addr>>,
    // Per-data-packet counters, cached to keep source-routed sends free
    // of name hashing.
    source_routed: Counter,
    overhead_bytes: Counter,
}

impl LsrrHostNode {
    /// Creates a correspondent host.
    pub fn new(broken: bool) -> LsrrHostNode {
        LsrrHostNode {
            stack: IpStack::new(false),
            endpoint: Endpoint::new(),
            broken,
            reverse_routes: HashMap::new(),
            source_routed: Counter::new("lsrr.host_source_routed"),
            overhead_bytes: Counter::new("lsrr.overhead_bytes"),
        }
    }

    /// The saved reverse route toward `peer`, if any.
    pub fn reverse_route(&self, peer: Ipv4Addr) -> Option<&[Ipv4Addr]> {
        self.reverse_routes.get(&peer).map(Vec::as_slice)
    }

    /// Sends `pkt`, source-routing via the saved reverse route when one
    /// exists (a correct implementation's behaviour).
    pub fn send_data(&mut self, ctx: &mut Ctx<'_>, mut pkt: Ipv4Packet) {
        if !self.broken {
            if let Some(route) = self.reverse_routes.get(&pkt.dst) {
                if let Some(&first) = route.first() {
                    self.source_routed.incr(ctx.stats());
                    self.overhead_bytes.add(ctx.stats(), LSRR_OPTION_BYTES as u64);
                    let final_dst = pkt.dst;
                    pkt.dst = first;
                    pkt.options.push(Ipv4Option::lsrr(vec![final_dst]));
                }
            }
        }
        self.stack.send(ctx, pkt);
    }

    /// Convenience ping.
    pub fn ping(&mut self, ctx: &mut Ctx<'_>, dst: Ipv4Addr) {
        let src = self.stack.pick_src(dst).expect("host has an address");
        let (_seq, pkt) = self.endpoint.make_ping(ctx.now(), src, dst);
        self.send_data(ctx, pkt);
    }

    /// Convenience UDP send.
    pub fn send_udp(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) {
        let src = self.stack.pick_src(dst).expect("host has an address");
        let pkt = Endpoint::make_udp(src, dst, src_port, dst_port, payload);
        self.send_data(ctx, pkt);
    }

    fn learn_route(&mut self, pkt: &Ipv4Packet) {
        if self.broken {
            return; // §7: "do not correctly reverse or save the recorded route"
        }
        if let Some(recorded) = lsrr_recorded(pkt) {
            if !recorded.is_empty() {
                self.reverse_routes.insert(pkt.src, recorded);
            }
        }
    }

    fn deliver(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
        self.learn_route(&pkt);
        // Echo replies must honour the reverse route, so intercept echo
        // requests rather than letting the plain autoreply answer.
        if pkt.protocol == proto::ICMP {
            if let Ok(IcmpMessage::EchoRequest { ident, seq, payload }) =
                IcmpMessage::decode(&pkt.payload)
            {
                let reply = IcmpMessage::EchoReply { ident, seq, payload };
                let src = self.stack.pick_src(pkt.src).expect("host has an address");
                let rp = Ipv4Packet::new(src, pkt.src, proto::ICMP, reply.encode());
                self.send_data(ctx, rp);
                return;
            }
        }
        if pkt.protocol == proto::UDP {
            if let Ok(d) = UdpDatagram::decode(&pkt.payload) {
                if d.dst_port == netstack::nodes::UDP_ECHO_PORT {
                    // Echo the payload back along the reverse route.
                    let src = self.stack.pick_src(pkt.src).expect("host has an address");
                    let rp = Endpoint::make_udp(
                        src,
                        pkt.src,
                        netstack::nodes::UDP_ECHO_PORT,
                        d.src_port,
                        d.payload.clone(),
                    );
                    self.send_data(ctx, rp);
                }
            }
            // Still log it (disable the endpoint's own echo to avoid
            // double replies).
        }
        let was_echo = self.endpoint.udp_echo;
        self.endpoint.udp_echo = false;
        self.endpoint.deliver(&mut self.stack, ctx, &pkt);
        self.endpoint.udp_echo = was_echo;
    }
}

impl Node for LsrrHostNode {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            if let StackEvent::Deliver { pkt, .. } = ev {
                self.deliver(ctx, pkt);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        self.stack.on_timer(ctx, timer);
    }
}

/// The mobile host: keeps its home address, routes everything through its
/// base station with an LSRR option.
#[derive(Debug)]
pub struct LsrrMobileNode {
    /// The IP engine.
    pub stack: IpStack,
    /// The application layer.
    pub endpoint: Endpoint,
    /// Home address.
    pub home_addr: Ipv4Addr,
    /// Home network prefix.
    pub home_prefix: Prefix,
    /// Default gateway at home.
    pub home_gateway: Ipv4Addr,
    /// The current base station, if visiting.
    pub base_station: Option<Ipv4Addr>,
    iface: IfaceId,
    sent_via_bs: Counter,
    overhead_bytes: Counter,
}

impl LsrrMobileNode {
    /// Creates the mobile host (starts at home).
    pub fn new(home_addr: Ipv4Addr, home_prefix: Prefix, home_gateway: Ipv4Addr) -> LsrrMobileNode {
        LsrrMobileNode {
            stack: IpStack::new(false),
            endpoint: Endpoint::new(),
            home_addr,
            home_prefix,
            home_gateway,
            base_station: None,
            iface: IfaceId(0),
            sent_via_bs: Counter::new("lsrr.mobile_sent_via_bs"),
            overhead_bytes: Counter::new("lsrr.overhead_bytes"),
        }
    }

    fn attach_via(&mut self, ctx: &mut Ctx<'_>, bs: Ipv4Addr) {
        if self.base_station == Some(bs) {
            return;
        }
        ctx.stats().incr("lsrr.mobile_moves");
        self.stack.remove_iface_binding(self.iface);
        self.stack.add_iface(self.iface, self.home_addr, Prefix::host(self.home_addr));
        self.stack.arp.clear_iface(self.iface);
        self.stack.routes.remove(Prefix::default_route());
        self.stack
            .routes
            .add(Prefix::default_route(), NextHop::Gateway { iface: self.iface, via: bs });
        self.base_station = Some(bs);
        let reg = LsrrMessage::Register { mobile: self.home_addr };
        let d = UdpDatagram::new(CONTROL_PORT, CONTROL_PORT, reg.encode());
        let ident = self.stack.next_ident();
        let pkt = Ipv4Packet::new(self.home_addr, bs, proto::UDP, d.encode()).with_ident(ident);
        self.stack.send_direct(ctx, self.iface, pkt);
    }

    /// Sends `pkt` through the base station with the LSRR option (§7:
    /// "All packets sent by a mobile host are sent through the mobile
    /// host's base station and include an LSRR option").
    pub fn send_data(&mut self, ctx: &mut Ctx<'_>, mut pkt: Ipv4Packet) {
        if let Some(bs) = self.base_station {
            self.sent_via_bs.incr(ctx.stats());
            self.overhead_bytes.add(ctx.stats(), LSRR_OPTION_BYTES as u64);
            let final_dst = pkt.dst;
            pkt.dst = bs;
            pkt.options.push(Ipv4Option::lsrr(vec![final_dst]));
            self.stack.send_direct(ctx, self.iface, pkt);
        } else {
            self.stack.send(ctx, pkt);
        }
    }

    /// Convenience ping.
    pub fn ping(&mut self, ctx: &mut Ctx<'_>, dst: Ipv4Addr) {
        let (_seq, pkt) = self.endpoint.make_ping(ctx.now(), self.home_addr, dst);
        self.send_data(ctx, pkt);
    }

    /// Convenience UDP send.
    pub fn send_udp(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) {
        let pkt = Endpoint::make_udp(self.home_addr, dst, src_port, dst_port, payload);
        self.send_data(ctx, pkt);
    }
}

impl Node for LsrrMobileNode {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
        self.stack.add_iface(self.iface, self.home_addr, self.home_prefix);
        self.stack.routes.add(
            Prefix::default_route(),
            NextHop::Gateway { iface: self.iface, via: self.home_gateway },
        );
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            let StackEvent::Deliver { pkt, .. } = ev else { continue };
            if pkt.protocol == proto::UDP {
                if let Ok(d) = UdpDatagram::decode(&pkt.payload) {
                    if d.dst_port == BEACON_PORT {
                        if let Ok(b) = Beacon::decode(&d.payload) {
                            if b.protocol == LSRR_PROTO_TAG {
                                self.attach_via(ctx, b.agent);
                            }
                        }
                        continue;
                    }
                }
            }
            self.endpoint.deliver(&mut self.stack, ctx, &pkt);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        self.stack.on_timer(ctx, timer);
    }

    fn on_link(&mut self, _ctx: &mut Ctx<'_>, iface: IfaceId, event: LinkEvent) {
        if event == LinkEvent::Detached {
            self.stack.arp.clear_iface(iface);
            self.base_station = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    #[test]
    fn message_round_trips() {
        let m = LsrrMessage::Register { mobile: a(1) };
        assert_eq!(LsrrMessage::decode(&m.encode()).unwrap(), m);
        assert!(LsrrMessage::decode(&[2, 0]).is_err());
    }

    #[test]
    fn one_hop_lsrr_option_is_8_bytes() {
        // §7: "Their protocol normally adds only 8 bytes to each packet."
        let plain = Ipv4Packet::new(a(1), a(7), proto::UDP, vec![0; 12]);
        let optioned = plain.clone().with_option(Ipv4Option::lsrr(vec![a(9)]));
        assert_eq!(optioned.wire_len() - plain.wire_len(), LSRR_OPTION_BYTES);
    }

    #[test]
    fn lsrr_advance_swaps_and_records() {
        let mut pkt = Ipv4Packet::new(a(1), a(100), proto::UDP, vec![])
            .with_option(Ipv4Option::lsrr(vec![a(7)]));
        assert!(lsrr_advance(&mut pkt, a(100)));
        assert_eq!(pkt.dst, a(7));
        let recorded = lsrr_recorded(&pkt).unwrap();
        assert_eq!(recorded, vec![a(100)]);
        // Route exhausted now.
        assert!(!lsrr_advance(&mut pkt, a(7)));
    }

    #[test]
    fn broken_host_never_learns_routes() {
        let mut h = LsrrHostNode::new(true);
        let pkt = Ipv4Packet::new(a(1), a(2), proto::UDP, vec![])
            .with_option(Ipv4Option::Lsrr { pointer: 8, route: vec![a(100)] });
        h.learn_route(&pkt);
        assert!(h.reverse_route(a(1)).is_none());
        let mut ok = LsrrHostNode::new(false);
        ok.learn_route(&pkt);
        assert_eq!(ok.reverse_route(a(1)).unwrap(), &[a(100)]);
    }
}

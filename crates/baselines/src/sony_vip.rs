//! The Sony Virtual IP protocol (Teraoka et al., SIGCOMM '91 / ICDCS '92)
//! — baseline three of the paper's §7.
//!
//! Every host has a permanent **VIP address** and a **physical IP
//! address**; a mobile host's physical address is a temporary one obtained
//! on each visited network. *Every* packet carries a 28-byte VIP shim
//! (§7: "The overhead added to each packet for the VIP header is
//! 28 bytes") — even between two stationary hosts.
//!
//! Senders and intermediate routers cache `VIP → physical` mappings by
//! observing traffic. A cache miss sends the packet with physical =
//! VIP, which routes to the mobile host's home network, where the home
//! router fills in the real physical address. After a move a **flooding
//! protocol** removes cached mappings — "but some may remain due to the
//! way in which the flooding is propagated" (modeled by
//! [`VipRouterNode::flood_apply_prob`]); a stale mapping misdelivers the
//! packet, the wrong receiver returns an error, and the sender
//! retransmits.

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

use ip::icmp::IcmpMessage;
use ip::ipv4::Ipv4Packet;
use ip::udp::UdpDatagram;
use ip::{proto, PacketError, Prefix};
use netsim::time::SimDuration;
use netsim::{Counter, Ctx, Frame, IfaceId, LinkEvent, Node, TeleEventKind, TimerToken};
use netstack::nodes::Endpoint;
use netstack::route::NextHop;
use netstack::{IpStack, StackEvent};

use crate::common::{Beacon, TempAddrPool, BEACON_PORT, CONTROL_PORT};

const BEACON_TIMER: u64 = 1 << 57;

/// Beacon interval for VIP routers.
pub const BEACON_INTERVAL: SimDuration = SimDuration::from_secs(1);

/// The VIP shim size (§7's 28 bytes).
pub const VIP_SHIM_LEN: usize = 28;

/// Control messages of the VIP protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VipMessage {
    /// Mobile → local router: assign me a temporary physical address.
    TempRequest {
        /// The requesting host's VIP.
        vip: Ipv4Addr,
    },
    /// Local router → mobile: your temporary address.
    TempAssign {
        /// The requesting host's VIP.
        vip: Ipv4Addr,
        /// The assigned physical address (0.0.0.0 = pool exhausted).
        temp: Ipv4Addr,
        /// The prefix length of the local network.
        prefix_len: u8,
    },
    /// Mobile → home router: my physical address is now `phys`.
    HomeRegister {
        /// The mobile's VIP.
        vip: Ipv4Addr,
        /// Its current physical address.
        phys: Ipv4Addr,
    },
    /// Flooded invalidation of cached mappings for `vip`.
    Invalidate {
        /// The moved mobile's VIP.
        vip: Ipv4Addr,
        /// Flood deduplication sequence.
        seq: u16,
    },
    /// Wrong-receiver notice: purge your mapping for `vip`.
    Misdelivery {
        /// The VIP whose mapping is stale.
        vip: Ipv4Addr,
    },
}

impl VipMessage {
    /// Encodes to control bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(12);
        match self {
            VipMessage::TempRequest { vip } => {
                buf.push(1);
                buf.extend_from_slice(&vip.octets());
            }
            VipMessage::TempAssign { vip, temp, prefix_len } => {
                buf.push(2);
                buf.extend_from_slice(&vip.octets());
                buf.extend_from_slice(&temp.octets());
                buf.push(*prefix_len);
            }
            VipMessage::HomeRegister { vip, phys } => {
                buf.push(3);
                buf.extend_from_slice(&vip.octets());
                buf.extend_from_slice(&phys.octets());
            }
            VipMessage::Invalidate { vip, seq } => {
                buf.push(4);
                buf.extend_from_slice(&vip.octets());
                buf.extend_from_slice(&seq.to_be_bytes());
            }
            VipMessage::Misdelivery { vip } => {
                buf.push(5);
                buf.extend_from_slice(&vip.octets());
            }
        }
        buf
    }

    /// Decodes from control bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PacketError`] on truncation or unknown type.
    pub fn decode(buf: &[u8]) -> Result<VipMessage, PacketError> {
        let (&ty, rest) = buf.split_first().ok_or(PacketError::Truncated)?;
        let addr = |b: &[u8]| Ipv4Addr::new(b[0], b[1], b[2], b[3]);
        let need = |n: usize| if rest.len() < n { Err(PacketError::Truncated) } else { Ok(()) };
        Ok(match ty {
            1 => {
                need(4)?;
                VipMessage::TempRequest { vip: addr(&rest[..4]) }
            }
            2 => {
                need(9)?;
                VipMessage::TempAssign {
                    vip: addr(&rest[..4]),
                    temp: addr(&rest[4..8]),
                    prefix_len: rest[8],
                }
            }
            3 => {
                need(8)?;
                VipMessage::HomeRegister { vip: addr(&rest[..4]), phys: addr(&rest[4..8]) }
            }
            4 => {
                need(6)?;
                VipMessage::Invalidate {
                    vip: addr(&rest[..4]),
                    seq: u16::from_be_bytes([rest[4], rest[5]]),
                }
            }
            5 => {
                need(4)?;
                VipMessage::Misdelivery { vip: addr(&rest[..4]) }
            }
            _ => return Err(PacketError::BadField("vip message type")),
        })
    }
}

/// The decoded VIP shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VipShim {
    /// Destination VIP.
    pub vip_dst: Ipv4Addr,
    /// Source VIP.
    pub vip_src: Ipv4Addr,
    /// The protocol of the carried transport payload.
    pub orig_proto: u8,
}

/// Wraps a plain packet in the 28-byte VIP shim; the outer destination is
/// the (believed) physical address `phys_dst`.
pub fn vip_encapsulate(pkt: &mut Ipv4Packet, phys_src: Ipv4Addr, phys_dst: Ipv4Addr) {
    let mut shim = Vec::with_capacity(VIP_SHIM_LEN + pkt.payload.len());
    shim.extend_from_slice(&pkt.dst.octets());
    shim.extend_from_slice(&pkt.src.octets());
    shim.push(pkt.protocol);
    shim.extend_from_slice(&[0; VIP_SHIM_LEN - 9]);
    shim.extend_from_slice(&pkt.payload);
    pkt.payload = shim;
    pkt.protocol = proto::VIP;
    pkt.src = phys_src;
    pkt.dst = phys_dst;
}

/// Reads the shim of a VIP packet.
///
/// # Errors
///
/// Returns [`PacketError`] if the packet is not a valid VIP packet.
pub fn vip_shim(pkt: &Ipv4Packet) -> Result<VipShim, PacketError> {
    if pkt.protocol != proto::VIP || pkt.payload.len() < VIP_SHIM_LEN {
        return Err(PacketError::Truncated);
    }
    let p = &pkt.payload;
    Ok(VipShim {
        vip_dst: Ipv4Addr::new(p[0], p[1], p[2], p[3]),
        vip_src: Ipv4Addr::new(p[4], p[5], p[6], p[7]),
        orig_proto: p[8],
    })
}

/// Strips the shim, restoring the plain packet (VIP addresses become the
/// IP addresses).
///
/// # Errors
///
/// Returns [`PacketError`] if the packet is not a valid VIP packet.
pub fn vip_decapsulate(pkt: &mut Ipv4Packet) -> Result<VipShim, PacketError> {
    let shim = vip_shim(pkt)?;
    pkt.protocol = shim.orig_proto;
    pkt.src = shim.vip_src;
    pkt.dst = shim.vip_dst;
    pkt.payload.drain(..VIP_SHIM_LEN);
    Ok(shim)
}

/// A router in the VIP internet: observes and rewrites VIP traffic,
/// participates in invalidation flooding, assigns temporary addresses on
/// its local network, and (for its own prefix) holds the authoritative
/// home mapping.
#[derive(Debug)]
pub struct VipRouterNode {
    /// The IP engine (forwarding enabled).
    pub stack: IpStack,
    /// The interface hosts connect on.
    pub local_iface: IfaceId,
    /// Probability that a flood message is applied/propagated here —
    /// below 1.0 leaves the stale entries §7 warns about.
    pub flood_apply_prob: f64,
    /// Neighbour routers in the flooding overlay.
    pub flood_peers: Vec<Ipv4Addr>,
    /// Temporary address pool for the local network (None = no assignment
    /// service here).
    pub pool: Option<TempAddrPool>,
    cache: HashMap<Ipv4Addr, Ipv4Addr>,
    home_bindings: HashMap<Ipv4Addr, Ipv4Addr>,
    seen_floods: HashSet<(Ipv4Addr, u16)>,
}

impl VipRouterNode {
    /// Creates a VIP router serving `local_iface`.
    pub fn new(local_iface: IfaceId) -> VipRouterNode {
        VipRouterNode {
            stack: IpStack::new(true),
            local_iface,
            flood_apply_prob: 1.0,
            flood_peers: Vec::new(),
            pool: None,
            cache: HashMap::new(),
            home_bindings: HashMap::new(),
            seen_floods: HashSet::new(),
        }
    }

    /// Observed-mapping cache size (state metric, E07).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The cached physical address for `vip` (tests/metrics).
    pub fn cached_phys(&self, vip: Ipv4Addr) -> Option<Ipv4Addr> {
        self.cache.get(&vip).copied()
    }

    fn beacon(&mut self, ctx: &mut Ctx<'_>) {
        let Some(ia) = self.stack.iface_addr(self.local_iface) else { return };
        if !ctx.iface_attached(self.local_iface) {
            return;
        }
        let beacon = Beacon { agent: ia.addr, protocol: proto::VIP };
        let d = UdpDatagram::new(BEACON_PORT, BEACON_PORT, beacon.encode());
        let ident = self.stack.next_ident();
        let pkt = Ipv4Packet::new(ia.addr, Ipv4Addr::BROADCAST, proto::UDP, d.encode())
            .with_ident(ident)
            .with_ttl(1);
        self.stack.send_link_broadcast(ctx, self.local_iface, pkt);
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_>, src: Ipv4Addr, msg: VipMessage) {
        match msg {
            VipMessage::TempRequest { vip } => {
                let temp = self
                    .pool
                    .as_mut()
                    .and_then(TempAddrPool::allocate)
                    .unwrap_or(Ipv4Addr::UNSPECIFIED);
                if temp.is_unspecified() {
                    ctx.stats().incr("vip.pool_exhausted");
                }
                let prefix_len = self.pool.as_ref().map(|p| p.prefix().len()).unwrap_or(24);
                let reply = VipMessage::TempAssign { vip, temp, prefix_len };
                let d = UdpDatagram::new(CONTROL_PORT, CONTROL_PORT, reply.encode());
                let ident = self.stack.next_ident();
                // The requester has no usable address yet: answer with a
                // link broadcast it will hear.
                let self_addr = self
                    .stack
                    .iface_addr(self.local_iface)
                    .map(|ia| ia.addr)
                    .unwrap_or(Ipv4Addr::UNSPECIFIED);
                let pkt = Ipv4Packet::new(self_addr, Ipv4Addr::BROADCAST, proto::UDP, d.encode())
                    .with_ident(ident)
                    .with_ttl(1);
                self.stack.send_link_broadcast(ctx, self.local_iface, pkt);
            }
            VipMessage::HomeRegister { vip, phys } => {
                ctx.stats().incr("vip.home_registrations");
                self.home_bindings.insert(vip, phys);
            }
            VipMessage::Invalidate { vip, seq } => {
                self.handle_flood(ctx, vip, seq, Some(src));
            }
            VipMessage::Misdelivery { .. } | VipMessage::TempAssign { .. } => {}
        }
    }

    fn handle_flood(
        &mut self,
        ctx: &mut Ctx<'_>,
        vip: Ipv4Addr,
        seq: u16,
        _from: Option<Ipv4Addr>,
    ) {
        if !self.seen_floods.insert((vip, seq)) {
            return;
        }
        ctx.stats().incr("vip.flood_messages");
        use rand::RngExt;
        if ctx.rng().random::<f64>() < self.flood_apply_prob {
            self.cache.remove(&vip);
        } else {
            // This router missed the invalidation: the stale-entry case.
            ctx.stats().incr("vip.flood_missed");
        }
        let msg = VipMessage::Invalidate { vip, seq };
        let peers = self.flood_peers.clone();
        for peer in peers {
            self.stack.send_udp(ctx, peer, CONTROL_PORT, CONTROL_PORT, msg.encode());
        }
    }

    /// Starts an invalidation flood from this router (the home router does
    /// this when its mobile registers a new physical address).
    pub fn start_flood(&mut self, ctx: &mut Ctx<'_>, vip: Ipv4Addr, seq: u16) {
        self.handle_flood(ctx, vip, seq, None);
    }
}

impl Node for VipRouterNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.beacon(ctx);
        ctx.set_timer(BEACON_INTERVAL, TimerToken(BEACON_TIMER));
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            match ev {
                StackEvent::Deliver { pkt, .. } => match pkt.protocol {
                    proto::UDP => {
                        let Ok(d) = UdpDatagram::decode(&pkt.payload) else { continue };
                        if d.dst_port == CONTROL_PORT {
                            if let Ok(msg) = VipMessage::decode(&d.payload) {
                                let from = pkt.src;
                                self.on_control(ctx, from, msg);
                            }
                        }
                    }
                    proto::ICMP => {
                        netstack::nodes::handle_icmp_delivery(&mut self.stack, ctx, &pkt);
                    }
                    _ => {}
                },
                StackEvent::ForwardCandidate { mut pkt, .. } => {
                    if pkt.protocol == proto::ICMP {
                        // §7: "The error message will also cause the cache
                        // entries at the routers through which it passes
                        // to be removed."
                        if let Ok(msg) = IcmpMessage::decode(&pkt.payload) {
                            if msg.is_error() {
                                if let Some(original) = msg.original() {
                                    if original.len() >= 24 && original[9] == proto::VIP {
                                        let hl = usize::from(original[0] & 0xf) * 4;
                                        if original.len() >= hl + 4 {
                                            let b = &original[hl..hl + 4];
                                            let vip = Ipv4Addr::new(b[0], b[1], b[2], b[3]);
                                            if self.cache.remove(&vip).is_some() {
                                                ctx.stats().incr("vip.router_cache_purges");
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    if pkt.protocol == proto::VIP {
                        if let Ok(shim) = vip_shim(&pkt) {
                            // Observational caching (§7: routers "cache the
                            // location of mobile hosts by remembering the
                            // source IP and VIP addresses").
                            if shim.vip_src != pkt.src {
                                self.cache.insert(shim.vip_src, pkt.src);
                            }
                            // Unresolved packets (phys == vip): the home
                            // router (authoritative) or any cache fills in
                            // the real physical address and re-routes.
                            if pkt.dst == shim.vip_dst {
                                let known = self
                                    .home_bindings
                                    .get(&shim.vip_dst)
                                    .or_else(|| self.cache.get(&shim.vip_dst))
                                    .copied();
                                if let Some(phys) = known {
                                    if phys != pkt.dst && !phys.is_unspecified() {
                                        ctx.stats().incr("vip.rewritten");
                                        pkt.dst = phys;
                                    }
                                }
                            }
                        }
                    }
                    self.stack.forward(ctx, pkt);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        if self.stack.on_timer(ctx, timer) {
            return;
        }
        if timer.0 & BEACON_TIMER != 0 {
            self.beacon(ctx);
            ctx.set_timer(BEACON_INTERVAL, TimerToken(BEACON_TIMER));
        }
    }

    fn on_link(&mut self, _ctx: &mut Ctx<'_>, iface: IfaceId, event: LinkEvent) {
        if event == LinkEvent::Detached {
            self.stack.arp.clear_iface(iface);
        }
    }
}

/// Common VIP endpoint behaviour shared by stationary and mobile hosts.
#[derive(Debug)]
struct VipEndpoint {
    vip: Ipv4Addr,
    cache: HashMap<Ipv4Addr, Ipv4Addr>,
    // Per-data-packet counters, cached to keep the send path free of
    // name hashing.
    data_sent: Counter,
    overhead_bytes: Counter,
}

impl VipEndpoint {
    fn new(vip: Ipv4Addr) -> VipEndpoint {
        VipEndpoint {
            vip,
            cache: HashMap::new(),
            data_sent: Counter::new("vip.data_sent"),
            overhead_bytes: Counter::new("vip.overhead_bytes"),
        }
    }
}

impl VipEndpoint {
    fn send(
        &mut self,
        stack: &mut IpStack,
        ctx: &mut Ctx<'_>,
        phys_src: Ipv4Addr,
        mut pkt: Ipv4Packet,
    ) {
        let phys_dst = self.cache.get(&pkt.dst).copied().unwrap_or(pkt.dst);
        self.overhead_bytes.add(ctx.stats(), VIP_SHIM_LEN as u64);
        self.data_sent.incr(ctx.stats());
        ctx.tele_event(TeleEventKind::Encap { by_sender: true });
        vip_encapsulate(&mut pkt, phys_src, phys_dst);
        stack.send(ctx, pkt);
    }

    /// Returns the restored plain packet, or `None` (misdelivery handled).
    fn receive(
        &mut self,
        stack: &mut IpStack,
        ctx: &mut Ctx<'_>,
        mut pkt: Ipv4Packet,
    ) -> Option<Ipv4Packet> {
        let shim = vip_shim(&pkt).ok()?;
        if shim.vip_dst != self.vip {
            // Misdelivered (stale mapping somewhere): tell the sender.
            ctx.stats().incr("vip.misdelivered");
            let phys = self.cache.get(&shim.vip_src).copied().unwrap_or(shim.vip_src);
            let msg = VipMessage::Misdelivery { vip: shim.vip_dst };
            stack.send_udp(ctx, phys, CONTROL_PORT, CONTROL_PORT, msg.encode());
            return None;
        }
        // Learn the peer's physical address from the outer source.
        if pkt.src != shim.vip_src {
            self.cache.insert(shim.vip_src, pkt.src);
        }
        vip_decapsulate(&mut pkt).ok()?;
        ctx.tele_event(TeleEventKind::Decap);
        Some(pkt)
    }

    fn handle_error_or_notice(&mut self, ctx: &mut Ctx<'_>, vip: Ipv4Addr) {
        ctx.stats().incr("vip.cache_purges");
        self.cache.remove(&vip);
    }
}

/// A stationary VIP host.
#[derive(Debug)]
pub struct VipHostNode {
    /// The IP engine.
    pub stack: IpStack,
    /// The application layer.
    pub endpoint: Endpoint,
    vip: VipEndpoint,
}

impl VipHostNode {
    /// Creates a stationary host whose VIP equals its physical address.
    pub fn new(vip: Ipv4Addr) -> VipHostNode {
        VipHostNode {
            stack: IpStack::new(false),
            endpoint: Endpoint::new(),
            vip: VipEndpoint::new(vip),
        }
    }

    /// The cached physical address for a peer VIP.
    pub fn cached_phys(&self, vip: Ipv4Addr) -> Option<Ipv4Addr> {
        self.vip.cache.get(&vip).copied()
    }

    /// Pings `dst` (a VIP address).
    pub fn ping(&mut self, ctx: &mut Ctx<'_>, dst: Ipv4Addr) {
        let (_seq, pkt) = self.endpoint.make_ping(ctx.now(), self.vip.vip, dst);
        let phys_src = self.stack.primary_addr();
        self.vip.send(&mut self.stack, ctx, phys_src, pkt);
    }

    /// Sends UDP to a VIP address.
    pub fn send_udp(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) {
        let pkt = Endpoint::make_udp(self.vip.vip, dst, src_port, dst_port, payload);
        let phys_src = self.stack.primary_addr();
        self.vip.send(&mut self.stack, ctx, phys_src, pkt);
    }

    fn deliver(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
        match pkt.protocol {
            proto::VIP => {
                if let Some(plain) = self.vip.receive(&mut self.stack, ctx, pkt) {
                    // Replies must also travel as VIP packets; intercept
                    // echo ourselves instead of using the plain autoreply.
                    if let Ok(IcmpMessage::EchoRequest { ident, seq, payload }) =
                        IcmpMessage::decode(&plain.payload)
                    {
                        let reply = IcmpMessage::EchoReply { ident, seq, payload };
                        let rp =
                            Ipv4Packet::new(self.vip.vip, plain.src, proto::ICMP, reply.encode());
                        let phys_src = self.stack.primary_addr();
                        self.vip.send(&mut self.stack, ctx, phys_src, rp);
                        return;
                    }
                    self.endpoint.deliver(&mut self.stack, ctx, &plain);
                }
            }
            proto::UDP => {
                if let Ok(d) = UdpDatagram::decode(&pkt.payload) {
                    if d.dst_port == CONTROL_PORT {
                        if let Ok(VipMessage::Misdelivery { vip }) = VipMessage::decode(&d.payload)
                        {
                            self.vip.handle_error_or_notice(ctx, vip);
                        }
                        return;
                    }
                }
                self.endpoint.deliver(&mut self.stack, ctx, &pkt);
            }
            proto::ICMP => {
                // An unreachable about a VIP packet we sent: purge the
                // stale mapping; the next send falls back via home.
                if let Ok(msg) = IcmpMessage::decode(&pkt.payload) {
                    if msg.is_error() {
                        if let Some(original) = msg.original() {
                            if original.len() >= 20 + 4 && original[9] == proto::VIP {
                                let hl = usize::from(original[0] & 0xf) * 4;
                                if original.len() >= hl + 4 {
                                    let b = &original[hl..hl + 4];
                                    let vip = Ipv4Addr::new(b[0], b[1], b[2], b[3]);
                                    self.vip.handle_error_or_notice(ctx, vip);
                                    self.endpoint.log.icmp_errors.push(msg);
                                    return;
                                }
                            }
                        }
                    }
                }
                self.endpoint.deliver(&mut self.stack, ctx, &pkt);
            }
            _ => {
                self.endpoint.deliver(&mut self.stack, ctx, &pkt);
            }
        }
    }
}

impl Node for VipHostNode {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            if let StackEvent::Deliver { pkt, .. } = ev {
                self.deliver(ctx, pkt);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        self.stack.on_timer(ctx, timer);
    }
}

/// A mobile VIP host: physical address changes on every move.
#[derive(Debug)]
pub struct VipMobileNode {
    /// The IP engine.
    pub stack: IpStack,
    /// The application layer.
    pub endpoint: Endpoint,
    /// The home network prefix.
    pub home_prefix: Prefix,
    /// The home router (authoritative mapping holder + flood origin).
    pub home_router: Ipv4Addr,
    /// Default gateway at home.
    pub home_gateway: Ipv4Addr,
    /// The current physical (temporary) address.
    pub phys: Ipv4Addr,
    vip: VipEndpoint,
    move_seq: u16,
    iface: IfaceId,
    awaiting_temp: bool,
    current_agent: Option<Ipv4Addr>,
}

impl VipMobileNode {
    /// Creates a mobile host (starts at home; physical = VIP).
    pub fn new(
        vip: Ipv4Addr,
        home_prefix: Prefix,
        home_router: Ipv4Addr,
        home_gateway: Ipv4Addr,
    ) -> VipMobileNode {
        VipMobileNode {
            stack: IpStack::new(false),
            endpoint: Endpoint::new(),
            home_prefix,
            home_router,
            home_gateway,
            phys: vip,
            vip: VipEndpoint::new(vip),
            move_seq: 0,
            iface: IfaceId(0),
            awaiting_temp: false,
            current_agent: None,
        }
    }

    /// The host's permanent VIP address.
    pub fn vip(&self) -> Ipv4Addr {
        self.vip.vip
    }

    /// Pings `dst` (a VIP address).
    pub fn ping(&mut self, ctx: &mut Ctx<'_>, dst: Ipv4Addr) {
        let (_seq, pkt) = self.endpoint.make_ping(ctx.now(), self.vip.vip, dst);
        let phys = self.phys;
        self.vip.send(&mut self.stack, ctx, phys, pkt);
    }

    /// Sends UDP to a VIP address.
    pub fn send_udp(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) {
        let pkt = Endpoint::make_udp(self.vip.vip, dst, src_port, dst_port, payload);
        let phys = self.phys;
        self.vip.send(&mut self.stack, ctx, phys, pkt);
    }

    fn request_temp(&mut self, ctx: &mut Ctx<'_>, agent: Ipv4Addr) {
        self.awaiting_temp = true;
        self.current_agent = Some(agent);
        let msg = VipMessage::TempRequest { vip: self.vip.vip };
        let d = UdpDatagram::new(CONTROL_PORT, CONTROL_PORT, msg.encode());
        let pkt =
            Ipv4Packet::new(self.vip.vip, Ipv4Addr::BROADCAST, proto::UDP, d.encode()).with_ttl(1);
        self.stack.send_link_broadcast(ctx, self.iface, pkt);
    }

    fn adopt_temp(&mut self, ctx: &mut Ctx<'_>, temp: Ipv4Addr, prefix_len: u8, gateway: Ipv4Addr) {
        ctx.stats().incr("vip.mobile_moves");
        self.awaiting_temp = false;
        self.phys = temp;
        self.stack.remove_iface_binding(self.iface);
        self.stack.add_iface(self.iface, temp, Prefix::new(temp, prefix_len));
        self.stack.arp.clear_iface(self.iface);
        self.stack.routes.remove(Prefix::default_route());
        self.stack
            .routes
            .add(Prefix::default_route(), NextHop::Gateway { iface: self.iface, via: gateway });
        // Register home and start the invalidation flood there.
        self.move_seq = self.move_seq.wrapping_add(1);
        let reg = VipMessage::HomeRegister { vip: self.vip.vip, phys: temp };
        self.stack.send_udp(ctx, self.home_router, CONTROL_PORT, CONTROL_PORT, reg.encode());
        let inv = VipMessage::Invalidate { vip: self.vip.vip, seq: self.move_seq };
        self.stack.send_udp(ctx, self.home_router, CONTROL_PORT, CONTROL_PORT, inv.encode());
    }

    fn deliver(&mut self, ctx: &mut Ctx<'_>, pkt: Ipv4Packet) {
        match pkt.protocol {
            proto::VIP => {
                if let Some(plain) = self.vip.receive(&mut self.stack, ctx, pkt) {
                    if let Ok(IcmpMessage::EchoRequest { ident, seq, payload }) =
                        IcmpMessage::decode(&plain.payload)
                    {
                        let reply = IcmpMessage::EchoReply { ident, seq, payload };
                        let rp =
                            Ipv4Packet::new(self.vip.vip, plain.src, proto::ICMP, reply.encode());
                        let phys = self.phys;
                        self.vip.send(&mut self.stack, ctx, phys, rp);
                        return;
                    }
                    self.endpoint.deliver(&mut self.stack, ctx, &plain);
                }
            }
            proto::UDP => {
                if let Ok(d) = UdpDatagram::decode(&pkt.payload) {
                    if d.dst_port == BEACON_PORT {
                        if let Ok(b) = Beacon::decode(&d.payload) {
                            if b.protocol == proto::VIP
                                && self.current_agent != Some(b.agent)
                                && b.agent != self.home_gateway
                            {
                                self.request_temp(ctx, b.agent);
                            }
                        }
                        return;
                    }
                    if d.dst_port == CONTROL_PORT {
                        match VipMessage::decode(&d.payload) {
                            Ok(VipMessage::TempAssign { vip, temp, prefix_len })
                                if vip == self.vip.vip && self.awaiting_temp =>
                            {
                                if temp.is_unspecified() {
                                    ctx.stats().incr("vip.temp_denied");
                                } else {
                                    let gw = self.current_agent.unwrap_or(self.home_gateway);
                                    self.adopt_temp(ctx, temp, prefix_len, gw);
                                }
                            }
                            Ok(VipMessage::Misdelivery { vip }) => {
                                self.vip.handle_error_or_notice(ctx, vip);
                            }
                            _ => {}
                        }
                        return;
                    }
                }
                self.endpoint.deliver(&mut self.stack, ctx, &pkt);
            }
            _ => {
                self.endpoint.deliver(&mut self.stack, ctx, &pkt);
            }
        }
    }
}

impl Node for VipMobileNode {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
        self.stack.add_iface(self.iface, self.vip.vip, self.home_prefix);
        self.stack.routes.add(
            Prefix::default_route(),
            NextHop::Gateway { iface: self.iface, via: self.home_gateway },
        );
        self.current_agent = Some(self.home_gateway);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
        for ev in self.stack.handle_frame(ctx, iface, frame) {
            if let StackEvent::Deliver { pkt, .. } = ev {
                self.deliver(ctx, pkt);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken) {
        self.stack.on_timer(ctx, timer);
    }

    fn on_link(&mut self, _ctx: &mut Ctx<'_>, iface: IfaceId, event: LinkEvent) {
        if event == LinkEvent::Detached {
            self.stack.arp.clear_iface(iface);
            self.current_agent = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    #[test]
    fn messages_round_trip() {
        for m in [
            VipMessage::TempRequest { vip: a(1) },
            VipMessage::TempAssign { vip: a(1), temp: a(9), prefix_len: 24 },
            VipMessage::HomeRegister { vip: a(1), phys: a(9) },
            VipMessage::Invalidate { vip: a(1), seq: 3 },
            VipMessage::Misdelivery { vip: a(1) },
        ] {
            assert_eq!(VipMessage::decode(&m.encode()).unwrap(), m);
        }
        assert!(VipMessage::decode(&[77]).is_err());
    }

    #[test]
    fn shim_is_28_bytes_and_round_trips() {
        // §7: "The overhead added to each packet for the VIP header is
        // 28 bytes."
        let mut pkt = Ipv4Packet::new(a(1), a(7), proto::UDP, b"data".to_vec());
        let before = pkt.wire_len();
        vip_encapsulate(&mut pkt, a(100), a(101));
        assert_eq!(pkt.wire_len(), before + VIP_SHIM_LEN);
        assert_eq!(VIP_SHIM_LEN, 28);
        let shim = vip_decapsulate(&mut pkt).unwrap();
        assert_eq!(shim.vip_src, a(1));
        assert_eq!(shim.vip_dst, a(7));
        assert_eq!(pkt.src, a(1));
        assert_eq!(pkt.dst, a(7));
        assert_eq!(pkt.protocol, proto::UDP);
        assert_eq!(pkt.payload, b"data");
    }

    #[test]
    fn shim_rejects_non_vip() {
        let pkt = Ipv4Packet::new(a(1), a(7), proto::UDP, vec![0; 40]);
        assert!(vip_shim(&pkt).is_err());
    }
}

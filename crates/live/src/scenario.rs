//! The shared scenario both runtimes execute: the paper's Figure 1
//! internetwork with `N` mobile hosts roaming D → E → home, probed from
//! the correspondent S before, between and after every move.
//!
//! The point of this module is that *one* description drives both legs
//! of the cross-validation. Node construction, interface order (which
//! fixes the global MAC assignment), addressing and the probe/move
//! timetable are defined once; `sim.rs` compiles them into a
//! [`netsim::World`] and `run.rs` into a fleet of UDP agents. With one
//! mobile host the build order reproduces
//! [`scenarios::topology::Figure1`] exactly — same node ids, same MACs,
//! same addresses — so journeys are comparable across all three.

use std::net::Ipv4Addr;

use mhrp::{MhrpConfig, MhrpHostNode, MhrpRouterNode, MobileHostNode};
use netsim::time::{SimDuration, SimTime};
use netsim::IfaceId;
use scenarios::topology::{
    backbone_addr, configure_host_s_stack, configure_router_stack, net, Figure1Addrs,
};
use workload::{MoveOp, MovePlan};

/// UDP destination port probe traffic is addressed to.
pub const PROBE_PORT: u16 = 9900;

/// Probe payload length in bytes (≥ `workload::PROBE_HEADER`).
pub const PROBE_LEN: usize = 64;

/// Segment index of the backbone in the shared segment table.
pub const SEG_BACKBONE: usize = 0;
/// Segment index of network A (S's network).
pub const SEG_NET_A: usize = 1;
/// Segment index of network B (the mobiles' home network).
pub const SEG_NET_B: usize = 2;
/// Segment index of network C.
pub const SEG_NET_C: usize = 3;
/// Segment index of wireless network D (R4's cell).
pub const SEG_NET_D: usize = 4;
/// Segment index of wireless network E (R5's cell).
pub const SEG_NET_E: usize = 5;

/// Cell table for the [`MovePlan`]: cell 0 = D, cell 1 = E, cell 2 =
/// home (B).
pub const CELLS: [usize; 3] = [SEG_NET_D, SEG_NET_E, SEG_NET_B];

/// One scheduled probe from S.
#[derive(Debug, Clone, Copy)]
pub struct ProbePoint {
    /// When S transmits it.
    pub at: SimTime,
    /// Which mobile host it targets (index, not node id).
    pub mobile: usize,
    /// Flow id stamped into the probe payload (`mobile + 1`).
    pub flow: u32,
    /// Sequence number within the flow.
    pub seq: u32,
}

/// Everything both runtimes need to execute the same experiment.
#[derive(Debug, Clone)]
pub struct LoopbackScenario {
    /// Number of mobile hosts (homed on network B at `10.2.0.77 + i`).
    pub mobiles: usize,
    /// Protocol configuration shared by every MHRP node.
    pub config: MhrpConfig,
    /// Latency of the wired segments in the simulated leg.
    pub wired_latency: SimDuration,
    /// Deterministic seed for the simulated leg.
    pub seed: u64,
    /// Probe timetable, in send order.
    pub probes: Vec<ProbePoint>,
    /// Mobility timetable (host index `i` = mobile `i`, cells per
    /// [`CELLS`]).
    pub moves: MovePlan,
    /// When the experiment ends.
    pub end: SimTime,
}

impl LoopbackScenario {
    /// The canonical cross-validation scenario: each mobile visits
    /// D → E → home with three probes per dwell period, staggered a
    /// little per mobile so handoffs never coincide.
    ///
    /// Protocol timers are tightened (200 ms advertisements, 100 ms
    /// registration retry) so the whole experiment — three handoffs,
    /// nine probes per mobile — fits in about 2 wall seconds while
    /// leaving two full advertisement periods of settling margin
    /// between every move and the next probe.
    pub fn canonical(mobiles: usize) -> LoopbackScenario {
        assert!(mobiles >= 1, "need at least one mobile host");
        assert!(mobiles <= 64, "address plan supports at most 64 mobiles");
        let config = MhrpConfig {
            advertisement_interval: SimDuration::from_millis(200),
            registration_retry: SimDuration::from_millis(100),
            ..MhrpConfig::default()
        };
        let mut moves = MovePlan::new();
        let mut probes = Vec::new();
        for m in 0..mobiles {
            let stagger = SimDuration::from_millis(20 * m as u64);
            for (phase, cell) in [(0u64, 0usize), (1, 1), (2, 2)] {
                let move_at = SimTime::from_millis(300 + 600 * phase) + stagger;
                moves = moves.op(move_at, MoveOp::Attach { host: m, cell });
                for k in 0..3u64 {
                    probes.push(ProbePoint {
                        at: move_at + SimDuration::from_millis(300 + 50 * k),
                        mobile: m,
                        flow: m as u32 + 1,
                        seq: (phase * 3 + k) as u32,
                    });
                }
            }
        }
        probes.sort_by_key(|p| p.at);
        let end = SimTime::from_millis(2200) + SimDuration::from_millis(20 * mobiles as u64);
        LoopbackScenario {
            mobiles,
            config,
            wired_latency: SimDuration::from_micros(500),
            seed: 42,
            probes,
            moves,
            end,
        }
    }

    /// Total node count: five routers, S, and the mobiles.
    pub fn node_count(&self) -> usize {
        6 + self.mobiles
    }

    /// Node index of the correspondent host S.
    pub fn s_index(&self) -> usize {
        5
    }

    /// Node index of mobile `i`.
    pub fn mobile_index(&self, i: usize) -> usize {
        6 + i
    }

    /// Home address of mobile `i` (`10.2.0.77 + i`).
    pub fn mobile_addr(&self, i: usize) -> Ipv4Addr {
        Ipv4Addr::new(10, 2, 0, 77 + i as u8)
    }

    /// Which segment index each interface of each node starts attached
    /// to, in global interface-creation order (this order fixes the MAC
    /// assignment both runtimes share).
    pub fn iface_plan(&self) -> Vec<Vec<usize>> {
        let mut plan = vec![
            vec![SEG_BACKBONE, SEG_NET_A], // R1
            vec![SEG_BACKBONE, SEG_NET_B], // R2
            vec![SEG_BACKBONE, SEG_NET_C], // R3
            vec![SEG_NET_C, SEG_NET_D],    // R4
            vec![SEG_NET_C, SEG_NET_E],    // R5
            vec![SEG_NET_A],               // S
        ];
        for _ in 0..self.mobiles {
            plan.push(vec![SEG_NET_B]);
        }
        plan
    }

    /// UDP source port for probes of `flow`.
    pub fn src_port(flow: u32) -> u16 {
        40_000 + flow as u16
    }

    /// Builds node `index`'s protocol core, fully configured — the
    /// single construction path both runtimes share.
    pub fn build_node(&self, index: usize) -> BuiltNode {
        let addrs = Figure1Addrs::plan();
        match index {
            0..=4 => {
                let pos = index as u8 + 1;
                let mut r = match pos {
                    2 => MhrpRouterNode::new(self.config.clone())
                        .with_home_agent(IfaceId(1))
                        .with_advertiser(vec![IfaceId(1)]),
                    4 | 5 => MhrpRouterNode::new(self.config.clone())
                        .with_foreign_agent(IfaceId(1))
                        .with_advertiser(vec![IfaceId(1)]),
                    _ => MhrpRouterNode::new(self.config.clone()),
                };
                if pos == 1 {
                    r.cache_enabled = true;
                }
                configure_router_stack(&mut r.stack, pos);
                BuiltNode::Router(r)
            }
            5 => {
                let mut h = MhrpHostNode::new(&self.config);
                configure_host_s_stack(&mut h.stack);
                BuiltNode::Host(h)
            }
            i => {
                let m = i - 6;
                assert!(m < self.mobiles, "node index {i} out of range");
                BuiltNode::Mobile(MobileHostNode::new(
                    self.mobile_addr(m),
                    addrs.home_prefix,
                    addrs.r2,
                    addrs.r2,
                    self.config.clone(),
                ))
            }
        }
    }
}

/// A constructed protocol core, typed (the sans-io harness needs the
/// concrete node type, not a trait object).
#[allow(clippy::large_enum_variant)]
pub enum BuiltNode {
    /// One of R1–R5.
    Router(MhrpRouterNode),
    /// The correspondent host S.
    Host(MhrpHostNode),
    /// A mobile host.
    Mobile(MobileHostNode),
}

/// Re-exported for callers wanting the canonical address plan.
pub fn plan_addrs() -> Figure1Addrs {
    Figure1Addrs::plan()
}

/// `10.n.0.0/24` (network 0 is the backbone) — re-exported from
/// [`scenarios::topology`] for convenience.
pub fn net_prefix(n: u8) -> ip::Prefix {
    net(n)
}

/// Router `r`'s backbone address, re-exported likewise.
pub fn router_backbone_addr(r: u8) -> Ipv4Addr {
    backbone_addr(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_one_mobile_matches_figure1_shape() {
        let sc = LoopbackScenario::canonical(1);
        assert_eq!(sc.node_count(), 7);
        assert_eq!(sc.iface_plan().iter().map(Vec::len).sum::<usize>(), 12);
        assert_eq!(sc.probes.len(), 9);
        assert_eq!(sc.moves.handoffs(), 3);
        assert!(sc.moves.end() < sc.end);
        assert_eq!(sc.mobile_addr(0), Figure1Addrs::plan().m);
    }

    #[test]
    fn probes_leave_settling_margin_after_each_move() {
        let sc = LoopbackScenario::canonical(3);
        for p in &sc.probes {
            let nearest_move_before = sc
                .moves
                .ops()
                .iter()
                .filter(|(at, op)| {
                    matches!(op, MoveOp::Attach { host, .. } if *host == p.mobile) && *at <= p.at
                })
                .map(|(at, _)| *at)
                .max()
                .expect("every probe follows a move");
            assert!(p.at.since(nearest_move_before) >= SimDuration::from_millis(300));
        }
    }
}

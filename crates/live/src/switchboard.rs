//! The live analogue of the simulator's broadcast segments: a shared
//! map from `(node, iface)` to a UDP socket address and the segment the
//! interface is currently attached to.
//!
//! A sender asks for the destinations of a frame; the switchboard
//! applies exactly the segment delivery rule the simulator uses (every
//! *other* attachment on the same segment whose MAC matches, or all of
//! them for broadcast) and returns socket addresses instead of
//! scheduling deliveries. Mobility is a segment reassignment here plus a
//! [`netsim::LinkEvent`] delivered to the moving agent — mirroring
//! `World::move_iface`.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex};

use netsim::{IfaceId, MacAddr, NodeId};

/// One registered interface: where it is and how to reach it.
#[derive(Debug, Clone)]
pub struct Port {
    /// Owning node (global numbering shared with the simulated world).
    pub node: NodeId,
    /// Node-local interface id.
    pub iface: IfaceId,
    /// Link-layer address (same global assignment order as the world).
    pub mac: MacAddr,
    /// The UDP socket this interface receives on.
    pub addr: SocketAddr,
    /// The segment index the interface is attached to (`None` =
    /// detached, out of every cell's range).
    pub segment: Option<usize>,
}

/// Shared, cloneable segment-membership table.
#[derive(Debug, Clone, Default)]
pub struct Switchboard {
    inner: Arc<Mutex<Vec<Port>>>,
}

impl Switchboard {
    /// An empty switchboard.
    pub fn new() -> Switchboard {
        Switchboard::default()
    }

    /// Registers an interface (call once per interface before agents
    /// start).
    pub fn register(&self, port: Port) {
        self.inner.lock().unwrap().push(port);
    }

    /// Re-attaches `(node, iface)` to `segment` (or detaches it).
    pub fn set_segment(&self, node: NodeId, iface: IfaceId, segment: Option<usize>) {
        let mut ports = self.inner.lock().unwrap();
        let port = ports
            .iter_mut()
            .find(|p| p.node == node && p.iface == iface)
            .expect("set_segment on an unregistered interface");
        port.segment = segment;
    }

    /// The segment `(node, iface)` is currently attached to.
    pub fn segment_of(&self, node: NodeId, iface: IfaceId) -> Option<usize> {
        let ports = self.inner.lock().unwrap();
        ports.iter().find(|p| p.node == node && p.iface == iface).and_then(|p| p.segment)
    }

    /// Applies the segment delivery rule for a frame sent by
    /// `(node, iface)` to link-layer destination `dst`: returns the
    /// sender's segment (for tagging the datagram) and the socket
    /// addresses of every other attachment that should receive a copy.
    /// A detached sender reaches nobody (the harness normally suppresses
    /// that transmit before it gets here).
    pub fn destinations(
        &self,
        node: NodeId,
        iface: IfaceId,
        dst: MacAddr,
    ) -> (Option<usize>, Vec<SocketAddr>) {
        let ports = self.inner.lock().unwrap();
        let Some(seg) =
            ports.iter().find(|p| p.node == node && p.iface == iface).and_then(|p| p.segment)
        else {
            return (None, Vec::new());
        };
        let broadcast = dst.is_broadcast();
        let dests = ports
            .iter()
            .filter(|p| {
                p.segment == Some(seg)
                    && !(p.node == node && p.iface == iface)
                    && (broadcast || p.mac == dst)
            })
            .map(|p| p.addr)
            .collect();
        (Some(seg), dests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    fn board() -> Switchboard {
        let sb = Switchboard::new();
        for (i, seg) in [(0, Some(0)), (1, Some(0)), (2, Some(1))] {
            sb.register(Port {
                node: NodeId(i),
                iface: IfaceId(0),
                mac: MacAddr::from_index(i as u64),
                addr: addr(9000 + i as u16),
                segment: seg,
            });
        }
        sb
    }

    #[test]
    fn unicast_reaches_only_the_matching_mac_on_the_same_segment() {
        let sb = board();
        let (seg, dests) = sb.destinations(NodeId(0), IfaceId(0), MacAddr::from_index(1));
        assert_eq!(seg, Some(0));
        assert_eq!(dests, vec![addr(9001)]);
        // Node 2 is on another segment: unreachable even by broadcast.
        let (_, dests) = sb.destinations(NodeId(0), IfaceId(0), MacAddr([0xff; 6]));
        assert_eq!(dests, vec![addr(9001)]);
    }

    #[test]
    fn moving_changes_reachability_and_detached_sends_nowhere() {
        let sb = board();
        sb.set_segment(NodeId(2), IfaceId(0), Some(0));
        let (_, dests) = sb.destinations(NodeId(0), IfaceId(0), MacAddr([0xff; 6]));
        assert_eq!(dests.len(), 2);
        sb.set_segment(NodeId(0), IfaceId(0), None);
        let (seg, dests) = sb.destinations(NodeId(0), IfaceId(0), MacAddr([0xff; 6]));
        assert_eq!((seg, dests.len()), (None, 0));
    }
}

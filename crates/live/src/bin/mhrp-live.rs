//! `mhrp-live` — run the Figure 1 internetwork as real UDP agents on
//! 127.0.0.1 and cross-validate every probe's journey against the
//! deterministic simulator.
//!
//! ```text
//! cargo run --release -p live --bin mhrp-live -- --agents 4
//! ```
//!
//! `--agents N` roams N mobile hosts (N = 1 reproduces the paper's
//! Figure 1 exactly). Exits non-zero if the live run and the simulated
//! run disagree on any journey, or if either run misses its SLOs.

use live::{cross_validate, run_live, run_sim, LoopbackScenario, RunOutcome};

fn usage() -> ! {
    eprintln!("usage: mhrp-live [--agents N] [--skip-sim]");
    std::process::exit(2)
}

fn print_outcome(o: &RunOutcome) {
    println!("== {} leg ==", o.label);
    for p in &o.probes {
        let status = if p.delivered { "ok  " } else { "LOST" };
        println!(
            "  flow {} seq {}: {}  hops {:?}  latency {} us",
            p.flow, p.seq, status, p.hops, p.latency_us
        );
    }
    println!("  SLO report: {}", if o.report.pass { "PASS" } else { "FAIL" });
    for c in &o.report.checks {
        println!(
            "    {:<26} measured {:>12.3}  threshold {:>12.3}  {}",
            c.name,
            c.measured,
            c.threshold,
            if c.pass { "pass" } else { "FAIL" }
        );
    }
}

fn main() {
    let mut agents = 1usize;
    let mut skip_sim = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--agents" => {
                agents = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--skip-sim" => skip_sim = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if agents == 0 || agents > 64 {
        eprintln!("--agents must be in 1..=64");
        std::process::exit(2);
    }

    let sc = LoopbackScenario::canonical(agents);
    println!(
        "scenario: {} mobile host(s), {} probes, {} handoffs, {} ms timeline",
        sc.mobiles,
        sc.probes.len(),
        sc.moves.handoffs(),
        sc.end.as_millis()
    );

    let sim = if skip_sim {
        None
    } else {
        let sim = run_sim(&sc);
        print_outcome(&sim);
        Some(sim)
    };

    let rt = tokio::runtime::Runtime::new().expect("runtime");
    let live = rt.block_on(run_live(&sc)).expect("live run");
    print_outcome(&live);
    println!("{}", live.report.to_json());

    let ok = match sim {
        Some(sim) => {
            let xv = cross_validate(&sim, &live);
            println!("{xv}");
            xv.pass()
        }
        None => live.report.pass,
    };
    std::process::exit(if ok { 0 } else { 1 });
}

//! Per-probe results, SLO evaluation and the sim-vs-live
//! cross-validation check.

use netsim::time::SimTime;
use workload::{evaluate, SloMeasurements, SloReport, SloThresholds};

use crate::scenario::LoopbackScenario;

/// What happened to one probe in one runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Flow id (mobile index + 1).
    pub flow: u32,
    /// Sequence number within the flow.
    pub seq: u32,
    /// Whether it reached the mobile host.
    pub delivered: bool,
    /// Node ids of every frame delivery along its journey, in order
    /// (e.g. `[R1, R2, R3, R4, M]` for the home-routed first packet).
    pub hops: Vec<u32>,
    /// One-way send-to-delivery latency in microseconds (0 if lost).
    pub latency_us: u64,
}

/// One runtime's complete result: per-probe outcomes plus the SLO
/// report computed from them.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Which runtime produced this (`"sim"` or `"live"`).
    pub label: String,
    /// Outcomes in probe send order.
    pub probes: Vec<ProbeOutcome>,
    /// The machine-checkable SLO evaluation.
    pub report: SloReport,
}

/// A delivery observed at a mobile host, before matching to the probe
/// timetable.
#[derive(Debug, Clone)]
pub(crate) struct RawDelivery {
    pub flow: u32,
    pub seq: u32,
    pub at: SimTime,
    pub hops: Vec<u32>,
}

/// Matches raw deliveries to the scenario's probe timetable and
/// evaluates the SLOs. `send_times` maps `(flow, seq)` to the actual
/// transmission time in the producing runtime's clock; `sim_seconds`,
/// `overhead_bytes` and `updates_sent` feed the rate/overhead SLOs.
pub(crate) fn assemble(
    label: &str,
    sc: &LoopbackScenario,
    deliveries: Vec<RawDelivery>,
    send_times: &[(u32, u32, SimTime)],
    sim_seconds: f64,
    overhead_bytes: u64,
    updates_sent: u64,
) -> RunOutcome {
    let mut probes = Vec::with_capacity(sc.probes.len());
    let mut latencies = Vec::new();
    for p in &sc.probes {
        let sent_at =
            send_times.iter().find(|(f, s, _)| (*f, *s) == (p.flow, p.seq)).map(|(_, _, at)| *at);
        let hit = deliveries.iter().find(|d| (d.flow, d.seq) == (p.flow, p.seq));
        let outcome = match (hit, sent_at) {
            (Some(d), Some(sent)) => {
                let latency_us = if d.at >= sent { d.at.since(sent).as_micros() } else { 0 };
                latencies.push(latency_us);
                ProbeOutcome {
                    flow: p.flow,
                    seq: p.seq,
                    delivered: true,
                    hops: d.hops.clone(),
                    latency_us,
                }
            }
            _ => ProbeOutcome {
                flow: p.flow,
                seq: p.seq,
                delivered: false,
                hops: Vec::new(),
                latency_us: 0,
            },
        };
        probes.push(outcome);
    }
    latencies.sort_unstable();
    let pct = |p: usize| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            latencies[(latencies.len() - 1) * p / 100]
        }
    };
    let delivered = probes.iter().filter(|p| p.delivered).count() as u64;
    let m = SloMeasurements {
        sim_seconds,
        handoffs: sc.moves.handoffs(),
        sent: sc.probes.len() as u64,
        delivered,
        latency_p50_us: pct(50),
        latency_p99_us: pct(99),
        latency_max_us: latencies.last().copied().unwrap_or(0),
        overhead_bytes,
        updates_sent,
        ..SloMeasurements::default()
    };
    let report = evaluate(format!("loopback-{}m", sc.mobiles), label, m, &SloThresholds::default());
    RunOutcome { label: label.to_string(), probes, report }
}

/// The result of comparing a simulated and a live run of the same
/// scenario.
#[derive(Debug, Clone)]
pub struct CrossValidation {
    /// Probes compared.
    pub compared: usize,
    /// Human-readable description of every disagreement.
    pub mismatches: Vec<String>,
}

impl CrossValidation {
    /// True when every probe took the identical hop sequence in both
    /// runtimes (and both delivered the same set).
    pub fn pass(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl std::fmt::Display for CrossValidation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.pass() {
            write!(f, "cross-validation PASS: {} probes, identical journeys", self.compared)
        } else {
            writeln!(f, "cross-validation FAIL ({} mismatches):", self.mismatches.len())?;
            for m in &self.mismatches {
                writeln!(f, "  {m}")?;
            }
            Ok(())
        }
    }
}

/// Compares per-probe delivery and hop sequences between two runs of
/// the same scenario. Latencies are *not* compared — wall time and
/// simulated time measure different things — but both reports' SLO
/// verdicts are.
pub fn cross_validate(sim: &RunOutcome, live: &RunOutcome) -> CrossValidation {
    let mut mismatches = Vec::new();
    if sim.probes.len() != live.probes.len() {
        mismatches.push(format!(
            "probe count differs: {} in {}, {} in {}",
            sim.probes.len(),
            sim.label,
            live.probes.len(),
            live.label
        ));
    }
    for (a, b) in sim.probes.iter().zip(&live.probes) {
        if (a.flow, a.seq) != (b.flow, b.seq) {
            mismatches.push(format!(
                "probe order differs: ({},{}) vs ({},{})",
                a.flow, a.seq, b.flow, b.seq
            ));
            continue;
        }
        if a.delivered != b.delivered {
            mismatches.push(format!(
                "flow {} seq {}: delivered={} in {}, delivered={} in {}",
                a.flow, a.seq, a.delivered, sim.label, b.delivered, live.label
            ));
        } else if a.hops != b.hops {
            mismatches.push(format!(
                "flow {} seq {}: hops {:?} in {} vs {:?} in {}",
                a.flow, a.seq, a.hops, sim.label, b.hops, live.label
            ));
        }
    }
    for (outcome, label) in [(sim, &sim.label), (live, &live.label)] {
        if !outcome.report.pass {
            mismatches.push(format!("SLO report of {label} failed"));
        }
    }
    CrossValidation { compared: sim.probes.len().min(live.probes.len()), mismatches }
}

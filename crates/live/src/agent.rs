//! One live agent: a [`NodeHarness`]-driven protocol core behind real
//! UDP sockets.
//!
//! Each agent owns one node's harness and a command mailbox. Socket
//! reader tasks (spawned by the runtime in `run.rs`) forward received
//! datagrams into the mailbox; the coordinator injects link events,
//! probe requests and shutdown the same way. The agent's loop is the
//! live counterpart of the simulator's event loop for one node: wait
//! until the next timer deadline or the next message, then dispatch
//! through the harness — which reproduces the simulator's pipeline
//! (telemetry, counters, drop rules) exactly.

use std::net::Ipv4Addr;

use mhrp::{MhrpHostNode, MobileHostNode};
use netsim::time::SimTime;
use netsim::{Clock, Frame, IfaceId, LinkEvent, NodeHarness, NodeId, NodeIo};
use netstack::nodes::UdpRecord;
use telemetry::Event;
use tokio::sync::mpsc::UnboundedReceiver;
use tokio::time::Duration;
use workload::encode_probe;

use crate::clock::WallClock;
use crate::scenario::{LoopbackScenario, PROBE_LEN, PROBE_PORT};
use crate::switchboard::Switchboard;
use crate::wire::LiveDatagram;

/// A message into an agent's mailbox.
#[derive(Debug)]
pub enum Cmd {
    /// A datagram arrived on interface `iface`.
    Datagram {
        /// Receiving interface.
        iface: IfaceId,
        /// Raw datagram bytes.
        bytes: Vec<u8>,
    },
    /// The node's interface attached or detached (mobility).
    Link {
        /// Affected interface.
        iface: IfaceId,
        /// What happened.
        event: LinkEvent,
    },
    /// Originate one probe to `dst` (only sent to S's agent).
    Probe {
        /// Destination (a mobile's home address).
        dst: Ipv4Addr,
        /// Flow id for the probe payload.
        flow: u32,
        /// Sequence number for the probe payload.
        seq: u32,
    },
    /// Finish up and report.
    Stop,
}

/// What kind of protocol core an agent runs (decides result
/// extraction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// One of R1–R5.
    Router,
    /// The correspondent host S.
    HostS,
    /// A mobile host (scenario index).
    Mobile(usize),
}

/// The [`NodeIo`] implementation for live mode: frames become
/// datagrams fanned out per the switchboard's segment membership.
///
/// Sends use blocking `std` clones of the agent's bound sockets — a
/// loopback `send_to` does not block in practice, and staying
/// synchronous keeps `NodeIo`'s contract (the harness calls it from
/// inside dispatch).
pub struct LiveIo {
    switchboard: Switchboard,
    senders: Vec<std::net::UdpSocket>,
    /// Datagrams successfully handed to the kernel.
    pub datagrams_sent: u64,
    /// Datagrams the kernel refused (counted, not retried: the
    /// simulator's lossy-segment analogue).
    pub send_errors: u64,
}

impl LiveIo {
    /// Creates the I/O backend from per-interface sender sockets (index
    /// = interface id).
    pub fn new(switchboard: Switchboard, senders: Vec<std::net::UdpSocket>) -> LiveIo {
        LiveIo { switchboard, senders, datagrams_sent: 0, send_errors: 0 }
    }
}

impl NodeIo for LiveIo {
    fn transmit(&mut self, node: NodeId, iface: IfaceId, frame: Frame) {
        let (seg, dests) = self.switchboard.destinations(node, iface, frame.dst);
        let Some(seg) = seg else { return };
        let bytes = LiveDatagram::from_frame(seg as u16, &frame).encode();
        for dest in dests {
            match self.senders[iface.0].send_to(&bytes, dest) {
                Ok(_) => self.datagrams_sent += 1,
                Err(_) => self.send_errors += 1,
            }
        }
    }
}

/// Everything an agent hands back when stopped.
#[derive(Debug)]
pub struct AgentReport {
    /// The node this agent ran.
    pub node_id: NodeId,
    /// Its full structured telemetry (journey fragments included).
    pub events: Vec<Event>,
    /// `mhrp.overhead_bytes` counter at shutdown.
    pub overhead_bytes: u64,
    /// `mhrp.updates_sent` counter at shutdown.
    pub updates_sent: u64,
    /// Application-level deliveries (mobile hosts only).
    pub udp_rx: Vec<UdpRecord>,
    /// Actual probe transmission times (S only): `(flow, seq, at)`.
    pub probe_sends: Vec<(u32, u32, SimTime)>,
    /// Datagrams sent on the wire.
    pub datagrams_sent: u64,
    /// Datagrams dropped because their segment tag did not match the
    /// interface's current cell (in flight across a handoff).
    pub stale_segment_drops: u64,
    /// Datagrams that failed to parse.
    pub malformed: u64,
}

/// One live agent, ready to [`run`](Agent::run).
pub struct Agent {
    /// The sans-io dispatch engine around the protocol core.
    pub harness: NodeHarness,
    /// What the core is (decides extraction on shutdown).
    pub role: Role,
    /// Frame egress.
    pub io: LiveIo,
    /// Shared wall clock.
    pub clock: WallClock,
    /// Command mailbox (readers and the coordinator hold senders).
    pub rx: UnboundedReceiver<Cmd>,
    /// Shared segment membership (for stale-datagram filtering).
    pub switchboard: Switchboard,
}

impl Agent {
    /// Runs the agent until [`Cmd::Stop`] (or every sender hangs up),
    /// then extracts the report.
    pub async fn run(mut self) -> AgentReport {
        let clock = self.clock;
        self.harness.start(clock.now(), &mut self.io);
        let mut probe_sends = Vec::new();
        let mut stale_segment_drops = 0u64;
        let mut malformed = 0u64;
        loop {
            self.harness.tick(clock.now(), &mut self.io);
            let wait = match self.harness.next_deadline() {
                Some(d) => {
                    let now = clock.now();
                    if d <= now {
                        Duration::ZERO
                    } else {
                        Duration::from_nanos(d.since(now).as_nanos())
                    }
                }
                None => Duration::from_millis(50),
            };
            match tokio::time::timeout(wait, self.rx.recv()).await {
                Err(_) => continue, // deadline reached: tick at loop top
                Ok(None) => break,
                Ok(Some(Cmd::Stop)) => break,
                Ok(Some(Cmd::Datagram { iface, bytes })) => {
                    let datagram = match LiveDatagram::decode(&bytes) {
                        Ok(d) => d,
                        Err(_) => {
                            malformed += 1;
                            continue;
                        }
                    };
                    // A datagram tagged with another segment was in
                    // flight while this interface changed cells: the
                    // radio-range drop, made explicit.
                    let here = self.switchboard.segment_of(self.harness.node_id(), iface);
                    if here != Some(datagram.segment as usize) {
                        stale_segment_drops += 1;
                        continue;
                    }
                    let frame = datagram.into_frame();
                    self.harness.on_frame(clock.now(), &mut self.io, iface, &frame);
                }
                Ok(Some(Cmd::Link { iface, event })) => {
                    self.harness.on_link(clock.now(), &mut self.io, iface, event);
                }
                Ok(Some(Cmd::Probe { dst, flow, seq })) => {
                    let at = clock.now();
                    let payload = encode_probe(flow, seq, PROBE_LEN);
                    self.harness.with_node::<MhrpHostNode, _>(at, &mut self.io, |h, ctx| {
                        h.send_udp(ctx, dst, LoopbackScenario::src_port(flow), PROBE_PORT, payload);
                    });
                    probe_sends.push((flow, seq, at));
                }
            }
        }
        self.harness.tick(clock.now(), &mut self.io);

        let udp_rx = match self.role {
            Role::Mobile(_) => self.harness.node::<MobileHostNode>().log().udp_rx.clone(),
            _ => Vec::new(),
        };
        AgentReport {
            node_id: self.harness.node_id(),
            events: self.harness.telemetry().events().copied().collect(),
            overhead_bytes: self.harness.stats().counter("mhrp.overhead_bytes"),
            updates_sent: self.harness.stats().counter("mhrp.updates_sent"),
            udp_rx,
            probe_sends,
            datagrams_sent: self.io.datagrams_sent,
            stale_segment_drops,
            malformed,
        }
    }
}

//! The simulated reference leg: compiles a [`LoopbackScenario`] into a
//! [`World`] and extracts per-probe journeys, using exactly the node
//! construction and interface order the live leg uses.

use mhrp::{MhrpHostNode, MobileHostNode};
use netsim::time::SimTime;
use netsim::{IfaceId, NodeId, SegmentId, SegmentParams, World};
use workload::{decode_probe, encode_probe};

use crate::outcome::{assemble, RawDelivery, RunOutcome};
use crate::scenario::{
    BuiltNode, LoopbackScenario, CELLS, PROBE_LEN, PROBE_PORT, SEG_NET_D, SEG_NET_E,
};

/// Runs the scenario in the deterministic simulator and returns the
/// per-probe outcome.
pub fn run_sim(sc: &LoopbackScenario) -> RunOutcome {
    let mut w = World::new(sc.seed);
    let mut segments: Vec<SegmentId> = Vec::new();
    for idx in 0..6 {
        let params = if idx == SEG_NET_D || idx == SEG_NET_E {
            SegmentParams::wireless()
        } else {
            SegmentParams::with_latency(sc.wired_latency)
        };
        segments.push(w.add_segment(params));
    }

    let plan = sc.iface_plan();
    let mut node_ids = Vec::with_capacity(sc.node_count());
    for (i, ifaces) in plan.iter().enumerate() {
        let id = match sc.build_node(i) {
            BuiltNode::Router(r) => w.add_node(r),
            BuiltNode::Host(h) => w.add_node(h),
            BuiltNode::Mobile(m) => w.add_node(m),
        };
        for &seg in ifaces {
            w.add_iface(id, Some(segments[seg]));
        }
        node_ids.push(id);
    }
    w.set_telemetry(true);
    w.start();

    let s = node_ids[sc.s_index()];
    for p in &sc.probes {
        let dst = sc.mobile_addr(p.mobile);
        let (flow, seq) = (p.flow, p.seq);
        w.schedule_call(p.at, move |w| {
            w.with_node::<MhrpHostNode, _>(s, |h, ctx| {
                h.send_udp(
                    ctx,
                    dst,
                    LoopbackScenario::src_port(flow),
                    PROBE_PORT,
                    encode_probe(flow, seq, PROBE_LEN),
                );
            });
        });
    }

    let hosts: Vec<(NodeId, IfaceId)> =
        (0..sc.mobiles).map(|i| (node_ids[sc.mobile_index(i)], IfaceId(0))).collect();
    let cells: Vec<SegmentId> = CELLS.iter().map(|&c| segments[c]).collect();
    sc.moves.install(&mut w, &hosts, &cells);

    w.run_until(sc.end);

    let mut deliveries = Vec::new();
    for i in 0..sc.mobiles {
        let m = node_ids[sc.mobile_index(i)];
        for rec in &w.node::<MobileHostNode>(m).log().udp_rx {
            if rec.dst_port != PROBE_PORT {
                continue;
            }
            let Some((flow, seq)) = decode_probe(&rec.payload) else { continue };
            let hops = rec
                .journey
                .map(|j| w.journey_hops(j).into_iter().map(|n| n.0 as u32).collect())
                .unwrap_or_default();
            deliveries.push(RawDelivery { flow, seq, at: rec.at, hops });
        }
    }

    // In the simulator the scheduled time *is* the send time.
    let send_times: Vec<(u32, u32, SimTime)> =
        sc.probes.iter().map(|p| (p.flow, p.seq, p.at)).collect();
    assemble(
        "sim",
        sc,
        deliveries,
        &send_times,
        sc.end.as_secs_f64(),
        w.stats().counter("mhrp.overhead_bytes"),
        w.stats().counter("mhrp.updates_sent"),
    )
}

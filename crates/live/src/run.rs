//! The live leg: spawns one UDP agent per node on 127.0.0.1, replays
//! the scenario's probe and mobility timetable in wall time, and
//! reconstructs per-probe journeys from the merged agent telemetry.

use netsim::time::SimTime;
use netsim::{Clock, IfaceId, LinkEvent, MacAddr, NodeHarness, NodeId};
use tokio::net::UdpSocket;
use tokio::sync::mpsc::{unbounded_channel, UnboundedSender};
use tokio::time::Duration;
use workload::{decode_probe, MoveOp};

use crate::agent::{Agent, AgentReport, Cmd, LiveIo, Role};
use crate::clock::WallClock;
use crate::outcome::{assemble, RawDelivery, RunOutcome};
use crate::scenario::{BuiltNode, LoopbackScenario, CELLS, PROBE_PORT};
use crate::switchboard::{Port, Switchboard};

/// Extra wall time after the last scheduled event before agents are
/// stopped, so in-flight registrations and updates drain.
const SETTLE: Duration = Duration::from_millis(300);

/// Per-agent journey-id namespace: agent `n` mints ids starting at
/// `(n + 1) << 40`, so ids stay globally unique across the fleet and a
/// journey's fragments can be merged by id alone.
fn journey_base(node: NodeId) -> u64 {
    ((node.0 as u64) + 1) << 40
}

/// Runs the scenario over real UDP sockets on the loopback interface
/// inside the current tokio runtime, returning the per-probe outcome.
///
/// Wall time maps 1:1 onto the scenario's timeline: `canonical(1)`
/// takes about 2.5 s of real time.
pub async fn run_live(sc: &LoopbackScenario) -> std::io::Result<RunOutcome> {
    let clock = WallClock::new();
    let switchboard = Switchboard::new();
    let plan = sc.iface_plan();

    // Bind every interface's socket and register it before any agent
    // starts, so the fleet's membership view is complete from t = 0
    // (the simulator's world is fully built before `start`, likewise).
    let mut sockets: Vec<Vec<UdpSocket>> = Vec::with_capacity(plan.len());
    let mut mac_index = 0u64;
    for (i, ifaces) in plan.iter().enumerate() {
        let mut per_iface = Vec::with_capacity(ifaces.len());
        for (k, &seg) in ifaces.iter().enumerate() {
            let sock = UdpSocket::bind("127.0.0.1:0").await?;
            switchboard.register(Port {
                node: NodeId(i),
                iface: IfaceId(k),
                mac: MacAddr::from_index(mac_index),
                addr: sock.local_addr()?,
                segment: Some(seg),
            });
            per_iface.push(sock);
            mac_index += 1;
        }
        sockets.push(per_iface);
    }

    // Build harnesses (same construction path as the sim leg), wire up
    // mailboxes and socket readers, and spawn the agents.
    let mut txs: Vec<UnboundedSender<Cmd>> = Vec::with_capacity(plan.len());
    let mut handles = Vec::with_capacity(plan.len());
    let mut mac_index = 0u64;
    for (i, ifaces) in plan.iter().enumerate() {
        let node_id = NodeId(i);
        let (role, mut harness) = match sc.build_node(i) {
            BuiltNode::Router(r) => {
                (Role::Router, NodeHarness::new(node_id, r, sc.seed ^ i as u64))
            }
            BuiltNode::Host(h) => (Role::HostS, NodeHarness::new(node_id, h, sc.seed ^ i as u64)),
            BuiltNode::Mobile(m) => {
                (Role::Mobile(i - 6), NodeHarness::new(node_id, m, sc.seed ^ i as u64))
            }
        };
        for _ in ifaces {
            harness.add_iface(MacAddr::from_index(mac_index), true);
            mac_index += 1;
        }
        harness.set_telemetry(true);
        harness.telemetry_mut().set_journey_base(journey_base(node_id));

        let (tx, rx) = unbounded_channel();
        let mut senders = Vec::with_capacity(ifaces.len());
        for (k, sock) in sockets[i].iter().enumerate() {
            senders.push(sock.std_clone()?);
            let reader_tx = tx.clone();
            let iface = IfaceId(k);
            let sock = sock.std_clone()?;
            let sock = UdpSocket::from_std(sock)?;
            tokio::task::spawn(async move {
                let mut buf = vec![0u8; 4096];
                while let Ok((len, _)) = sock.recv_from(&mut buf).await {
                    let cmd = Cmd::Datagram { iface, bytes: buf[..len].to_vec() };
                    if reader_tx.send(cmd).is_err() {
                        break;
                    }
                }
            });
        }

        let agent = Agent {
            harness,
            role,
            io: LiveIo::new(switchboard.clone(), senders),
            clock,
            rx,
            switchboard: switchboard.clone(),
        };
        txs.push(tx);
        handles.push(tokio::task::spawn(agent.run()));
    }
    drop(sockets); // readers own independent descriptors

    // The coordinator: replay moves and probes on the shared clock.
    enum Step {
        Move(MoveOp),
        Probe { mobile: usize, flow: u32, seq: u32 },
    }
    let mut timetable: Vec<(SimTime, Step)> = Vec::new();
    for &(at, op) in sc.moves.ops() {
        timetable.push((at, Step::Move(op)));
    }
    for p in &sc.probes {
        timetable.push((p.at, Step::Probe { mobile: p.mobile, flow: p.flow, seq: p.seq }));
    }
    timetable.sort_by_key(|(at, _)| *at);

    let s_tx = txs[sc.s_index()].clone();
    for (at, step) in timetable {
        let now = clock.now();
        if at > now {
            tokio::time::sleep(Duration::from_nanos(at.since(now).as_nanos())).await;
        }
        match step {
            Step::Move(MoveOp::Attach { host, cell }) => {
                let node = NodeId(sc.mobile_index(host));
                let tx = &txs[node.0];
                // Mirror `World::move_iface`: detach from the old cell
                // (if attached), then attach to the new one.
                if switchboard.segment_of(node, IfaceId(0)).is_some() {
                    switchboard.set_segment(node, IfaceId(0), None);
                    let _ = tx.send(Cmd::Link { iface: IfaceId(0), event: LinkEvent::Detached });
                }
                switchboard.set_segment(node, IfaceId(0), Some(CELLS[cell]));
                let _ = tx.send(Cmd::Link { iface: IfaceId(0), event: LinkEvent::Attached });
            }
            Step::Move(MoveOp::Detach { host }) => {
                let node = NodeId(sc.mobile_index(host));
                switchboard.set_segment(node, IfaceId(0), None);
                let _ =
                    txs[node.0].send(Cmd::Link { iface: IfaceId(0), event: LinkEvent::Detached });
            }
            Step::Probe { mobile, flow, seq } => {
                let _ = s_tx.send(Cmd::Probe { dst: sc.mobile_addr(mobile), flow, seq });
            }
        }
    }

    let now = clock.now();
    if sc.end > now {
        tokio::time::sleep(Duration::from_nanos(sc.end.since(now).as_nanos())).await;
    }
    tokio::time::sleep(SETTLE).await;
    for tx in &txs {
        let _ = tx.send(Cmd::Stop);
    }
    let mut reports: Vec<AgentReport> = Vec::with_capacity(handles.len());
    for h in handles {
        reports.push(h.await.expect("agent task does not panic"));
    }
    Ok(collect(sc, reports))
}

/// Merges agent telemetry into global journeys and matches mobile-side
/// deliveries to the probe timetable.
fn collect(sc: &LoopbackScenario, reports: Vec<AgentReport>) -> RunOutcome {
    let mut events: Vec<telemetry::Event> = Vec::new();
    let mut overhead_bytes = 0;
    let mut updates_sent = 0;
    let mut send_times: Vec<(u32, u32, SimTime)> = Vec::new();
    for r in &reports {
        events.extend(r.events.iter().copied());
        overhead_bytes += r.overhead_bytes;
        updates_sent += r.updates_sent;
        send_times.extend(r.probe_sends.iter().copied());
    }
    // One shared wall clock means per-node timestamps form one global
    // timeline; a journey's frame deliveries are strictly ordered by
    // real propagation, so sorting by time reconstructs the hop order.
    events.sort_by_key(|e| e.at_nanos);

    let mut deliveries = Vec::new();
    for r in &reports {
        for rec in &r.udp_rx {
            if rec.dst_port != PROBE_PORT {
                continue;
            }
            let Some((flow, seq)) = decode_probe(&rec.payload) else { continue };
            let hops = rec
                .journey
                .map(|j| {
                    events
                        .iter()
                        .filter(|e| {
                            e.journey == Some(j)
                                && matches!(e.kind, telemetry::EventKind::FrameRx { .. })
                        })
                        .filter_map(|e| e.node)
                        .collect()
                })
                .unwrap_or_default();
            deliveries.push(RawDelivery { flow, seq, at: rec.at, hops });
        }
    }

    let wall_seconds = sc.end.as_secs_f64();
    assemble("live", sc, deliveries, &send_times, wall_seconds, overhead_bytes, updates_sent)
}

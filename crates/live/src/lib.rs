//! Live deployment mode for the MHRP reproduction: the same sans-io
//! protocol cores that run inside the deterministic simulator, driven
//! as real UDP endpoints on 127.0.0.1.
//!
//! The simulator proves properties of the *protocol under a model*;
//! this crate closes the loop by executing the identical state machines
//! over an actual network substrate and machine-checking that nothing
//! about the model was leaking into the protocol. Three pieces:
//!
//! * **Agents** ([`agent`]) — every Figure 1 node (routers, home/foreign
//!   agents, the correspondent S, the mobile hosts) becomes a
//!   [`netsim::NodeHarness`] fed by real sockets via the datagram
//!   framing in [`wire`], with timers driven by a wall [`clock`], and a
//!   [`switchboard`] playing the role of broadcast segments and radio
//!   cells.
//! * **The shared scenario** ([`scenario`]) — one description of the
//!   topology, probe timetable and mobility plan that both runtimes
//!   compile ([`sim::run_sim`] into a `World`, [`run::run_live`] into a
//!   socket fleet).
//! * **Cross-validation** ([`outcome`]) — per-probe hop sequences are
//!   reconstructed from structured telemetry on both sides and compared
//!   exactly; SLOs are evaluated with the same
//!   [`workload::SloThresholds`] machinery the soak suite uses.
//!
//! See DESIGN.md §11 for the trait surface and what "determinism"
//! means across the sim/live boundary, and `src/bin/mhrp-live.rs` for
//! the runnable harness (`cargo run --release -p live --bin mhrp-live
//! -- --agents 4`).

#![deny(missing_docs)]

pub mod agent;
pub mod clock;
pub mod outcome;
pub mod run;
pub mod scenario;
pub mod sim;
pub mod switchboard;
pub mod wire;

pub use agent::{Agent, AgentReport, Cmd, LiveIo, Role};
pub use clock::WallClock;
pub use outcome::{cross_validate, CrossValidation, ProbeOutcome, RunOutcome};
pub use run::run_live;
pub use scenario::{LoopbackScenario, ProbePoint, PROBE_LEN, PROBE_PORT};
pub use sim::run_sim;
pub use switchboard::{Port, Switchboard};
pub use wire::{LiveDatagram, WireError};

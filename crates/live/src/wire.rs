//! Datagram framing for live mode: one simulated link-layer [`Frame`]
//! per UDP datagram.
//!
//! The payload of the datagram is the frame's payload *unchanged* — the
//! same bytes the simulator would carry on a segment — so every wire
//! encoding in the workspace (ARP, IPv4, UDP, ICMP, MHRP headers and
//! control messages) crosses a real socket byte-for-byte. The live
//! header in front of it carries only what a broadcast segment provides
//! ambiently in the simulator: the link-layer addressing, the ethertype,
//! the segment the frame was sent on (so a datagram that was in flight
//! while its receiver moved cells can be recognized and dropped, the
//! loopback analogue of leaving radio range), and the telemetry journey
//! id, which must travel with the packet for cross-runtime journey
//! reconstruction to work.
//!
//! Decoding is total: any byte string either parses or returns a
//! [`WireError`]. It never panics — property-tested under arbitrary
//! mutation, because a live endpoint's peer is a network, not a trusted
//! caller.

use netsim::frame::EtherType;
use netsim::{Frame, MacAddr};
use telemetry::JourneyId;

/// Magic bytes opening every live datagram ("MHrp Live Datagram").
pub const MAGIC: [u8; 4] = *b"MHLD";

/// Wire-format version this build speaks.
pub const VERSION: u8 = 1;

/// Fixed header length in front of the frame payload.
pub const HEADER_LEN: usize = 4 + 1 + 2 + 1 + 8 + 6 + 6 + 2;

/// Why a datagram failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Shorter than the fixed header.
    TooShort {
        /// Actual datagram length.
        len: usize,
    },
    /// The magic bytes did not match [`MAGIC`].
    BadMagic,
    /// Unsupported version byte.
    BadVersion(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TooShort { len } => {
                write!(f, "datagram of {len} bytes is shorter than the {HEADER_LEN}-byte header")
            }
            WireError::BadMagic => write!(f, "bad magic (not a live-mode datagram)"),
            WireError::BadVersion(v) => write!(f, "unsupported live wire version {v}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded live datagram: a [`Frame`] plus the segment it was sent on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveDatagram {
    /// Index of the segment (broadcast domain) the sender transmitted on.
    pub segment: u16,
    /// The telemetry journey riding on the frame, if any.
    pub journey: Option<JourneyId>,
    /// Link-layer source address.
    pub src: MacAddr,
    /// Link-layer destination address.
    pub dst: MacAddr,
    /// Raw ethertype value.
    pub ethertype: u16,
    /// The frame payload, byte-identical to the simulator's.
    pub payload: Vec<u8>,
}

impl LiveDatagram {
    /// Wraps `frame` for transmission on segment index `segment`.
    pub fn from_frame(segment: u16, frame: &Frame) -> LiveDatagram {
        LiveDatagram {
            segment,
            journey: frame.journey,
            src: frame.src,
            dst: frame.dst,
            ethertype: frame.ethertype.as_u16(),
            payload: frame.payload.to_vec(),
        }
    }

    /// Converts back into the [`Frame`] the receiving node dispatches.
    pub fn into_frame(self) -> Frame {
        let mut frame =
            Frame::new(self.src, self.dst, EtherType::from_u16(self.ethertype), self.payload);
        frame.journey = self.journey;
        frame
    }

    /// Serializes to the on-the-wire byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + self.payload.len());
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&self.segment.to_be_bytes());
        match self.journey {
            Some(j) => {
                buf.push(1);
                buf.extend_from_slice(&j.0.to_be_bytes());
            }
            None => {
                buf.push(0);
                buf.extend_from_slice(&[0u8; 8]);
            }
        }
        buf.extend_from_slice(&self.src.0);
        buf.extend_from_slice(&self.dst.0);
        buf.extend_from_slice(&self.ethertype.to_be_bytes());
        buf.extend_from_slice(&self.payload);
        buf
    }

    /// Parses a received datagram. Total: returns an error (never
    /// panics) on any malformed input.
    pub fn decode(bytes: &[u8]) -> Result<LiveDatagram, WireError> {
        if bytes.len() < HEADER_LEN {
            return Err(WireError::TooShort { len: bytes.len() });
        }
        if bytes[..4] != MAGIC {
            return Err(WireError::BadMagic);
        }
        if bytes[4] != VERSION {
            return Err(WireError::BadVersion(bytes[4]));
        }
        let segment = u16::from_be_bytes([bytes[5], bytes[6]]);
        let journey = if bytes[7] & 1 != 0 {
            let mut id = [0u8; 8];
            id.copy_from_slice(&bytes[8..16]);
            Some(JourneyId(u64::from_be_bytes(id)))
        } else {
            None
        };
        let mut src = [0u8; 6];
        src.copy_from_slice(&bytes[16..22]);
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&bytes[22..28]);
        let ethertype = u16::from_be_bytes([bytes[28], bytes[29]]);
        Ok(LiveDatagram {
            segment,
            journey,
            src: MacAddr(src),
            dst: MacAddr(dst),
            ethertype,
            payload: bytes[HEADER_LEN..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_frame() {
        let mut f = Frame::new(
            MacAddr::from_index(3),
            MacAddr::from_index(9),
            EtherType::Ipv4,
            vec![1, 2, 3, 4],
        );
        f.journey = Some(JourneyId(0xdead_beef));
        let d = LiveDatagram::from_frame(5, &f);
        let back = LiveDatagram::decode(&d.encode()).unwrap();
        assert_eq!(back, d);
        let g = back.into_frame();
        assert_eq!((g.src, g.dst, g.ethertype), (f.src, f.dst, f.ethertype));
        assert_eq!(g.payload, f.payload);
        assert_eq!(g.journey, f.journey);
    }

    #[test]
    fn rejects_short_and_foreign_datagrams() {
        assert_eq!(LiveDatagram::decode(&[]), Err(WireError::TooShort { len: 0 }));
        assert_eq!(
            LiveDatagram::decode(&[0u8; HEADER_LEN]),
            Err(WireError::BadMagic),
            "an all-zero datagram is not ours"
        );
        let mut bad = LiveDatagram::from_frame(
            0,
            &Frame::broadcast(MacAddr::from_index(0), EtherType::Arp, vec![]),
        )
        .encode();
        bad[4] = 9;
        assert_eq!(LiveDatagram::decode(&bad), Err(WireError::BadVersion(9)));
    }
}

//! Wall-clock time as [`SimTime`]: the live implementation of the
//! sans-io [`Clock`] trait.

use std::time::Instant;

use netsim::time::SimTime;
use netsim::Clock;

/// A monotonic wall clock mapped onto the simulator's time axis:
/// `t = 0` at construction, one [`SimTime`] nanosecond per real
/// nanosecond. Copies share the epoch, so every agent in a live run
/// stamps telemetry on one common timeline — the property journey
/// merging depends on.
///
/// [`Instant`] is monotone, so this clock never runs backwards on a
/// healthy host; the [`netsim::NodeHarness`] clamp underneath makes even
/// a misbehaving clock safe (see `tests/clock_skew.rs`).
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    t0: Instant,
}

impl WallClock {
    /// A clock whose zero is now.
    pub fn new() -> WallClock {
        WallClock { t0: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.t0.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_share_the_epoch_and_time_moves_forward() {
        let c = WallClock::new();
        let d = c;
        let a = c.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = d.now();
        assert!(b > a);
        assert!(b.since(a) >= netsim::time::SimDuration::from_millis(1));
    }
}

//! The acceptance test for live mode: the same `MovePlan` replayed in
//! the deterministic simulator and over real UDP sockets on 127.0.0.1
//! must yield the identical hop sequence for every probe, and both
//! runs must pass the machine-checked SLO report.

use live::{cross_validate, run_live, run_sim, LoopbackScenario};

#[test]
fn sim_and_live_agree_on_every_probe_journey() {
    let sc = LoopbackScenario::canonical(1);
    let sim = run_sim(&sc);
    let rt = tokio::runtime::Runtime::new().expect("runtime");
    let live = rt.block_on(run_live(&sc)).expect("live run");

    assert_eq!(sim.probes.len(), 9);
    assert!(sim.probes.iter().all(|p| p.delivered), "sim lost probes: {:?}", sim.probes);
    assert!(live.probes.iter().all(|p| p.delivered), "live lost probes: {:?}", live.probes);

    // The §6.2 signature must be visible in *both* runtimes: the first
    // probe after the move to D pays the home-routed triangle through
    // R2 (node 1), and a later probe in the same dwell takes the
    // cache-direct path that skips it.
    for o in [&sim, &live] {
        let first = &o.probes[0];
        let settled = &o.probes[2];
        assert!(
            first.hops.contains(&1),
            "{}: first probe should cross the home agent, hops {:?}",
            o.label,
            first.hops
        );
        assert!(
            !settled.hops.contains(&1),
            "{}: settled probe should bypass the home agent, hops {:?}",
            o.label,
            settled.hops
        );
        assert_eq!(*first.hops.last().unwrap(), 6, "{}: probes end at M", o.label);
    }

    let xv = cross_validate(&sim, &live);
    assert!(xv.pass(), "{xv}");
    assert!(sim.report.pass, "sim SLO report failed:\n{}", sim.report.to_json());
    assert!(live.report.pass, "live SLO report failed:\n{}", live.report.to_json());

    // The report must survive its serialization round trip (it is the
    // CI artifact the smoke job parses).
    let back = workload::SloReport::from_json(&live.report.to_json()).expect("parses");
    assert_eq!(back.pass, live.report.pass);
}

//! Clock-skew tolerance (live mode runs on wall clocks, and wall
//! clocks jump): a foreign agent and a mobile host run on
//! [`netsim::NodeHarness`]es driven by an arbitrarily skewed time
//! source, wired to each other by an in-memory cell. Forward jumps of
//! any size must fire each armed MHRP timer (registration backoff,
//! epoch watchdog, advertisement chain) at most once per tick, and
//! backward jumps must freeze node time rather than underflow the
//! `SimTime::since` arithmetic the protocol does freely.

use std::collections::HashMap;

use live::scenario::{BuiltNode, LoopbackScenario};
use mhrp::MobileHostNode;
use netsim::time::{SimDuration, SimTime};
use netsim::{Frame, IfaceId, LinkEvent, MacAddr, NodeHarness, NodeId, NodeIo};
use telemetry::EventKind;

/// Collects transmitted frames for manual routing.
#[derive(Default)]
struct VecIo {
    sent: Vec<(IfaceId, Frame)>,
}

impl NodeIo for VecIo {
    fn transmit(&mut self, _node: NodeId, iface: IfaceId, frame: Frame) {
        self.sent.push((iface, frame));
    }
}

const FA_CELL_MAC: MacAddr = MacAddr([0, 0, 0, 0, 1, 1]);
const M_MAC: MacAddr = MacAddr([0, 0, 0, 0, 2, 2]);

/// R4 (foreign agent, advertising on its cell interface) and a mobile
/// host sharing network D's cell; R4's upstream interface is a black
/// hole, so home-agent registrations go unanswered and the mobile's
/// retry/backoff machinery stays live for the whole test.
struct Cell {
    fa: NodeHarness,
    fa_io: VecIo,
    m: NodeHarness,
    m_io: VecIo,
}

impl Cell {
    fn new() -> Cell {
        let sc = LoopbackScenario::canonical(1);
        let BuiltNode::Router(r4) = sc.build_node(3) else { panic!("node 3 is R4") };
        let BuiltNode::Mobile(m) = sc.build_node(6) else { panic!("node 6 is the mobile") };
        let mut fa = NodeHarness::new(NodeId(3), r4, 7);
        fa.add_iface(MacAddr([0, 0, 0, 0, 1, 0]), true); // upstream (black hole)
        fa.add_iface(FA_CELL_MAC, true); // the cell
        fa.set_telemetry(true);
        let mut m = NodeHarness::new(NodeId(6), m, 9);
        m.add_iface(M_MAC, true);
        m.set_telemetry(true);
        Cell { fa, fa_io: VecIo::default(), m, m_io: VecIo::default() }
    }

    /// Delivers queued frames back and forth until the cell is quiet.
    fn pump(&mut self, now: SimTime) {
        for _ in 0..200 {
            let fa_out: Vec<_> = self.fa_io.sent.drain(..).collect();
            let m_out: Vec<_> = self.m_io.sent.drain(..).collect();
            if fa_out.is_empty() && m_out.is_empty() {
                return;
            }
            for (iface, frame) in fa_out {
                // Only the cell interface reaches the mobile; upstream
                // transmissions vanish (no home agent in this world).
                if iface == IfaceId(1) && (frame.dst.is_broadcast() || frame.dst == M_MAC) {
                    self.m.on_frame(now, &mut self.m_io, IfaceId(0), &frame);
                }
            }
            for (_iface, frame) in m_out {
                if frame.dst.is_broadcast() || frame.dst == FA_CELL_MAC {
                    self.fa.on_frame(now, &mut self.fa_io, IfaceId(1), &frame);
                }
            }
        }
        panic!("cell did not quiesce");
    }

    /// Ticks both nodes at `now`, asserting the no-double-fire rule:
    /// within a single tick, no timer token fires twice on one node
    /// (a re-armed timer's deadline is strictly in the future, so a
    /// clock jump of any size yields at most one fire per token).
    fn tick_checked(&mut self, now: SimTime) -> usize {
        let mut fired = 0;
        for (h, io) in [(&mut self.fa, &mut self.fa_io), (&mut self.m, &mut self.m_io)] {
            let before = h.telemetry().len();
            fired += h.tick(now, io);
            let mut per_token: HashMap<u64, u32> = HashMap::new();
            for ev in h.telemetry().events().skip(before) {
                if let EventKind::Timer { token } = ev.kind {
                    *per_token.entry(token).or_default() += 1;
                }
            }
            for (token, count) in per_token {
                assert!(count <= 1, "token {token:#x} fired {count} times in one tick at {now}");
            }
        }
        self.pump(now);
        fired
    }

    /// The mobile "arrives" in the cell: a link bounce, as the live
    /// coordinator (and `World::move_iface`) would deliver it.
    fn arrive(&mut self, at: SimTime) {
        self.m.on_link(at, &mut self.m_io, IfaceId(0), LinkEvent::Detached);
        self.m.on_link(at, &mut self.m_io, IfaceId(0), LinkEvent::Attached);
        self.pump(at);
    }

    fn m_registrations(&self) -> u64 {
        self.m.stats().counter("mhrp.registration_msgs_sent")
    }
}

#[test]
fn forward_jumps_fire_each_timer_once_and_backoff_never_bursts() {
    let mut cell = Cell::new();
    let t0 = SimTime::ZERO;
    cell.fa.start(t0, &mut cell.fa_io);
    cell.m.start(t0, &mut cell.m_io);
    cell.pump(t0);
    cell.arrive(t0 + SimDuration::from_millis(1));

    // Normal time: walk 1.5 s in 10 ms steps. The mobile discovers the
    // foreign agent (advertisements every 200 ms, solicitation sooner)
    // and registers; the home-agent leg is black-holed, so its retry
    // backoff chain keeps running.
    for step in 1..=150u64 {
        cell.tick_checked(t0 + SimDuration::from_millis(10 * step));
    }
    assert!(
        cell.m_registrations() >= 2,
        "mobile should have registered with the FA and retried the HA leg, sent {}",
        cell.m_registrations()
    );

    // Jump an hour ahead in one observation. Every armed timer
    // (backoff retry, watchdog, advertisement chain) is overdue; each
    // must fire exactly once — not once per elapsed period.
    let jumped = SimTime::from_secs(3600);
    let before = cell.m_registrations();
    let fired = cell.tick_checked(jumped);
    assert!(fired >= 1, "overdue timers fire after a forward jump");
    let burst = cell.m_registrations() - before;
    assert!(burst <= 3, "a forward jump must not burst retransmits, sent {burst}");

    // An hour of further walking: the protocol keeps operating on the
    // far side of the jump (watchdog and advertisement chains re-armed
    // relative to the clamped clock, not the skipped epochs).
    let adverts_before = cell.fa.stats().counter("mhrp.adverts_sent");
    for step in 1..=100u64 {
        cell.tick_checked(jumped + SimDuration::from_millis(10 * step));
    }
    assert!(
        cell.fa.stats().counter("mhrp.adverts_sent") > adverts_before,
        "advertiser still periodic after the jump"
    );
}

#[test]
fn backward_jumps_freeze_node_time_instead_of_underflowing() {
    let mut cell = Cell::new();
    let t0 = SimTime::from_secs(5);
    cell.fa.start(t0, &mut cell.fa_io);
    cell.m.start(t0, &mut cell.m_io);
    cell.pump(t0);
    cell.arrive(t0 + SimDuration::from_millis(1));
    for step in 1..=100u64 {
        cell.tick_checked(t0 + SimDuration::from_millis(10 * step));
    }
    let high_water = cell.m.node_now();

    // The clock falls back below the epoch the nodes have already
    // observed: `now.since(last_event)` in the watchdog and backoff
    // code would underflow-panic if the raw time leaked through.
    for back in [SimTime::from_secs(4), SimTime::from_millis(1), SimTime::ZERO] {
        let fired = cell.tick_checked(back);
        assert_eq!(fired, 0, "nothing is due in the past");
        assert_eq!(cell.m.node_now(), high_water, "node time is frozen, not rewound");
        // Frame delivery during the freeze must be safe too: protocol
        // handlers compute durations against their own last-seen times.
        cell.pump(back);
    }

    // When the clock recovers, the timeline resumes from the high-water
    // mark and pending work completes exactly once.
    let resumed = high_water + SimDuration::from_secs(10);
    let fired = cell.tick_checked(resumed);
    assert!(fired >= 1, "pending timers fire once the clock recovers");
    assert!(cell.m.node_now() >= resumed);

    // The mobile core stayed coherent across the whole ordeal: it is
    // still attached to (or re-searching for) the foreign agent, not
    // wedged in a corrupted state.
    let state = cell.m.node::<MobileHostNode>().core.state;
    assert!(
        matches!(
            state,
            mhrp::Attachment::Foreign(_) | mhrp::Attachment::Searching | mhrp::Attachment::Home
        ),
        "mobile state is a legal attachment: {state:?}"
    );
}

//! Property tests of the live datagram codec: everything that crosses
//! a real socket must round-trip exactly, and decoding must be total —
//! arbitrary bytes and arbitrarily mutated valid datagrams return
//! errors, never panic.

use live::wire::{LiveDatagram, WireError, HEADER_LEN};
use netsim::frame::EtherType;
use netsim::{Frame, MacAddr};
use proptest::prelude::*;
use telemetry::JourneyId;

fn arb_datagram() -> impl Strategy<Value = LiveDatagram> {
    (
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u16>(),
        prop::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(segment, journey, src, dst, ethertype, payload)| LiveDatagram {
            segment,
            // Journey 0 is representable; `None` exercises the flag path.
            journey: if journey % 3 == 0 { None } else { Some(JourneyId(journey)) },
            src: MacAddr::from_index(src),
            dst: MacAddr::from_index(dst),
            ethertype,
            payload,
        })
}

proptest! {
    #[test]
    fn datagrams_round_trip(d in arb_datagram()) {
        let bytes = d.encode();
        prop_assert_eq!(bytes.len(), HEADER_LEN + d.payload.len());
        prop_assert_eq!(LiveDatagram::decode(&bytes).unwrap(), d);
    }

    #[test]
    fn frames_survive_the_socket_boundary(
        src in any::<u64>(), dst in any::<u64>(), et in any::<u16>(),
        journey in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
        segment in any::<u16>(),
    ) {
        let mut f = Frame::new(
            MacAddr::from_index(src),
            MacAddr::from_index(dst),
            EtherType::from_u16(et),
            payload.clone(),
        );
        f.journey = Some(JourneyId(journey));
        let wire = LiveDatagram::from_frame(segment, &f).encode();
        let back = LiveDatagram::decode(&wire).unwrap().into_frame();
        prop_assert_eq!(back.src, f.src);
        prop_assert_eq!(back.dst, f.dst);
        prop_assert_eq!(back.ethertype, f.ethertype);
        prop_assert_eq!(back.payload.to_vec(), payload);
        prop_assert_eq!(back.journey, f.journey);
    }

    #[test]
    fn decode_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Must return, never panic; errors are typed.
        if let Err(e) = LiveDatagram::decode(&bytes) {
            prop_assert!(matches!(
                e,
                WireError::TooShort { .. } | WireError::BadMagic | WireError::BadVersion(_)
            ));
        }
    }

    #[test]
    fn decode_is_total_under_mutation(
        d in arb_datagram(),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..16),
        truncate in any::<prop::sample::Index>(),
    ) {
        // Mutate a *valid* encoding: flip bytes, then truncate. The
        // decoder must either parse something or error cleanly.
        let mut bytes = d.encode();
        for (idx, mask) in &flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= mask | 1;
        }
        bytes.truncate(truncate.index(bytes.len() + 1));
        let _ = LiveDatagram::decode(&bytes);
    }
}

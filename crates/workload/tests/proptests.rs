//! Property tests of the workload engine: arbitrary mobility models may
//! only ever attach hosts to cells the layout actually has, equal seeds
//! must replay byte-identically (plans, probe schedules, and stats),
//! and a closed-loop client must never exceed its in-flight window no
//! matter what the network does to its requests.

use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;
use workload::{
    Commuter, FlashCrowd, Flow, FlowCfg, Layout, MobilityModel, MoveOp, MovePlan, Pattern,
    ProbeSend, RandomWaypoint,
};

/// Raw generated mobility-model pick: `(selector, a, b, c)` integers so
/// the stand-in proptest can print failing cases.
type RawModel = (u8, u64, u64, u64);

/// Builds one of the three mobility models from raw integers, keeping
/// every parameter in its valid range.
fn build_model(raw: RawModel, seed: u64, from: SimTime, cells: usize) -> Box<dyn MobilityModel> {
    let (sel, a, b, c) = raw;
    match sel % 3 {
        0 => {
            let dwell_min = SimDuration::from_millis(100 + a % 1_500);
            Box::new(RandomWaypoint {
                seed,
                dwell_min,
                dwell_max: dwell_min + SimDuration::from_millis(b % 2_000),
            })
        }
        1 => Box::new(Commuter {
            seed,
            period: SimDuration::from_millis(300 + a % 4_000),
            work_hops: (b % 3) as usize,
            region_cells: 1 + (c % cells as u64) as usize,
        }),
        _ => Box::new(FlashCrowd {
            seed,
            at: from + SimDuration::from_millis(a % 4_000),
            cell: (c % cells as u64) as usize,
            fraction: (b % 101) as f64 / 100.0,
            arrival_window: SimDuration::from_millis(1 + a % 2_000),
            disperse_after: if b % 2 == 0 {
                None
            } else {
                Some(SimDuration::from_millis(1 + c % 3_000))
            },
        }),
    }
}

fn layout(cells: usize, hosts: usize) -> Layout {
    Layout::round_robin(cells, hosts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Safety: whatever the model and its parameters, a compiled plan
    /// only references hosts and cells the layout has.
    #[test]
    fn mobility_never_attaches_outside_the_layout(
        raw in (any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>()),
        seed in any::<u64>(),
        cells in 1usize..8,
        hosts in 1usize..12,
        window_ms in 1u64..20_000,
    ) {
        let layout = layout(cells, hosts);
        let from = SimTime::from_secs(1);
        let until = from + SimDuration::from_millis(window_ms);
        let model = build_model(raw, seed, from, cells);
        let plan = model.compile(&layout, from, until);
        if let Some(max) = plan.max_cell() {
            prop_assert!(max < cells, "plan references cell {max} of {cells}");
        }
        for (at, op) in plan.ops() {
            prop_assert!(*at >= from && *at < until, "op at {at:?} outside [{from:?}, {until:?})");
            match *op {
                MoveOp::Attach { host, cell } => {
                    prop_assert!(host < hosts, "host {host} of {hosts}");
                    prop_assert!(cell < cells, "cell {cell} of {cells}");
                }
                MoveOp::Detach { host } => prop_assert!(host < hosts, "host {host} of {hosts}"),
            }
        }
    }

    /// Determinism: the same seed compiles the same plan, and an
    /// identically seeded flow driven through an identical tick and
    /// delivery schedule emits the same probes and lands on the same
    /// stats.
    #[test]
    fn equal_seeds_replay_identically(
        raw in (any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>()),
        seed in any::<u64>(),
        cells in 1usize..8,
        hosts in 1usize..12,
        tick_ms in prop::collection::vec(1u64..400, 1..40),
        pattern_sel in any::<u8>(),
        rate_raw in 1u64..100,
    ) {
        let layout = layout(cells, hosts);
        let from = SimTime::from_secs(1);
        let until = from + SimDuration::from_secs(10);
        let model = build_model(raw, seed, from, cells);
        let a: MovePlan = model.compile(&layout, from, until);
        let b: MovePlan = model.compile(&layout, from, until);
        prop_assert_eq!(a, b, "same seed compiled different plans");

        let pattern = match pattern_sel % 4 {
            0 => Pattern::Poisson { per_sec: rate_raw as f64 },
            1 => Pattern::Cbr { interval: SimDuration::from_millis(rate_raw) },
            2 => Pattern::OnOff {
                on: SimDuration::from_millis(rate_raw * 3),
                off: SimDuration::from_millis(rate_raw * 2),
                interval: SimDuration::from_millis(rate_raw),
            },
            _ => Pattern::ClosedLoop {
                window: 1 + (rate_raw % 6) as usize,
                deadline: SimDuration::from_millis(50 + rate_raw),
                retries: (rate_raw % 3) as u32,
            },
        };
        let cfg = FlowCfg { pattern, bytes: 64, seed, limit: None };
        let mut f1 = Flow::new(0, cfg.clone());
        let mut f2 = Flow::new(0, cfg);
        let mut out1: Vec<ProbeSend> = Vec::new();
        let mut out2: Vec<ProbeSend> = Vec::new();
        let mut now = from;
        for &ms in &tick_ms {
            now += SimDuration::from_millis(ms);
            let before1 = out1.len();
            f1.on_tick(now, &mut out1);
            f2.on_tick(now, &mut out2);
            // Deliver (and answer) everything emitted this tick, one
            // tick-length later, identically for both replicas.
            let arrival = now + SimDuration::from_millis(ms / 2);
            let emitted: Vec<u32> = out1[before1..].iter().map(|p| p.seq).collect();
            for seq in emitted {
                f1.on_delivered(seq, arrival);
                f2.on_delivered(seq, arrival);
                f1.on_response(seq, arrival);
                f2.on_response(seq, arrival);
            }
        }
        prop_assert_eq!(&out1, &out2, "same seed emitted different probe schedules");
        prop_assert_eq!(f1.stats, f2.stats, "same seed landed on different stats");
    }

    /// The closed-loop window invariant: however the network delays,
    /// drops, or answers requests, the number of outstanding requests
    /// never exceeds the configured window.
    #[test]
    fn closed_loop_never_exceeds_window(
        window in 1usize..6,
        deadline_ms in 20u64..500,
        retries in 0u32..4,
        seed in any::<u64>(),
        script in prop::collection::vec((1u64..300, any::<u8>()), 1..60),
    ) {
        let mut flow = Flow::new(0, FlowCfg {
            pattern: Pattern::ClosedLoop {
                window,
                deadline: SimDuration::from_millis(deadline_ms),
                retries,
            },
            bytes: 32,
            seed,
            limit: None,
        });
        let mut now = SimTime::from_secs(1);
        let mut outstanding: Vec<u32> = Vec::new();
        let mut out = Vec::new();
        for &(delta_ms, fate) in &script {
            now += SimDuration::from_millis(delta_ms);
            out.clear();
            flow.on_tick(now, &mut out);
            prop_assert!(
                flow.in_flight() <= window,
                "{} in flight with window {window}",
                flow.in_flight()
            );
            outstanding.extend(out.iter().map(|p| p.seq));
            // The generated fate byte picks what the "network" does to
            // the oldest outstanding request this tick: 0 = drop it on
            // the floor, 1 = deliver but never answer, 2-3 = answer.
            if let Some(&seq) = outstanding.first() {
                match fate % 4 {
                    0 => {
                        outstanding.remove(0);
                    }
                    1 => {
                        flow.on_delivered(seq, now);
                        outstanding.remove(0);
                    }
                    _ => {
                        flow.on_delivered(seq, now);
                        flow.on_response(seq, now);
                        outstanding.remove(0);
                    }
                }
            }
            prop_assert!(flow.in_flight() <= window);
        }
        // Every terminal request is accounted for exactly once.
        prop_assert!(flow.stats.completed + flow.stats.failed <= flow.stats.offered);
        prop_assert!(flow.stats.sent >= flow.stats.offered);
    }
}

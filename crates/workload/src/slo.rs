//! The SLO evaluator: machine-readable pass/fail verdicts over a soak.
//!
//! A soak run reduces to a flat set of [`SloMeasurements`] (counts,
//! percentiles, protocol counters), which [`evaluate`] compares against
//! [`SloThresholds`] to produce an [`SloReport`]: one named
//! [`SloCheck`] per objective plus an overall verdict. The report
//! serializes to deterministic JSON ([`SloReport::to_json`], sorted
//! keys, shortest-round-trip floats) and parses back
//! ([`SloReport::from_json`]) — the `slo_report.json` CI artifact and
//! the round-trip tests ride on this.
//!
//! The objectives are the paper's own claims, made operational:
//!
//! * **delivery ratio** — mobility must not silently eat traffic (§5's
//!   at-most-one-lost-packet argument, aggregated);
//! * **p99 delivery latency** — triangle routes and tunnel detours stay
//!   bounded (§2/§5.2);
//! * **handoff loss per handoff** — the ≤1-packet-per-stale-hop claim
//!   (§5), normalized by the mobility plan's handoff count;
//! * **tunnel overhead per packet** — §7's bytes-per-packet comparison;
//! * **update-message rate** — §4.3's rate-limited location updates.

use crate::json::Json;

/// Pass/fail thresholds, one per objective. `f64::INFINITY` (or `0.0`
/// for the ratio floor) disables a check while keeping it reported.
#[derive(Debug, Clone, PartialEq)]
pub struct SloThresholds {
    /// Minimum forward-leg delivery ratio, in `[0, 1]`.
    pub min_delivery_ratio: f64,
    /// Maximum p99 one-way delivery latency, microseconds.
    pub max_p99_latency_us: f64,
    /// Maximum packets lost per handoff.
    pub max_handoff_loss_per_handoff: f64,
    /// Maximum encapsulation overhead per transmitted probe, bytes.
    pub max_overhead_per_packet: f64,
    /// Maximum location-update messages per simulated second.
    pub max_update_rate_per_sec: f64,
}

impl Default for SloThresholds {
    fn default() -> SloThresholds {
        SloThresholds {
            min_delivery_ratio: 0.95,
            max_p99_latency_us: 50_000.0,
            max_handoff_loss_per_handoff: 1.0,
            max_overhead_per_packet: 16.0,
            max_update_rate_per_sec: 50.0,
        }
    }
}

/// Everything a soak run measured, flattened to plain numbers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloMeasurements {
    /// Simulated seconds of offered load.
    pub sim_seconds: f64,
    /// Handoffs the mobility plan performed.
    pub handoffs: u64,
    /// Probe transmissions (retries included).
    pub sent: u64,
    /// Forward-leg arrivals at the mobile hosts.
    pub delivered: u64,
    /// Closed-loop requests completed in deadline.
    pub completed: u64,
    /// Closed-loop requests abandoned after retries.
    pub failed: u64,
    /// Closed-loop retransmissions.
    pub retries: u64,
    /// p50 one-way delivery latency, microseconds.
    pub latency_p50_us: u64,
    /// p99 one-way delivery latency, microseconds.
    pub latency_p99_us: u64,
    /// Maximum one-way delivery latency, microseconds.
    pub latency_max_us: u64,
    /// p99 closed-loop round trip, microseconds (0 with no closed
    /// loops).
    pub rtt_p99_us: u64,
    /// Encapsulation bytes the protocol added (`mhrp.overhead_bytes`
    /// delta).
    pub overhead_bytes: u64,
    /// Location-update messages sent (`mhrp.updates_sent` delta).
    pub updates_sent: u64,
}

impl SloMeasurements {
    /// Forward-leg delivery ratio in `[0, 1]` (1 when nothing was
    /// sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Packets lost per handoff (0 with no handoffs — nothing to blame).
    pub fn handoff_loss_per_handoff(&self) -> f64 {
        if self.handoffs == 0 {
            0.0
        } else {
            self.sent.saturating_sub(self.delivered) as f64 / self.handoffs as f64
        }
    }

    /// Encapsulation bytes per transmitted probe.
    pub fn overhead_per_packet(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.overhead_bytes as f64 / self.sent as f64
        }
    }

    /// Location updates per simulated second.
    pub fn update_rate_per_sec(&self) -> f64 {
        if self.sim_seconds <= 0.0 {
            0.0
        } else {
            self.updates_sent as f64 / self.sim_seconds
        }
    }
}

/// One evaluated objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloCheck {
    /// Objective name (stable identifiers, used by CI greps).
    pub name: String,
    /// The measured value.
    pub measured: f64,
    /// The threshold it was compared against.
    pub threshold: f64,
    /// Whether the objective was met.
    pub pass: bool,
}

/// The machine-readable outcome of one soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Workload description (mobility × traffic).
    pub workload: String,
    /// World description.
    pub world: String,
    /// Raw measurements.
    pub measurements: SloMeasurements,
    /// Per-objective verdicts.
    pub checks: Vec<SloCheck>,
    /// Overall verdict: every check passed.
    pub pass: bool,
}

/// Evaluates measurements against thresholds.
pub fn evaluate(
    workload: impl Into<String>,
    world: impl Into<String>,
    m: SloMeasurements,
    t: &SloThresholds,
) -> SloReport {
    let checks = vec![
        SloCheck {
            name: "delivery_ratio".into(),
            measured: m.delivery_ratio(),
            threshold: t.min_delivery_ratio,
            pass: m.delivery_ratio() >= t.min_delivery_ratio,
        },
        SloCheck {
            name: "p99_latency_us".into(),
            measured: m.latency_p99_us as f64,
            threshold: t.max_p99_latency_us,
            pass: (m.latency_p99_us as f64) <= t.max_p99_latency_us,
        },
        SloCheck {
            name: "handoff_loss_per_handoff".into(),
            measured: m.handoff_loss_per_handoff(),
            threshold: t.max_handoff_loss_per_handoff,
            pass: m.handoff_loss_per_handoff() <= t.max_handoff_loss_per_handoff,
        },
        SloCheck {
            name: "overhead_per_packet".into(),
            measured: m.overhead_per_packet(),
            threshold: t.max_overhead_per_packet,
            pass: m.overhead_per_packet() <= t.max_overhead_per_packet,
        },
        SloCheck {
            name: "update_rate_per_sec".into(),
            measured: m.update_rate_per_sec(),
            threshold: t.max_update_rate_per_sec,
            pass: m.update_rate_per_sec() <= t.max_update_rate_per_sec,
        },
    ];
    let pass = checks.iter().all(|c| c.pass);
    SloReport { workload: workload.into(), world: world.into(), measurements: m, checks, pass }
}

impl SloReport {
    /// Serializes to deterministic JSON (sorted keys; a fixed point of
    /// parse∘render).
    pub fn to_json(&self) -> String {
        let m = &self.measurements;
        let measurements = Json::obj(vec![
            ("sim_seconds", Json::Num(m.sim_seconds)),
            ("handoffs", Json::Num(m.handoffs as f64)),
            ("sent", Json::Num(m.sent as f64)),
            ("delivered", Json::Num(m.delivered as f64)),
            ("completed", Json::Num(m.completed as f64)),
            ("failed", Json::Num(m.failed as f64)),
            ("retries", Json::Num(m.retries as f64)),
            ("latency_p50_us", Json::Num(m.latency_p50_us as f64)),
            ("latency_p99_us", Json::Num(m.latency_p99_us as f64)),
            ("latency_max_us", Json::Num(m.latency_max_us as f64)),
            ("rtt_p99_us", Json::Num(m.rtt_p99_us as f64)),
            ("overhead_bytes", Json::Num(m.overhead_bytes as f64)),
            ("updates_sent", Json::Num(m.updates_sent as f64)),
        ]);
        let checks = Json::Arr(
            self.checks
                .iter()
                .map(|c| {
                    Json::obj(vec![
                        ("name", Json::Str(c.name.clone())),
                        ("measured", Json::Num(c.measured)),
                        ("threshold", Json::Num(c.threshold)),
                        ("pass", Json::Bool(c.pass)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("workload", Json::Str(self.workload.clone())),
            ("world", Json::Str(self.world.clone())),
            ("pass", Json::Bool(self.pass)),
            ("measurements", measurements),
            ("checks", checks),
        ])
        .render()
    }

    /// Parses a report previously produced by [`SloReport::to_json`].
    pub fn from_json(text: &str) -> Result<SloReport, String> {
        let v = Json::parse(text)?;
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field `{k}`"))
        };
        let mo = v.get("measurements").ok_or("missing `measurements`")?;
        let mu = |k: &str| -> Result<u64, String> {
            mo.get(k).and_then(Json::as_u64).ok_or_else(|| format!("missing integer `{k}`"))
        };
        let measurements = SloMeasurements {
            sim_seconds: mo
                .get("sim_seconds")
                .and_then(Json::as_f64)
                .ok_or("missing `sim_seconds`")?,
            handoffs: mu("handoffs")?,
            sent: mu("sent")?,
            delivered: mu("delivered")?,
            completed: mu("completed")?,
            failed: mu("failed")?,
            retries: mu("retries")?,
            latency_p50_us: mu("latency_p50_us")?,
            latency_p99_us: mu("latency_p99_us")?,
            latency_max_us: mu("latency_max_us")?,
            rtt_p99_us: mu("rtt_p99_us")?,
            overhead_bytes: mu("overhead_bytes")?,
            updates_sent: mu("updates_sent")?,
        };
        let mut checks = Vec::new();
        for c in v.get("checks").and_then(Json::as_arr).ok_or("missing `checks`")? {
            checks.push(SloCheck {
                name: c
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("check missing `name`")?
                    .to_owned(),
                measured: c.get("measured").and_then(Json::as_f64).ok_or("check `measured`")?,
                threshold: c.get("threshold").and_then(Json::as_f64).ok_or("check `threshold`")?,
                pass: c.get("pass").and_then(Json::as_bool).ok_or("check `pass`")?,
            });
        }
        Ok(SloReport {
            workload: str_field("workload")?,
            world: str_field("world")?,
            pass: v.get("pass").and_then(Json::as_bool).ok_or("missing `pass`")?,
            measurements,
            checks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SloMeasurements {
        SloMeasurements {
            sim_seconds: 10.0,
            handoffs: 24,
            sent: 400,
            delivered: 392,
            completed: 50,
            failed: 1,
            retries: 3,
            latency_p50_us: 3_000,
            latency_p99_us: 7_500,
            latency_max_us: 12_345,
            rtt_p99_us: 15_000,
            overhead_bytes: 3_200,
            updates_sent: 48,
        }
    }

    #[test]
    fn derived_metrics_compute() {
        let m = sample();
        assert!((m.delivery_ratio() - 0.98).abs() < 1e-9);
        assert!((m.handoff_loss_per_handoff() - 8.0 / 24.0).abs() < 1e-9);
        assert!((m.overhead_per_packet() - 8.0).abs() < 1e-9);
        assert!((m.update_rate_per_sec() - 4.8).abs() < 1e-9);
        // Degenerate denominators stay finite.
        let z = SloMeasurements::default();
        assert_eq!(z.delivery_ratio(), 1.0);
        assert_eq!(z.handoff_loss_per_handoff(), 0.0);
        assert_eq!(z.overhead_per_packet(), 0.0);
        assert_eq!(z.update_rate_per_sec(), 0.0);
    }

    #[test]
    fn evaluate_passes_and_fails_per_objective() {
        let report = evaluate("rw", "1k", sample(), &SloThresholds::default());
        assert!(report.pass, "{:?}", report.checks);
        assert_eq!(report.checks.len(), 5);

        let strict = SloThresholds { min_delivery_ratio: 0.999, ..SloThresholds::default() };
        let report = evaluate("rw", "1k", sample(), &strict);
        assert!(!report.pass);
        let failed: Vec<&str> =
            report.checks.iter().filter(|c| !c.pass).map(|c| c.name.as_str()).collect();
        assert_eq!(failed, ["delivery_ratio"]);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = evaluate("random-waypoint x poisson", "hierarchy-1k", sample(), &{
            SloThresholds::default()
        });
        let text = report.to_json();
        let back = SloReport::from_json(&text).expect("parse");
        assert_eq!(back, report);
        // Serialization is a fixed point: byte-identical re-render.
        assert_eq!(back.to_json(), text);
        // And rejects garbage.
        assert!(SloReport::from_json("{}").is_err());
        assert!(SloReport::from_json("not json").is_err());
    }
}

//! The soak driver: runs workload × world for a simulated duration.
//!
//! The driver owns nothing about the world — it talks to it through the
//! [`SoakIo`] trait (advance time, transmit one probe, poll arrivals),
//! which the scenario layer implements over its node types. Keeping the
//! boundary this narrow keeps the driver deterministic and reusable: the
//! same loop drives the Figure 1 world, the hierarchy worlds and the
//! shootout substrates.
//!
//! The loop is tick-quantized: every [`SoakParams::tick`] of simulated
//! time it advances the world, feeds each [`Flow`] its forward-leg
//! arrivals and responses, and transmits whatever the flows emit. After
//! [`SoakParams::duration`] it stops offering load and keeps polling for
//! [`SoakParams::drain`] so tail in-flight packets are counted before
//! loss is attributed to handoffs. Byte-identical across replays: the
//! only inputs are the world's own deterministic state and the flows'
//! seeds (golden-tested in `scenarios`).

use crate::traffic::{Flow, ProbeSend};
use netsim::time::{SimDuration, SimTime};

/// One probe the driver asks the world to transmit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmit {
    /// Index of the emitting flow (also embedded in the payload).
    pub flow: usize,
    /// Sequence number to embed.
    pub seq: u32,
    /// Payload length in bytes.
    pub bytes: usize,
    /// Whether a response is expected (send to the UDP echo port).
    pub closed_loop: bool,
}

/// The narrow world interface the soak driver runs against.
pub trait SoakIo {
    /// Advances the world to simulated time `t`.
    fn run_until(&mut self, t: SimTime);
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// Transmits one probe from the client toward flow `t.flow`'s
    /// mobile host.
    fn transmit(&mut self, t: &Transmit);
    /// Appends `(seq, arrival)` for every not-yet-reported forward-leg
    /// arrival of flow `flow` at its mobile host.
    fn poll_deliveries(&mut self, flow: usize, out: &mut Vec<(u32, SimTime)>);
    /// Appends `(seq, arrival)` for every not-yet-reported response of
    /// flow `flow` back at the client.
    fn poll_responses(&mut self, flow: usize, out: &mut Vec<(u32, SimTime)>);
}

/// Timing parameters of one soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakParams {
    /// Simulated time during which load is offered.
    pub duration: SimDuration,
    /// Driver tick (poll/emit granularity).
    pub tick: SimDuration,
    /// Extra simulated time to keep polling after the last offer, so
    /// tail in-flight packets are not miscounted as lost.
    pub drain: SimDuration,
}

impl Default for SoakParams {
    fn default() -> SoakParams {
        SoakParams {
            duration: SimDuration::from_secs(10),
            tick: SimDuration::from_millis(50),
            drain: SimDuration::from_secs(2),
        }
    }
}

/// Runs every flow against the world for `p.duration` (+`p.drain`),
/// accumulating results inside the flows themselves.
pub fn run_soak(io: &mut dyn SoakIo, flows: &mut [Flow], p: &SoakParams) {
    assert!(p.tick > SimDuration::ZERO, "tick must be positive");
    let start = io.now();
    let end = start + p.duration;
    let mut arrivals: Vec<(u32, SimTime)> = Vec::new();
    let mut emits: Vec<ProbeSend> = Vec::new();

    let mut t = start;
    loop {
        let now = io.now();
        for (i, flow) in flows.iter_mut().enumerate() {
            arrivals.clear();
            io.poll_deliveries(i, &mut arrivals);
            for &(seq, at) in &arrivals {
                flow.on_delivered(seq, at);
            }
            arrivals.clear();
            io.poll_responses(i, &mut arrivals);
            for &(seq, at) in &arrivals {
                flow.on_response(seq, at);
            }
            emits.clear();
            flow.on_tick(now, &mut emits);
            let closed_loop = flow.cfg.pattern.is_closed_loop();
            for e in &emits {
                io.transmit(&Transmit { flow: i, seq: e.seq, bytes: e.bytes, closed_loop });
            }
        }
        if t >= end {
            break;
        }
        t = if t + p.tick < end { t + p.tick } else { end };
        io.run_until(t);
    }

    // Drain: keep polling arrivals, stop offering load.
    let drain_end = end + p.drain;
    while t < drain_end {
        t = if t + p.tick < drain_end { t + p.tick } else { drain_end };
        io.run_until(t);
        for (i, flow) in flows.iter_mut().enumerate() {
            arrivals.clear();
            io.poll_deliveries(i, &mut arrivals);
            for &(seq, at) in &arrivals {
                flow.on_delivered(seq, at);
            }
            arrivals.clear();
            io.poll_responses(i, &mut arrivals);
            for &(seq, at) in &arrivals {
                flow.on_response(seq, at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{FlowCfg, Pattern};

    /// A loopback world: every transmit arrives `latency` later, and
    /// closed-loop transmits produce a response one `latency` after
    /// that.
    struct Loopback {
        now: SimTime,
        latency: SimDuration,
        deliveries: Vec<Vec<(u32, SimTime)>>,
        responses: Vec<Vec<(u32, SimTime)>>,
    }

    impl Loopback {
        fn new(flows: usize, latency: SimDuration) -> Loopback {
            Loopback {
                now: SimTime::ZERO,
                latency,
                deliveries: vec![Vec::new(); flows],
                responses: vec![Vec::new(); flows],
            }
        }
    }

    impl SoakIo for Loopback {
        fn run_until(&mut self, t: SimTime) {
            self.now = t;
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn transmit(&mut self, t: &Transmit) {
            self.deliveries[t.flow].push((t.seq, self.now + self.latency));
            if t.closed_loop {
                self.responses[t.flow].push((t.seq, self.now + self.latency * 2));
            }
        }
        fn poll_deliveries(&mut self, flow: usize, out: &mut Vec<(u32, SimTime)>) {
            let now = self.now;
            drain_ready(&mut self.deliveries[flow], now, out);
        }
        fn poll_responses(&mut self, flow: usize, out: &mut Vec<(u32, SimTime)>) {
            let now = self.now;
            drain_ready(&mut self.responses[flow], now, out);
        }
    }

    fn drain_ready(queue: &mut Vec<(u32, SimTime)>, now: SimTime, out: &mut Vec<(u32, SimTime)>) {
        let mut later = Vec::new();
        for (seq, at) in queue.drain(..) {
            if at <= now {
                out.push((seq, at));
            } else {
                later.push((seq, at));
            }
        }
        *queue = later;
    }

    #[test]
    fn soak_delivers_and_completes_on_a_loopback_world() {
        let mut io = Loopback::new(2, SimDuration::from_millis(5));
        let mut flows = vec![
            Flow::new(
                0,
                FlowCfg {
                    pattern: Pattern::Cbr { interval: SimDuration::from_millis(100) },
                    bytes: 64,
                    seed: 1,
                    limit: None,
                },
            ),
            Flow::new(
                1,
                FlowCfg {
                    pattern: Pattern::ClosedLoop {
                        window: 3,
                        deadline: SimDuration::from_millis(200),
                        retries: 1,
                    },
                    bytes: 32,
                    seed: 2,
                    limit: Some(20),
                },
            ),
        ];
        let p = SoakParams {
            duration: SimDuration::from_secs(2),
            tick: SimDuration::from_millis(50),
            drain: SimDuration::from_millis(200),
        };
        run_soak(&mut io, &mut flows, &p);
        // CBR: one per 100 ms over 2 s, everything delivered in-drain.
        assert_eq!(flows[0].stats.offered, 21);
        assert_eq!(flows[0].stats.delivered, 21);
        assert_eq!(flows[0].latency_us.max(), 5_000);
        // Closed loop: all 20 requests complete, no retries needed.
        assert_eq!(flows[1].stats.offered, 20);
        assert_eq!(flows[1].stats.completed, 20);
        assert_eq!(flows[1].stats.failed, 0);
        assert!(flows[1].done());
        assert_eq!(flows[1].rtt_us.count(), 20);
    }

    #[test]
    fn soak_is_deterministic() {
        let run = || {
            let mut io = Loopback::new(1, SimDuration::from_millis(3));
            let mut flows = vec![Flow::new(
                0,
                FlowCfg {
                    pattern: Pattern::Poisson { per_sec: 40.0 },
                    bytes: 64,
                    seed: 77,
                    limit: None,
                },
            )];
            run_soak(&mut io, &mut flows, &SoakParams::default());
            (flows[0].stats, flows[0].latency_us.bucket_counts().to_vec())
        };
        assert_eq!(run(), run());
    }
}

//! A minimal JSON value type with parser and writer.
//!
//! The workspace builds with no registry access, so — like the local
//! `rand`/`proptest`/`criterion` stand-ins — serde is replaced by the
//! smallest serializer the suite needs: enough JSON to round-trip an
//! [`crate::slo::SloReport`] byte-for-byte. Numbers are emitted with
//! Rust's shortest-round-trip float formatting, so
//! `parse(render(v)) == v` holds for every value the suite produces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys are kept in a [`BTreeMap`] so rendering is
/// deterministic (sorted keys) — a requirement for the byte-identical
/// replay goldens.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers survive to 2^53, ample for every counter
    /// the suite serializes).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if exactly
    /// representable.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53)).then_some(n as u64)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders with 2-space indentation and sorted keys.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or_else(|| "empty".to_owned())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("expected number at byte {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("name", Json::Str("soak \"rw\"\n".into())),
            ("pass", Json::Bool(true)),
            ("ratio", Json::Num(0.9973)),
            ("count", Json::Num(1_234_567.0)),
            ("items", Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Str("x".into())])),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj(vec![("k", Json::Num(-2.5))])),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, v);
        // Rendering is a fixed point (byte-identical replay).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn accessors_extract_expected_types() {
        let v = Json::parse(r#"{"a": 3, "b": [1, 2], "c": "x", "d": false}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}

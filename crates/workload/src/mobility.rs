//! Seeded, deterministic mobility models compiled to timed attachment
//! changes.
//!
//! A [`MobilityModel`] turns a static [`Layout`] (how many wireless cells
//! exist, where each mobile host starts) into a [`MovePlan`]: an ordered
//! list of `(time, MoveOp)` pairs, exactly analogous to
//! [`netsim::faults::FaultPlan`]. Installing a plan compiles every entry
//! onto the world's single event queue as an
//! [`netsim::AdminOp::MoveIface`] / [`netsim::AdminOp::DetachIface`], so
//! movement interleaves with frames and timers under the same total
//! `(time, seq)` order — the same seed plus the same plan reproduces a
//! byte-identical run.
//!
//! Plans speak in *indices* (host `0..layout.hosts()`, cell
//! `0..layout.cells`), not [`NodeId`]s, so a plan is a pure value that
//! can be generated, compared and property-tested without a world. The
//! world binding happens only at [`MovePlan::install`] time.
//!
//! The three models cover the movement regimes the paper's mechanisms
//! are sensitive to:
//!
//! * [`RandomWaypoint`] — independent wander: dwell a uniform random
//!   time, hop to a uniform random other cell (cache-staleness and
//!   update-rate background load, §4.3/§5).
//! * [`Commuter`] — periodic home↔work oscillation; the handoff *rate*
//!   is the swept parameter in experiment E15 (§5's ≤1 lost packet per
//!   stale cache hop).
//! * [`FlashCrowd`] — correlated mass migration into one cell
//!   (conference-room arrival): stresses one foreign agent's visitor
//!   list and every correspondent's location cache at once (§7 scaling).

use netsim::id::{IfaceId, NodeId, SegmentId};
use netsim::time::{SimDuration, SimTime};
use netsim::{AdminOp, SimWorld};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// The static roaming surface a model compiles plans over.
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    /// Number of wireless cells; hosts roam over cell indices
    /// `0..cells`.
    pub cells: usize,
    /// Starting cell index of each mobile host (the vector length is the
    /// host count).
    pub start_cells: Vec<usize>,
}

impl Layout {
    /// A layout with `hosts` hosts spread round-robin over `cells` cells
    /// (the same placement [`scenarios`-style] hierarchy builders use).
    ///
    /// [`scenarios`-style]: https://example.invalid/mhrp
    pub fn round_robin(cells: usize, hosts: usize) -> Layout {
        assert!(cells > 0, "layout needs at least one cell");
        Layout { cells, start_cells: (0..hosts).map(|h| h % cells).collect() }
    }

    /// Number of mobile hosts in the layout.
    pub fn hosts(&self) -> usize {
        self.start_cells.len()
    }
}

/// One attachment change, applied at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveOp {
    /// Carry `host` into `cell` (a handoff when it was attached
    /// elsewhere).
    Attach {
        /// Index of the moving host.
        host: usize,
        /// Destination cell index.
        cell: usize,
    },
    /// Carry `host` out of radio range entirely.
    Detach {
        /// Index of the detaching host.
        host: usize,
    },
}

impl fmt::Display for MoveOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MoveOp::Attach { host, cell } => write!(f, "attach h{host} -> c{cell}"),
            MoveOp::Detach { host } => write!(f, "detach h{host}"),
        }
    }
}

/// An ordered schedule of timed [`MoveOp`]s — the mobility analogue of
/// [`netsim::faults::FaultPlan`].
///
/// Built by a [`MobilityModel`] (or by hand with [`MovePlan::op`]), then
/// bound to a world with [`MovePlan::install`]. Plans are plain values
/// (`Clone + PartialEq`): the determinism proptests compare whole plans
/// across replays.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MovePlan {
    ops: Vec<(SimTime, MoveOp)>,
}

impl MovePlan {
    /// Creates an empty plan.
    pub fn new() -> MovePlan {
        MovePlan::default()
    }

    /// Adds one operation at an absolute time.
    pub fn op(mut self, at: SimTime, op: MoveOp) -> MovePlan {
        self.ops.push((at, op));
        self
    }

    /// The scheduled operations, in insertion order.
    pub fn ops(&self) -> &[(SimTime, MoveOp)] {
        &self.ops
    }

    /// Number of scheduled operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of attach operations — the handoff count the SLO
    /// evaluator normalises losses by.
    pub fn handoffs(&self) -> u64 {
        self.ops.iter().filter(|(_, op)| matches!(op, MoveOp::Attach { .. })).count() as u64
    }

    /// Number of attaches that move `host` specifically — for
    /// normalising loss by the handoffs of the hosts that actually
    /// carry traffic.
    pub fn handoffs_for(&self, host: usize) -> u64 {
        self.ops
            .iter()
            .filter(|(_, op)| matches!(op, MoveOp::Attach { host: h, .. } if *h == host))
            .count() as u64
    }

    /// The largest cell index any attach targets, if the plan attaches
    /// at all (the proptests bound this by the layout's cell count).
    pub fn max_cell(&self) -> Option<usize> {
        self.ops
            .iter()
            .filter_map(|(_, op)| match op {
                MoveOp::Attach { cell, .. } => Some(*cell),
                MoveOp::Detach { .. } => None,
            })
            .max()
    }

    /// The time of the latest scheduled operation ([`SimTime::ZERO`] for
    /// an empty plan).
    pub fn end(&self) -> SimTime {
        self.ops.iter().map(|(at, _)| *at).max().unwrap_or(SimTime::ZERO)
    }

    /// Compiles the plan onto `world`'s event queue.
    ///
    /// `hosts[i]` is the `(node, iface)` that represents host index `i`;
    /// `cells[c]` is the segment for cell index `c`. Works on any
    /// [`SimWorld`]; on a sharded world, every host must stay inside
    /// its owning shard (region-confined mobility), or the admin
    /// translation panics.
    ///
    /// # Panics
    ///
    /// Panics if an op names a host or cell index outside the slices.
    pub fn install<W: SimWorld>(
        &self,
        world: &mut W,
        hosts: &[(NodeId, IfaceId)],
        cells: &[SegmentId],
    ) {
        for &(at, op) in &self.ops {
            let scheduled = match op {
                MoveOp::Attach { host, cell } => {
                    let (node, iface) = hosts[host];
                    AdminOp::MoveIface { node, iface, segment: cells[cell] }
                }
                MoveOp::Detach { host } => {
                    let (node, iface) = hosts[host];
                    AdminOp::DetachIface { node, iface }
                }
            };
            world.schedule_admin(at, scheduled);
        }
    }
}

/// A seeded, deterministic generator of [`MovePlan`]s.
///
/// `compile` must be a pure function of `(self, layout, from, until)`:
/// equal inputs yield equal plans (property-tested), and every attach
/// must target a cell inside the layout.
pub trait MobilityModel {
    /// Compiles the model into timed attachment changes covering
    /// `from..until`.
    fn compile(&self, layout: &Layout, from: SimTime, until: SimTime) -> MovePlan;

    /// A short human label for reports (e.g. `"random-waypoint"`).
    fn name(&self) -> &'static str;
}

/// Cell-granular random waypoint: each host dwells a uniform random time
/// in `dwell_min..=dwell_max`, then hops to a uniformly chosen *other*
/// cell, independently of every other host.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomWaypoint {
    /// Deterministic seed (independent of the world's seed).
    pub seed: u64,
    /// Shortest dwell time in one cell.
    pub dwell_min: SimDuration,
    /// Longest dwell time in one cell (inclusive; must be ≥ `dwell_min`).
    pub dwell_max: SimDuration,
}

impl MobilityModel for RandomWaypoint {
    fn compile(&self, layout: &Layout, from: SimTime, until: SimTime) -> MovePlan {
        assert!(self.dwell_min <= self.dwell_max, "dwell_min must be <= dwell_max");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut plan = MovePlan::new();
        for host in 0..layout.hosts() {
            let mut cell = layout.start_cells[host];
            let mut at = from + dwell(&mut rng, self.dwell_min, self.dwell_max);
            while at < until {
                if layout.cells > 1 {
                    // Uniform over the other cells.
                    let pick = rng.random_range(0..layout.cells - 1);
                    cell = if pick >= cell { pick + 1 } else { pick };
                    plan = plan.op(at, MoveOp::Attach { host, cell });
                }
                at += dwell(&mut rng, self.dwell_min, self.dwell_max);
            }
        }
        plan
    }

    fn name(&self) -> &'static str {
        "random-waypoint"
    }
}

/// Periodic home↔work oscillation: each host picks one fixed "work"
/// cell and a random phase, then commutes there and back every
/// `period`, spending half the period at each end. The handoff rate is
/// exactly `2/period` per host — the knob experiment E15 sweeps.
///
/// With `work_hops > 0` the model additionally wanders *within the work
/// region* during each work phase: the cells are treated as contiguous
/// regions of `region_cells` each (matching the hierarchy builders'
/// global cell indexing `region * fas_per_region + fa`), and the host
/// hops to `work_hops` random other cells of the work cell's region,
/// evenly spaced through the phase. Those hops are exactly the
/// intra-region handoffs a regional registration tier absorbs without
/// touching the backbone — experiment E17 contrasts them flat vs
/// hierarchical. Hops draw from their own RNG stream, so the commute
/// pattern (work cells, phases) is the same at every `work_hops`
/// setting and `work_hops == 0` plans are identical to the classic
/// two-field model's.
#[derive(Debug, Clone, PartialEq)]
pub struct Commuter {
    /// Deterministic seed.
    pub seed: u64,
    /// Full home → work → home cycle length.
    pub period: SimDuration,
    /// Intra-work-region cell hops per work phase (0 = classic pure
    /// oscillation).
    pub work_hops: usize,
    /// Cells per region of the underlying world (global cell index /
    /// `region_cells` = region). Must be positive when `work_hops > 0`;
    /// ignored otherwise.
    pub region_cells: usize,
}

impl MobilityModel for Commuter {
    fn compile(&self, layout: &Layout, from: SimTime, until: SimTime) -> MovePlan {
        assert!(self.period > SimDuration::ZERO, "period must be positive");
        assert!(
            self.work_hops == 0 || self.region_cells > 0,
            "work_hops needs region_cells to delimit the work region"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Hops draw from their own stream so they never perturb the
        // commute draws above — plans with different `work_hops` share
        // the same work cells and phases.
        let mut hop_rng = StdRng::seed_from_u64(self.seed ^ 0xc2b2_ae3d_27d4_eb4f);
        let mut plan = MovePlan::new();
        let half = SimDuration::from_micros(self.period.as_micros() / 2);
        for host in 0..layout.hosts() {
            let home = layout.start_cells[host];
            if layout.cells < 2 {
                continue; // nowhere to commute to
            }
            let pick = rng.random_range(0..layout.cells - 1);
            let work = if pick >= home { pick + 1 } else { pick };
            let phase =
                SimDuration::from_micros(rng.random_range(0..self.period.as_micros().max(1)));
            let mut at = from + phase;
            let mut at_work = false;
            while at < until {
                at_work = !at_work;
                let cell = if at_work { work } else { home };
                plan = plan.op(at, MoveOp::Attach { host, cell });
                if at_work && self.work_hops > 0 {
                    plan = self.work_phase_hops(
                        &mut hop_rng,
                        plan,
                        layout,
                        host,
                        work,
                        at,
                        half,
                        until,
                    );
                }
                at += half;
            }
        }
        plan
    }

    fn name(&self) -> &'static str {
        "commuter"
    }
}

impl Commuter {
    /// Emits the intra-region hops of one work phase starting at
    /// `arrive`; hops are spaced `half / (work_hops + 1)` apart so the
    /// last one still leaves dwell time before the commute home.
    #[allow(clippy::too_many_arguments)]
    fn work_phase_hops(
        &self,
        rng: &mut StdRng,
        mut plan: MovePlan,
        layout: &Layout,
        host: usize,
        work: usize,
        arrive: SimTime,
        half: SimDuration,
        until: SimTime,
    ) -> MovePlan {
        let base = work / self.region_cells * self.region_cells;
        let span = self.region_cells.min(layout.cells - base);
        if span < 2 {
            return plan; // single-cell work region: nowhere to hop
        }
        let step = half.as_micros() / (self.work_hops as u64 + 1);
        let mut cur = work;
        for k in 0..self.work_hops {
            let at = arrive + SimDuration::from_micros(step * (k as u64 + 1));
            if at >= until {
                break;
            }
            // Uniform over the region's other cells.
            let pick = rng.random_range(0..span - 1);
            let rel = cur - base;
            cur = base + if pick >= rel { pick + 1 } else { pick };
            plan = plan.op(at, MoveOp::Attach { host, cell: cur });
        }
        plan
    }
}

/// Correlated mass migration: at `at`, each host joins the crowd with
/// probability `fraction` and attaches to `cell` at a uniform random
/// instant inside `arrival_window`; participants optionally return to
/// their start cell `disperse_after` later.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashCrowd {
    /// Deterministic seed.
    pub seed: u64,
    /// Instant the event begins.
    pub at: SimTime,
    /// Destination cell everyone converges on.
    pub cell: usize,
    /// Probability each host joins, in `[0, 1]`.
    pub fraction: f64,
    /// Arrivals spread uniformly over this window after `at`.
    pub arrival_window: SimDuration,
    /// When set, each participant returns to its start cell this long
    /// after its arrival.
    pub disperse_after: Option<SimDuration>,
}

impl MobilityModel for FlashCrowd {
    fn compile(&self, layout: &Layout, from: SimTime, until: SimTime) -> MovePlan {
        assert!(self.cell < layout.cells, "flash-crowd target cell outside the layout");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut plan = MovePlan::new();
        let window = self.arrival_window.as_micros().max(1);
        for host in 0..layout.hosts() {
            // Draw both variates unconditionally so each host consumes a
            // fixed number of draws: participation of host i is
            // independent of every other host's parameters.
            let joins = rng.random_bool(self.fraction);
            let offset = SimDuration::from_micros(rng.random_range(0..window));
            if !joins {
                continue;
            }
            let arrive = self.at + offset;
            if arrive < from || arrive >= until {
                continue;
            }
            plan = plan.op(arrive, MoveOp::Attach { host, cell: self.cell });
            if let Some(stay) = self.disperse_after {
                let back = arrive + stay;
                if back < until {
                    plan = plan.op(back, MoveOp::Attach { host, cell: layout.start_cells[host] });
                }
            }
        }
        plan
    }

    fn name(&self) -> &'static str {
        "flash-crowd"
    }
}

fn dwell(rng: &mut StdRng, min: SimDuration, max: SimDuration) -> SimDuration {
    SimDuration::from_micros(rng.random_range(min.as_micros()..=max.as_micros()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Layout {
        Layout::round_robin(4, 6)
    }

    #[test]
    fn round_robin_spreads_hosts() {
        let l = layout();
        assert_eq!(l.hosts(), 6);
        assert_eq!(l.start_cells, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn random_waypoint_is_deterministic_and_in_bounds() {
        let m = RandomWaypoint {
            seed: 7,
            dwell_min: SimDuration::from_millis(500),
            dwell_max: SimDuration::from_secs(2),
        };
        let a = m.compile(&layout(), SimTime::ZERO, SimTime::from_secs(30));
        let b = m.compile(&layout(), SimTime::ZERO, SimTime::from_secs(30));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.max_cell().unwrap() < 4);
        assert!(a.end() < SimTime::from_secs(30));
    }

    #[test]
    fn commuter_alternates_work_and_home() {
        let m =
            Commuter { seed: 3, period: SimDuration::from_secs(4), work_hops: 0, region_cells: 0 };
        let l = Layout::round_robin(3, 1);
        let plan = m.compile(&l, SimTime::ZERO, SimTime::from_secs(20));
        // ~2 handoffs per period over 20 s: at least 8 attaches, and the
        // destinations strictly alternate between two cells.
        assert!(plan.handoffs() >= 8, "handoffs = {}", plan.handoffs());
        let cells: Vec<usize> = plan
            .ops()
            .iter()
            .map(|(_, op)| match op {
                MoveOp::Attach { cell, .. } => *cell,
                MoveOp::Detach { .. } => unreachable!(),
            })
            .collect();
        for pair in cells.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
        assert!(cells.contains(&l.start_cells[0]));
    }

    #[test]
    fn commuter_work_hops_stay_inside_the_work_region() {
        // 3 regions of 4 cells; every work-phase hop must land in the
        // same region as the host's work cell.
        let l = Layout::round_robin(12, 6);
        let base =
            Commuter { seed: 9, period: SimDuration::from_secs(4), work_hops: 0, region_cells: 4 };
        let hoppy = Commuter { work_hops: 3, ..base.clone() };
        let plain = base.compile(&l, SimTime::ZERO, SimTime::from_secs(20));
        let plan = hoppy.compile(&l, SimTime::ZERO, SimTime::from_secs(20));
        assert!(plan.handoffs() > plain.handoffs(), "work_hops added no handoffs");
        // Reconstruct each host's work cell (first attach not at home).
        let mut work = vec![None; l.hosts()];
        for (_, op) in plain.ops() {
            if let MoveOp::Attach { host, cell } = op {
                if *cell != l.start_cells[*host] && work[*host].is_none() {
                    work[*host] = Some(*cell);
                }
            }
        }
        for (_, op) in plan.ops() {
            if let MoveOp::Attach { host, cell } = op {
                let (home, w) = (l.start_cells[*host], work[*host].unwrap());
                assert!(
                    *cell == home || *cell / 4 == w / 4,
                    "host {host} attached to cell {cell} outside home {home} / work region {}",
                    w / 4
                );
            }
        }
    }

    #[test]
    fn commuter_without_work_hops_matches_classic_plans() {
        // work_hops = 0 must not perturb the RNG draw sequence: the plan
        // is identical whatever region_cells says.
        let l = Layout::round_robin(8, 5);
        let a =
            Commuter { seed: 5, period: SimDuration::from_secs(6), work_hops: 0, region_cells: 0 };
        let b = Commuter { region_cells: 4, ..a.clone() };
        assert_eq!(
            a.compile(&l, SimTime::ZERO, SimTime::from_secs(30)),
            b.compile(&l, SimTime::ZERO, SimTime::from_secs(30)),
        );
    }

    #[test]
    fn flash_crowd_converges_and_disperses() {
        let m = FlashCrowd {
            seed: 11,
            at: SimTime::from_secs(5),
            cell: 2,
            fraction: 1.0,
            arrival_window: SimDuration::from_secs(1),
            disperse_after: Some(SimDuration::from_secs(4)),
        };
        let l = layout();
        let plan = m.compile(&l, SimTime::ZERO, SimTime::from_secs(30));
        // Everyone joins (fraction 1) and everyone disperses in-window.
        assert_eq!(plan.handoffs(), 2 * l.hosts() as u64);
        for (at, op) in plan.ops() {
            if let MoveOp::Attach { cell: 2, .. } = op {
                if *at < SimTime::from_secs(7) {
                    assert!(*at >= SimTime::from_secs(5));
                }
            }
        }
    }

    #[test]
    fn single_cell_layouts_produce_empty_wander() {
        let l = Layout::round_robin(1, 5);
        let rw = RandomWaypoint {
            seed: 1,
            dwell_min: SimDuration::from_millis(100),
            dwell_max: SimDuration::from_millis(200),
        };
        assert!(rw.compile(&l, SimTime::ZERO, SimTime::from_secs(10)).is_empty());
        let c =
            Commuter { seed: 1, period: SimDuration::from_secs(2), work_hops: 0, region_cells: 0 };
        assert!(c.compile(&l, SimTime::ZERO, SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn plans_are_comparable_values() {
        let a = MovePlan::new().op(SimTime::from_secs(1), MoveOp::Attach { host: 0, cell: 1 });
        let b = MovePlan::new().op(SimTime::from_secs(1), MoveOp::Attach { host: 0, cell: 1 });
        assert_eq!(a, b);
        let c = b.clone().op(SimTime::from_secs(2), MoveOp::Detach { host: 0 });
        assert_ne!(a, c);
        assert_eq!(c.end(), SimTime::from_secs(2));
        assert_eq!(c.handoffs(), 1);
        assert_eq!(c.ops()[1].1.to_string(), "detach h0");
    }
}

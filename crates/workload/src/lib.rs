//! # workload — mobility models, traffic generators, SLO-gated soaks
//!
//! Every claim in the paper — at most one lost/triangle packet per stale
//! cache hop (§5), rate-limited updates (§4.3), no flooding or global
//! database (§7) — is about behavior *under sustained traffic while
//! hosts move*. This crate turns the simulator into a load-testing
//! harness with three layers:
//!
//! 1. **Mobility** ([`mobility`]) — a seeded, deterministic
//!    [`MobilityModel`] trait ([`RandomWaypoint`], [`Commuter`],
//!    [`FlashCrowd`]) compiling to a [`MovePlan`] of timed
//!    attach/detach operations, installed onto the world's event queue
//!    exactly like `netsim::faults::FaultPlan`.
//! 2. **Traffic** ([`traffic`]) — open-loop Poisson/on-off/CBR senders
//!    and closed-loop request/response clients with per-request
//!    deadlines, bounded retries and in-flight windows; every probe
//!    carries `(flow, seq)` in its payload so arrivals match sends
//!    exactly.
//! 3. **Soak + SLO** ([`soak`], [`slo`]) — a tick-quantized driver over
//!    the narrow [`SoakIo`] world interface, evaluated against explicit
//!    [`SloThresholds`] into a machine-readable [`SloReport`]
//!    (deterministic JSON, round-trips byte-for-byte).
//!
//! The crate depends only on `netsim`, `telemetry` and the local `rand`
//! stand-in; binding to concrete node types (which node is the client,
//! which segment is which cell) lives in `scenarios`.

#![deny(missing_docs)]

pub mod json;
pub mod mobility;
pub mod slo;
pub mod soak;
pub mod traffic;

pub use mobility::{Commuter, FlashCrowd, Layout, MobilityModel, MoveOp, MovePlan, RandomWaypoint};
pub use slo::{evaluate, SloCheck, SloMeasurements, SloReport, SloThresholds};
pub use soak::{run_soak, SoakIo, SoakParams, Transmit};
pub use traffic::{decode_probe, encode_probe, Flow, FlowCfg, FlowStats, Pattern, ProbeSend};

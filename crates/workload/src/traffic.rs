//! Open- and closed-loop traffic generators.
//!
//! A [`Flow`] is a deterministic, seeded source of probe packets toward
//! one mobile host. The soak driver ([`crate::soak`]) polls it every
//! tick: the flow decides what to emit ([`Flow::on_tick`]) and the
//! driver reports what came back ([`Flow::on_delivered`] for the forward
//! leg at the mobile, [`Flow::on_response`] for echo responses at the
//! client). Every probe payload carries `(flow, seq)` in its first
//! [`PROBE_HEADER`] bytes so arrivals match sends exactly, even across
//! reordering — no index pairing, no heuristics.
//!
//! Open-loop patterns ([`Pattern::Poisson`], [`Pattern::OnOff`],
//! [`Pattern::Cbr`]) offer load regardless of what the network delivers:
//! they measure delivery ratio and one-way latency under handoffs.
//! The closed-loop pattern ([`Pattern::ClosedLoop`]) models a
//! request/response client: at most `window` requests outstanding,
//! per-request deadlines, and bounded retries — it measures completion
//! and RTT the way an interactive application would experience the
//! paper's tunneling detours. Sends issued through the MHRP host nodes
//! are journey-tagged through telemetry like any other originated
//! packet, so `World::journey` reconstructs a probe's path.

use netsim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use telemetry::Histogram;

/// Bytes of probe header at the front of every payload: flow id and
/// sequence number, both big-endian `u32`s.
pub const PROBE_HEADER: usize = 8;

/// Encodes a probe payload of `len` bytes (forced up to
/// [`PROBE_HEADER`]) carrying `(flow, seq)`.
pub fn encode_probe(flow: u32, seq: u32, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len.max(PROBE_HEADER)];
    v[..4].copy_from_slice(&flow.to_be_bytes());
    v[4..8].copy_from_slice(&seq.to_be_bytes());
    v
}

/// Decodes `(flow, seq)` from a probe payload, if it is long enough.
pub fn decode_probe(payload: &[u8]) -> Option<(u32, u32)> {
    if payload.len() < PROBE_HEADER {
        return None;
    }
    let flow = u32::from_be_bytes(payload[..4].try_into().ok()?);
    let seq = u32::from_be_bytes(payload[4..8].try_into().ok()?);
    Some((flow, seq))
}

/// The shape of one flow's offered load.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Open-loop Poisson arrivals at `per_sec` packets per second
    /// (exponential gaps, quantized to the driver tick).
    Poisson {
        /// Mean send rate in packets per second.
        per_sec: f64,
    },
    /// Open-loop on-off: constant spacing `interval` during each `on`
    /// burst, silence during each `off` gap, repeating.
    OnOff {
        /// Length of each sending burst.
        on: SimDuration,
        /// Length of each silent gap.
        off: SimDuration,
        /// Packet spacing inside a burst.
        interval: SimDuration,
    },
    /// Open-loop constant bit rate at fixed `interval` spacing.
    Cbr {
        /// Packet spacing.
        interval: SimDuration,
    },
    /// Closed-loop request/response: at most `window` requests
    /// outstanding; a request whose response misses `deadline` is
    /// retransmitted up to `retries` times, then abandoned.
    ClosedLoop {
        /// In-flight window (outstanding requests), ≥ 1.
        window: usize,
        /// Per-request response deadline.
        deadline: SimDuration,
        /// Retransmissions allowed per request before giving up.
        retries: u32,
    },
}

impl Pattern {
    /// Whether responses are expected (probes go to the UDP echo port).
    pub fn is_closed_loop(&self) -> bool {
        matches!(self, Pattern::ClosedLoop { .. })
    }

    /// A short human description for report tables.
    pub fn describe(&self, bytes: usize) -> String {
        match self {
            Pattern::Poisson { per_sec } => format!("poisson {per_sec}/s {bytes}B"),
            Pattern::OnOff { on, off, interval } => format!(
                "on-off {}ms/{}ms @{}ms {bytes}B",
                on.as_micros() / 1000,
                off.as_micros() / 1000,
                interval.as_micros() / 1000
            ),
            Pattern::Cbr { interval } => {
                format!("cbr @{}ms {bytes}B", interval.as_micros() / 1000)
            }
            Pattern::ClosedLoop { window, deadline, retries } => format!(
                "closed-loop w={window} d={}ms r={retries} {bytes}B",
                deadline.as_micros() / 1000
            ),
        }
    }
}

/// Configuration of one flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowCfg {
    /// Send pattern.
    pub pattern: Pattern,
    /// Payload length in bytes (forced up to [`PROBE_HEADER`]).
    pub bytes: usize,
    /// Deterministic seed for the flow's own variates.
    pub seed: u64,
    /// Stop after offering this many distinct packets/requests
    /// (`None` = until the soak ends).
    pub limit: Option<u64>,
}

/// Counters a flow accumulates (plain values, compared in goldens).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Distinct packets (open loop) or requests (closed loop) offered.
    pub offered: u64,
    /// Transmissions put on the wire, retries included.
    pub sent: u64,
    /// Forward-leg arrivals at the mobile host.
    pub delivered: u64,
    /// Closed-loop requests completed by an in-deadline response.
    pub completed: u64,
    /// Closed-loop retransmissions issued.
    pub retries: u64,
    /// Closed-loop requests abandoned after the retry budget.
    pub failed: u64,
}

/// One probe the flow asks the driver to transmit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSend {
    /// Sequence number to embed (see [`encode_probe`]).
    pub seq: u32,
    /// Payload length in bytes.
    pub bytes: usize,
}

#[derive(Debug, Clone, Copy)]
struct PendingReq {
    req: u64,
    deadline_at: SimTime,
    retries_left: u32,
}

/// One deterministic traffic source toward one destination.
///
/// Drive it with [`Flow::on_tick`] / [`Flow::on_delivered`] /
/// [`Flow::on_response`]; read results from [`Flow::stats`],
/// [`Flow::latency_us`] (one-way forward leg) and [`Flow::rtt_us`]
/// (closed-loop round trips).
#[derive(Debug)]
pub struct Flow {
    /// Flow id embedded in every probe.
    pub id: u32,
    /// The configuration the flow was built from.
    pub cfg: FlowCfg,
    /// Accumulated counters.
    pub stats: FlowStats,
    /// One-way delivery latency of forward-leg arrivals, microseconds.
    pub latency_us: Histogram,
    /// Round-trip time of completed closed-loop requests, microseconds.
    pub rtt_us: Histogram,
    rng: StdRng,
    next_seq: u32,
    started: Option<SimTime>,
    next_at: Option<SimTime>,
    pending: Vec<PendingReq>,
    sent_at: HashMap<u32, SimTime>,
    seq_req: HashMap<u32, u64>,
    next_req: u64,
}

impl Flow {
    /// Creates a flow; nothing is offered until the first
    /// [`Flow::on_tick`].
    pub fn new(id: u32, cfg: FlowCfg) -> Flow {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Flow {
            id,
            cfg,
            stats: FlowStats::default(),
            latency_us: Histogram::latency_us(),
            rtt_us: Histogram::latency_us(),
            rng,
            next_seq: 0,
            started: None,
            next_at: None,
            pending: Vec::new(),
            sent_at: HashMap::new(),
            seq_req: HashMap::new(),
            next_req: 0,
        }
    }

    /// Outstanding closed-loop requests (always ≤ the window;
    /// property-tested). 0 for open-loop flows.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// When `seq` was put on the wire, if this flow sent it.
    pub fn sent_time(&self, seq: u32) -> Option<SimTime> {
        self.sent_at.get(&seq).copied()
    }

    /// Whether the flow has offered everything its `limit` allows and
    /// (for closed loops) has nothing outstanding.
    pub fn done(&self) -> bool {
        self.limit_reached() && self.pending.is_empty()
    }

    fn limit_reached(&self) -> bool {
        self.cfg.limit.is_some_and(|l| self.stats.offered >= l)
    }

    /// Advances the flow to `now`, appending everything it wants
    /// transmitted to `out`. Deterministic: depends only on the tick
    /// times and the delivery/response callbacks so far.
    pub fn on_tick(&mut self, now: SimTime, out: &mut Vec<ProbeSend>) {
        let started = *self.started.get_or_insert(now);
        match self.cfg.pattern.clone() {
            Pattern::Poisson { per_sec } => {
                let mut at = self.next_at.unwrap_or(now);
                while at <= now && !self.limit_reached() {
                    self.emit_open(now, out);
                    at += exp_gap(&mut self.rng, per_sec);
                }
                self.next_at = Some(at);
            }
            Pattern::Cbr { interval } => {
                let mut at = self.next_at.unwrap_or(now);
                while at <= now && !self.limit_reached() {
                    self.emit_open(now, out);
                    at += interval;
                }
                self.next_at = Some(at);
            }
            Pattern::OnOff { on, off, interval } => {
                let cycle = (on + off).as_micros().max(1);
                let mut at = self.next_at.unwrap_or(now);
                while at <= now && !self.limit_reached() {
                    let phase = at.since(started).as_micros() % cycle;
                    if phase < on.as_micros() {
                        self.emit_open(now, out);
                        at += interval;
                    } else {
                        // Jump to the start of the next burst.
                        let rest = cycle - phase;
                        at += SimDuration::from_micros(rest);
                    }
                }
                self.next_at = Some(at);
            }
            Pattern::ClosedLoop { window, deadline, retries } => {
                assert!(window >= 1, "closed-loop window must be >= 1");
                // Expire overdue requests: retransmit or abandon.
                let overdue: Vec<usize> = self
                    .pending
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.deadline_at <= now)
                    .map(|(i, _)| i)
                    .collect();
                for &i in overdue.iter().rev() {
                    let p = self.pending[i];
                    if p.retries_left > 0 {
                        let seq = self.fresh_seq(now);
                        self.seq_req.insert(seq, p.req);
                        self.pending[i] = PendingReq {
                            req: p.req,
                            deadline_at: now + deadline,
                            retries_left: p.retries_left - 1,
                        };
                        self.stats.retries += 1;
                        self.stats.sent += 1;
                        out.push(ProbeSend { seq, bytes: self.cfg.bytes });
                    } else {
                        self.pending.remove(i);
                        self.stats.failed += 1;
                    }
                }
                // Fill the window with fresh requests.
                while self.pending.len() < window && !self.limit_reached() {
                    let req = self.next_req;
                    self.next_req += 1;
                    let seq = self.fresh_seq(now);
                    self.seq_req.insert(seq, req);
                    self.pending.push(PendingReq {
                        req,
                        deadline_at: now + deadline,
                        retries_left: retries,
                    });
                    self.stats.offered += 1;
                    self.stats.sent += 1;
                    out.push(ProbeSend { seq, bytes: self.cfg.bytes });
                }
            }
        }
    }

    /// Records a forward-leg arrival of `seq` at the mobile host.
    pub fn on_delivered(&mut self, seq: u32, at: SimTime) {
        if let Some(sent) = self.sent_at.get(&seq) {
            self.stats.delivered += 1;
            self.latency_us.record(at.since(*sent).as_micros());
        }
    }

    /// Records a response to `seq` arriving back at the client. Only the
    /// first response to a still-pending request completes it; anything
    /// else (duplicate, response to an abandoned request) is ignored.
    pub fn on_response(&mut self, seq: u32, at: SimTime) {
        let Some(&req) = self.seq_req.get(&seq) else { return };
        let Some(i) = self.pending.iter().position(|p| p.req == req) else { return };
        self.pending.remove(i);
        self.stats.completed += 1;
        if let Some(sent) = self.sent_at.get(&seq) {
            self.rtt_us.record(at.since(*sent).as_micros());
        }
    }

    fn emit_open(&mut self, now: SimTime, out: &mut Vec<ProbeSend>) {
        let seq = self.fresh_seq(now);
        self.stats.offered += 1;
        self.stats.sent += 1;
        out.push(ProbeSend { seq, bytes: self.cfg.bytes });
    }

    fn fresh_seq(&mut self, now: SimTime) -> u32 {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.sent_at.insert(seq, now);
        seq
    }
}

/// Exponential inter-arrival gap for a Poisson process of rate
/// `per_sec`, floored at 1 µs so the process always advances.
fn exp_gap(rng: &mut StdRng, per_sec: f64) -> SimDuration {
    assert!(per_sec > 0.0, "poisson rate must be positive");
    let u: f64 = rng.random();
    let secs = -(1.0 - u).ln() / per_sec;
    SimDuration::from_micros(((secs * 1e6) as u64).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick_all(flow: &mut Flow, ticks: u64, step: SimDuration) -> Vec<(SimTime, u32)> {
        let mut sends = Vec::new();
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..ticks {
            out.clear();
            flow.on_tick(now, &mut out);
            for s in &out {
                sends.push((now, s.seq));
            }
            now += step;
        }
        sends
    }

    #[test]
    fn probe_codec_round_trips() {
        let p = encode_probe(7, 4242, 64);
        assert_eq!(p.len(), 64);
        assert_eq!(decode_probe(&p), Some((7, 4242)));
        assert_eq!(decode_probe(&[1, 2, 3]), None);
        // Tiny requested sizes still fit the header.
        assert_eq!(encode_probe(1, 2, 0).len(), PROBE_HEADER);
    }

    #[test]
    fn cbr_sends_one_per_interval() {
        let mut f = Flow::new(
            0,
            FlowCfg {
                pattern: Pattern::Cbr { interval: SimDuration::from_millis(100) },
                bytes: 64,
                seed: 1,
                limit: Some(5),
            },
        );
        let sends = tick_all(&mut f, 10, SimDuration::from_millis(100));
        assert_eq!(sends.len(), 5);
        assert_eq!(f.stats.offered, 5);
        assert!(f.done());
        // One send exactly per tick until the limit.
        for (i, (at, seq)) in sends.iter().enumerate() {
            assert_eq!(*seq, i as u32);
            assert_eq!(*at, SimTime::ZERO + SimDuration::from_millis(100) * (i as u64));
        }
    }

    #[test]
    fn poisson_is_deterministic_and_roughly_calibrated() {
        let cfg = FlowCfg {
            pattern: Pattern::Poisson { per_sec: 50.0 },
            bytes: 32,
            seed: 9,
            limit: None,
        };
        let mut a = Flow::new(0, cfg.clone());
        let mut b = Flow::new(0, cfg);
        let sa = tick_all(&mut a, 200, SimDuration::from_millis(50)); // 10 s
        let sb = tick_all(&mut b, 200, SimDuration::from_millis(50));
        assert_eq!(sa, sb);
        // 50/s over 10 s ≈ 500; allow generous slack.
        assert!((300..700).contains(&sa.len()), "got {}", sa.len());
    }

    #[test]
    fn onoff_is_silent_during_gaps() {
        let mut f = Flow::new(
            0,
            FlowCfg {
                pattern: Pattern::OnOff {
                    on: SimDuration::from_millis(200),
                    off: SimDuration::from_millis(300),
                    interval: SimDuration::from_millis(50),
                },
                bytes: 16,
                seed: 2,
                limit: None,
            },
        );
        let sends = tick_all(&mut f, 100, SimDuration::from_millis(10)); // 1 s
        for (at, _) in &sends {
            let phase = at.since(SimTime::ZERO).as_micros() % 500_000;
            assert!(phase < 200_000, "send at off-phase {phase}");
        }
        // Two full cycles: 2 bursts × 4 sends (0,50,100,150 ms).
        assert_eq!(sends.len(), 8);
    }

    #[test]
    fn closed_loop_honors_window_and_retries() {
        let mut f = Flow::new(
            0,
            FlowCfg {
                pattern: Pattern::ClosedLoop {
                    window: 2,
                    deadline: SimDuration::from_millis(100),
                    retries: 1,
                },
                bytes: 32,
                seed: 3,
                limit: Some(4),
            },
        );
        let mut out = Vec::new();
        let t0 = SimTime::ZERO;
        f.on_tick(t0, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(f.in_flight(), 2);
        // Respond to the first request only.
        f.on_response(out[0].seq, t0 + SimDuration::from_millis(10));
        assert_eq!(f.in_flight(), 1);
        assert_eq!(f.stats.completed, 1);
        // Next tick refills the window to 2.
        out.clear();
        f.on_tick(t0 + SimDuration::from_millis(20), &mut out);
        assert_eq!(f.in_flight(), 2);
        // Let both deadlines lapse: each retries once...
        out.clear();
        f.on_tick(t0 + SimDuration::from_millis(200), &mut out);
        assert_eq!(f.stats.retries, 2);
        assert!(f.in_flight() <= 2);
        // ...and after the retry deadline lapses unanswered, both fail
        // and the last offered request enters the window.
        out.clear();
        f.on_tick(t0 + SimDuration::from_millis(400), &mut out);
        assert_eq!(f.stats.failed, 2);
        assert_eq!(f.stats.offered, 4);
        // Duplicate/late responses are ignored.
        let before = f.stats.completed;
        f.on_response(1, t0 + SimDuration::from_millis(450));
        assert_eq!(f.stats.completed, before);
    }

    #[test]
    fn forward_latency_is_recorded_by_seq() {
        let mut f = Flow::new(
            0,
            FlowCfg {
                pattern: Pattern::Cbr { interval: SimDuration::from_millis(10) },
                bytes: 64,
                seed: 4,
                limit: Some(3),
            },
        );
        let mut out = Vec::new();
        f.on_tick(SimTime::ZERO, &mut out);
        f.on_delivered(out[0].seq, SimTime::ZERO + SimDuration::from_micros(700));
        assert_eq!(f.stats.delivered, 1);
        assert_eq!(f.latency_us.count(), 1);
        assert_eq!(f.latency_us.max(), 700);
        // Unknown seq is ignored.
        f.on_delivered(999, SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(f.stats.delivered, 1);
    }

    #[test]
    fn describe_is_compact() {
        let p = Pattern::Cbr { interval: SimDuration::from_millis(100) };
        assert_eq!(p.describe(64), "cbr @100ms 64B");
        assert!(!p.is_closed_loop());
        let c =
            Pattern::ClosedLoop { window: 4, deadline: SimDuration::from_millis(250), retries: 2 };
        assert!(c.is_closed_loop());
        assert_eq!(c.describe(32), "closed-loop w=4 d=250ms r=2 32B");
    }
}

//! Binding the workload engine to MHRP worlds: the [`SoakIo`]
//! implementation over [`MhrpHostNode`] clients and [`MobileHostNode`]
//! targets, plus the canonical random-waypoint soak the CI smoke gate
//! and the `simcore` throughput case both run.
//!
//! The workload crate is world-agnostic; this module is where flow
//! indices become node ids, probes become UDP datagrams, and arrivals
//! are read back out of endpoint logs:
//!
//! * open-loop probes go to [`crate::shootout::DATA_PORT`] (nothing
//!   listens — a one-way stream);
//! * closed-loop probes go to the mobile host's UDP echo service
//!   ([`netstack::nodes::UDP_ECHO_PORT`]), so the response leg
//!   traverses the mobile's normal outbound path back to the client.
//!
//! Both arrive through MHRP tunnels like any correspondent traffic, so
//! delivery ratio, latency and overhead measure the protocol, not the
//! harness.

use std::net::Ipv4Addr;
use std::time::Instant;

use mhrp::{MhrpHostNode, MobileHostNode};
use netsim::time::{SimDuration, SimTime};
use netsim::{Histogram, IfaceId, NodeId, ShardedWorld, SimWorld, World};
use netstack::nodes::UDP_ECHO_PORT;
use workload::{
    evaluate, run_soak, Flow, FlowCfg, Layout, MobilityModel, MovePlan, Pattern, RandomWaypoint,
    SloMeasurements, SloReport, SloThresholds, SoakIo, SoakParams, Transmit,
};

use crate::hierarchy::{Hierarchy, HierarchyParams, ShardedHierarchy};
use crate::shootout::DATA_PORT;

/// UDP source port soak probes are sent from (responses come back to
/// it; demultiplexing uses the `(flow, seq)` payload header, not the
/// port).
pub const SOAK_SRC_PORT: u16 = 4100;

/// [`SoakIo`] over one MHRP correspondent ([`MhrpHostNode`]) sending to
/// one [`MobileHostNode`] per flow.
///
/// Works for any world built from these node types — the Figure 1
/// topology and the hierarchy generator both qualify — and for any
/// [`SimWorld`] execution engine: the soak drives a classic [`World`]
/// and a [`ShardedWorld`] through exactly the same code.
pub struct MhrpIo<'a, W: SimWorld = World> {
    world: &'a mut W,
    client: NodeId,
    flows: Vec<(NodeId, Ipv4Addr)>,
    client_cursor: usize,
    mobile_cursors: Vec<usize>,
    responses: Vec<Vec<(u32, SimTime)>>,
}

impl<'a, W: SimWorld> MhrpIo<'a, W> {
    /// Creates the binding: `flows[i]` is flow `i`'s `(mobile node,
    /// destination address)`.
    ///
    /// # Panics
    ///
    /// Panics if two flows share a mobile node (each flow needs its own
    /// endpoint log cursor).
    pub fn new(world: &'a mut W, client: NodeId, flows: Vec<(NodeId, Ipv4Addr)>) -> MhrpIo<'a, W> {
        for (i, (m, _)) in flows.iter().enumerate() {
            assert!(
                flows[..i].iter().all(|(other, _)| other != m),
                "flows must target distinct mobile hosts"
            );
        }
        let n = flows.len();
        MhrpIo {
            world,
            client,
            flows,
            client_cursor: 0,
            mobile_cursors: vec![0; n],
            responses: vec![Vec::new(); n],
        }
    }

    fn demux_client_log(&mut self) {
        let log = &self.world.node::<MhrpHostNode>(self.client).endpoint.log;
        for r in &log.udp_rx[self.client_cursor..] {
            if r.src_port != UDP_ECHO_PORT {
                continue;
            }
            if let Some((flow, seq)) = workload::decode_probe(&r.payload) {
                if let Some(bucket) = self.responses.get_mut(flow as usize) {
                    bucket.push((seq, r.at));
                }
            }
        }
        self.client_cursor = log.udp_rx.len();
    }
}

impl MhrpIo<'_, World> {
    /// Flow bindings for hierarchy mobiles `idxs` (indices into
    /// [`Hierarchy::mobiles`]).
    pub fn hierarchy_flows(h: &Hierarchy, idxs: &[usize]) -> Vec<(NodeId, Ipv4Addr)> {
        idxs.iter().map(|&i| (h.mobiles[i], h.mobile_addr(i))).collect()
    }
}

impl MhrpIo<'_, ShardedWorld> {
    /// Flow bindings for sharded-hierarchy mobiles `idxs` (indices into
    /// [`ShardedHierarchy::mobiles`]).
    pub fn sharded_hierarchy_flows(
        h: &ShardedHierarchy,
        idxs: &[usize],
    ) -> Vec<(NodeId, Ipv4Addr)> {
        idxs.iter().map(|&i| (h.mobiles[i], h.mobile_addr(i))).collect()
    }
}

impl<W: SimWorld> SoakIo for MhrpIo<'_, W> {
    fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
    }

    fn now(&self) -> SimTime {
        self.world.now()
    }

    fn transmit(&mut self, t: &Transmit) {
        let (_, dst) = self.flows[t.flow];
        let dst_port = if t.closed_loop { UDP_ECHO_PORT } else { DATA_PORT };
        let payload = workload::encode_probe(t.flow as u32, t.seq, t.bytes);
        self.world.with_node::<MhrpHostNode, _>(self.client, |h, ctx| {
            h.send_udp(ctx, dst, SOAK_SRC_PORT, dst_port, payload);
        });
    }

    fn poll_deliveries(&mut self, flow: usize, out: &mut Vec<(u32, SimTime)>) {
        let (mobile, _) = self.flows[flow];
        let log = &self.world.node::<MobileHostNode>(mobile).endpoint.log;
        for r in &log.udp_rx[self.mobile_cursors[flow]..] {
            if let Some((f, seq)) = workload::decode_probe(&r.payload) {
                if f as usize == flow {
                    out.push((seq, r.at));
                }
            }
        }
        self.mobile_cursors[flow] = log.udp_rx.len();
    }

    fn poll_responses(&mut self, flow: usize, out: &mut Vec<(u32, SimTime)>) {
        self.demux_client_log();
        out.append(&mut self.responses[flow]);
    }
}

/// Configuration of the canonical random-waypoint soak (CI smoke gate,
/// `simcore` throughput case, golden determinism test).
#[derive(Debug, Clone)]
pub struct RwSoakConfig {
    /// The hierarchical world to build (must include the
    /// correspondent).
    pub params: HierarchyParams,
    /// Number of flows; flow targets are spread evenly over the
    /// mobiles.
    pub flows: usize,
    /// Of those, how many are closed-loop request/response clients
    /// (the rest are open-loop Poisson senders).
    pub closed_flows: usize,
    /// Open-loop send rate per flow, packets per second.
    pub open_rate_per_sec: f64,
    /// Probe payload bytes.
    pub payload_bytes: usize,
    /// Random-waypoint dwell-time bounds.
    pub dwell_min: SimDuration,
    /// See [`RwSoakConfig::dwell_min`].
    pub dwell_max: SimDuration,
    /// Simulated soak duration (after warmup).
    pub duration: SimDuration,
    /// Soak driver tick.
    pub tick: SimDuration,
    /// Registration warmup budget before the soak starts.
    pub warmup: SimDuration,
    /// Seed for the mobility model and the flows (independent of the
    /// world's seed).
    pub seed: u64,
    /// Pass/fail thresholds.
    pub thresholds: SloThresholds,
    /// Enable the typed telemetry event log (the golden replay test
    /// compares it across runs).
    pub telemetry: bool,
    /// Shard count. `1` runs the classic single-world path
    /// (byte-identical to every pre-sharding release); `> 1` builds a
    /// [`ShardedHierarchy`] with region-confined mobility and runs the
    /// same soak through the conservative barrier scheduler.
    pub shards: usize,
    /// Run the soak under attack (DESIGN.md §13): install a hostile
    /// [`adversary::AttackPlan`] — repeated forged-registration sweeps
    /// plus cache poisoning against region 0 — alongside the benign
    /// workload. Requires `params.attackers >= 1`; the report gains an
    /// `auth_rejected_min` check so the gate fails unless the
    /// authentication extension actually engaged (and the ordinary
    /// SLOs prove it neutralised the attack).
    pub adversarial: bool,
}

impl Default for RwSoakConfig {
    fn default() -> RwSoakConfig {
        RwSoakConfig {
            params: HierarchyParams::default(),
            flows: 8,
            closed_flows: 2,
            open_rate_per_sec: 10.0,
            payload_bytes: 64,
            dwell_min: SimDuration::from_secs(2),
            dwell_max: SimDuration::from_secs(6),
            duration: SimDuration::from_secs(8),
            tick: SimDuration::from_millis(50),
            warmup: SimDuration::from_secs(30),
            seed: 1994,
            thresholds: SloThresholds::default(),
            telemetry: false,
            shards: 1,
            adversarial: false,
        }
    }
}

/// The hostile plan the adversarial soak installs: a forged-registration
/// sweep over region 0's first mobiles every two seconds (re-diverting
/// ahead of any genuine re-registration), each followed by spoofed
/// location updates poisoning the correspondent's cache. All forged
/// traffic is plain 1994-format (the attacker holds no key), so with
/// authentication on every message lands in `mhrp.auth.rejected` /
/// `mhrp.cache.poison_dropped`.
fn hostile_plan(
    p: &HierarchyParams,
    from: SimTime,
    duration: SimDuration,
) -> adversary::AttackPlan {
    use crate::hierarchy::{attacker_addr, mobile_home_addr, region_router_addr};
    let victims: Vec<Ipv4Addr> =
        (0..p.mobiles_per_region.min(8)).map(|i| mobile_home_addr(0, i)).collect();
    let mut plan = adversary::AttackPlan::new();
    let sweeps = (duration.as_millis() / 2_000).max(1);
    for s in 0..sweeps {
        let at = from + SimDuration::from_millis(2_000 * s);
        plan = plan.forged_registration_sweep(
            at,
            SimDuration::from_millis(40),
            0,
            region_router_addr(0),
            attacker_addr(0),
            &victims,
            0x7000 + s as u16,
        );
        for v in victims.iter().take(4) {
            plan = plan.op(
                at + SimDuration::from_millis(300),
                adversary::AttackOp::PoisonUpdate {
                    attacker: 0,
                    target: crate::hierarchy::CORRESPONDENT_ADDR,
                    mobile: *v,
                    foreign_agent: attacker_addr(0),
                },
            );
        }
    }
    plan
}

/// Appends the adversarial gate to a report: the run only passes if the
/// authentication extension visibly rejected forged traffic (a silent
/// zero would mean the attack never engaged and the soak proved
/// nothing).
fn gate_on_auth_rejections(report: &mut SloReport, rejected: u64) {
    let measured = rejected as f64;
    report.checks.push(workload::SloCheck {
        name: "auth_rejected_min".into(),
        measured,
        threshold: 1.0,
        pass: measured >= 1.0,
    });
    report.pass = report.checks.iter().all(|c| c.pass);
}

/// Everything one soak run produced.
#[derive(Debug)]
pub struct SoakRun {
    /// The machine-readable SLO verdict.
    pub report: SloReport,
    /// Simulator events processed during the measured window.
    pub events: u64,
    /// Wall-clock seconds of the measured window (excluded from
    /// determinism comparisons).
    pub wall_seconds: f64,
    /// Merged forward-leg latency histogram.
    pub latency: Histogram,
    /// Typed telemetry events, when [`RwSoakConfig::telemetry`] was on.
    pub events_log: Vec<netsim::Event>,
}

/// Builds the hierarchy, warms registration up, installs a
/// random-waypoint plan over every mobile, runs the flow set, and
/// evaluates the SLOs.
///
/// Deterministic: the same config yields a byte-identical
/// [`SloReport`] (and, with telemetry on, an identical typed-event
/// log).
pub fn run_random_waypoint_soak(cfg: &RwSoakConfig) -> SoakRun {
    assert!(cfg.params.correspondent, "soak needs the backbone correspondent");
    assert!(cfg.flows >= 1, "need at least one flow");
    assert!(cfg.closed_flows <= cfg.flows, "closed_flows exceeds flows");
    if cfg.shards > 1 {
        return run_random_waypoint_soak_sharded(cfg);
    }

    let mut h = Hierarchy::build(cfg.params.clone());
    if cfg.telemetry {
        h.world.set_telemetry(true);
    }
    // Full attachment before load starts: a still-detached flow target
    // would charge its whole stream to "handoff loss".
    assert!(h.run_until_attached(1.0, cfg.warmup), "registration warmup stalled");
    assert!(
        cfg.flows <= h.mobiles.len(),
        "more flows than mobile hosts ({} > {})",
        cfg.flows,
        h.mobiles.len()
    );

    // Mobility: every mobile wanders, whether or not it carries a flow.
    let start_cells: Vec<usize> = (0..h.mobiles.len())
        .map(|idx| {
            let r = idx / h.mobiles_per_region;
            let i = idx % h.mobiles_per_region;
            r * h.fas_per_region + (i % h.fas_per_region)
        })
        .collect();
    let layout = Layout { cells: h.cells.len(), start_cells };
    let model =
        RandomWaypoint { seed: cfg.seed, dwell_min: cfg.dwell_min, dwell_max: cfg.dwell_max };
    let from = h.world.now();
    let plan = model.compile(&layout, from, from + cfg.duration);
    let bindings: Vec<(NodeId, IfaceId)> = h.mobiles.iter().map(|&m| (m, IfaceId(0))).collect();
    plan.install(&mut h.world, &bindings, &h.cells);

    if cfg.adversarial {
        assert!(!h.attackers.is_empty(), "adversarial soak needs params.attackers >= 1");
        let binding = adversary::Binding { attackers: h.attackers.clone(), ..Default::default() };
        hostile_plan(&cfg.params, from + SimDuration::from_millis(500), cfg.duration)
            .install(&mut h.world, &binding);
    }

    // Traffic: flow targets spread evenly over the mobiles; the first
    // `closed_flows` are request/response clients.
    let targets: Vec<usize> = (0..cfg.flows).map(|i| i * h.mobiles.len() / cfg.flows).collect();
    let mut flows: Vec<Flow> = (0..cfg.flows)
        .map(|i| {
            let pattern = if i < cfg.closed_flows {
                Pattern::ClosedLoop {
                    window: 4,
                    deadline: SimDuration::from_millis(250),
                    retries: 2,
                }
            } else {
                Pattern::Poisson { per_sec: cfg.open_rate_per_sec }
            };
            Flow::new(
                i as u32,
                FlowCfg {
                    pattern,
                    bytes: cfg.payload_bytes,
                    seed: cfg.seed
                        ^ (0x9e37_79b9_7f4a_7c15 ^ i as u64).wrapping_mul(0xff51_afd7_ed55_8ccd),
                    limit: None,
                },
            )
        })
        .collect();

    let overhead0 = h.world.stats().counter("mhrp.overhead_bytes");
    let updates0 = h.world.stats().counter("mhrp.updates_sent");
    let events0 = h.world.events_processed();
    let wall0 = Instant::now();

    let flow_bindings = MhrpIo::hierarchy_flows(&h, &targets);
    let mut io = MhrpIo::new(&mut h.world, h.correspondent.expect("correspondent"), flow_bindings);
    run_soak(
        &mut io,
        &mut flows,
        &SoakParams { duration: cfg.duration, tick: cfg.tick, drain: SimDuration::from_secs(2) },
    );

    let wall_seconds = wall0.elapsed().as_secs_f64();
    let events = h.world.events_processed() - events0;

    // Aggregate the flows (Histogram::merge) and the protocol counters.
    let mut latency = Histogram::latency_us();
    let mut rtt = Histogram::latency_us();
    let mut m = SloMeasurements {
        sim_seconds: cfg.duration.as_micros() as f64 / 1e6,
        handoffs: targets.iter().map(|&t| plan.handoffs_for(t)).sum(),
        ..SloMeasurements::default()
    };
    for f in &flows {
        latency.merge(&f.latency_us);
        rtt.merge(&f.rtt_us);
        m.sent += f.stats.sent;
        m.delivered += f.stats.delivered;
        m.completed += f.stats.completed;
        m.failed += f.stats.failed;
        m.retries += f.stats.retries;
    }
    m.latency_p50_us = latency.p50();
    m.latency_p99_us = latency.p99();
    m.latency_max_us = latency.max();
    m.rtt_p99_us = rtt.p99();
    m.overhead_bytes = h.world.stats().counter("mhrp.overhead_bytes") - overhead0;
    m.updates_sent = h.world.stats().counter("mhrp.updates_sent") - updates0;

    let workload_label = format!(
        "random-waypoint dwell {}-{}s × {} flows ({} poisson {}/s + {} closed-loop)",
        cfg.dwell_min.as_micros() / 1_000_000,
        cfg.dwell_max.as_micros() / 1_000_000,
        cfg.flows,
        cfg.flows - cfg.closed_flows,
        cfg.open_rate_per_sec,
        cfg.closed_flows,
    );
    let world_label = format!(
        "hierarchy {}r x {}fa x {}m",
        cfg.params.regions, cfg.params.fas_per_region, cfg.params.mobiles_per_region
    );
    let mut report = evaluate(workload_label, world_label, m, &cfg.thresholds);
    if cfg.adversarial {
        gate_on_auth_rejections(&mut report, h.world.stats().counter("mhrp.auth.rejected"));
    }
    let events_log: Vec<netsim::Event> =
        if cfg.telemetry { h.world.telemetry().events().copied().collect() } else { Vec::new() };
    SoakRun { report, events, wall_seconds, latency, events_log }
}

/// The sharded variant of [`run_random_waypoint_soak`]: one shard per
/// contiguous block of regions, the backbone as the portal, and
/// **region-confined** mobility (each mobile wanders its own region's
/// cells — shard migration is unsupported by design; see DESIGN.md §10).
///
/// The mobility plans and flow schedules are pure functions of the
/// config (per-region seeds derive from `cfg.seed` and the region index
/// alone), so the same config produces the same merged telemetry stream
/// at *any* shard count — the determinism contract the
/// `sharded_determinism` suite pins.
pub fn run_random_waypoint_soak_sharded(cfg: &RwSoakConfig) -> SoakRun {
    assert!(cfg.params.correspondent, "soak needs the backbone correspondent");
    assert!(cfg.flows >= 1, "need at least one flow");
    assert!(cfg.closed_flows <= cfg.flows, "closed_flows exceeds flows");

    let mut h = ShardedHierarchy::build(cfg.params.clone(), cfg.shards.max(1));
    if cfg.telemetry {
        h.world.set_telemetry(true);
    }
    assert!(h.run_until_attached(1.0, cfg.warmup), "registration warmup stalled");
    assert!(
        cfg.flows <= h.mobiles.len(),
        "more flows than mobile hosts ({} > {})",
        cfg.flows,
        h.mobiles.len()
    );

    // Mobility: every mobile wanders the cells of its own region. The
    // per-region plan depends only on the region index and the config —
    // never on the shard count.
    let from = h.world.now();
    let mobiles_per_region = h.mobiles_per_region;
    let fas = h.fas_per_region;
    let mut region_plans: Vec<MovePlan> = Vec::with_capacity(h.regions);
    for r in 0..h.regions {
        let start_cells: Vec<usize> = (0..mobiles_per_region).map(|i| i % fas).collect();
        let layout = Layout { cells: fas, start_cells };
        let model = RandomWaypoint {
            seed: cfg.seed ^ (r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            dwell_min: cfg.dwell_min,
            dwell_max: cfg.dwell_max,
        };
        let plan = model.compile(&layout, from, from + cfg.duration);
        let bindings: Vec<(NodeId, IfaceId)> = (0..mobiles_per_region)
            .map(|i| (h.mobiles[r * mobiles_per_region + i], IfaceId(0)))
            .collect();
        plan.install(&mut h.world, &bindings, &h.cells[r * fas..(r + 1) * fas]);
        region_plans.push(plan);
    }

    if cfg.adversarial {
        assert!(!h.attackers.is_empty(), "adversarial soak needs params.attackers >= 1");
        let binding = adversary::Binding { attackers: h.attackers.clone(), ..Default::default() };
        hostile_plan(&cfg.params, from + SimDuration::from_millis(500), cfg.duration)
            .install(&mut h.world, &binding);
    }

    // Traffic: identical flow construction to the classic soak.
    let targets: Vec<usize> = (0..cfg.flows).map(|i| i * h.mobiles.len() / cfg.flows).collect();
    let mut flows: Vec<Flow> = (0..cfg.flows)
        .map(|i| {
            let pattern = if i < cfg.closed_flows {
                Pattern::ClosedLoop {
                    window: 4,
                    deadline: SimDuration::from_millis(250),
                    retries: 2,
                }
            } else {
                Pattern::Poisson { per_sec: cfg.open_rate_per_sec }
            };
            Flow::new(
                i as u32,
                FlowCfg {
                    pattern,
                    bytes: cfg.payload_bytes,
                    seed: cfg.seed
                        ^ (0x9e37_79b9_7f4a_7c15 ^ i as u64).wrapping_mul(0xff51_afd7_ed55_8ccd),
                    limit: None,
                },
            )
        })
        .collect();

    let overhead0 = h.world.counter("mhrp.overhead_bytes");
    let updates0 = h.world.counter("mhrp.updates_sent");
    let events0 = h.world.events_processed();
    let wall0 = Instant::now();

    let flow_bindings = MhrpIo::sharded_hierarchy_flows(&h, &targets);
    let correspondent = h.correspondent.expect("correspondent");
    let mut io = MhrpIo::new(&mut h.world, correspondent, flow_bindings);
    run_soak(
        &mut io,
        &mut flows,
        &SoakParams { duration: cfg.duration, tick: cfg.tick, drain: SimDuration::from_secs(2) },
    );

    let wall_seconds = wall0.elapsed().as_secs_f64();
    let events = h.world.events_processed() - events0;

    let mut latency = Histogram::latency_us();
    let mut rtt = Histogram::latency_us();
    let mut m = SloMeasurements {
        sim_seconds: cfg.duration.as_micros() as f64 / 1e6,
        handoffs: targets
            .iter()
            .map(|&t| region_plans[t / mobiles_per_region].handoffs_for(t % mobiles_per_region))
            .sum(),
        ..SloMeasurements::default()
    };
    for f in &flows {
        latency.merge(&f.latency_us);
        rtt.merge(&f.rtt_us);
        m.sent += f.stats.sent;
        m.delivered += f.stats.delivered;
        m.completed += f.stats.completed;
        m.failed += f.stats.failed;
        m.retries += f.stats.retries;
    }
    m.latency_p50_us = latency.p50();
    m.latency_p99_us = latency.p99();
    m.latency_max_us = latency.max();
    m.rtt_p99_us = rtt.p99();
    m.overhead_bytes = h.world.counter("mhrp.overhead_bytes") - overhead0;
    m.updates_sent = h.world.counter("mhrp.updates_sent") - updates0;

    let workload_label = format!(
        "random-waypoint (region-confined) dwell {}-{}s × {} flows ({} poisson {}/s + {} closed-loop)",
        cfg.dwell_min.as_micros() / 1_000_000,
        cfg.dwell_max.as_micros() / 1_000_000,
        cfg.flows,
        cfg.flows - cfg.closed_flows,
        cfg.open_rate_per_sec,
        cfg.closed_flows,
    );
    let world_label = format!(
        "hierarchy {}r x {}fa x {}m / {} shards",
        cfg.params.regions,
        cfg.params.fas_per_region,
        cfg.params.mobiles_per_region,
        h.world.shard_count(),
    );
    let mut report = evaluate(workload_label, world_label, m, &cfg.thresholds);
    if cfg.adversarial {
        gate_on_auth_rejections(&mut report, h.world.counter("mhrp.auth.rejected"));
    }
    let events_log: Vec<netsim::Event> =
        if cfg.telemetry { h.world.merged_events() } else { Vec::new() };
    SoakRun { report, events, wall_seconds, latency, events_log }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_rw_soak_meets_default_slos() {
        let cfg = RwSoakConfig {
            params: HierarchyParams {
                regions: 1,
                fas_per_region: 3,
                mobiles_per_region: 6,
                ..HierarchyParams::default()
            },
            flows: 3,
            closed_flows: 1,
            duration: SimDuration::from_secs(4),
            ..RwSoakConfig::default()
        };
        let run = run_random_waypoint_soak(&cfg);
        let m = &run.report.measurements;
        assert!(m.sent > 0, "no load offered");
        assert!(m.delivered > 0, "nothing delivered");
        assert!(run.events > 0);
        assert!(run.report.pass, "SLO breach in the tiny soak: {}", run.report.to_json());
    }

    /// Golden determinism: two runs of the same config produce the same
    /// typed-event log (every simulator event, in order), the same
    /// event count, and a byte-identical SLO report that survives a
    /// JSON round trip.
    #[test]
    fn soak_replay_is_byte_identical() {
        let cfg = RwSoakConfig {
            params: HierarchyParams {
                regions: 1,
                fas_per_region: 3,
                mobiles_per_region: 6,
                ..HierarchyParams::default()
            },
            flows: 3,
            closed_flows: 1,
            duration: SimDuration::from_secs(3),
            telemetry: true,
            ..RwSoakConfig::default()
        };
        let a = run_random_waypoint_soak(&cfg);
        let b = run_random_waypoint_soak(&cfg);
        assert!(!a.events_log.is_empty(), "telemetry produced no typed events");
        assert_eq!(a.events_log, b.events_log, "typed-event logs diverged across replays");
        assert_eq!(a.events, b.events, "event counts diverged across replays");
        let ja = a.report.to_json();
        assert_eq!(ja, b.report.to_json(), "SLO reports diverged across replays");
        let round = workload::SloReport::from_json(&ja).expect("report JSON parses");
        assert_eq!(round.to_json(), ja, "SLO report does not round-trip");
    }
}

//! Topology builders, starting with the paper's Figure 1.
//!
//! ```text
//!        Network A          Network B (home of M)      Network C
//!        S ──┐                  M(home) ──┐            ┌── R4 ─ Network D (wireless)
//!            R1 ─── backbone ─── R2 ───────┘   ┌── R3 ─┤
//!            └──────────────────┴──────────────┘       └── R5 ─ Network E (wireless)
//! ```
//!
//! `R2` is M's home agent; `R4` and `R5` are foreign agents on the
//! wireless networks D and E (E appears in §6.3 when M moves from R4 to
//! R5). `S` is the correspondent host on network A, either a plain 1994
//! host or an MHRP-capable one. `R1` (and optionally `R3`) can act as
//! cache agents for the hosts behind them (§6.2).

use std::net::Ipv4Addr;

use ip::Prefix;
use mhrp::{MhrpConfig, MhrpHostNode, MhrpRouterNode, MobileHostNode};
use netsim::time::SimDuration;
use netsim::{IfaceId, NodeId, SegmentId, SegmentParams, World};
use netstack::nodes::HostNode;
use netstack::route::NextHop;

/// The address plan of the Figure 1 internetwork.
#[derive(Debug, Clone, Copy)]
pub struct Figure1Addrs {
    /// S, the correspondent host on network A.
    pub s: Ipv4Addr,
    /// M, the mobile host homed on network B.
    pub m: Ipv4Addr,
    /// R1's network-A address (the first-hop cache agent for S).
    pub r1: Ipv4Addr,
    /// R2's network-B address (M's home agent).
    pub r2: Ipv4Addr,
    /// R3's network-C address.
    pub r3: Ipv4Addr,
    /// R4's network-D address (foreign agent on D).
    pub r4: Ipv4Addr,
    /// R5's network-E address (foreign agent on E).
    pub r5: Ipv4Addr,
    /// H, the stationary neighbour host on network B (only present when
    /// [`Figure1Options::home_host`] is set).
    pub h: Ipv4Addr,
    /// Network B's prefix (M's home network).
    pub home_prefix: Prefix,
}

/// Which node type plays the correspondent host `S`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrespondentKind {
    /// A plain 1994 host: ignores location updates; relies on its
    /// first-hop router (`R1`) if that router is a cache agent.
    Plain,
    /// An MHRP-capable host: caches locations and tunnels its own packets
    /// (§6.2's expected common case).
    Mhrp,
}

/// Options for [`Figure1::build`].
#[derive(Debug, Clone)]
pub struct Figure1Options {
    /// The protocol configuration shared by every MHRP node.
    pub config: MhrpConfig,
    /// What kind of host S is.
    pub correspondent: CorrespondentKind,
    /// Whether R1 examines forwarded packets as a cache agent (§6.2's
    /// support for networks of unmodified hosts).
    pub r1_cache_agent: bool,
    /// Whether to add H, a plain stationary host on M's home network B.
    /// H talks to M the way any 1994 LAN neighbour would — by ARPing for
    /// M's address directly — so it is the node that observes the home
    /// agent's gratuitous/proxy-ARP interception (§2) and its repair
    /// after a home-agent reboot (§5.2).
    pub home_host: bool,
    /// Link latency of the wired segments.
    pub wired_latency: SimDuration,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for Figure1Options {
    fn default() -> Figure1Options {
        Figure1Options {
            config: MhrpConfig::default(),
            correspondent: CorrespondentKind::Mhrp,
            r1_cache_agent: true,
            home_host: false,
            wired_latency: SimDuration::from_micros(500),
            seed: 42,
        }
    }
}

/// The built Figure 1 world with handles to every node and segment.
#[derive(Debug)]
pub struct Figure1 {
    /// The simulation world (started).
    pub world: World,
    /// Correspondent host S.
    pub s: NodeId,
    /// Mobile host M.
    pub m: NodeId,
    /// H, the plain host on M's home network (only with
    /// [`Figure1Options::home_host`]).
    pub h: Option<NodeId>,
    /// Router R1 (network A).
    pub r1: NodeId,
    /// Router R2 (network B, home agent).
    pub r2: NodeId,
    /// Router R3 (network C).
    pub r3: NodeId,
    /// Router R4 (foreign agent, network D).
    pub r4: NodeId,
    /// Router R5 (foreign agent, network E).
    pub r5: NodeId,
    /// The backbone segment.
    pub backbone: SegmentId,
    /// Network A (S's network).
    pub net_a: SegmentId,
    /// Network B (M's home network).
    pub net_b: SegmentId,
    /// Network C.
    pub net_c: SegmentId,
    /// Network D (wireless, served by R4).
    pub net_d: SegmentId,
    /// Network E (wireless, served by R5).
    pub net_e: SegmentId,
    /// The address plan.
    pub addrs: Figure1Addrs,
    /// Which kind of correspondent was built.
    pub correspondent: CorrespondentKind,
}

impl Figure1Addrs {
    /// The canonical Figure 1 address plan.
    pub fn plan() -> Figure1Addrs {
        Figure1Addrs {
            s: Ipv4Addr::new(10, 1, 0, 10),
            m: Ipv4Addr::new(10, 2, 0, 77),
            r1: Ipv4Addr::new(10, 1, 0, 1),
            r2: Ipv4Addr::new(10, 2, 0, 1),
            r3: Ipv4Addr::new(10, 3, 0, 1),
            r4: Ipv4Addr::new(10, 4, 0, 1),
            r5: Ipv4Addr::new(10, 5, 0, 1),
            h: Ipv4Addr::new(10, 2, 0, 5),
            home_prefix: Prefix::new(Ipv4Addr::new(10, 2, 0, 0), 24),
        }
    }
}

/// The `/24` prefix of network `n` in the canonical address plan
/// (`10.n.0.0/24`; network 0 is the backbone).
pub fn net(n: u8) -> Prefix {
    Prefix::new(Ipv4Addr::new(10, n, 0, 0), 24)
}

/// Router `r`'s address on the backbone (`10.0.0.r`).
pub fn backbone_addr(r: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, r)
}

/// Installs the canonical Figure 1 interface addresses and static routes
/// for router position `1..=5` into `stack`. Every protocol variant of
/// the topology shares this plan, so the §7 comparisons run over
/// *identical* routing.
///
/// Positions: 1–3 are the backbone routers for networks A–C (iface 0 =
/// backbone, iface 1 = stub network); 4 and 5 connect network C (iface 0)
/// to the wireless networks D and E (iface 1).
///
/// # Panics
///
/// Panics if `position` is not in `1..=5`.
pub fn configure_router_stack(stack: &mut netstack::IpStack, position: u8) {
    use netstack::route::NextHop as NH;
    let a = Figure1Addrs::plan();
    match position {
        1 => {
            stack.add_iface(IfaceId(0), backbone_addr(1), net(0));
            stack.add_iface(IfaceId(1), a.r1, net(1));
            stack.routes.add(net(2), NH::Gateway { iface: IfaceId(0), via: backbone_addr(2) });
            for n in 3..=5 {
                stack.routes.add(net(n), NH::Gateway { iface: IfaceId(0), via: backbone_addr(3) });
            }
        }
        2 => {
            stack.add_iface(IfaceId(0), backbone_addr(2), net(0));
            stack.add_iface(IfaceId(1), a.r2, net(2));
            stack.routes.add(net(1), NH::Gateway { iface: IfaceId(0), via: backbone_addr(1) });
            for n in 3..=5 {
                stack.routes.add(net(n), NH::Gateway { iface: IfaceId(0), via: backbone_addr(3) });
            }
        }
        3 => {
            stack.add_iface(IfaceId(0), backbone_addr(3), net(0));
            stack.add_iface(IfaceId(1), a.r3, net(3));
            stack.routes.add(net(1), NH::Gateway { iface: IfaceId(0), via: backbone_addr(1) });
            stack.routes.add(net(2), NH::Gateway { iface: IfaceId(0), via: backbone_addr(2) });
            stack
                .routes
                .add(net(4), NH::Gateway { iface: IfaceId(1), via: Ipv4Addr::new(10, 3, 0, 4) });
            stack
                .routes
                .add(net(5), NH::Gateway { iface: IfaceId(1), via: Ipv4Addr::new(10, 3, 0, 5) });
        }
        4 => {
            stack.add_iface(IfaceId(0), Ipv4Addr::new(10, 3, 0, 4), net(3));
            stack.add_iface(IfaceId(1), a.r4, net(4));
            stack.routes.add(Prefix::default_route(), NH::Gateway { iface: IfaceId(0), via: a.r3 });
        }
        5 => {
            stack.add_iface(IfaceId(0), Ipv4Addr::new(10, 3, 0, 5), net(3));
            stack.add_iface(IfaceId(1), a.r5, net(5));
            stack.routes.add(Prefix::default_route(), NH::Gateway { iface: IfaceId(0), via: a.r3 });
        }
        other => panic!("router position {other} is not in 1..=5"),
    }
}

/// Installs the interface/default-route plan for the correspondent host S
/// on network A.
pub fn configure_host_s_stack(stack: &mut netstack::IpStack) {
    let a = Figure1Addrs::plan();
    stack.add_iface(IfaceId(0), a.s, net(1));
    stack.routes.add(Prefix::default_route(), NextHop::Gateway { iface: IfaceId(0), via: a.r1 });
}

impl Figure1 {
    /// Builds (and starts) the Figure 1 world. M begins at home on
    /// network B.
    pub fn build(opts: Figure1Options) -> Figure1 {
        let addrs = Figure1Addrs::plan();
        let mut w = World::new(opts.seed);
        let wired = SegmentParams::with_latency(opts.wired_latency);
        let backbone = w.add_segment(wired);
        let net_a = w.add_segment(wired);
        let net_b = w.add_segment(wired);
        let net_c = w.add_segment(wired);
        let net_d = w.add_segment(SegmentParams::wireless());
        let net_e = w.add_segment(SegmentParams::wireless());

        // --- R1: backbone <-> network A (cache agent for S's network) ---
        let r1 = w.add_node(MhrpRouterNode::new(opts.config.clone()));
        w.add_iface(r1, Some(backbone)); // iface 0
        w.add_iface(r1, Some(net_a)); // iface 1
        w.with_node::<MhrpRouterNode, _>(r1, |r, _| {
            r.cache_enabled = opts.r1_cache_agent;
            configure_router_stack(&mut r.stack, 1);
        });

        // --- R2: backbone <-> network B; home agent, advertises on B ---
        let r2 = w.add_node(
            MhrpRouterNode::new(opts.config.clone())
                .with_home_agent(IfaceId(1))
                .with_advertiser(vec![IfaceId(1)]),
        );
        w.add_iface(r2, Some(backbone));
        w.add_iface(r2, Some(net_b));
        w.with_node::<MhrpRouterNode, _>(r2, |r, _| {
            configure_router_stack(&mut r.stack, 2);
        });

        // --- R3: backbone <-> network C ---
        let r3 = w.add_node(MhrpRouterNode::new(opts.config.clone()));
        w.add_iface(r3, Some(backbone));
        w.add_iface(r3, Some(net_c));
        w.with_node::<MhrpRouterNode, _>(r3, |r, _| {
            configure_router_stack(&mut r.stack, 3);
        });

        // --- R4: network C <-> network D (wireless); foreign agent on D ---
        let r4 = w.add_node(
            MhrpRouterNode::new(opts.config.clone())
                .with_foreign_agent(IfaceId(1))
                .with_advertiser(vec![IfaceId(1)]),
        );
        w.add_iface(r4, Some(net_c));
        w.add_iface(r4, Some(net_d));
        w.with_node::<MhrpRouterNode, _>(r4, |r, _| {
            configure_router_stack(&mut r.stack, 4);
        });

        // --- R5: network C <-> network E (wireless); foreign agent on E ---
        let r5 = w.add_node(
            MhrpRouterNode::new(opts.config.clone())
                .with_foreign_agent(IfaceId(1))
                .with_advertiser(vec![IfaceId(1)]),
        );
        w.add_iface(r5, Some(net_c));
        w.add_iface(r5, Some(net_e));
        w.with_node::<MhrpRouterNode, _>(r5, |r, _| {
            configure_router_stack(&mut r.stack, 5);
        });

        // --- S: correspondent host on network A ---
        let s = match opts.correspondent {
            CorrespondentKind::Plain => {
                let s = w.add_node(HostNode::new());
                w.add_iface(s, Some(net_a));
                w.with_node::<HostNode, _>(s, |h, _| {
                    configure_host_s_stack(&mut h.stack);
                });
                s
            }
            CorrespondentKind::Mhrp => {
                let s = w.add_node(MhrpHostNode::new(&opts.config));
                w.add_iface(s, Some(net_a));
                w.with_node::<MhrpHostNode, _>(s, |h, _| {
                    configure_host_s_stack(&mut h.stack);
                });
                s
            }
        };

        // --- H: optional plain host on network B (M's LAN neighbour) ---
        let h = opts.home_host.then(|| {
            let h = w.add_node(HostNode::new());
            w.add_iface(h, Some(net_b));
            w.with_node::<HostNode, _>(h, |host, _| {
                host.stack.add_iface(IfaceId(0), addrs.h, net(2));
                host.stack.routes.add(
                    Prefix::default_route(),
                    NextHop::Gateway { iface: IfaceId(0), via: addrs.r2 },
                );
            });
            h
        });

        // --- M: the mobile host, at home on network B ---
        let m = w.add_node(MobileHostNode::new(
            addrs.m,
            addrs.home_prefix,
            addrs.r2,
            addrs.r2,
            opts.config.clone(),
        ));
        w.add_iface(m, Some(net_b));

        w.start();
        Figure1 {
            world: w,
            s,
            m,
            h,
            r1,
            r2,
            r3,
            r4,
            r5,
            backbone,
            net_a,
            net_b,
            net_c,
            net_d,
            net_e,
            addrs,
            correspondent: opts.correspondent,
        }
    }

    /// Physically carries M to network D (R4's wireless cell).
    pub fn move_m_to_d(&mut self) {
        self.world.move_iface(self.m, IfaceId(0), Some(self.net_d));
    }

    /// Physically carries M to network E (R5's wireless cell, §6.3).
    pub fn move_m_to_e(&mut self) {
        self.world.move_iface(self.m, IfaceId(0), Some(self.net_e));
    }

    /// Brings M back to its home network B.
    pub fn move_m_home(&mut self) {
        self.world.move_iface(self.m, IfaceId(0), Some(self.net_b));
    }

    /// Detaches M entirely (out of every cell's range).
    pub fn detach_m(&mut self) {
        self.world.move_iface(self.m, IfaceId(0), None);
    }

    /// Convenience: run until M's attachment state equals `want`, with a
    /// deadline. Returns `true` on success.
    pub fn run_until_attached(&mut self, want: mhrp::Attachment, deadline: SimDuration) -> bool {
        let end = self.world.now() + deadline;
        loop {
            if self.world.node::<MobileHostNode>(self.m).core.state == want {
                return true;
            }
            if self.world.now() >= end {
                return false;
            }
            let step = SimDuration::from_millis(50);
            self.world.run_for(step);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_m_starts_home() {
        let f = Figure1::build(Figure1Options::default());
        assert_eq!(f.world.node::<MobileHostNode>(f.m).core.state, mhrp::Attachment::Home);
        assert_eq!(f.world.node_count(), 7);
        assert_eq!(f.addrs.m, Ipv4Addr::new(10, 2, 0, 77));
    }
}

//! Topologies, workloads, metrics and experiments for the MHRP
//! reproduction.
//!
//! * [`topology`] — the paper's Figure 1 internetwork and the shared
//!   address/route plan every protocol variant uses.
//! * [`hierarchy`] — the seeded backbone/region/cell generator behind the
//!   `mega_world` scale benches and E14.
//! * [`shootout`] — MHRP and the five §7 baselines on identical physical
//!   topology and workload.
//! * [`metrics`] — the result records the experiments emit.
//! * [`experiments`] — one module per reproduced table/figure (see
//!   DESIGN.md's per-experiment index and EXPERIMENTS.md for results).
//! * [`report`] — plain-text table rendering for the `report` binary.
//! * [`soak`] — the workload engine bound to MHRP worlds: SLO-gated
//!   soak runs driven by `workload`'s mobility models and traffic
//!   generators.
//! * [`trace`] — structured-telemetry path assertions (journey hop lists
//!   against the paper's Figure 1 names).

pub mod experiments;
pub mod hierarchy;
pub mod metrics;
pub mod report;
pub mod shootout;
pub mod soak;
pub mod topology;
pub mod trace;

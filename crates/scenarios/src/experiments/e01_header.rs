//! **E01 — Figures 2 & 3: the MHRP header.**
//!
//! Regenerates the header-size table the paper states in §4.2/§7 and
//! checks the bit layout of Figure 3 against golden bytes.

use std::net::Ipv4Addr;

use ip::ipv4::Ipv4Packet;
use ip::proto;
use mhrp::tunnel;
use mhrp::MhrpHeader;

/// One row of the header-size table.
#[derive(Debug, Clone, PartialEq)]
pub struct HeaderRow {
    /// Who builds the header / what happens to the packet.
    pub case: &'static str,
    /// Header bytes the paper states.
    pub paper_bytes: usize,
    /// Header bytes measured from the encoder.
    pub measured_bytes: usize,
}

/// Runs the experiment.
pub fn run() -> Vec<HeaderRow> {
    let a = |x: u8| Ipv4Addr::new(10, 0, 0, x);
    let base = Ipv4Packet::new(a(1), a(7), proto::UDP, vec![0; 32]);

    // Sender-built: empty previous-source list.
    let mut sender_built = base.clone();
    tunnel::encapsulate(&mut sender_built, a(1), a(100), true);
    let sender_overhead = sender_built.wire_len() - base.wire_len();

    // Agent-built: one previous-source entry.
    let mut agent_built = base.clone();
    tunnel::encapsulate(&mut agent_built, a(50), a(100), false);
    let agent_overhead = agent_built.wire_len() - base.wire_len();

    // One re-tunnel: +4.
    let before = agent_built.wire_len();
    tunnel::retunnel(&mut agent_built, a(100), a(101), 8).unwrap();
    let retunnel_delta = agent_built.wire_len() - before;

    vec![
        HeaderRow {
            case: "built by original sender (§4.2)",
            paper_bytes: 8,
            measured_bytes: sender_overhead,
        },
        HeaderRow {
            case: "built by home/cache agent (§4.2)",
            paper_bytes: 12,
            measured_bytes: agent_overhead,
        },
        HeaderRow {
            case: "growth per re-tunnel (§4.4)",
            paper_bytes: 4,
            measured_bytes: retunnel_delta,
        },
    ]
}

/// Golden-byte check of the Figure 3 layout. Returns the encoded header.
pub fn golden_header() -> Vec<u8> {
    let mut h = MhrpHeader::new(proto::TCP, Ipv4Addr::new(192, 168, 1, 2));
    h.prev_sources.push(Ipv4Addr::new(172, 16, 0, 1));
    h.encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_sizes_match_paper() {
        for row in run() {
            assert_eq!(row.measured_bytes, row.paper_bytes, "{}", row.case);
        }
    }

    #[test]
    fn golden_layout() {
        let bytes = golden_header();
        assert_eq!(bytes.len(), 12);
        assert_eq!(bytes[0], proto::TCP); // orig protocol
        assert_eq!(bytes[1], 1); // count
        assert_eq!(&bytes[4..8], &[192, 168, 1, 2]); // mobile host
        assert_eq!(&bytes[8..12], &[172, 16, 0, 1]); // previous source
    }
}

//! **E08 — §4.3: location-update rate limiting.**
//!
//! A plain (non-MHRP) correspondent streams packets to an away mobile
//! host. Every packet is intercepted by the home agent, which would love
//! to tell the sender where the mobile host is — but the sender never
//! listens, so §4.3 requires the agent to cap the update rate per
//! destination.

use mhrp::{Attachment, MhrpConfig};
use netsim::time::{SimDuration, SimTime};
use netstack::nodes::HostNode;

use crate::shootout::DATA_PORT;
use crate::topology::{CorrespondentKind, Figure1, Figure1Options};

/// Rate-limit measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimitResult {
    /// Packets the plain sender transmitted.
    pub packets_sent: u64,
    /// Location updates actually sent to it.
    pub updates_sent: u64,
    /// Updates suppressed by the §4.3 limiter.
    pub updates_suppressed: u64,
}

/// Runs the experiment: `packets` sent over `window_ms` milliseconds with
/// an update minimum interval of `min_interval_ms`.
pub fn run(seed: u64, packets: u32, window_ms: u64, min_interval_ms: u64) -> RateLimitResult {
    let config = MhrpConfig {
        update_min_interval: SimDuration::from_millis(min_interval_ms),
        ..Default::default()
    };
    let mut f = Figure1::build(Figure1Options {
        config,
        correspondent: CorrespondentKind::Plain,
        r1_cache_agent: false, // keep R1 out of it: every packet hits the HA
        seed,
        ..Default::default()
    });
    let m_addr = f.addrs.m;
    f.world.run_until(SimTime::from_secs(2));
    f.move_m_to_d();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(2));

    let sent0 = f.world.stats().counter("mhrp.updates_sent");
    let supp0 = f.world.stats().counter("mhrp.updates_rate_limited");
    let spacing = SimDuration::from_millis(window_ms / u64::from(packets).max(1));
    for i in 0..packets {
        f.world.with_node::<HostNode, _>(f.s, |s, ctx| {
            s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![i as u8; 16]);
        });
        f.world.run_for(spacing);
    }
    f.world.run_for(SimDuration::from_secs(1));
    RateLimitResult {
        packets_sent: u64::from(packets),
        updates_sent: f.world.stats().counter("mhrp.updates_sent") - sent0,
        updates_suppressed: f.world.stats().counter("mhrp.updates_rate_limited") - supp0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_are_capped_per_destination() {
        // 40 packets in 2 s; at most one update per 5 s window may go to S
        // per emitting agent (home agent + the delivering foreign agent).
        let r = run(37, 40, 2_000, 5_000);
        assert_eq!(r.packets_sent, 40);
        assert!(r.updates_sent <= 3, "updates {}", r.updates_sent);
        assert!(r.updates_suppressed >= 30, "suppressed only {}", r.updates_suppressed);
    }

    #[test]
    fn relaxed_interval_allows_more() {
        let strict = run(41, 30, 3_000, 10_000);
        let relaxed = run(41, 30, 3_000, 200);
        assert!(relaxed.updates_sent > strict.updates_sent);
        assert!(relaxed.updates_suppressed < strict.updates_suppressed);
    }
}

//! **E15 — §5: handoff loss vs mobility rate.**
//!
//! The paper's §5 robustness argument bounds the damage of any stale
//! location cache entry: at most *one* packet per stale hop takes a
//! detour or is dropped before the cache is corrected. Aggregated over
//! a soak, that predicts handoff loss stays below one packet per
//! handoff *regardless of how often hosts move* — faster mobility loses
//! more packets only because there are more handoffs, not more loss per
//! handoff.
//!
//! This experiment sweeps the mobility rate with the workload engine's
//! [`Commuter`] model (every host oscillates home ↔ work on a fixed
//! period) while a correspondent streams open-loop CBR probes at every
//! host, and reports loss normalized by the handoff count alongside the
//! §4.3 update traffic that mobility provokes.
//!
//! Expected shape: `lost/handoff ≤ 1` at every period; the location-
//! update count grows as the period shrinks; delivery stays near-total.

use netsim::time::SimDuration;
use netsim::{IfaceId, NodeId};
use workload::{run_soak, Commuter, Flow, FlowCfg, MobilityModel, Pattern, SoakParams};

use crate::hierarchy::{Hierarchy, HierarchyParams};
use crate::soak::MhrpIo;

/// One mobility-rate point of the sweep.
#[derive(Debug, Clone)]
pub struct MobilityRateRow {
    /// Commuter period (full home → work → home cycle), milliseconds.
    pub period_ms: u64,
    /// Handoffs the plan performed across the soak.
    pub handoffs: u64,
    /// Probes the correspondent sent.
    pub sent: u64,
    /// Probes that reached their mobile host.
    pub delivered: u64,
    /// Packets lost per handoff (the §5 claim: ≤ 1).
    pub loss_per_handoff: f64,
    /// p99 one-way delivery latency, microseconds.
    pub latency_p99_us: u64,
    /// Location-update messages the mobility provoked.
    pub updates_sent: u64,
    /// Encapsulation overhead bytes added.
    pub overhead_bytes: u64,
}

/// Number of mobile hosts (every one of them carries a flow).
pub const MOBILES: usize = 8;

/// Simulated soak length per point.
pub const DURATION: SimDuration = SimDuration::from_secs(24);

/// CBR probe spacing (slow enough that the expected loss window of a
/// single handoff holds well under one packet).
pub const CBR_INTERVAL: SimDuration = SimDuration::from_millis(600);

/// Runs one mobility-rate point: commuter period `period` over
/// [`DURATION`] with CBR probes at every host.
pub fn run_period(seed: u64, period: SimDuration) -> MobilityRateRow {
    let mut h = Hierarchy::build(HierarchyParams {
        regions: 1,
        fas_per_region: 4,
        mobiles_per_region: MOBILES,
        seed,
        ..Default::default()
    });
    assert!(
        h.run_until_attached(1.0, SimDuration::from_secs(30)),
        "mobile hosts failed to register"
    );

    let layout = hierarchy_layout(&h);
    let model = Commuter { seed, period, work_hops: 0, region_cells: 0 };
    let from = h.world.now();
    let plan = model.compile(&layout, from, from + DURATION);
    let bindings: Vec<(NodeId, IfaceId)> = h.mobiles.iter().map(|&m| (m, IfaceId(0))).collect();
    plan.install(&mut h.world, &bindings, &h.cells);

    let mut flows: Vec<Flow> = (0..h.mobiles.len())
        .map(|i| {
            Flow::new(
                i as u32,
                FlowCfg {
                    pattern: Pattern::Cbr { interval: CBR_INTERVAL },
                    bytes: 32,
                    seed: seed ^ i as u64,
                    limit: None,
                },
            )
        })
        .collect();

    let updates0 = h.world.stats().counter("mhrp.updates_sent");
    let bytes0 = h.world.stats().counter("mhrp.overhead_bytes");

    let targets: Vec<usize> = (0..h.mobiles.len()).collect();
    let flow_bindings = MhrpIo::hierarchy_flows(&h, &targets);
    let mut io = MhrpIo::new(&mut h.world, h.correspondent.expect("correspondent"), flow_bindings);
    run_soak(
        &mut io,
        &mut flows,
        &SoakParams {
            duration: DURATION,
            tick: SimDuration::from_millis(50),
            drain: SimDuration::from_secs(2),
        },
    );

    let mut latency = netsim::Histogram::latency_us();
    let (mut sent, mut delivered) = (0u64, 0u64);
    for f in &flows {
        latency.merge(&f.latency_us);
        sent += f.stats.sent;
        delivered += f.stats.delivered;
    }
    let handoffs = plan.handoffs();
    MobilityRateRow {
        period_ms: period.as_millis(),
        handoffs,
        sent,
        delivered,
        loss_per_handoff: if handoffs == 0 {
            0.0
        } else {
            sent.saturating_sub(delivered) as f64 / handoffs as f64
        },
        latency_p99_us: latency.p99(),
        updates_sent: h.world.stats().counter("mhrp.updates_sent") - updates0,
        overhead_bytes: h.world.stats().counter("mhrp.overhead_bytes") - bytes0,
    }
}

/// The [`workload::Layout`] mirroring a built hierarchy's round-robin
/// placement.
pub fn hierarchy_layout(h: &Hierarchy) -> workload::Layout {
    let start_cells = (0..h.mobiles.len())
        .map(|idx| {
            let r = idx / h.mobiles_per_region;
            let i = idx % h.mobiles_per_region;
            r * h.fas_per_region + (i % h.fas_per_region)
        })
        .collect();
    workload::Layout { cells: h.cells.len(), start_cells }
}

/// The default period sweep, fastest mobility last.
pub fn run(seed: u64) -> Vec<MobilityRateRow> {
    [16_000u64, 8_000, 4_000]
        .iter()
        .map(|&ms| run_period(seed, SimDuration::from_millis(ms)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_mobility_loses_at_most_one_packet_per_handoff() {
        let slow = run_period(1994, SimDuration::from_secs(16));
        let fast = run_period(1994, SimDuration::from_secs(4));
        assert!(slow.handoffs > 0, "{slow:?}");
        assert!(fast.handoffs > slow.handoffs, "{fast:?} vs {slow:?}");
        // §5's bound, aggregated: never worse than one packet/handoff.
        assert!(slow.loss_per_handoff <= 1.0, "{slow:?}");
        assert!(fast.loss_per_handoff <= 1.0, "{fast:?}");
        // Mobility provokes update traffic proportionally.
        assert!(fast.updates_sent > slow.updates_sent, "{fast:?} vs {slow:?}");
    }
}

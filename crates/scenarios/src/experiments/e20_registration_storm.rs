//! **E20 — registration storm at the rate limiter's edge.**
//!
//! §4.3 requires every agent to rate-limit the location updates it
//! sends to any single destination, and §5.1 makes the home agent fan
//! an update out to *every* previous source listed in a tunneled
//! packet it intercepts. Those two rules collide under forgery: one
//! crafted MHRP tunnel addressed to a mobile host's home address, with
//! a fabricated previous-source list at the one-octet wire maximum,
//! provokes up to 255 updates — an amplification the attacker can
//! repeat every packet, churning the limiter's bounded LRU
//! ([`mhrp::MhrpConfig::update_rate_entries`] entries) with hundreds of
//! never-repeating destinations.
//!
//! This experiment streams a benign CBR workload while an attacker
//! pours storm tunnels at one victim, and compares against the same
//! world without the storm. It measures the amplification
//! (`mhrp.updates_sent`), the limiter churn (evictions, plus the
//! storm-eviction *readmissions* whose miscounting the rate-limiter
//! regression test pins), and — the point of §4.3's bound — that
//! benign delivery rides through the storm untouched.
//!
//! Expected shape: the storm multiplies update traffic but the
//! per-destination bound holds (`updates_rate_limited` grows with it),
//! the limiter's LRU churns (evictions ≫ 0, readmissions observed),
//! and delivery matches the calm run.

use adversary::{AttackPlan, Binding};
use netsim::time::SimDuration;
use workload::{run_soak, Flow, FlowCfg, Pattern, SoakParams};

use crate::hierarchy::{mobile_home_addr, Hierarchy, HierarchyParams};
use crate::soak::MhrpIo;

/// One row of the storm comparison.
#[derive(Debug, Clone)]
pub struct RegistrationStormRow {
    /// Whether the attacker's storm ran.
    pub storm: bool,
    /// Probes the correspondent sent.
    pub sent: u64,
    /// Probes delivered to their mobile host.
    pub delivered: u64,
    /// Delivered fraction.
    pub delivery: f64,
    /// Location updates actually sent (`mhrp.updates_sent`).
    pub updates_sent: u64,
    /// Updates suppressed by the §4.3 limiter
    /// (`mhrp.updates_rate_limited`).
    pub updates_rate_limited: u64,
    /// Limiter LRU evictions (`mhrp.rate_limit.evictions`).
    pub limiter_evictions: u64,
    /// Hot destinations readmitted after a storm eviction
    /// (`mhrp.rate_limit.readmitted`).
    pub limiter_readmitted: u64,
}

/// Number of mobile hosts (all carry benign flows; the first is the
/// storm's victim).
pub const MOBILES: usize = 4;

/// Simulated soak length per point.
pub const DURATION: SimDuration = SimDuration::from_secs(24);

/// CBR probe spacing per flow.
pub const CBR_INTERVAL: SimDuration = SimDuration::from_millis(600);

/// Storm tunnels the attacker sends.
pub const STORM_PACKETS: usize = 160;

/// Fabricated previous sources per storm tunnel.
pub const SOURCES_PER_PACKET: usize = 200;

/// Runs one point, with or without the storm.
pub fn run_point(seed: u64, storm: bool) -> RegistrationStormRow {
    let mut h = Hierarchy::build(HierarchyParams {
        regions: 1,
        fas_per_region: 2,
        mobiles_per_region: MOBILES,
        attackers: 1,
        seed,
        ..Default::default()
    });
    assert!(
        h.run_until_attached(1.0, SimDuration::from_secs(30)),
        "mobile hosts failed to register"
    );

    if storm {
        let plan = AttackPlan::new().update_storm(
            h.world.now() + SimDuration::from_secs(2),
            SimDuration::from_millis(125),
            0,
            mobile_home_addr(0, 0),
            STORM_PACKETS,
            SOURCES_PER_PACKET,
            seed,
        );
        let binding = Binding { attackers: h.attackers.clone(), ..Default::default() };
        plan.install(&mut h.world, &binding);
    }

    let mut flows: Vec<Flow> = (0..MOBILES)
        .map(|i| {
            Flow::new(
                i as u32,
                FlowCfg {
                    pattern: Pattern::Cbr { interval: CBR_INTERVAL },
                    bytes: 32,
                    seed: seed ^ i as u64,
                    limit: None,
                },
            )
        })
        .collect();

    let targets: Vec<usize> = (0..MOBILES).collect();
    let flow_bindings = MhrpIo::hierarchy_flows(&h, &targets);
    let mut io = MhrpIo::new(&mut h.world, h.correspondent.expect("correspondent"), flow_bindings);
    run_soak(
        &mut io,
        &mut flows,
        &SoakParams {
            duration: DURATION,
            tick: SimDuration::from_millis(50),
            drain: SimDuration::from_secs(2),
        },
    );

    let (mut sent, mut delivered) = (0u64, 0u64);
    for f in &flows {
        sent += f.stats.sent;
        delivered += f.stats.delivered;
    }
    RegistrationStormRow {
        storm,
        sent,
        delivered,
        delivery: delivered as f64 / sent.max(1) as f64,
        updates_sent: h.world.stats().counter("mhrp.updates_sent"),
        updates_rate_limited: h.world.stats().counter("mhrp.updates_rate_limited"),
        limiter_evictions: h.world.stats().counter("mhrp.rate_limit.evictions"),
        limiter_readmitted: h.world.stats().counter("mhrp.rate_limit.readmitted"),
    }
}

/// Runs the calm/storm pair.
pub fn run(seed: u64) -> Vec<RegistrationStormRow> {
    vec![run_point(seed, false), run_point(seed, true)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_churns_the_limiter_but_delivery_survives() {
        let calm = run_point(1994, false);
        let storm = run_point(1994, true);
        // Amplification: forged tunnels multiply update traffic.
        assert!(storm.updates_sent > calm.updates_sent * 3, "{storm:?} vs {calm:?}");
        // The bounded LRU churns under hundreds of distinct targets.
        assert!(storm.limiter_evictions > calm.limiter_evictions, "{storm:?} vs {calm:?}");
        assert!(storm.limiter_readmitted > 0, "{storm:?}");
        // §4.3's point: the per-destination bound keeps the storm from
        // starving benign operation.
        assert!(calm.delivery > 0.95, "{calm:?}");
        assert!(storm.delivery > calm.delivery - 0.02, "{storm:?} vs {calm:?}");
    }
}

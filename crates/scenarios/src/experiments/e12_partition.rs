//! **E12 — partition and heal: cache reconvergence.**
//!
//! The backbone partitions for fifteen seconds, cutting S, the home
//! agent and M's island (networks C/D/E) from each other. M moves from
//! R4 to R5 *inside* the partition: its foreign-agent registration
//! completes locally, its home-agent registration backs off to
//! exhaustion (~9.5 s with the default schedule), the old foreign agent
//! is notified anyway (installing the §2 forwarding pointer when
//! configured), and the mobile host keeps sending low-rate home-agent
//! probes at the capped cadence. When the partition heals, the next
//! probe re-registers M with the home agent, S's stale cache entry for
//! R4 is corrected through the §5.1 update path, and delivery resumes.
//!
//! Measured: probes spent while partitioned, milliseconds from the heal
//! to the first delivered packet, post-heal delivery, and whether the
//! home agent and S's cache reconverged on M's true location.

use mhrp::{Attachment, MhrpConfig, MhrpHostNode, MhrpRouterNode, MobileHostNode};
use netsim::time::{SimDuration, SimTime};
use netsim::FaultPlan;

use crate::metrics::PartitionResult;
use crate::shootout::DATA_PORT;
use crate::topology::{CorrespondentKind, Figure1, Figure1Options};

/// Length of the backbone partition. Longer than the home-agent backoff
/// schedule's ~9.5 s exhaustion, so the probe regime is reached while
/// still partitioned.
pub const PARTITION: SimDuration = SimDuration::from_secs(15);

/// Runs one partition-and-heal scenario.
pub fn run_one(seed: u64, forwarding_pointers: bool, label: &str) -> PartitionResult {
    let config = MhrpConfig { forwarding_pointers, ..Default::default() };
    let mut f = Figure1::build(Figure1Options {
        config,
        correspondent: CorrespondentKind::Mhrp,
        seed,
        ..Default::default()
    });
    let m_addr = f.addrs.m;

    // Attach at R4 and prime S's cache with M's current location.
    f.world.run_until(SimTime::from_secs(2));
    f.move_m_to_d();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(2));
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![0; 32]);
    });
    f.world.run_for(SimDuration::from_secs(2));

    // Partition the backbone, then move M to R5 two seconds in.
    let from = f.world.now();
    let heal_at = from + PARTITION;
    f.world.install_faults(&FaultPlan::new().partition(f.backbone, from, heal_at));
    f.world.run_for(SimDuration::from_secs(2));
    let probes0 = f.world.stats().counter("mhrp.registration_probes");
    let acked0 = f.world.node::<MobileHostNode>(f.m).core.stats.ha_registrations_acked;
    f.move_m_to_e();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r5), SimDuration::from_secs(10)));

    // Ride out the rest of the partition: backoff exhausts, the old FA
    // is notified, probes begin.
    f.world.run_until(heal_at);
    let probes_sent = f.world.stats().counter("mhrp.registration_probes") - probes0;
    let pointer_at_heal =
        f.world.node::<MhrpRouterNode>(f.r4).ca.cache.peek(m_addr) == Some(f.addrs.r5);

    // Stream after the heal and watch delivery resume.
    let healed_at = f.world.now();
    let mut sent_after_heal = 0u64;
    for i in 0..50u32 {
        f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
            s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![i as u8; 32]);
        });
        sent_after_heal += 1;
        f.world.run_for(SimDuration::from_millis(100));
    }
    f.world.run_for(SimDuration::from_secs(3));

    let m = f.world.node::<MobileHostNode>(f.m);
    let rx_after: Vec<_> = m
        .endpoint
        .log
        .udp_rx
        .iter()
        .filter(|r| r.dst_port == DATA_PORT && r.at >= healed_at)
        .collect();
    let reconverge_ms = rx_after.first().map(|r| r.at.since(healed_at).as_millis());
    let ha_reconverged = m.core.stats.ha_registrations_acked > acked0;
    let cache_corrected =
        f.world.node::<MhrpHostNode>(f.s).ca.cache.peek(m_addr) == Some(f.addrs.r5);
    PartitionResult {
        label: label.to_owned(),
        partition_ms: PARTITION.as_millis(),
        probes_sent,
        pointer_at_heal,
        reconverge_ms,
        sent_after_heal,
        delivered_after_heal: rx_after.len() as u64,
        ha_reconverged,
        cache_corrected,
    }
}

/// Runs both configurations.
pub fn run(seed: u64) -> Vec<PartitionResult> {
    vec![
        run_one(seed, true, "with forwarding pointer (§2)"),
        run_one(seed, false, "without forwarding pointer"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_reconverge_after_heal() {
        for row in run(41) {
            // The probe regime was reached inside the partition…
            assert!(row.probes_sent > 0, "{}: no probes while partitioned", row.label);
            // …and the home agent re-learned M's location after it
            // healed, so delivery resumed.
            assert!(row.ha_reconverged, "{}: HA never reconverged", row.label);
            assert!(row.reconverge_ms.is_some(), "{}: delivery never resumed", row.label);
            assert!(
                row.delivered_after_heal >= row.sent_after_heal / 2,
                "{}: only {}/{} delivered after heal",
                row.label,
                row.delivered_after_heal,
                row.sent_after_heal
            );
        }
    }

    #[test]
    fn stale_cache_is_corrected() {
        let rows = run(43);
        for row in &rows {
            assert!(row.cache_corrected, "{}: S's cache still stale", row.label);
        }
        // The pointer bridges delivery no slower than the pointerless
        // path, which must wait for the home agent to hear a probe.
        assert!(rows[0].reconverge_ms.unwrap() <= rows[1].reconverge_ms.unwrap() + 2_500);
    }

    #[test]
    fn r4_holds_a_pointer_during_the_partition() {
        // The §2 pointer itself (not just its effect): the old agent
        // maps M to R5 at heal time even though the home agent was
        // unreachable the whole way there — and only when configured.
        let rows = run(47);
        assert!(rows[0].pointer_at_heal, "pointer row: R4 held no pointer at heal");
        assert!(!rows[1].pointer_at_heal, "pointerless row: R4 unexpectedly held a pointer");
    }
}

//! **E10 — §1/§8: "no penalty for being mobile capable".**
//!
//! A mobile-capable host sitting on its home network must behave exactly
//! like a plain host: no MHRP header on any packet, no control traffic on
//! its behalf, no extra hops, and the same round-trip time a plain host
//! pair achieves on the same topology.

use mhrp::{MhrpHostNode, MobileHostNode};
use netsim::time::{SimDuration, SimTime};
use netstack::nodes::HostNode;

use crate::topology::{CorrespondentKind, Figure1, Figure1Options};

/// At-home comparison between the MHRP world and a plain-IP world.
#[derive(Debug, Clone, Copy)]
pub struct AtHomeResult {
    /// RTT of a ping S→M with MHRP software everywhere, M at home (µs).
    pub mhrp_rtt_us: u64,
    /// RTT of the same ping between plain hosts (µs).
    pub plain_rtt_us: u64,
    /// MHRP data-plane bytes added (must be 0).
    pub mhrp_overhead_bytes: u64,
    /// MHRP registration messages sent (must be 0).
    pub registrations: u64,
    /// Location updates sent (must be 0).
    pub updates: u64,
    /// Reply TTL seen by S in the MHRP world (hop-count evidence).
    pub mhrp_reply_ttl: u8,
    /// Reply TTL seen by S in the plain world.
    pub plain_reply_ttl: u8,
}

fn measure_mhrp(seed: u64) -> (u64, u8, u64, u64, u64) {
    let mut f = Figure1::build(Figure1Options {
        correspondent: CorrespondentKind::Mhrp,
        seed,
        ..Default::default()
    });
    let m_addr = f.addrs.m;
    // Warm ARP caches with one ping, then measure the steady-state RTT.
    f.world.run_until(SimTime::from_secs(2));
    for _ in 0..2 {
        f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
            s.ping(ctx, m_addr);
        });
        f.world.run_for(SimDuration::from_secs(2));
    }
    let s = f.world.node::<MhrpHostNode>(f.s);
    let reply = *s.log().echo_replies.last().expect("reply");
    // Sanity: the mobile host really is the MHRP node type.
    let _ = f.world.node::<MobileHostNode>(f.m);
    (
        reply.rtt.as_micros(),
        reply.ttl,
        f.world.stats().counter("mhrp.overhead_bytes"),
        f.world.stats().counter("mhrp.registration_msgs_sent"),
        f.world.stats().counter("mhrp.updates_sent"),
    )
}

fn measure_plain(seed: u64) -> (u64, u8) {
    // Same physical topology, but S and "M" are plain hosts and the
    // routers are plain routers.
    use crate::shootout::{add_plain_router, phys};
    use crate::topology::{configure_host_s_stack, net, Figure1Addrs};
    use netsim::IfaceId;
    use netstack::route::NextHop;

    let addrs = Figure1Addrs::plan();
    let mut p = phys(seed);
    for pos in 1..=3 {
        add_plain_router(&mut p, pos);
    }
    let s = p.world.add_node(HostNode::new());
    p.world.add_iface(s, Some(p.net_a));
    p.world.with_node::<HostNode, _>(s, |h, _| configure_host_s_stack(&mut h.stack));
    let m = p.world.add_node(HostNode::new());
    p.world.add_iface(m, Some(p.net_b));
    p.world.with_node::<HostNode, _>(m, |h, _| {
        h.stack.add_iface(IfaceId(0), addrs.m, net(2));
        h.stack.routes.add(
            ip::Prefix::default_route(),
            NextHop::Gateway { iface: IfaceId(0), via: addrs.r2 },
        );
    });
    p.world.start();
    p.world.run_until(SimTime::from_secs(2));
    for _ in 0..2 {
        p.world.with_node::<HostNode, _>(s, |h, ctx| {
            h.ping(ctx, addrs.m);
        });
        p.world.run_for(SimDuration::from_secs(2));
    }
    let reply = *p.world.node::<HostNode>(s).log().echo_replies.last().expect("reply");
    (reply.rtt.as_micros(), reply.ttl)
}

/// Runs the comparison.
pub fn run(seed: u64) -> AtHomeResult {
    let (mhrp_rtt_us, mhrp_reply_ttl, overhead, regs, updates) = measure_mhrp(seed);
    let (plain_rtt_us, plain_reply_ttl) = measure_plain(seed);
    AtHomeResult {
        mhrp_rtt_us,
        plain_rtt_us,
        mhrp_overhead_bytes: overhead,
        registrations: regs,
        updates,
        mhrp_reply_ttl,
        plain_reply_ttl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_penalty_at_home() {
        let r = run(53);
        assert_eq!(r.mhrp_overhead_bytes, 0, "MHRP added bytes at home");
        assert_eq!(r.registrations, 0, "registrations at home");
        assert_eq!(r.updates, 0, "updates at home");
        // Identical hop count and identical steady-state RTT.
        assert_eq!(r.mhrp_reply_ttl, r.plain_reply_ttl);
        assert_eq!(r.mhrp_rtt_us, r.plain_rtt_us);
    }
}

//! **E07 — §7: scalability with the mobile-host population.**
//!
//! N mobile hosts share the home network and all move to the wireless
//! networks. Measured per protocol, as N grows:
//!
//! * **control messages per move** — MHRP's is constant; Sony's flood
//!   touches every router, Columbia's cache-miss query touches every MSR;
//! * **maximum single-node protocol state** — the Sunshine-Postel global
//!   directory holds *every* mobile host in the internet; an MHRP home
//!   agent holds only its own organization's (identical here because the
//!   topology has one organization — the distinction is who must scale);
//! * **single-node control load** — messages the busiest support node
//!   handled (the directory bottleneck §7 names);
//! * **temporary addresses consumed** — nonzero only for the protocols
//!   §7 faults for needing them.

use std::net::Ipv4Addr;

use baselines::columbia::{ColumbiaMobileNode, MsrNode};
use baselines::common::TempAddrPool;
use baselines::sony_vip::{VipMobileNode, VipRouterNode};
use baselines::sunshine_postel::{SpDirectoryNode, SpForwarderNode, SpHostNode, SpMobileNode};
use mhrp::{MhrpConfig, MhrpRouterNode, MobileHostNode};
use netsim::time::{SimDuration, SimTime};
use netsim::{IfaceId, NodeId, SegmentId};

use crate::metrics::ScalabilityPoint;
use crate::shootout::{add_plain_router, phys, Phys};
use crate::topology::{backbone_addr, configure_router_stack, net, Figure1Addrs};

fn mobile_addr(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 2, 0, (100 + i) as u8)
}

/// Staggered move schedule: every mobile moves once, 300 ms apart, then
/// the world settles.
fn run_moves(p: &mut Phys, mobiles: &[NodeId], target: SegmentId) {
    p.world.run_until(SimTime::from_secs(2));
    for (i, &m) in mobiles.iter().enumerate() {
        let at = p.world.now() + SimDuration::from_millis(300 * (i as u64 + 1));
        p.world.schedule_admin(
            at,
            netsim::AdminOp::MoveIface { node: m, iface: IfaceId(0), segment: target },
        );
    }
    let horizon = p.world.now() + SimDuration::from_secs(10 + mobiles.len() as u64);
    p.world.run_until(horizon);
}

/// MHRP with `n` mobile hosts.
pub fn mhrp_point(seed: u64, n: usize) -> ScalabilityPoint {
    let config = MhrpConfig::default();
    let addrs = Figure1Addrs::plan();
    let mut p = phys(seed);
    add_plain_router(&mut p, 1);
    let r2 = p.world.add_node(
        MhrpRouterNode::new(config.clone())
            .with_home_agent(IfaceId(1))
            .with_advertiser(vec![IfaceId(1)]),
    );
    p.world.add_iface(r2, Some(p.backbone));
    p.world.add_iface(r2, Some(p.net_b));
    p.world.with_node::<MhrpRouterNode, _>(r2, |r, _| configure_router_stack(&mut r.stack, 2));
    add_plain_router(&mut p, 3);
    let r4 = p.world.add_node(
        MhrpRouterNode::new(config.clone())
            .with_foreign_agent(IfaceId(1))
            .with_advertiser(vec![IfaceId(1)]),
    );
    p.world.add_iface(r4, Some(p.net_c));
    p.world.add_iface(r4, Some(p.net_d));
    p.world.with_node::<MhrpRouterNode, _>(r4, |r, _| configure_router_stack(&mut r.stack, 4));
    let mut mobiles = Vec::new();
    for i in 0..n {
        let m = p.world.add_node(MobileHostNode::new(
            mobile_addr(i),
            net(2),
            addrs.r2,
            addrs.r2,
            config.clone(),
        ));
        p.world.add_iface(m, Some(p.net_b));
        mobiles.push(m);
    }
    p.world.start();
    let net_d = p.net_d;
    run_moves(&mut p, &mobiles, net_d);
    let moves: u64 =
        mobiles.iter().map(|&m| p.world.node::<MobileHostNode>(m).core.stats.moves).sum();
    let ctl = 2 * p.world.stats().counter("mhrp.registration_msgs_sent")
        + p.world.stats().counter("mhrp.updates_sent");
    let ha_state = p.world.node::<MhrpRouterNode>(r2).ha.as_ref().unwrap().binding_count();
    let fa_state = p.world.node::<MhrpRouterNode>(r4).fa.as_ref().unwrap().visitor_count();
    ScalabilityPoint {
        protocol: "MHRP".into(),
        mobiles: n,
        control_msgs_per_move: ctl as f64 / moves.max(1) as f64,
        max_node_state: ha_state.max(fa_state),
        temp_addrs_used: 0,
    }
}

/// Sunshine–Postel with `n` mobile hosts (the global directory).
pub fn sp_point(seed: u64, n: usize) -> ScalabilityPoint {
    let addrs = Figure1Addrs::plan();
    let mut p = phys(seed);
    for pos in 1..=3 {
        add_plain_router(&mut p, pos);
    }
    let fwd = p.world.add_node(SpForwarderNode::new(IfaceId(1)));
    p.world.add_iface(fwd, Some(p.net_c));
    p.world.add_iface(fwd, Some(p.net_d));
    p.world.with_node::<SpForwarderNode, _>(fwd, |r, _| configure_router_stack(&mut r.stack, 4));
    let dir_addr = backbone_addr(9);
    let dir = p.world.add_node(SpDirectoryNode::new());
    p.world.add_iface(dir, Some(p.backbone));
    p.world.with_node::<SpDirectoryNode, _>(dir, |d, _| {
        d.stack.add_iface(IfaceId(0), dir_addr, net(0));
    });
    // One correspondent that talks to every mobile (forcing queries).
    let s = p.world.add_node(SpHostNode::new(dir_addr));
    p.world.add_iface(s, Some(p.net_a));
    p.world.with_node::<SpHostNode, _>(s, |h, _| {
        crate::topology::configure_host_s_stack(&mut h.stack)
    });
    let mut mobiles = Vec::new();
    for i in 0..n {
        let m = p.world.add_node(SpMobileNode::new(mobile_addr(i), net(2), addrs.r2, dir_addr));
        p.world.add_iface(m, Some(p.net_b));
        mobiles.push(m);
    }
    p.world.start();
    let net_d = p.net_d;
    run_moves(&mut p, &mobiles, net_d);
    // S pings every mobile once (each requires a directory query).
    for i in 0..n {
        let dst = mobile_addr(i);
        p.world.with_node::<SpHostNode, _>(s, |h, ctx| h.ping(ctx, dst));
        p.world.run_for(SimDuration::from_millis(100));
    }
    p.world.run_for(SimDuration::from_secs(3));
    let stats = p.world.stats();
    let dir_load = stats.counter("sp.db_registrations") + stats.counter("sp.db_queries");
    let ctl = stats.counter("sp.mobile_registrations")
        + 2 * stats.counter("sp.host_queries")
        + stats.counter("sp.fwd_registrations");
    ScalabilityPoint {
        protocol: "Sunshine-Postel".into(),
        mobiles: n,
        control_msgs_per_move: ctl as f64 / n.max(1) as f64,
        max_node_state: p.world.node::<SpDirectoryNode>(dir).db_size().max(dir_load as usize),
        temp_addrs_used: 0,
    }
}

/// Columbia with `n` mobile hosts (MSR multicast queries).
pub fn columbia_point(seed: u64, n: usize) -> ScalabilityPoint {
    let addrs = Figure1Addrs::plan();
    let mut p = phys(seed);
    add_plain_router(&mut p, 1);
    add_plain_router(&mut p, 3);
    let msr_addrs = [addrs.r2, addrs.r4, addrs.r5];
    let mut msrs = Vec::new();
    for (pos, first, seg) in
        [(2u8, p.backbone, p.net_b), (4, p.net_c, p.net_d), (5, p.net_c, p.net_e)]
    {
        let id = p.world.add_node(MsrNode::new(IfaceId(1)));
        p.world.add_iface(id, Some(first));
        p.world.add_iface(id, Some(seg));
        p.world.with_node::<MsrNode, _>(id, |r, _| {
            configure_router_stack(&mut r.stack, pos);
            let self_addr = r.stack.iface_addr(IfaceId(1)).unwrap().addr;
            r.peers = msr_addrs.iter().copied().filter(|a| *a != self_addr).collect();
        });
        msrs.push(id);
    }
    let mut mobiles = Vec::new();
    for i in 0..n {
        p.world.with_node::<MsrNode, _>(msrs[0], |r, _| r.add_home_mobile(mobile_addr(i)));
        let m = p.world.add_node(ColumbiaMobileNode::new(mobile_addr(i), net(2), addrs.r2));
        p.world.add_iface(m, Some(p.net_b));
        mobiles.push(m);
    }
    // A plain correspondent to trigger home-MSR lookups.
    let s = p.world.add_node(netstack::HostNode::new());
    p.world.add_iface(s, Some(p.net_a));
    p.world.with_node::<netstack::HostNode, _>(s, |h, _| {
        crate::topology::configure_host_s_stack(&mut h.stack)
    });
    p.world.start();
    let net_d = p.net_d;
    run_moves(&mut p, &mobiles, net_d);
    for i in 0..n {
        let dst = mobile_addr(i);
        p.world.with_node::<netstack::HostNode, _>(s, |h, ctx| {
            h.ping(ctx, dst);
        });
        p.world.run_for(SimDuration::from_millis(100));
    }
    p.world.run_for(SimDuration::from_secs(3));
    let stats = p.world.stats();
    let ctl = stats.counter("columbia.registrations")
        + stats.counter("columbia.query_messages")
        + stats.counter("columbia.query_rounds");
    let max_cache =
        msrs.iter().map(|&id| p.world.node::<MsrNode>(id).cache_len()).max().unwrap_or(0);
    ScalabilityPoint {
        protocol: "Columbia IPIP".into(),
        mobiles: n,
        control_msgs_per_move: ctl as f64 / n.max(1) as f64,
        max_node_state: max_cache.max(n), // the home MSR captures all n
        temp_addrs_used: 0,               // in-campus movement needs none
    }
}

/// Sony VIP with `n` mobile hosts (flooding + temporary addresses).
pub fn sony_point(seed: u64, n: usize) -> ScalabilityPoint {
    let addrs = Figure1Addrs::plan();
    let mut p = phys(seed);
    let router_addrs = [addrs.r1, addrs.r2, addrs.r3, addrs.r4, addrs.r5];
    let mut routers = Vec::new();
    for (pos, first, local) in [
        (1u8, p.backbone, p.net_a),
        (2, p.backbone, p.net_b),
        (3, p.backbone, p.net_c),
        (4, p.net_c, p.net_d),
        (5, p.net_c, p.net_e),
    ] {
        let id = p.world.add_node(VipRouterNode::new(IfaceId(1)));
        p.world.add_iface(id, Some(first));
        p.world.add_iface(id, Some(local));
        p.world.with_node::<VipRouterNode, _>(id, |r, _| {
            configure_router_stack(&mut r.stack, pos);
            let self_addr = router_addrs[usize::from(pos) - 1];
            r.flood_peers = router_addrs.iter().copied().filter(|a| *a != self_addr).collect();
            if pos >= 4 {
                r.pool = Some(TempAddrPool::new(net(pos), 100, 64));
            }
        });
        routers.push(id);
    }
    let mut mobiles = Vec::new();
    for i in 0..n {
        let m = p.world.add_node(VipMobileNode::new(mobile_addr(i), net(2), addrs.r2, addrs.r2));
        p.world.add_iface(m, Some(p.net_b));
        mobiles.push(m);
    }
    p.world.start();
    let net_d = p.net_d;
    run_moves(&mut p, &mobiles, net_d);
    let stats = p.world.stats();
    let ctl = 2 * stats.counter("vip.mobile_moves")
        + stats.counter("vip.home_registrations")
        + stats.counter("vip.flood_messages");
    let moves = stats.counter("vip.mobile_moves");
    let max_cache =
        routers.iter().map(|&id| p.world.node::<VipRouterNode>(id).cache_len()).max().unwrap_or(0);
    ScalabilityPoint {
        protocol: "Sony VIP".into(),
        mobiles: n,
        control_msgs_per_move: ctl as f64 / moves.max(1) as f64,
        max_node_state: max_cache.max(n),
        temp_addrs_used: moves as usize,
    }
}

/// Runs the full series.
pub fn run(seed: u64, ns: &[usize]) -> Vec<ScalabilityPoint> {
    let mut out = Vec::new();
    for &n in ns {
        out.push(mhrp_point(seed, n));
        out.push(sp_point(seed, n));
        out.push(columbia_point(seed, n));
        out.push(sony_point(seed, n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_section_7() {
        let points = run(31, &[2, 6]);
        let find = |proto: &str, n: usize| {
            points
                .iter()
                .find(|p| p.protocol.starts_with(proto) && p.mobiles == n)
                .unwrap_or_else(|| panic!("{proto}/{n}"))
        };

        // MHRP per-move control cost stays ~constant as N grows.
        let mhrp2 = find("MHRP", 2).control_msgs_per_move;
        let mhrp6 = find("MHRP", 6).control_msgs_per_move;
        assert!(
            (mhrp6 - mhrp2).abs() < 0.5 * mhrp2.max(1.0),
            "MHRP per-move cost moved {mhrp2} -> {mhrp6}"
        );

        // Sony's flood makes each move cost at least the router count.
        let sony6 = find("Sony", 6);
        assert!(
            sony6.control_msgs_per_move > mhrp6 + 3.0,
            "Sony {} vs MHRP {}",
            sony6.control_msgs_per_move,
            mhrp6
        );

        // Only Sony consumed temporary addresses.
        assert!(sony6.temp_addrs_used >= 6);
        assert_eq!(find("MHRP", 6).temp_addrs_used, 0);
        assert_eq!(find("Sunshine", 6).temp_addrs_used, 0);

        // The directory's single-node burden grows with N and exceeds any
        // MHRP node's.
        let sp6 = find("Sunshine", 6);
        let sp2 = find("Sunshine", 2);
        assert!(sp6.max_node_state > sp2.max_node_state);
        assert!(sp6.max_node_state >= find("MHRP", 6).max_node_state);
    }
}

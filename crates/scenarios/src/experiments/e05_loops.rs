//! **E05 — §5.3: routing-loop robustness.**
//!
//! An "incorrect implementation" creates a loop of cache agents: R4's
//! cache says M is at R5, R5's says M is at R4, and M is nowhere. S keeps
//! injecting packets. With MHRP's previous-source-list detection the loop
//! dissolves after a single transit (purge updates clear both caches);
//! with detection disabled — the TTL-only world the paper argues against
//! — every injected packet circulates until its TTL burns out, and the
//! forwarding load keeps climbing while packets keep arriving.

use std::net::Ipv4Addr;

use mhrp::{MhrpConfig, MhrpHostNode, MhrpRouterNode};
use netsim::time::{SimDuration, SimTime};

use crate::metrics::LoopPoint;
use crate::shootout::DATA_PORT;
use crate::topology::{CorrespondentKind, Figure1, Figure1Options};

/// Outcome of one loop run.
#[derive(Debug, Clone)]
pub struct LoopOutcome {
    /// Configuration label.
    pub label: String,
    /// Loops detected and dissolved (§5.3).
    pub loops_detected: u64,
    /// Total tunnel transits across the two looped agents.
    pub tunnel_transits: u64,
    /// Forwarding-load samples over time.
    pub series: Vec<LoopPoint>,
}

/// Runs the loop scenario. `detect` enables §5.3 detection; `packets` is
/// the injected load.
pub fn run_one(seed: u64, detect: bool, packets: u32) -> LoopOutcome {
    let config = MhrpConfig {
        detect_loops: detect,
        // In the TTL-only baseline there is no previous-source list at
        // all, hence no truncation updates either: give the list enough
        // room that it never truncates before the TTL expires.
        max_prev_sources: if detect { MhrpConfig::default().max_prev_sources } else { 64 },
        ..Default::default()
    };
    let mut f = Figure1::build(Figure1Options {
        config,
        correspondent: CorrespondentKind::Mhrp,
        seed,
        ..Default::default()
    });
    let m_addr = f.addrs.m;
    let (r4_addr, r5_addr) = (f.addrs.r4, f.addrs.r5);

    f.world.run_until(SimTime::from_secs(2));
    // M vanishes entirely; the buggy caches point at each other.
    f.detach_m();
    f.world.run_for(SimDuration::from_millis(100));
    let now = f.world.now();
    f.world.with_node::<MhrpRouterNode, _>(f.r4, |r, _| {
        r.ca.cache.insert(m_addr, r5_addr, now);
    });
    f.world.with_node::<MhrpRouterNode, _>(f.r5, |r, _| {
        r.ca.cache.insert(m_addr, r4_addr, now);
    });
    // S's own cache points into the loop.
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        let t = ctx.now();
        s.ca.cache.insert(m_addr, r4_addr, t);
    });
    // Suppress the home agent's authority: M is "away" per the HA too, at
    // R4 — but detection happens before any home path is consulted; for
    // the TTL-only run the HA must not break the loop either, so no HA
    // binding exists and packets reaching home are dropped (stale capture).

    let transits_before = f.world.stats().counter("mhrp.fa_forward_pointer_used");
    let forwarded_before = f.world.stats().counter("ip.forwarded");
    let mut series = Vec::new();
    let t_start = f.world.now();
    let mut last_forwarded = forwarded_before;
    for i in 0..packets {
        f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
            s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![i as u8; 32]);
        });
        f.world.run_for(SimDuration::from_millis(20));
        let fwd = f.world.stats().counter("ip.forwarded");
        series.push(LoopPoint {
            at_ms: f.world.now().since(t_start).as_millis(),
            circulating: fwd - last_forwarded,
        });
        last_forwarded = fwd;
    }
    f.world.run_for(SimDuration::from_secs(2));

    LoopOutcome {
        label: if detect { "MHRP list detection (§5.3)" } else { "TTL-only decay" }.to_owned(),
        loops_detected: f.world.stats().counter("mhrp.loops_detected"),
        tunnel_transits: f.world.stats().counter("mhrp.fa_forward_pointer_used") - transits_before,
        series,
    }
}

/// Runs both configurations.
pub fn run(seed: u64, packets: u32) -> Vec<LoopOutcome> {
    vec![run_one(seed, true, packets), run_one(seed, false, packets)]
}

/// Loop-size contraction helper (§5.3, also used by the bench): a cycle
/// of `n` cache agents with list capacity `cap`. Each agent's cache
/// initially points at the next agent; truncation updates re-point the
/// flushed agents at the node the packet was heading for ("point more
/// directly"), contracting the loop, exactly as §5.3 describes. Returns
/// the number of tunnel transits until the loop is detected.
pub fn contraction_transits(n: usize, cap: usize) -> u32 {
    use ip::ipv4::Ipv4Packet;
    let addr = |i: usize| Ipv4Addr::new(10, 9, 0, (i + 1) as u8);
    let index = |a: Ipv4Addr| -> Option<usize> { (0..n).find(|&i| addr(i) == a) };
    // Each agent's poisoned cache entry: agent i -> agent (i+1) % n.
    let mut cache: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
    let mut pkt = Ipv4Packet::new(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 8, 0, 7),
        ip::proto::UDP,
        vec![0; 16],
    )
    .with_ttl(255);
    mhrp::tunnel::encapsulate(&mut pkt, Ipv4Addr::new(10, 0, 0, 2), addr(0), false);
    let mut here = 0usize;
    let mut transits = 0;
    loop {
        let next = cache[here];
        match mhrp::tunnel::retunnel(&mut pkt, addr(here), addr(next), cap).unwrap() {
            mhrp::tunnel::Retunnel::Forward { truncation_updates } => {
                // §4.4: flushed nodes are told to tunnel future packets to
                // the current target — their caches now shortcut the loop.
                for node in truncation_updates {
                    if let Some(i) = index(node) {
                        cache[i] = next;
                    }
                }
                transits += 1;
                here = next;
            }
            mhrp::tunnel::Retunnel::Loop { .. } => return transits,
        }
        assert!(transits < 10_000, "loop never detected");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_dissolves_quickly_ttl_only_burns() {
        let rows = run(17, 20);
        let with = &rows[0];
        let without = &rows[1];
        assert!(with.loops_detected >= 1, "no loop detected");
        assert_eq!(without.loops_detected, 0);
        // With detection, the first packet dissolves the loop; transit
        // counts stay tiny. Without, every packet orbits until TTL death.
        assert!(
            without.tunnel_transits > 10 * with.tunnel_transits.max(1),
            "TTL-only transits {} vs detected {}",
            without.tunnel_transits,
            with.tunnel_transits
        );
        // The TTL-only forwarding load stays elevated across the series.
        let late_load: u64 = without.series.iter().rev().take(5).map(|p| p.circulating).sum();
        let detected_late: u64 = with.series.iter().rev().take(5).map(|p| p.circulating).sum();
        assert!(late_load > detected_late, "late load {late_load} vs {detected_late}");
    }

    #[test]
    fn contraction_detects_within_bounded_cycles() {
        // Detection happens within one cycle when the list covers the
        // loop, and within a handful otherwise.
        assert!(contraction_transits(3, 8) <= 4);
        let t = contraction_transits(6, 3);
        assert!(t <= 24, "6-loop with cap 3 took {t} transits");
    }
}

//! **E18 — DESIGN.md §12: registration latency under a flash crowd,
//! flat vs hierarchical.**
//!
//! A handoff is not complete until the mobile host holds a registration
//! ack — until then, correspondent packets chase the previous cell. In
//! flat MHRP the ack round-trips to the home agent across the backbone;
//! with a regional tier the serving region's agent acks directly (one
//! LAN round trip) and completes the home-agent registration
//! asynchronously, so the mobile's outage window shrinks to
//! intra-region scale.
//!
//! This experiment throws a flash crowd at one cell of a *foreign*
//! region (most joiners are cross-region visitors), runs the identical
//! plan flat and hierarchical, and compares the mobile-host-measured
//! registration latency (move → matching registration ack, the
//! `MobilityStats` latency introduced with the regional tier).
//!
//! Expected shape: equal joiner counts; hierarchical mean latency
//! strictly below flat (every cross-region joiner saves the backbone
//! round trip). Home-agent registrations stay *equal*: a crowd arrival
//! is each joiner's first registration in the region, so the regional
//! agent still completes one upstream registration — the backbone
//! *traffic* saving needs repeat intra-region handoffs (E17); what the
//! regional tier buys here is taking that round trip off the mobile's
//! critical path.

use netsim::time::SimDuration;
use netsim::{IfaceId, NodeId};
use workload::{FlashCrowd, MobilityModel};

use mhrp::MobileHostNode;

use crate::hierarchy::{Hierarchy, HierarchyParams};

/// One mode's crowd run.
#[derive(Debug, Clone)]
pub struct HandoffLatencyRow {
    /// `"flat"` or `"hierarchical"`.
    pub mode: &'static str,
    /// Handoffs the crowd plan performed (arrivals + dispersals).
    pub handoffs: u64,
    /// Registration acks mobiles matched during the crowd window.
    pub acked: u64,
    /// Mean move → registration-ack latency, microseconds.
    pub latency_mean_us: u64,
    /// Worst move → registration-ack latency, microseconds.
    pub latency_max_us: u64,
    /// Registrations that reached a home agent during the window.
    pub ha_registrations: u64,
}

/// Fraction of hosts that join the crowd.
pub const CROWD_FRACTION: f64 = 0.5;

/// Steady phase before the crowd, crowd phase after.
pub const PRE_PHASE: SimDuration = SimDuration::from_secs(2);

/// Crowd phase length (arrivals spread over its first 2 s; dispersal
/// 4 s after each arrival).
pub const CROWD_PHASE: SimDuration = SimDuration::from_secs(10);

/// Aggregated mobile-host registration latency across the world.
fn latency_totals(h: &Hierarchy) -> (u64, u64, u64) {
    let mut sum = 0u64;
    let mut count = 0u64;
    let mut max = 0u64;
    for &m in &h.mobiles {
        let s = &h.world.node::<MobileHostNode>(m).core.stats;
        sum += s.registration_latency_us_sum;
        count += s.registration_latency_count;
        max = max.max(s.registration_latency_us_max);
    }
    (sum, count, max)
}

/// Runs one mode of the crowd (4 regions × 4 cells × 32 hosts; the
/// crowd converges on region 1's first cell, foreign to 3/4 of the
/// population).
pub fn run_mode(seed: u64, hierarchical: bool) -> HandoffLatencyRow {
    let fas_per_region = 4usize;
    let mut h = Hierarchy::build(HierarchyParams {
        regions: 4,
        fas_per_region,
        mobiles_per_region: 32,
        correspondent: false, // registration-only
        hierarchical,
        seed,
        ..Default::default()
    });
    assert!(
        h.run_until_attached(1.0, SimDuration::from_secs(30)),
        "mobile hosts failed to register"
    );

    let start_cells: Vec<usize> = (0..h.mobiles.len())
        .map(|idx| {
            let r = idx / h.mobiles_per_region;
            let i = idx % h.mobiles_per_region;
            r * h.fas_per_region + (i % h.fas_per_region)
        })
        .collect();
    let layout = workload::Layout { cells: h.cells.len(), start_cells };
    let from = h.world.now();
    let model = FlashCrowd {
        seed,
        at: from + PRE_PHASE,
        cell: fas_per_region, // region 1, cell 0
        fraction: CROWD_FRACTION,
        arrival_window: SimDuration::from_secs(2),
        disperse_after: Some(SimDuration::from_secs(4)),
    };
    let plan = model.compile(&layout, from, from + PRE_PHASE + CROWD_PHASE);
    let bindings: Vec<(NodeId, IfaceId)> = h.mobiles.iter().map(|&m| (m, IfaceId(0))).collect();
    plan.install(&mut h.world, &bindings, &h.cells);

    let (sum0, count0, _) = latency_totals(&h);
    let ha0 = h.world.stats().counter("mhrp.ha_registrations");

    h.world.run_for(PRE_PHASE + CROWD_PHASE + SimDuration::from_secs(2));

    let (sum, count, max) = latency_totals(&h);
    let acked = count - count0;
    HandoffLatencyRow {
        mode: if hierarchical { "hierarchical" } else { "flat" },
        handoffs: plan.handoffs(),
        acked,
        latency_mean_us: (sum - sum0).checked_div(acked).unwrap_or(0),
        latency_max_us: max,
        ha_registrations: h.world.stats().counter("mhrp.ha_registrations") - ha0,
    }
}

/// Both modes, flat first.
pub fn run(seed: u64) -> [HandoffLatencyRow; 2] {
    [run_mode(seed, false), run_mode(seed, true)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regional_acks_shrink_the_registration_window() {
        let [flat, hier] = run(1994);
        assert_eq!(flat.handoffs, hier.handoffs, "{flat:?} vs {hier:?}");
        assert!(flat.acked > 0 && hier.acked > 0, "{flat:?} vs {hier:?}");
        // Cross-region joiners ack at the regional agent instead of
        // round-tripping the backbone.
        assert!(hier.latency_mean_us < flat.latency_mean_us, "{flat:?} vs {hier:?}");
        // First-registration upstreams keep the HA count equal — the
        // tier moves the round trip off the critical path, it does not
        // skip it for fresh arrivals.
        assert_eq!(hier.ha_registrations, flat.ha_registrations, "{flat:?} vs {hier:?}");
    }
}

//! **E04 — §6.3: handoff between foreign agents.**
//!
//! S streams UDP to M while M moves from R4's cell (network D) to R5's
//! (network E) *during a scheduled home-agent outage window* — the exact
//! situation §2 gives as the forwarding pointer's purpose ("periods in
//! which that host's home agent may be temporarily inaccessible").
//! Measured: packets lost in flight, the disruption window (detach →
//! first delivery at the new attachment), and the location updates spent
//! converging. Run twice: with the old agent keeping a §2 forwarding
//! pointer, and without. With the home agent healthy the two
//! configurations measure identically (the §5.1 update path converges
//! the correspondent's cache before the pointer matters), so the outage
//! window is what makes this experiment discriminate.

use mhrp::{Attachment, MhrpConfig, MhrpHostNode, MhrpRouterNode, MobileHostNode};
use netsim::time::{SimDuration, SimTime};
use netsim::{FaultOp, FaultPlan};

use crate::metrics::HandoffResult;
use crate::shootout::DATA_PORT;
use crate::topology::{CorrespondentKind, Figure1, Figure1Options};

/// How long the scheduled fault holds the home agent down in
/// [`run_one`]: from the move until past the end of the measured stream
/// (150 packets × 100 ms + the 3 s drain).
const HA_OUTAGE: SimDuration = SimDuration::from_secs(19);

/// Runs one handoff with the given configuration.
pub fn run_one(seed: u64, forwarding_pointers: bool, label: &str) -> HandoffResult {
    let config = MhrpConfig { forwarding_pointers, ..Default::default() };
    let mut f = Figure1::build(Figure1Options {
        config,
        correspondent: CorrespondentKind::Mhrp,
        seed,
        ..Default::default()
    });
    let m_addr = f.addrs.m;

    // Attach at R4 and prime S's cache.
    f.world.run_until(SimTime::from_secs(2));
    f.move_m_to_d();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(2));
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![0; 32]);
    });
    f.world.run_for(SimDuration::from_secs(2));

    // Stream at 100 ms spacing; move mid-stream. A scheduled fault
    // crashes the home agent at the move and keeps it down past the end
    // of the measured window, so only the old agent's §2 pointer (when
    // configured) can carry the stream to the new attachment.
    let updates0 = f.world.stats().counter("mhrp.updates_sent");
    let mut sent_during_move = 0u64;
    let move_at = f.world.now() + SimDuration::from_millis(200);
    let plan = FaultPlan::new().crash(f.r2, move_at, HA_OUTAGE);
    f.world.install_faults(&plan);
    let mut moved_at: Option<SimTime> = None;
    for i in 0..150u32 {
        if moved_at.is_none() && f.world.now() >= move_at {
            f.move_m_to_e();
            moved_at = Some(f.world.now());
        }
        f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
            s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![i as u8; 32]);
        });
        if moved_at.is_some() {
            sent_during_move += 1;
        }
        f.world.run_for(SimDuration::from_millis(100));
    }
    f.world.run_for(SimDuration::from_secs(3));

    let moved_at = moved_at.expect("move happened");
    let log = &f.world.node::<MobileHostNode>(f.m).endpoint.log;
    let delivered_during_move =
        log.udp_rx.iter().filter(|r| r.dst_port == DATA_PORT && r.at >= moved_at).count() as u64;
    let first_after = log
        .udp_rx
        .iter()
        .filter(|r| r.dst_port == DATA_PORT && r.at >= moved_at)
        .map(|r| r.at)
        .next();
    HandoffResult {
        label: label.to_owned(),
        sent_during_move,
        delivered_during_move,
        disruption_ms: first_after.map(|t| t.since(moved_at).as_millis()).unwrap_or(u64::MAX),
        location_updates: f.world.stats().counter("mhrp.updates_sent") - updates0,
    }
}

/// The scenario forwarding pointers exist for (§2: they are "useful in
/// maintaining connectivity to a frequently moving mobile host during
/// periods in which that host's home agent may be temporarily
/// inaccessible"): M moves from R4 to R5 *while the home agent is cut
/// off*. With a pointer, R4 re-tunnels straight to R5; without one, R4
/// can only tunnel toward the unreachable home network.
pub fn run_ha_partitioned(seed: u64, forwarding_pointers: bool, label: &str) -> HandoffResult {
    let config = MhrpConfig { forwarding_pointers, ..Default::default() };
    let mut f = Figure1::build(Figure1Options {
        config,
        correspondent: CorrespondentKind::Mhrp,
        seed,
        ..Default::default()
    });
    let m_addr = f.addrs.m;

    f.world.run_until(SimTime::from_secs(2));
    f.move_m_to_d();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(2));
    // Prime S's cache (it will stay stale, pointing at R4).
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![0; 32]);
    });
    f.world.run_for(SimDuration::from_secs(2));

    // The home agent drops off the network entirely — scheduled as a
    // fault so the outage is part of the reproducible plan.
    let outage = FaultPlan::new()
        .op(f.world.now(), FaultOp::DetachIface { node: f.r2, iface: netsim::IfaceId(0) });
    f.world.install_faults(&outage);
    // M moves to R5. Its home-agent registration backs off to exhaustion
    // (~9.5 s with the default schedule); the mobile host then notifies
    // the old foreign agent anyway, which (when configured) installs the
    // §2 forwarding pointer.
    f.move_m_to_e();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r5), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(12)); // HA backoff exhausts, old FA notified
    if forwarding_pointers {
        assert_eq!(
            f.world.node::<MhrpRouterNode>(f.r4).ca.cache.peek(m_addr),
            Some(f.addrs.r5),
            "forwarding pointer missing after HA-dark move"
        );
    }

    // S streams to its stale R4 binding while the HA is dark.
    let updates0 = f.world.stats().counter("mhrp.updates_sent");
    let moved_at = f.world.now();
    let mut sent = 0u64;
    for i in 0..40u32 {
        f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
            s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![i as u8; 32]);
        });
        sent += 1;
        f.world.run_for(SimDuration::from_millis(100));
    }
    f.world.run_for(SimDuration::from_secs(3));

    let log = &f.world.node::<MobileHostNode>(f.m).endpoint.log;
    let delivered =
        log.udp_rx.iter().filter(|r| r.dst_port == DATA_PORT && r.at >= moved_at).count() as u64;
    let first_after = log
        .udp_rx
        .iter()
        .filter(|r| r.dst_port == DATA_PORT && r.at >= moved_at)
        .map(|r| r.at)
        .next();
    HandoffResult {
        label: label.to_owned(),
        sent_during_move: sent,
        delivered_during_move: delivered,
        disruption_ms: first_after.map(|t| t.since(moved_at).as_millis()).unwrap_or(u64::MAX),
        location_updates: f.world.stats().counter("mhrp.updates_sent") - updates0,
    }
}

/// Runs all configurations.
pub fn run(seed: u64) -> Vec<HandoffResult> {
    vec![
        run_one(seed, true, "with forwarding pointers (§2)"),
        run_one(seed, false, "without forwarding pointers"),
        run_ha_partitioned(seed, true, "HA unreachable, with pointer (§2)"),
        run_ha_partitioned(seed, false, "HA unreachable, without pointer"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handoff_converges_and_pointers_help() {
        let rows = run(13);
        let with = &rows[0];
        let without = &rows[1];
        // With the home agent dark, the pointer is the only path to the
        // new attachment: the configurations must *diverge*.
        assert!(with.delivered_during_move > 0, "no delivery after move (with pointers)");
        assert!(
            with.delivered_during_move > without.delivered_during_move,
            "pointer row ({}) must beat the pointerless row ({})",
            with.delivered_during_move,
            without.delivered_during_move
        );
        // Bounded disruption: movement detection plus the home-agent
        // backoff schedule running to exhaustion (~9.5 s) before the old
        // agent is notified and its pointer installed.
        assert!(with.disruption_ms < 15_000, "disruption {}ms", with.disruption_ms);
        // Convergence used location updates.
        assert!(with.location_updates > 0);
    }

    #[test]
    fn forwarding_pointers_carry_traffic_while_ha_is_dark() {
        // §2's stated purpose for the pointer: connectivity while the
        // home agent is temporarily inaccessible.
        let with = run_ha_partitioned(19, true, "with");
        let without = run_ha_partitioned(19, false, "without");
        assert!(
            with.delivered_during_move >= with.sent_during_move / 2,
            "pointer path delivered only {}/{}",
            with.delivered_during_move,
            with.sent_during_move
        );
        assert_eq!(
            without.delivered_during_move, 0,
            "without a pointer and without the HA, nothing should arrive"
        );
    }
}

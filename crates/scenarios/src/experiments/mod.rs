//! One module per reproduced experiment (DESIGN.md's E01–E21 index).

pub mod e01_header;
pub mod e02_overhead;
pub mod e03_path;
pub mod e04_handoff;
pub mod e05_loops;
pub mod e06_recovery;
pub mod e07_scalability;
pub mod e08_rate_limit;
pub mod e09_icmp_errors;
pub mod e10_at_home;
pub mod e11_flapping;
pub mod e12_partition;
pub mod e13_provenance;
pub mod e14_cache_capacity;
pub mod e15_mobility_rate;
pub mod e16_flash_crowd;
pub mod e17_hierarchy;
pub mod e18_handoff_latency;
pub mod e19_forged_registration;
pub mod e20_registration_storm;
pub mod e21_ping_pong;

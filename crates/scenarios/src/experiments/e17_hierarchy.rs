//! **E17 — DESIGN.md §12: regional tier vs backbone registration load.**
//!
//! The paper's §7 scaling argument counts *per-move* control traffic;
//! its weakness at internetwork scale is that every handoff — even one
//! between two cells of the same campus — crosses the backbone to reach
//! the mobile host's home agent. The hierarchical extension inserts a
//! regional agent above the cell foreign agents: intra-region handoffs
//! re-register with the regional agent only, and the home agent keeps a
//! single region-granularity binding.
//!
//! This experiment drives the same commuter-with-local-wander plan
//! (each host oscillates home ↔ a random work cell, and hops between
//! the work region's cells while "at work") through a flat and a
//! hierarchical build of the same world, and compares where the
//! registration load lands. The move plans are identical byte-for-byte
//! — the work-hop RNG stream is independent of the mode — so the
//! backbone saving is exactly the home-agent registrations the regional
//! tier absorbed.
//!
//! Expected shape: handoffs equal across modes; hierarchical home-agent
//! registrations strictly below flat (the §12 claim the report binary
//! machine-checks on the 10 000-host world); the difference reappears
//! as regional registrations and locally-absorbed handoffs.

use netsim::time::SimDuration;
use netsim::{IfaceId, NodeId};
use workload::{Commuter, MobilityModel};

use crate::hierarchy::{Hierarchy, HierarchyParams};

/// One (world size, mode) point of the comparison.
#[derive(Debug, Clone)]
pub struct HierarchyTierRow {
    /// `"flat"` or `"hierarchical"`.
    pub mode: &'static str,
    /// Total mobile hosts in the world.
    pub mobiles: usize,
    /// Handoffs the move plan performed.
    pub handoffs: u64,
    /// Registrations that reached a home agent — each one crossed the
    /// backbone unless the mobile was in its home region.
    pub ha_registrations: u64,
    /// Registrations absorbed by regional agents (0 in flat mode).
    pub reg_registrations: u64,
    /// Of those, handoffs settled entirely inside one region (0 in flat
    /// mode).
    pub reg_handoffs_local: u64,
    /// Registration protocol messages mobiles sent (both tiers).
    pub registration_msgs: u64,
}

/// Commuter cycle length (home → work → home).
pub const PERIOD: SimDuration = SimDuration::from_secs(8);

/// Intra-work-region hops per work phase — the handoffs the regional
/// tier absorbs.
pub const WORK_HOPS: usize = 2;

/// Measured soak length per point.
pub const DURATION: SimDuration = SimDuration::from_secs(24);

/// Runs one point: `regions × fas_per_region × mobiles_per_region`
/// hosts commuting for [`DURATION`], flat or hierarchical.
pub fn run_point(
    seed: u64,
    regions: usize,
    fas_per_region: usize,
    mobiles_per_region: usize,
    hierarchical: bool,
) -> HierarchyTierRow {
    let mut h = Hierarchy::build(HierarchyParams {
        regions,
        fas_per_region,
        mobiles_per_region,
        correspondent: false, // registration-only: no data flows
        hierarchical,
        seed,
        ..Default::default()
    });
    assert!(
        h.run_until_attached(1.0, SimDuration::from_secs(60)),
        "mobile hosts failed to register"
    );

    let start_cells: Vec<usize> = (0..h.mobiles.len())
        .map(|idx| {
            let r = idx / h.mobiles_per_region;
            let i = idx % h.mobiles_per_region;
            r * h.fas_per_region + (i % h.fas_per_region)
        })
        .collect();
    let layout = workload::Layout { cells: h.cells.len(), start_cells };
    let model =
        Commuter { seed, period: PERIOD, work_hops: WORK_HOPS, region_cells: fas_per_region };
    let from = h.world.now();
    let plan = model.compile(&layout, from, from + DURATION);
    let bindings: Vec<(NodeId, IfaceId)> = h.mobiles.iter().map(|&m| (m, IfaceId(0))).collect();
    plan.install(&mut h.world, &bindings, &h.cells);

    let ha0 = h.world.stats().counter("mhrp.ha_registrations");
    let reg0 = h.world.stats().counter("mhrp.reg_registrations");
    let local0 = h.world.stats().counter("mhrp.reg_handoffs_local");
    let msgs0 = h.world.stats().counter("mhrp.registration_msgs_sent");

    // Registration-only soak: run the plan out plus a drain window for
    // the last acks.
    h.world.run_for(DURATION + SimDuration::from_secs(2));

    HierarchyTierRow {
        mode: if hierarchical { "hierarchical" } else { "flat" },
        mobiles: h.mobiles.len(),
        handoffs: plan.handoffs(),
        ha_registrations: h.world.stats().counter("mhrp.ha_registrations") - ha0,
        reg_registrations: h.world.stats().counter("mhrp.reg_registrations") - reg0,
        reg_handoffs_local: h.world.stats().counter("mhrp.reg_handoffs_local") - local0,
        registration_msgs: h.world.stats().counter("mhrp.registration_msgs_sent") - msgs0,
    }
}

/// One world size, both modes (flat first).
pub fn run_size(
    seed: u64,
    regions: usize,
    fas_per_region: usize,
    mobiles_per_region: usize,
) -> [HierarchyTierRow; 2] {
    [
        run_point(seed, regions, fas_per_region, mobiles_per_region, false),
        run_point(seed, regions, fas_per_region, mobiles_per_region, true),
    ]
}

/// The default sweep: the 1k and 10k commuter worlds, flat vs
/// hierarchical (the 100k point lives in the `simcore` bench, where the
/// sharded engine runs it).
pub fn run(seed: u64) -> Vec<HierarchyTierRow> {
    let mut rows = Vec::new();
    rows.extend(run_size(seed, 5, 4, 200)); // 1 000 hosts
    rows.extend(run_size(seed, 25, 4, 400)); // 10 000 hosts
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regional_tier_absorbs_intra_region_handoffs() {
        let [flat, hier] = run_size(1994, 3, 3, 6);
        // Identical plans: the comparison is mode-only.
        assert_eq!(flat.handoffs, hier.handoffs, "{flat:?} vs {hier:?}");
        assert!(flat.handoffs > 0, "{flat:?}");
        // The §12 claim: the regional tier keeps registrations off the
        // home agents.
        assert!(hier.ha_registrations < flat.ha_registrations, "{flat:?} vs {hier:?}");
        assert!(hier.reg_registrations > 0, "{hier:?}");
        assert!(hier.reg_handoffs_local > 0, "{hier:?}");
        // Flat mode never touches the regional counters.
        assert_eq!(flat.reg_registrations, 0, "{flat:?}");
        assert_eq!(flat.reg_handoffs_local, 0, "{flat:?}");
    }
}

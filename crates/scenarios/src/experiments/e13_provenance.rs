//! **E13 — path provenance: journey reconstruction across a handoff.**
//!
//! The paper's route-optimization claim (§6.1) is about the *shape* of the
//! forwarding path, not a counter: the first packet to a departed M is
//! home-routed (`S -> R1 -> R2 -> R3 -> R4 -> M`, Figure 1), the home
//! agent's location update reaches S, and from then on packets bypass the
//! home agent entirely (`S -> R1 -> R3 -> R4 -> M`). This experiment
//! reconstructs both paths from structured telemetry journeys and measures
//! how many packets the optimization takes to kick in — the paper's answer
//! is exactly one notification round-trip, i.e. only the first packet pays
//! the triangle.

use mhrp::{Attachment, MhrpHostNode};
use netsim::time::{SimDuration, SimTime};
use netsim::JourneyId;

use crate::shootout::DATA_PORT;
use crate::topology::{CorrespondentKind, Figure1, Figure1Options};
use crate::trace::fig1_hops;

/// Reconstructed provenance of the S->M stream around a move to network D.
#[derive(Debug, Clone)]
pub struct ProvenanceResult {
    /// Hop list (receiving nodes, in order) of the first packet after the
    /// move — the home-routed triangle.
    pub home_routed: Vec<&'static str>,
    /// Hop list of the first optimized packet.
    pub optimized: Vec<&'static str>,
    /// Tunnel encapsulations on the home-routed journey (home agent).
    pub home_routed_encaps: usize,
    /// Tunnel encapsulations on the optimized journey (sender).
    pub optimized_encaps: usize,
    /// How many packets were home-routed before the path converged (the
    /// paper's §6.1 claim: 1 — a single notification round-trip).
    pub packets_until_optimized: u32,
}

/// The most recent completed journey that originated at S and was
/// delivered to M (filters out agent advertisements and other background
/// traffic that also produces frames at M).
fn last_s_to_m_journey(f: &Figure1) -> Option<JourneyId> {
    let tele = f.world.telemetry();
    let (s, m) = (f.s.0 as u32, f.m.0 as u32);
    tele.journeys().into_iter().rfind(|&id| {
        let j = tele.journey(id);
        j.events.first().is_some_and(|e| e.node == Some(s)) && j.hops().last() == Some(&m)
    })
}

fn send_data(f: &mut Figure1, marker: u8) {
    let m_addr = f.addrs.m;
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![marker; 32]);
    });
}

/// Runs the provenance experiment.
///
/// # Panics
///
/// Panics if M fails to attach to R4 or if no S->M journey completes
/// (both would mean the Figure 1 world is broken).
pub fn run(seed: u64) -> ProvenanceResult {
    let mut f = Figure1::build(Figure1Options {
        correspondent: CorrespondentKind::Mhrp,
        seed,
        ..Default::default()
    });
    f.world.set_telemetry(true);

    // Prime while M is at home: warms ARP along the home path so later
    // journeys are not interleaved with resolution traffic.
    f.world.run_until(SimTime::from_secs(2));
    send_data(&mut f, 0);
    f.world.run_for(SimDuration::from_secs(2));

    // Move M to network D and let registration converge.
    f.move_m_to_d();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(2));

    // Send packets one at a time until one bypasses the home agent R2.
    // Packet 1 is expected to be home-routed; the §6.1 location update it
    // triggers should make packet 2 already take the short path.
    let mut home_routed = None;
    let mut optimized = None;
    let mut packets_until_optimized = 0u32;
    for i in 0..5u32 {
        send_data(&mut f, 10 + i as u8);
        f.world.run_for(SimDuration::from_secs(2));
        let id = last_s_to_m_journey(&f).expect("an S->M packet must complete");
        let journey = f.world.telemetry().journey(id);
        if journey.visited(f.r2.0 as u32) {
            packets_until_optimized += 1;
            home_routed.get_or_insert((id, journey));
        } else {
            optimized = Some((id, journey));
            break;
        }
    }
    let (home_id, home) = home_routed.expect("first post-move packet must be home-routed");
    let (opt_id, opt) = optimized.expect("path never converged to the optimized route");
    ProvenanceResult {
        home_routed: fig1_hops(&f, home_id),
        optimized: fig1_hops(&f, opt_id),
        home_routed_encaps: home.encap_count(),
        optimized_encaps: opt.encap_count(),
        packets_until_optimized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journeys_prove_single_round_trip_convergence() {
        let r = run(1994);
        // Figure 1 home-routed triangle: the packet visits the home agent.
        assert_eq!(r.home_routed, ["R1", "R2", "R3", "R4", "M"], "home-routed path");
        // Optimized path: the sender tunnel bypasses R2 entirely.
        assert_eq!(r.optimized, ["R1", "R3", "R4", "M"], "optimized path");
        // §6.1: only the first packet pays the triangle.
        assert_eq!(r.packets_until_optimized, 1, "convergence took more than one notification");
        // Home-routed packet was encapsulated by the home agent; the
        // optimized one by the sender itself (§4.2 / §6.2).
        assert!(r.home_routed_encaps >= 1, "home agent never encapsulated");
        assert!(r.optimized_encaps >= 1, "sender never encapsulated");
    }
}

//! **E21 — ping-pong handoff oscillation.**
//!
//! The nastiest mobility pattern for any handoff protocol: a victim
//! carried (or lured by a rogue beacon) back and forth between two
//! cells as fast as registration completes, so the protocol spends its
//! life in the handoff window. §5's robustness argument still bounds
//! the damage — at most one packet per stale cache entry takes a wrong
//! hop before the entry is corrected — which aggregates to the same
//! machine-checkable claim E15 established for benign commuting: loss
//! stays below one packet per handoff no matter how hostile the
//! oscillation.
//!
//! The experiment oscillates one victim between two cells on a fixed
//! half-period (an [`adversary::AttackPlan::ping_pong`] plan lowered
//! onto the event queue) while a correspondent streams CBR probes at
//! it, and runs the same plan with the §13 authentication extension on
//! to show the defense costs nothing here: registration MACs ride the
//! existing messages, so handoff behaviour — and the §5 bound — are
//! unchanged.
//!
//! Expected shape: `lost/handoff ≤ 1` with authentication off *and*
//! on, with near-identical update traffic.

use adversary::{AttackPlan, Binding};
use mhrp::MhrpConfig;
use netsim::time::SimDuration;
use netsim::IfaceId;
use workload::{run_soak, Flow, FlowCfg, Pattern, SoakParams};

use crate::hierarchy::{Hierarchy, HierarchyParams};
use crate::soak::MhrpIo;

/// One row of the ping-pong comparison.
#[derive(Debug, Clone)]
pub struct PingPongRow {
    /// Whether the §13 authentication extension was on.
    pub auth: bool,
    /// Handoffs the plan performed.
    pub handoffs: u64,
    /// Probes sent at the victim.
    pub sent: u64,
    /// Probes delivered to the victim.
    pub delivered: u64,
    /// Packets lost per handoff (the §5 claim: ≤ 1).
    pub loss_per_handoff: f64,
    /// Location updates the oscillation provoked.
    pub updates_sent: u64,
    /// Registration control messages sent.
    pub registrations: u64,
}

/// Number of mobile hosts (only the first — the victim — oscillates
/// and carries the probe flow).
pub const MOBILES: usize = 4;

/// Simulated soak length per point.
pub const DURATION: SimDuration = SimDuration::from_secs(24);

/// Time between moves: one handoff every half-period, matching E15's
/// fastest benign sweep point so the §5 bound is exercised at a cadence
/// the protocol is known to survive.
pub const HALF_PERIOD: SimDuration = SimDuration::from_secs(2);

/// CBR probe spacing at the victim.
pub const CBR_INTERVAL: SimDuration = SimDuration::from_millis(600);

/// Runs one ping-pong point.
pub fn run_point(seed: u64, auth: bool) -> PingPongRow {
    let config =
        MhrpConfig { auth_key: auth.then_some(0x1994_0d0c_5bad_c0de), ..Default::default() };
    let mut h = Hierarchy::build(HierarchyParams {
        regions: 1,
        fas_per_region: 4,
        mobiles_per_region: MOBILES,
        config,
        seed,
        ..Default::default()
    });
    assert!(
        h.run_until_attached(1.0, SimDuration::from_secs(30)),
        "mobile hosts failed to register"
    );

    // The victim (mobile 0) starts in cell 0 under the builder's
    // round-robin placement; oscillate it against cell 1.
    let handoffs = (DURATION.as_millis() / HALF_PERIOD.as_millis()) as usize - 1;
    let plan =
        AttackPlan::new().ping_pong(h.world.now() + HALF_PERIOD, HALF_PERIOD, 0, 0, 1, handoffs);
    let binding = Binding {
        attackers: Vec::new(),
        mobiles: h.mobiles.iter().map(|&m| (m, IfaceId(0))).collect(),
        cells: h.cells.clone(),
    };
    plan.install(&mut h.world, &binding);

    let mut flows = vec![Flow::new(
        0,
        FlowCfg { pattern: Pattern::Cbr { interval: CBR_INTERVAL }, bytes: 32, seed, limit: None },
    )];

    let flow_bindings = MhrpIo::hierarchy_flows(&h, &[0]);
    let mut io = MhrpIo::new(&mut h.world, h.correspondent.expect("correspondent"), flow_bindings);
    run_soak(
        &mut io,
        &mut flows,
        &SoakParams {
            duration: DURATION,
            tick: SimDuration::from_millis(50),
            drain: SimDuration::from_secs(2),
        },
    );

    let sent = flows[0].stats.sent;
    let delivered = flows[0].stats.delivered;
    let moves = plan.moves();
    PingPongRow {
        auth,
        handoffs: moves,
        sent,
        delivered,
        loss_per_handoff: if moves == 0 {
            0.0
        } else {
            sent.saturating_sub(delivered) as f64 / moves as f64
        },
        updates_sent: h.world.stats().counter("mhrp.updates_sent"),
        registrations: h.world.stats().counter("mhrp.registration_msgs_sent"),
    }
}

/// Runs the pair: authentication off, then on.
pub fn run(seed: u64) -> Vec<PingPongRow> {
    vec![run_point(seed, false), run_point(seed, true)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oscillation_stays_under_one_packet_per_handoff() {
        let open = run_point(1994, false);
        let auth = run_point(1994, true);
        assert!(open.handoffs > 4, "{open:?}");
        assert_eq!(open.handoffs, auth.handoffs, "{open:?} vs {auth:?}");
        // §5's bound holds under hostile oscillation...
        assert!(open.loss_per_handoff <= 1.0, "{open:?}");
        // ...and the authentication extension does not weaken it.
        assert!(auth.loss_per_handoff <= 1.0, "{auth:?}");
        // Handoffs actually happened and provoked update traffic.
        assert!(open.updates_sent > 0, "{open:?}");
        assert!(auth.registrations > 0, "{auth:?}");
    }
}

//! **E14 — §2/§4.3: location-cache capacity vs triangle routing.**
//!
//! The paper bounds every cache agent's state by a *finite* cache with
//! local replacement (§2) and argues correctness never depends on cache
//! size — a miss only costs the triangle through the home agent. This
//! experiment measures that trade on the hierarchical world: one MHRP
//! correspondent on the backbone streams UDP round-robin to every mobile
//! host (the adversarial access pattern for LRU), while the shared
//! `cache_capacity` sweeps from starvation to ample.
//!
//! Expected shape: delivery stays total at every capacity; what moves is
//! *where* packets are tunneled (sender vs home agent), the encapsulation
//! overhead bytes, and the eviction churn.

use mhrp::MhrpConfig;
use mhrp::MhrpHostNode;
use netsim::time::SimDuration;

use crate::hierarchy::{Hierarchy, HierarchyParams};

/// One capacity point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCapacityRow {
    /// The swept `cache_capacity` every cache agent ran with.
    pub cache_capacity: usize,
    /// Data packets the correspondent sent.
    pub packets_sent: u64,
    /// Packets foreign agents delivered into their cells.
    pub delivered: u64,
    /// Packets the correspondent tunneled itself (cache hits, §6.2).
    pub tunneled_by_sender: u64,
    /// Packets that paid the triangle through a home agent (§6.1).
    pub tunneled_via_home: u64,
    /// Location-cache evictions across the world (`mhrp.cache.evictions`).
    pub cache_evictions: u64,
    /// Location updates sent (§4.3).
    pub updates_sent: u64,
    /// Location updates suppressed by the §4.3 rate limiter.
    pub updates_suppressed: u64,
    /// Encapsulation overhead bytes across all tunneled packets.
    pub overhead_bytes: u64,
}

/// Number of mobile hosts the sweep world holds.
pub const MOBILES: usize = 32;

/// Runs one capacity point: `rounds` round-robin UDP sweeps over all
/// [`MOBILES`] away mobile hosts.
pub fn run_capacity(seed: u64, cache_capacity: usize, rounds: u32) -> CacheCapacityRow {
    let config = MhrpConfig {
        cache_capacity,
        // Let updates flow at the send cadence so cache capacity — not the
        // §4.3 limiter — is the binding constraint being measured.
        update_min_interval: SimDuration::from_millis(50),
        ..Default::default()
    };
    let mut h = Hierarchy::build(HierarchyParams {
        regions: 2,
        fas_per_region: 4,
        mobiles_per_region: MOBILES / 2,
        correspondent: true,
        config,
        seed,
        ..Default::default()
    });
    assert!(
        h.run_until_attached(1.0, SimDuration::from_secs(30)),
        "mobile hosts failed to register"
    );
    h.world.run_for(SimDuration::from_secs(2));

    let counter = |h: &Hierarchy, name: &str| h.world.stats().counter(name);
    let sender0 = counter(&h, "mhrp.tunneled_by_sender");
    let home0 = counter(&h, "mhrp.ha_tunneled");
    let evict0 = counter(&h, "mhrp.cache.evictions");
    let sent0 = counter(&h, "mhrp.updates_sent");
    let supp0 = counter(&h, "mhrp.updates_rate_limited");
    let bytes0 = counter(&h, "mhrp.overhead_bytes");
    let deliv0 = counter(&h, "mhrp.fa_delivered");

    let s = h.correspondent.expect("correspondent built");
    let mut packets_sent = 0u64;
    for round in 0..rounds {
        for idx in 0..h.mobiles.len() {
            let dst = h.mobile_addr(idx);
            h.world.with_node::<MhrpHostNode, _>(s, |c, ctx| {
                c.send_udp(ctx, dst, 7777, 7777, vec![round as u8; 24]);
            });
            packets_sent += 1;
            h.world.run_for(SimDuration::from_millis(20));
        }
    }
    h.world.run_for(SimDuration::from_secs(1));

    CacheCapacityRow {
        cache_capacity,
        packets_sent,
        delivered: counter(&h, "mhrp.fa_delivered") - deliv0,
        tunneled_by_sender: counter(&h, "mhrp.tunneled_by_sender") - sender0,
        tunneled_via_home: counter(&h, "mhrp.ha_tunneled") - home0,
        cache_evictions: counter(&h, "mhrp.cache.evictions") - evict0,
        updates_sent: counter(&h, "mhrp.updates_sent") - sent0,
        updates_suppressed: counter(&h, "mhrp.updates_rate_limited") - supp0,
        overhead_bytes: counter(&h, "mhrp.overhead_bytes") - bytes0,
    }
}

/// The default capacity sweep.
pub fn run(seed: u64) -> Vec<CacheCapacityRow> {
    [4usize, 16, 64].iter().map(|&cap| run_capacity(seed, cap, 3)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starved_cache_still_delivers_but_pays_the_triangle() {
        let small = run_capacity(1994, 4, 2);
        let large = run_capacity(1994, 64, 2);
        // Correctness never depends on cache size (§2).
        assert_eq!(small.delivered, small.packets_sent, "{small:?}");
        assert_eq!(large.delivered, large.packets_sent, "{large:?}");
        // The starved cache churns and routes through home agents; the
        // ample cache tunnels from the sender after the first round.
        assert!(small.cache_evictions > 0, "{small:?}");
        assert!(small.tunneled_via_home > large.tunneled_via_home, "{small:?} vs {large:?}");
        assert!(large.tunneled_by_sender > small.tunneled_by_sender, "{small:?} vs {large:?}");
    }
}

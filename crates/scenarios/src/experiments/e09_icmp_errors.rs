//! **E09 — §4.5: ICMP error handling across tunnels.**
//!
//! The path to the mobile host's *cached* foreign agent breaks (R4
//! detaches from network C). The sender's next tunneled packet dies
//! mid-tunnel; the resulting destination-unreachable must travel back to
//! the original sender with the packet copy reversed to its
//! pre-encapsulation form, and the stale cache entries must be purged —
//! both for a sender-built tunnel (error terminates at S) and an
//! agent-built one (R1 reverses and re-sends toward plain S).

use mhrp::{Attachment, MhrpHostNode, MhrpRouterNode};
use netsim::time::{SimDuration, SimTime};
use netsim::IfaceId;
use netstack::nodes::HostNode;

use crate::shootout::DATA_PORT;
use crate::topology::{CorrespondentKind, Figure1, Figure1Options};

/// Result of one error-propagation run.
#[derive(Debug, Clone)]
pub struct ErrorPathResult {
    /// Configuration label.
    pub label: String,
    /// ICMP errors the original sender logged.
    pub sender_errors: u64,
    /// Whether the stale cache entry was purged.
    pub cache_purged: bool,
    /// Tunnel-reverse operations performed by intermediate agents.
    pub reversals: u64,
}

fn break_route_to_d(f: &mut Figure1) {
    // R3 withdraws its route toward R4's network, and R4's own side is
    // detached; packets for R4 now die at R3 with destination-unreachable.
    f.world.move_iface(f.r4, IfaceId(0), None);
    f.world.with_node::<MhrpRouterNode, _>(f.r3, |r, _| {
        r.stack.routes.remove(crate::topology::net(4));
        // Route queries for R4's network-C address also fail.
        r.stack.arp.clear_iface(IfaceId(1));
    });
}

fn setup(seed: u64, kind: CorrespondentKind) -> Figure1 {
    let mut f = Figure1::build(Figure1Options {
        correspondent: kind,
        r1_cache_agent: true,
        seed,
        ..Default::default()
    });
    f.world.run_until(SimTime::from_secs(2));
    f.move_m_to_d();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(2));
    f
}

/// Sender-built tunnel: S itself is the tunnel head; the error terminates
/// at S after un-rewriting.
pub fn run_sender_built(seed: u64) -> ErrorPathResult {
    let mut f = setup(seed, CorrespondentKind::Mhrp);
    let m_addr = f.addrs.m;
    // Prime S's cache.
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![0; 16]);
    });
    f.world.run_for(SimDuration::from_secs(2));
    assert_eq!(f.world.node::<MhrpHostNode>(f.s).ca.cache.peek(m_addr), Some(f.addrs.r4));

    // Break the path to R4: routing at R3 withdraws network D (as a
    // routing protocol would after a link failure).
    break_route_to_d(&mut f);
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![1; 16]);
    });
    f.world.run_for(SimDuration::from_secs(5));

    let s_node = f.world.node::<MhrpHostNode>(f.s);
    ErrorPathResult {
        label: "sender-built tunnel (error terminates at S)".into(),
        sender_errors: s_node.log().icmp_errors.len() as u64,
        cache_purged: s_node.ca.cache.peek(m_addr).is_none(),
        reversals: f.world.stats().counter("mhrp.icmp_errors_reversed"),
    }
}

/// Agent-built tunnel: plain S, R1 is the tunnel head; R1 reverses the
/// error and re-sends it to S.
pub fn run_agent_built(seed: u64) -> ErrorPathResult {
    let mut f = setup(seed, CorrespondentKind::Plain);
    let m_addr = f.addrs.m;
    // Prime R1's cache via the snooped location update.
    f.world.with_node::<HostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![0; 16]);
    });
    f.world.run_for(SimDuration::from_secs(2));
    assert_eq!(f.world.node::<MhrpRouterNode>(f.r1).ca.cache.peek(m_addr), Some(f.addrs.r4));

    break_route_to_d(&mut f);
    f.world.with_node::<HostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![1; 16]);
    });
    f.world.run_for(SimDuration::from_secs(5));

    ErrorPathResult {
        label: "agent-built tunnel (R1 reverses, resends to S)".into(),
        sender_errors: f.world.node::<HostNode>(f.s).log().icmp_errors.len() as u64,
        cache_purged: f.world.node::<MhrpRouterNode>(f.r1).ca.cache.peek(m_addr).is_none(),
        reversals: f.world.stats().counter("mhrp.icmp_errors_reversed"),
    }
}

/// Runs both configurations.
pub fn run(seed: u64) -> Vec<ErrorPathResult> {
    vec![run_sender_built(seed), run_agent_built(seed)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_built_error_reaches_sender_and_purges() {
        let r = run_sender_built(43);
        assert!(r.sender_errors >= 1, "S never saw the error");
        assert!(r.cache_purged, "stale cache entry survived");
    }

    #[test]
    fn agent_built_error_is_reversed_and_forwarded() {
        let r = run_agent_built(47);
        assert!(r.reversals >= 1, "R1 never reversed the error");
        assert!(r.cache_purged, "R1's stale cache entry survived");
        assert!(r.sender_errors >= 1, "plain S never received the reversed error");
    }
}

//! **E11 — registration under flapping links.**
//!
//! M moves into R4's wireless cell while a scheduled fault plan flaps
//! network D up and down. Agent advertisements, solicitations and
//! registration messages all cross that link, so every flap can eat any
//! part of the §3 sequence; the bounded retry/backoff schedule on
//! registration is what lets M converge once the link stabilises. A
//! third schedule suppresses R4's broadcasts instead of cutting the
//! link — modeling an agent whose advertisements are lost while unicast
//! still works — which stalls discovery (M cannot hear any agent) until
//! the suppression lifts.
//!
//! Measured per schedule: time from the move to the first successful
//! foreign attachment, registration traffic spent (retransmissions
//! included), failed registrations, solicitations, and data delivery
//! while S streams throughout.

use mhrp::{Attachment, MhrpHostNode, MobileHostNode};
use netsim::time::{SimDuration, SimTime};
use netsim::{FaultPlan, IfaceId};

use crate::metrics::FlapResult;
use crate::shootout::DATA_PORT;
use crate::topology::{CorrespondentKind, Figure1, Figure1Options};

/// When M is carried into R4's cell (absolute simulation time). Fault
/// schedules are built relative to this so every row lines up.
pub const MOVE_AT: SimTime = SimTime::from_secs(2);

/// Builds the fault schedule for the "flapping link" row: network D
/// flaps down/up four times, the first flap already in progress when M
/// arrives, ending up.
pub fn flapping_plan(f: &Figure1) -> FaultPlan {
    FaultPlan::new().flap(
        f.net_d,
        MOVE_AT - SimDuration::from_millis(300),
        SimDuration::from_millis(700),
        SimDuration::from_millis(800),
        4,
    )
}

/// Builds the fault schedule for the "adverts suppressed" row: R4's
/// cell-side broadcasts are muted from before the move until four
/// seconds after it, so M can hear no advertisement (solicited or
/// periodic) until the window lifts.
pub fn muted_plan(f: &Figure1) -> FaultPlan {
    FaultPlan::new().mute_window(
        f.r4,
        IfaceId(1),
        MOVE_AT - SimDuration::from_millis(500),
        MOVE_AT + SimDuration::from_secs(4),
    )
}

/// Runs one schedule: build Figure 1, install `plan`, carry M into R4's
/// cell at [`MOVE_AT`] and stream S→M for ten seconds.
pub fn run_one(seed: u64, plan: &FaultPlan, label: &str) -> FlapResult {
    let mut f = Figure1::build(Figure1Options {
        correspondent: CorrespondentKind::Mhrp,
        seed,
        ..Default::default()
    });
    let m_addr = f.addrs.m;
    f.world.install_faults(plan);

    f.world.run_until(MOVE_AT);
    let reg0 = f.world.stats().counter("mhrp.registration_msgs_sent");
    let failed0 = f.world.stats().counter("mhrp.registrations_failed");
    let solicits0 = f.world.stats().counter("mhrp.solicits_sent");
    f.move_m_to_d();
    let moved_at = f.world.now();

    // Stream throughout the fault window; note the first instant M is
    // attached at R4.
    let mut attach_ms = None;
    let mut sent = 0u64;
    for i in 0..100u32 {
        f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
            s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![i as u8; 32]);
        });
        sent += 1;
        f.world.run_for(SimDuration::from_millis(100));
        if attach_ms.is_none()
            && f.world.node::<MobileHostNode>(f.m).core.state == Attachment::Foreign(f.addrs.r4)
        {
            attach_ms = Some(f.world.now().since(moved_at).as_millis());
        }
    }
    f.world.run_for(SimDuration::from_secs(3));

    let m = f.world.node::<MobileHostNode>(f.m);
    let delivered = m
        .endpoint
        .log
        .udp_rx
        .iter()
        .filter(|r| r.dst_port == DATA_PORT && r.at >= moved_at)
        .count() as u64;
    FlapResult {
        label: label.to_owned(),
        attached: matches!(m.core.state, Attachment::Foreign(_)),
        attach_ms,
        registration_msgs: f.world.stats().counter("mhrp.registration_msgs_sent") - reg0,
        registrations_failed: f.world.stats().counter("mhrp.registrations_failed") - failed0,
        solicits: f.world.stats().counter("mhrp.solicits_sent") - solicits0,
        sent,
        delivered,
    }
}

/// Runs all three schedules.
pub fn run(seed: u64) -> Vec<FlapResult> {
    // The schedules reference segment/node ids, which are identical for
    // every `Figure1::build`; use a throwaway build to construct them.
    let probe = Figure1::build(Figure1Options::default());
    let flapping = flapping_plan(&probe);
    let muted = muted_plan(&probe);
    drop(probe);
    vec![
        run_one(seed, &FaultPlan::new(), "stable link"),
        run_one(seed, &flapping, "flapping link (4 down/up cycles)"),
        run_one(seed, &muted, "advertisements suppressed 4 s"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schedules_end_attached_and_delivering() {
        for row in run(31) {
            assert!(row.attached, "{}: M never attached", row.label);
            assert!(row.attach_ms.is_some(), "{}: no attach time", row.label);
            assert!(row.delivered > 0, "{}: nothing delivered", row.label);
        }
    }

    #[test]
    fn faults_cost_time_and_registration_traffic() {
        let rows = run(37);
        let stable = &rows[0];
        let flapping = &rows[1];
        let muted = &rows[2];
        // A stable link attaches within roughly one advertisement
        // period.
        assert!(stable.attach_ms.unwrap() < 2_000, "stable took {:?}", stable.attach_ms);
        // Flapping delays attachment and costs extra registration
        // messages (retransmissions across the flaps).
        assert!(flapping.attach_ms.unwrap() >= stable.attach_ms.unwrap());
        assert!(
            flapping.registration_msgs >= stable.registration_msgs,
            "flapping sent {} registration msgs vs stable {}",
            flapping.registration_msgs,
            stable.registration_msgs
        );
        // Suppressed advertisements stall discovery for the whole mute
        // window.
        assert!(muted.attach_ms.unwrap() >= 3_500, "muted attached at {:?}", muted.attach_ms);
    }
}

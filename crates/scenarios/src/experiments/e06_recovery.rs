//! **E06 — §5.2: foreign-agent crash recovery.**
//!
//! R4 loses its visitor list. Three recovery paths are measured:
//!
//! 1. **reboot + recovery query** — the §5.2 broadcast prompts M to
//!    re-register immediately;
//! 2. **silent state loss** — only the main §5.2 mechanism remains: a
//!    bounced packet reaches the home agent, which sends the foreign
//!    agent a location update naming itself, re-adding the visitor;
//! 3. **silent state loss + verification** — same, but the agent issues
//!    an ARP query instead of believing the home agent outright.

use mhrp::{Attachment, MhrpConfig, MhrpHostNode, MhrpRouterNode, MobileHostNode};
use netsim::time::{SimDuration, SimTime};

use crate::metrics::RecoveryResult;
use crate::shootout::DATA_PORT;
use crate::topology::{CorrespondentKind, Figure1, Figure1Options};

/// How the foreign agent's state is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Full reboot: volatile state lost *and* the §5.2 recovery query is
    /// broadcast.
    RebootWithQuery,
    /// Silent loss: no broadcast; recovery relies on the location-update
    /// path alone.
    SilentLoss,
}

/// Runs one recovery scenario.
pub fn run_one(seed: u64, mode: CrashMode, verify: bool, label: &str) -> RecoveryResult {
    let config = MhrpConfig { verify_on_recovery: verify, ..Default::default() };
    let mut f = Figure1::build(Figure1Options {
        config,
        correspondent: CorrespondentKind::Mhrp,
        seed,
        ..Default::default()
    });
    let m_addr = f.addrs.m;

    f.world.run_until(SimTime::from_secs(2));
    f.move_m_to_d();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(2));
    // Prime S's cache.
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![0; 16]);
    });
    f.world.run_for(SimDuration::from_secs(2));

    // Crash.
    let crash_at = f.world.now();
    match mode {
        CrashMode::RebootWithQuery => f.world.reboot_node(f.r4),
        CrashMode::SilentLoss => {
            f.world.with_node::<MhrpRouterNode, _>(f.r4, |r, _| r.fa.as_mut().unwrap().reboot());
        }
    }

    // Stream packets; watch for the visitor entry to reappear and count
    // losses until delivery resumes.
    let delivered_before = f.world.node::<MobileHostNode>(f.m).endpoint.log.udp_rx.len() as u64;
    let mut recovery_ms = None;
    let mut sent = 0u64;
    for i in 0..100u32 {
        f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
            s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![i as u8; 16]);
        });
        sent += 1;
        f.world.run_for(SimDuration::from_millis(50));
        if recovery_ms.is_none()
            && f.world.node::<MhrpRouterNode>(f.r4).fa.as_ref().unwrap().has_visitor(m_addr)
        {
            recovery_ms = Some(f.world.now().since(crash_at).as_millis());
        }
        if recovery_ms.is_some() {
            break;
        }
    }
    f.world.run_for(SimDuration::from_secs(3));
    let delivered_after = f.world.node::<MobileHostNode>(f.m).endpoint.log.udp_rx.len() as u64;
    let packets_lost = sent.saturating_sub(delivered_after - delivered_before);
    RecoveryResult { label: label.to_owned(), recovery_ms, packets_lost }
}

/// Runs every recovery scenario.
pub fn run(seed: u64) -> Vec<RecoveryResult> {
    vec![
        run_one(seed, CrashMode::RebootWithQuery, false, "reboot + recovery query (§5.2)"),
        run_one(seed, CrashMode::SilentLoss, false, "silent loss, trust home agent (§5.2)"),
        run_one(seed, CrashMode::SilentLoss, true, "silent loss, verify by ARP query (§5.2)"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_recover() {
        for row in run(23) {
            assert!(row.recovery_ms.is_some(), "{} never recovered", row.label);
            assert!(
                row.recovery_ms.unwrap() < 10_000,
                "{} took {}ms",
                row.label,
                row.recovery_ms.unwrap()
            );
        }
    }

    #[test]
    fn recovery_query_is_fastest() {
        let rows = run(29);
        let query = rows[0].recovery_ms.unwrap();
        let trust = rows[1].recovery_ms.unwrap();
        // The broadcast query recovers without waiting for a data packet
        // to bounce off the home agent.
        assert!(query <= trust, "query {query}ms vs trust {trust}ms");
    }
}

//! **E02 — the §7 per-packet overhead comparison.**
//!
//! Runs the identical workload over MHRP and all five baselines and
//! measures the encapsulation bytes added per data packet. The expected
//! shape (who costs what) is the §7 table: MHRP 8–12, Sunshine-Postel a
//! source-route shim, Columbia 24, Sony 28 (on *every* packet), Matsushita
//! 40, IBM 8 each way.

use crate::metrics::ComparisonRow;
use crate::shootout::{all_drivers, run_comparison};

/// Number of data packets in the default run.
pub const DEFAULT_PACKETS: u32 = 20;

/// Runs the comparison over every protocol.
pub fn run(seed: u64, packets: u32) -> Vec<ComparisonRow> {
    all_drivers(seed).into_iter().map(|d| run_comparison(d, packets)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_match_section_7_shape() {
        let rows = run(7, DEFAULT_PACKETS);
        let get = |name: &str| -> &ComparisonRow {
            rows.iter().find(|r| r.protocol.starts_with(name)).expect(name)
        };

        let mhrp = get("MHRP");
        let sp = get("Sunshine");
        let columbia = get("Columbia");
        let sony = get("Sony");
        let iptp = get("Matsushita");
        let lsrr = get("IBM");

        // Everyone delivers the stream in the steady state.
        for r in &rows {
            assert!(
                r.delivery_ratio() >= 0.9,
                "{} delivered only {}/{}",
                r.protocol,
                r.delivered,
                r.data_packets_sent
            );
        }

        // §7 overhead ordering: MHRP (8-12) < Columbia (24) < Sony (28)
        // < Matsushita (40). The IBM sender-side option is 8 bytes.
        assert!(
            mhrp.overhead_per_packet >= 8.0 && mhrp.overhead_per_packet <= 12.0,
            "MHRP {:.1}",
            mhrp.overhead_per_packet
        );
        assert!(
            (columbia.overhead_per_packet - 24.0).abs() < 0.5,
            "Columbia {:.1}",
            columbia.overhead_per_packet
        );
        assert!(
            (sony.overhead_per_packet - 28.0).abs() < 0.5,
            "Sony {:.1}",
            sony.overhead_per_packet
        );
        assert!(
            (iptp.overhead_per_packet - 40.0).abs() < 0.5,
            "Matsushita {:.1}",
            iptp.overhead_per_packet
        );
        assert!(
            (lsrr.overhead_per_packet - 8.0).abs() < 0.5,
            "IBM {:.1}",
            lsrr.overhead_per_packet
        );
        assert!((sp.overhead_per_packet - 8.0).abs() < 0.5, "SP {:.1}", sp.overhead_per_packet);
        assert!(mhrp.overhead_per_packet < columbia.overhead_per_packet);
        assert!(columbia.overhead_per_packet < sony.overhead_per_packet);
        assert!(sony.overhead_per_packet < iptp.overhead_per_packet);

        // Route optimization: MHRP's forward path (sender-tunneled) is no
        // longer than the home-anchored protocols' paths.
        assert!(mhrp.avg_forward_hops <= columbia.avg_forward_hops + 0.01);
        assert!(mhrp.avg_forward_hops <= iptp.avg_forward_hops + 0.01);
    }
}

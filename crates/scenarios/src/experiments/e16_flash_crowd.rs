//! **E16 — §2/§7: flash crowd vs location-cache capacity.**
//!
//! A flash crowd is the adversarial case for §2's finite location
//! caches: a large fraction of the mobile population converges on one
//! cell in a short window, every move invalidates cached locations at
//! once, and the cache agents nearest the crowd churn hardest. The
//! paper's position is that capacity is a *performance* knob, never a
//! correctness one — a starved cache only pays more triangle routes and
//! evictions.
//!
//! This experiment drives the same [`FlashCrowd`] workload (60 % of the
//! hosts pile into one cell) against two cache capacities and splits
//! every latency histogram into a *before* and a *during/after* window
//! with the telemetry snapshot helper, so the crowd's latency cost is
//! visible separately from the steady state.
//!
//! Expected shape: delivery stays ≥ 90 % at both capacities; the
//! starved cache evicts (much) more; the crowd window records traffic at
//! both capacities.

use mhrp::MhrpConfig;
use netsim::time::SimDuration;
use netsim::{Histogram, IfaceId, NodeId};
use workload::{run_soak, FlashCrowd, Flow, FlowCfg, MobilityModel, Pattern, SoakParams};

use crate::experiments::e15_mobility_rate::hierarchy_layout;
use crate::hierarchy::{Hierarchy, HierarchyParams};
use crate::soak::MhrpIo;

/// One capacity point of the flash-crowd run.
#[derive(Debug, Clone)]
pub struct FlashCrowdRow {
    /// The `cache_capacity` every cache agent ran with.
    pub cache_capacity: usize,
    /// Hosts that joined the crowd (handoffs into the target cell).
    pub crowd_joiners: u64,
    /// Probes sent across the whole run.
    pub sent: u64,
    /// Probes delivered.
    pub delivered: u64,
    /// Location-cache evictions across the world.
    pub cache_evictions: u64,
    /// p50 delivery latency *before* the crowd, microseconds.
    pub pre_p50_us: u64,
    /// p99 delivery latency *before* the crowd, microseconds.
    pub pre_p99_us: u64,
    /// Samples recorded in the crowd window.
    pub crowd_samples: u64,
    /// p50 delivery latency during/after the crowd, microseconds.
    pub crowd_p50_us: u64,
    /// p99 delivery latency during/after the crowd, microseconds.
    pub crowd_p99_us: u64,
}

impl FlashCrowdRow {
    /// Delivery ratio in `[0, 1]`.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

/// Fraction of hosts that join the crowd.
pub const CROWD_FRACTION: f64 = 0.6;

/// Steady-state phase before the crowd begins.
pub const PRE_PHASE: SimDuration = SimDuration::from_secs(6);

/// Crowd phase (arrivals spread over the first 2 s of it).
pub const CROWD_PHASE: SimDuration = SimDuration::from_secs(8);

/// Runs one capacity point of the flash-crowd workload.
pub fn run_capacity(seed: u64, cache_capacity: usize) -> FlashCrowdRow {
    let config = MhrpConfig {
        cache_capacity,
        // Let updates flow at the send cadence so the cache — not the
        // §4.3 limiter — is the binding constraint being measured.
        update_min_interval: SimDuration::from_millis(50),
        ..Default::default()
    };
    let mut h = Hierarchy::build(HierarchyParams {
        regions: 2,
        fas_per_region: 4,
        mobiles_per_region: 12,
        config,
        seed,
        ..Default::default()
    });
    assert!(
        h.run_until_attached(1.0, SimDuration::from_secs(30)),
        "mobile hosts failed to register"
    );

    // The crowd converges on cell 0; arrivals spread over 2 s.
    let layout = hierarchy_layout(&h);
    let from = h.world.now();
    let model = FlashCrowd {
        seed,
        at: from + PRE_PHASE,
        cell: 0,
        fraction: CROWD_FRACTION,
        arrival_window: SimDuration::from_secs(2),
        disperse_after: None,
    };
    let plan = model.compile(&layout, from, from + PRE_PHASE + CROWD_PHASE);
    let bindings: Vec<(NodeId, IfaceId)> = h.mobiles.iter().map(|&m| (m, IfaceId(0))).collect();
    plan.install(&mut h.world, &bindings, &h.cells);

    // 16 open-loop Poisson flows spread over the 24 mobiles.
    let n_flows = 16usize;
    let targets: Vec<usize> = (0..n_flows).map(|i| i * h.mobiles.len() / n_flows).collect();
    let mut flows: Vec<Flow> = (0..n_flows)
        .map(|i| {
            Flow::new(
                i as u32,
                FlowCfg {
                    pattern: Pattern::Poisson { per_sec: 8.0 },
                    bytes: 48,
                    seed: seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    limit: None,
                },
            )
        })
        .collect();

    let evict0 = h.world.stats().counter("mhrp.cache.evictions");

    let correspondent = h.correspondent.expect("correspondent");
    let flow_bindings = MhrpIo::hierarchy_flows(&h, &targets);
    let mut io = MhrpIo::new(&mut h.world, correspondent, flow_bindings);

    // Phase 1: steady state until the crowd starts (no drain — anything
    // in flight lands in the crowd window, which is where it arrives).
    let tick = SimDuration::from_millis(50);
    run_soak(
        &mut io,
        &mut flows,
        &SoakParams { duration: PRE_PHASE, tick, drain: SimDuration::ZERO },
    );
    let mut pre = Histogram::latency_us();
    for f in &flows {
        pre.merge(&f.latency_us);
    }
    let snap = pre.snapshot();

    // Phase 2: the crowd hits; same flows keep streaming.
    run_soak(
        &mut io,
        &mut flows,
        &SoakParams { duration: CROWD_PHASE, tick, drain: SimDuration::from_secs(2) },
    );

    let mut total = Histogram::latency_us();
    let (mut sent, mut delivered) = (0u64, 0u64);
    for f in &flows {
        total.merge(&f.latency_us);
        sent += f.stats.sent;
        delivered += f.stats.delivered;
    }
    let crowd = total.since(&snap);

    FlashCrowdRow {
        cache_capacity,
        crowd_joiners: plan.handoffs(),
        sent,
        delivered,
        cache_evictions: h.world.stats().counter("mhrp.cache.evictions") - evict0,
        pre_p50_us: pre.p50(),
        pre_p99_us: pre.p99(),
        crowd_samples: crowd.count(),
        crowd_p50_us: crowd.p50(),
        crowd_p99_us: crowd.p99(),
    }
}

/// The default capacity sweep: starved vs ample.
pub fn run(seed: u64) -> Vec<FlashCrowdRow> {
    [4usize, 64].iter().map(|&cap| run_capacity(seed, cap)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crowd_churns_the_starved_cache_but_not_correctness() {
        let small = run_capacity(1994, 4);
        let large = run_capacity(1994, 64);
        assert!(small.crowd_joiners > 0, "{small:?}");
        // Capacity is a performance knob, not a correctness one.
        assert!(small.delivery_ratio() >= 0.9, "{small:?}");
        assert!(large.delivery_ratio() >= 0.9, "{large:?}");
        // The starved cache churns harder under the crowd.
        assert!(small.cache_evictions > large.cache_evictions, "{small:?} vs {large:?}");
        // Both windows saw traffic, so the split is meaningful.
        assert!(small.crowd_samples > 0 && large.crowd_samples > 0);
    }
}

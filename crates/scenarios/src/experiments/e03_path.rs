//! **E03 — §6.1/§6.2: routing path length.**
//!
//! Measures the forward-path length (router hops) from S to M in three
//! MHRP regimes — M at home (plain IP), the first packet to an away M
//! (via the home agent), and subsequent packets (sender-tunneled) — and
//! contrasts with a home-anchored baseline (Matsushita forwarding mode,
//! which can never shortcut).

use mhrp::{Attachment, MhrpHostNode, MobileHostNode};
use netsim::time::{SimDuration, SimTime};

use crate::shootout::{matsushita_driver, run_comparison, DATA_PORT};
use crate::topology::{CorrespondentKind, Figure1, Figure1Options};

/// Hop counts measured per regime.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Routing regime label.
    pub regime: &'static str,
    /// Forward-path router hops.
    pub hops: u32,
}

fn mobile_hops(f: &Figure1, after: SimTime) -> Option<u32> {
    f.world
        .node::<MobileHostNode>(f.m)
        .endpoint
        .log
        .udp_rx
        .iter()
        .filter(|r| r.dst_port == DATA_PORT && r.at >= after)
        .map(|r| u32::from(64 - r.ttl))
        .next_back()
}

/// Runs the MHRP path-length measurements.
pub fn run(seed: u64) -> Vec<PathResult> {
    let mut f = Figure1::build(Figure1Options {
        correspondent: CorrespondentKind::Mhrp,
        seed,
        ..Default::default()
    });
    let m_addr = f.addrs.m;
    let mut results = Vec::new();

    // Regime 1: M at home — plain IP routing.
    f.world.run_until(SimTime::from_secs(2));
    let t0 = f.world.now();
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![1; 32]);
    });
    f.world.run_for(SimDuration::from_secs(2));
    results
        .push(PathResult { regime: "at home (plain IP)", hops: mobile_hops(&f, t0).unwrap_or(0) });

    // Regime 2: first packet to away M — via the home agent.
    f.move_m_to_d();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(2));
    let t1 = f.world.now();
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![2; 32]);
    });
    f.world.run_for(SimDuration::from_secs(2));
    results.push(PathResult {
        regime: "first packet (via home agent)",
        hops: mobile_hops(&f, t1).unwrap_or(0),
    });

    // Regime 3: subsequent packets — sender-tunneled directly to the FA.
    let t2 = f.world.now();
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![3; 32]);
    });
    f.world.run_for(SimDuration::from_secs(2));
    results.push(PathResult {
        regime: "subsequent packets (sender tunnel)",
        hops: mobile_hops(&f, t2).unwrap_or(0),
    });
    results
}

/// The home-anchored contrast: Matsushita forwarding-mode hops.
pub fn anchored_hops(seed: u64) -> f64 {
    let mut d = matsushita_driver(seed);
    // Disable autonomous mode so every packet stays home-anchored.
    d.world.with_node::<baselines::matsushita::PfsNode, _>(netsim::NodeId(2), |p, _| {
        p.autonomous_notifications = false;
    });
    let row = run_comparison(d, 10);
    row.avg_forward_hops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_elimination_shape() {
        let rows = run(11);
        assert_eq!(rows.len(), 3);
        let at_home = rows[0].hops;
        let via_home = rows[1].hops;
        let direct = rows[2].hops;
        // Figure 1 geometry: home = 2 hops (R1, R2); via home agent =
        // 3 hops (R1, R2, R3); direct tunnel = 2 hops (R1, R3).
        assert_eq!(at_home, 2, "at-home hops");
        assert_eq!(via_home, 3, "via-home hops");
        assert_eq!(direct, 2, "direct-tunnel hops");
        assert!(direct < via_home, "route optimization must shorten the path");
    }

    #[test]
    fn anchored_baseline_never_shortcuts() {
        let anchored = anchored_hops(11);
        let direct = run(11)[2].hops as f64;
        assert!(
            anchored > direct,
            "home-anchored path ({anchored}) must exceed the optimized path ({direct})"
        );
    }
}

//! **E19 — hostile internet: forged registrations and cache poisoning.**
//!
//! The 1994 protocol authenticates nothing (the paper's §7 names
//! authentication as future work), so an off-path attacker who can
//! source datagrams owns every mobile host's reachability:
//!
//! * a forged `HaRegister` makes the home agent believe the victim is
//!   served by a foreign agent of the attacker's choosing — every
//!   intercepted packet then tunnels into a black hole;
//! * a spoofed §4.3 location update pointed at a correspondent's cache
//!   agent makes the *sender* tunnel straight into the black hole, so
//!   the home agent never even sees the traffic and §5's
//!   stale-entry-correction machinery cannot fire.
//!
//! This experiment runs the same hostile plan three ways: a benign
//! baseline (no attack), the attack against the unauthenticated
//! protocol, and the attack against the DESIGN.md §13 authentication
//! extension (keyed MACs + replay windows, `MhrpConfig::auth_key`).
//!
//! Expected shape: without authentication delivery collapses for every
//! targeted flow while the untargeted control flow is untouched; with
//! authentication every forgery lands in `mhrp.auth.rejected` /
//! `mhrp.cache.poison_dropped` and delivery matches the benign
//! baseline.

use adversary::{AttackOp, AttackPlan, Binding};
use mhrp::MhrpConfig;
use netsim::time::SimDuration;
use workload::{run_soak, Flow, FlowCfg, Pattern, SoakParams};

use crate::hierarchy::{
    attacker_addr, mobile_home_addr, region_router_addr, Hierarchy, HierarchyParams,
    CORRESPONDENT_ADDR,
};
use crate::soak::MhrpIo;

/// How one E19 point is configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No attack: the benign yardstick the other two compare against.
    Benign,
    /// Attack against the plain 1994 protocol (no authentication).
    AttackNoAuth,
    /// Attack against the §13 authentication extension.
    AttackAuth,
}

impl Mode {
    /// Human-readable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Benign => "benign",
            Mode::AttackNoAuth => "attack/no-auth",
            Mode::AttackAuth => "attack/auth",
        }
    }
}

/// One row of the E19 comparison.
#[derive(Debug, Clone)]
pub struct ForgedRegistrationRow {
    /// Which configuration produced the row.
    pub mode: Mode,
    /// Probes the correspondent sent across all flows.
    pub sent: u64,
    /// Probes delivered to their mobile host.
    pub delivered: u64,
    /// Delivered fraction across all flows.
    pub delivery: f64,
    /// Targeted flows whose delivery fell below one half — the
    /// machine-checkable "diverted" signal.
    pub diverted_flows: usize,
    /// Delivered fraction of the untargeted control flow.
    pub control_delivery: f64,
    /// `mhrp.auth.rejected` across the run.
    pub auth_rejected: u64,
    /// `mhrp.cache.poison_dropped` across the run.
    pub poison_dropped: u64,
    /// Tunnels that arrived at a host not serving their mobile (the
    /// black hole's view of the diverted traffic).
    pub not_for_us: u64,
}

/// Number of mobile hosts; the last one is the untargeted control.
pub const MOBILES: usize = 8;

/// Mobiles `0..FORGE_VICTIMS` get forged home-agent registrations.
pub const FORGE_VICTIMS: usize = 4;

/// Mobiles `FORGE_VICTIMS..POISON_END` get their correspondent-side
/// cache entry poisoned instead.
pub const POISON_END: usize = 7;

/// Simulated soak length per point.
pub const DURATION: SimDuration = SimDuration::from_secs(24);

/// CBR probe spacing per flow.
pub const CBR_INTERVAL: SimDuration = SimDuration::from_millis(600);

/// The shared authentication key the `AttackAuth` point uses. The
/// attacker never holds it — forged messages are always sent in the
/// plain 1994 format.
pub const AUTH_KEY: u64 = 0x1994_0d0c_5bad_c0de;

/// The hostile plan: sweeps of forged registrations plus spoofed
/// location updates, repeated so a victim's genuine re-registration
/// cannot heal the diversion for long.
fn attack_plan(from: netsim::time::SimTime) -> AttackPlan {
    let mut plan = AttackPlan::new();
    let forge_victims: Vec<_> = (0..FORGE_VICTIMS).map(|i| mobile_home_addr(0, i)).collect();
    for sweep in 0..3 {
        let at = from + SimDuration::from_secs(4 * sweep);
        plan = plan.forged_registration_sweep(
            at,
            SimDuration::from_millis(50),
            0,
            region_router_addr(0),
            attacker_addr(0),
            &forge_victims,
            0x7000 + sweep as u16,
        );
        for i in FORGE_VICTIMS..POISON_END {
            plan = plan.op(
                at + SimDuration::from_millis(500),
                AttackOp::PoisonUpdate {
                    attacker: 0,
                    target: CORRESPONDENT_ADDR,
                    mobile: mobile_home_addr(0, i),
                    foreign_agent: attacker_addr(0),
                },
            );
        }
    }
    plan
}

/// Runs one E19 point.
pub fn run_mode(seed: u64, mode: Mode) -> ForgedRegistrationRow {
    let config = MhrpConfig {
        auth_key: if mode == Mode::AttackAuth { Some(AUTH_KEY) } else { None },
        ..Default::default()
    };
    let mut h = Hierarchy::build(HierarchyParams {
        regions: 1,
        fas_per_region: 4,
        mobiles_per_region: MOBILES,
        attackers: 1,
        config,
        seed,
        ..Default::default()
    });
    assert!(
        h.run_until_attached(1.0, SimDuration::from_secs(30)),
        "mobile hosts failed to register"
    );

    if mode != Mode::Benign {
        let binding = Binding { attackers: h.attackers.clone(), ..Default::default() };
        attack_plan(h.world.now() + SimDuration::from_secs(4)).install(&mut h.world, &binding);
    }

    let mut flows: Vec<Flow> = (0..MOBILES)
        .map(|i| {
            Flow::new(
                i as u32,
                FlowCfg {
                    pattern: Pattern::Cbr { interval: CBR_INTERVAL },
                    bytes: 32,
                    seed: seed ^ i as u64,
                    limit: None,
                },
            )
        })
        .collect();

    let targets: Vec<usize> = (0..MOBILES).collect();
    let flow_bindings = MhrpIo::hierarchy_flows(&h, &targets);
    let mut io = MhrpIo::new(&mut h.world, h.correspondent.expect("correspondent"), flow_bindings);
    run_soak(
        &mut io,
        &mut flows,
        &SoakParams {
            duration: DURATION,
            tick: SimDuration::from_millis(50),
            drain: SimDuration::from_secs(2),
        },
    );

    let (mut sent, mut delivered) = (0u64, 0u64);
    let mut diverted_flows = 0usize;
    for f in flows.iter().take(POISON_END) {
        sent += f.stats.sent;
        delivered += f.stats.delivered;
        if (f.stats.delivered as f64) < f.stats.sent as f64 * 0.5 {
            diverted_flows += 1;
        }
    }
    let control = &flows[MOBILES - 1];
    sent += control.stats.sent;
    delivered += control.stats.delivered;

    ForgedRegistrationRow {
        mode,
        sent,
        delivered,
        delivery: delivered as f64 / sent.max(1) as f64,
        diverted_flows,
        control_delivery: control.stats.delivered as f64 / control.stats.sent.max(1) as f64,
        auth_rejected: h.world.stats().counter("mhrp.auth.rejected"),
        poison_dropped: h.world.stats().counter("mhrp.cache.poison_dropped"),
        not_for_us: h.world.stats().counter("mhrp.mh_not_for_us"),
    }
}

/// Runs all three points.
pub fn run(seed: u64) -> Vec<ForgedRegistrationRow> {
    [Mode::Benign, Mode::AttackNoAuth, Mode::AttackAuth]
        .into_iter()
        .map(|m| run_mode(seed, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forgery_collapses_delivery_and_auth_restores_it() {
        let benign = run_mode(1994, Mode::Benign);
        let open = run_mode(1994, Mode::AttackNoAuth);
        let auth = run_mode(1994, Mode::AttackAuth);

        // Benign yardstick: near-total delivery, nothing rejected.
        assert!(benign.delivery > 0.95, "{benign:?}");
        assert_eq!(benign.auth_rejected, 0, "{benign:?}");
        assert_eq!(benign.diverted_flows, 0, "{benign:?}");

        // Unauthenticated: the attack diverts targeted flows and
        // collapses aggregate delivery, but leaves the control alone.
        assert!(open.diverted_flows >= 1, "{open:?}");
        assert!(open.delivery < benign.delivery - 0.2, "{open:?} vs {benign:?}");
        assert!(open.control_delivery > 0.95, "{open:?}");

        // Authenticated: forgeries are counted and discarded; delivery
        // matches the benign baseline.
        assert!(auth.auth_rejected > 0, "{auth:?}");
        assert!(auth.poison_dropped > 0, "{auth:?}");
        assert_eq!(auth.diverted_flows, 0, "{auth:?}");
        assert!(auth.delivery > benign.delivery - 0.02, "{auth:?} vs {benign:?}");
    }
}

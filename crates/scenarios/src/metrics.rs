//! Result records produced by the experiments.

use netsim::Histogram;

/// One row of the §7-style protocol comparison (experiments E02/E03/E07).
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Protocol name.
    pub protocol: String,
    /// The workload pattern that drove the measured stream (from
    /// `workload::Pattern::describe`, e.g. `cbr @100ms 64B`).
    pub workload: String,
    /// Data packets the correspondent sent to the mobile host.
    pub data_packets_sent: u64,
    /// Data packets the mobile host received.
    pub delivered: u64,
    /// Encapsulation bytes added across all data packets.
    pub overhead_bytes: u64,
    /// Average encapsulation overhead per *sent* data packet.
    pub overhead_per_packet: f64,
    /// Average forward-path length in router hops (from received TTLs).
    pub avg_forward_hops: f64,
    /// One-way delivery latency distribution over the measured stream, in
    /// microseconds (send-to-arrival, paired by in-order index).
    pub latency_us: Histogram,
    /// Forward-path hop-count distribution over delivered packets.
    pub hops_hist: Histogram,
    /// Protocol control messages exchanged during the run.
    pub control_messages: u64,
    /// Paper §7 figure for comparison (bytes/packet), where stated.
    pub paper_overhead: &'static str,
}

impl ComparisonRow {
    /// Delivery ratio in `[0, 1]`.
    pub fn delivery_ratio(&self) -> f64 {
        if self.data_packets_sent == 0 {
            0.0
        } else {
            self.delivered as f64 / self.data_packets_sent as f64
        }
    }
}

/// One point of a scalability series (experiment E07).
#[derive(Debug, Clone)]
pub struct ScalabilityPoint {
    /// Protocol name.
    pub protocol: String,
    /// Number of mobile hosts in the run.
    pub mobiles: usize,
    /// Control messages per completed move, averaged.
    pub control_msgs_per_move: f64,
    /// Largest single-node protocol state (entries) anywhere in the
    /// network — the "global database" smell.
    pub max_node_state: usize,
    /// Temporary addresses consumed (0 for protocols that need none).
    pub temp_addrs_used: usize,
}

/// One point of the loop-robustness series (experiment E05).
#[derive(Debug, Clone)]
pub struct LoopPoint {
    /// Simulated milliseconds since the loop formed.
    pub at_ms: u64,
    /// Packets circulating in the loop at that instant.
    pub circulating: u64,
}

/// Outcome of a handoff run (experiment E04).
#[derive(Debug, Clone)]
pub struct HandoffResult {
    /// Label of the configuration measured.
    pub label: String,
    /// Packets sent during the disruption window.
    pub sent_during_move: u64,
    /// Of those, packets that still reached the mobile host.
    pub delivered_during_move: u64,
    /// Milliseconds from physical detach to the first packet delivered at
    /// the new attachment.
    pub disruption_ms: u64,
    /// Location updates emitted while converging.
    pub location_updates: u64,
}

/// Outcome of a registration-under-link-flapping run (experiment E11).
#[derive(Debug, Clone)]
pub struct FlapResult {
    /// Label of the fault schedule measured.
    pub label: String,
    /// Whether M ended the run attached to a foreign agent.
    pub attached: bool,
    /// Milliseconds from the physical move until M's first successful
    /// foreign attachment (`None` if it never attached).
    pub attach_ms: Option<u64>,
    /// Registration control messages sent (retransmissions included).
    pub registration_msgs: u64,
    /// Registrations abandoned after the backoff schedule ran out.
    pub registrations_failed: u64,
    /// Agent solicitations M sent while searching.
    pub solicits: u64,
    /// Data packets S sent after the move.
    pub sent: u64,
    /// Of those, packets that reached M.
    pub delivered: u64,
}

/// Outcome of a partition-and-heal run (experiment E12).
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// Label of the configuration measured.
    pub label: String,
    /// Length of the backbone partition in milliseconds.
    pub partition_ms: u64,
    /// Low-rate home-agent probes M sent while partitioned.
    pub probes_sent: u64,
    /// Whether the old foreign agent held a §2 forwarding pointer to
    /// M's new agent at the moment the partition healed.
    pub pointer_at_heal: bool,
    /// Milliseconds from the heal until the first data packet reached M
    /// (`None` if delivery never resumed).
    pub reconverge_ms: Option<u64>,
    /// Data packets S sent after the heal.
    pub sent_after_heal: u64,
    /// Of those, packets that reached M.
    pub delivered_after_heal: u64,
    /// Whether the home agent re-learned M's location after the heal.
    pub ha_reconverged: bool,
    /// Whether S's location cache ended pointing at M's *current*
    /// foreign agent (stale-cache correction, §5.1).
    pub cache_corrected: bool,
}

/// Outcome of a foreign-agent crash-recovery run (experiment E06).
#[derive(Debug, Clone)]
pub struct RecoveryResult {
    /// Label of the configuration measured.
    pub label: String,
    /// Milliseconds from the crash until the visitor entry existed again.
    pub recovery_ms: Option<u64>,
    /// Data packets lost between crash and recovery.
    pub packets_lost: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_handles_zero() {
        let row = ComparisonRow {
            protocol: "x".into(),
            workload: "cbr @100ms 64B".into(),
            data_packets_sent: 0,
            delivered: 0,
            overhead_bytes: 0,
            overhead_per_packet: 0.0,
            avg_forward_hops: 0.0,
            latency_us: Histogram::latency_us(),
            hops_hist: Histogram::hops(),
            control_messages: 0,
            paper_overhead: "-",
        };
        assert_eq!(row.delivery_ratio(), 0.0);
        let row2 = ComparisonRow { data_packets_sent: 10, delivered: 9, ..row };
        assert!((row2.delivery_ratio() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn rows_are_cloneable_value_types() {
        // The result records are plain data carried between experiment
        // drivers and the report binary; keep them Clone + Debug.
        fn assert_value<T: Clone + std::fmt::Debug>() {}
        assert_value::<ComparisonRow>();
        assert_value::<ScalabilityPoint>();
        assert_value::<LoopPoint>();
        assert_value::<HandoffResult>();
        assert_value::<RecoveryResult>();
        assert_value::<FlapResult>();
        assert_value::<PartitionResult>();
    }
}

//! Seeded hierarchical internetwork generator for paper-scale runs (§1:
//! "the mobile internetworking problem is fundamentally one of scale";
//! §7's scalability argument).
//!
//! ```text
//!                       backbone 10.255.0.0/16
//!          ┌───────────────┬───────────────┐
//!         RR0             RR1             RR2 ...        regional routers
//!          │ 10.1.0.0/16   │ 10.2.0.0/16   │             (home agents)
//!      ┌───┴───┐       ┌───┴───┐
//!     FA0    FA1 ...  FA0    FA1 ...                     foreign agents
//!      │      │        │      │
//!   11.1.0/24 │     11.2.0/24 │                          wireless cells
//!    m m m   m m m   m m m   m m m                       mobile hosts
//! ```
//!
//! Every region `r` has one regional router (the home agent for all of the
//! region's mobile hosts), `F` foreign agents fanning out wireless cells,
//! and `M` mobile hosts homed on the regional LAN. Mobile hosts start
//! *away*, spread round-robin over the region's cells, so the build is
//! immediately followed by a realistic registration storm: every host
//! discovers its cell's foreign agent and registers with its home agent
//! across the hierarchy.
//!
//! The address plan (region index `r` uses octet `r+1`):
//!
//! * backbone: `10.255.0.0/16`, regional router `r` at `10.255.0.(r+1)`;
//! * region LAN `r`: `10.(r+1).0.0/16`, regional router at `10.(r+1).0.1`,
//!   foreign agent `f`'s upstream at `10.(r+1).0.(f+2)`;
//! * cell `(r, f)`: `11.(r+1).f.0/24`, foreign agent at `11.(r+1).f.1`;
//! * mobile host `i` of region `r`: homed at `10.(r+1).0.0 + 256 + i`
//!   (i.e. starting from `10.(r+1).1.0`);
//! * optional correspondent host on the backbone at `10.255.0.254`.
//!
//! Worlds of a million hosts fit the plan (200 regions × 65 000 hosts);
//! the committed `mega_world` benches exercise 1k/10k/100k.

use std::net::Ipv4Addr;

use ip::Prefix;
use mhrp::{Attachment, MhrpConfig, MhrpHostNode, MhrpRouterNode, MobileHostNode};
use netsim::time::SimDuration;
use netsim::{IfaceId, NodeId, SegmentId, SegmentParams, ShardedWorld, World};
use netstack::route::NextHop;

/// The backbone prefix every regional router has one interface on.
pub fn backbone_prefix() -> Prefix {
    Prefix::new(Ipv4Addr::new(10, 255, 0, 0), 16)
}

/// The network octet of region `region` (`0`-based index → octet `r+1`,
/// keeping `10.0/24`-style octets and the backbone's `255` free).
fn region_octet(region: usize) -> u8 {
    u8::try_from(region + 1).expect("region octet")
}

/// Regional router `region`'s backbone address.
pub fn backbone_addr(region: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 255, 0, region_octet(region))
}

/// Region `region`'s LAN prefix (mobile hosts are homed inside it).
pub fn region_prefix(region: usize) -> Prefix {
    Prefix::new(Ipv4Addr::new(10, region_octet(region), 0, 0), 16)
}

/// The regional router's LAN address — the home agent (and home gateway)
/// of every mobile host in the region.
pub fn region_router_addr(region: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, region_octet(region), 0, 1)
}

/// Foreign agent `fa`'s address on the regional LAN.
pub fn fa_upstream_addr(region: usize, fa: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, region_octet(region), 0, u8::try_from(fa + 2).expect("fa octet"))
}

/// The aggregate covering every cell of `region` (one backbone route per
/// region, not per cell — the hierarchy is what makes the plan scale).
pub fn cells_prefix(region: usize) -> Prefix {
    Prefix::new(Ipv4Addr::new(11, region_octet(region), 0, 0), 16)
}

/// Cell `(region, fa)`'s wireless prefix.
pub fn cell_prefix(region: usize, fa: usize) -> Prefix {
    Prefix::new(
        Ipv4Addr::new(11, region_octet(region), u8::try_from(fa).expect("cell octet"), 0),
        24,
    )
}

/// Foreign agent `fa`'s address inside its own cell.
pub fn fa_cell_addr(region: usize, fa: usize) -> Ipv4Addr {
    Ipv4Addr::new(11, region_octet(region), u8::try_from(fa).expect("cell octet"), 1)
}

/// Mobile host `i` of `region`'s home address (from `10.(r+1).1.0` up).
pub fn mobile_home_addr(region: usize, i: usize) -> Ipv4Addr {
    let base = u32::from(Ipv4Addr::new(10, region_octet(region), 0, 0));
    Ipv4Addr::from(base + 256 + u32::try_from(i).expect("mobile index"))
}

/// The optional correspondent host's backbone address.
pub const CORRESPONDENT_ADDR: Ipv4Addr = Ipv4Addr::new(10, 255, 0, 254);

/// Attacker host `i`'s backbone address (from `10.255.0.253` *down*, so
/// the range never collides with the regional routers' `10.255.0.(r+1)`
/// octets — regions stop at 200 — or the correspondent at `.254`).
pub fn attacker_addr(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 255, 0, u8::try_from(253 - i).expect("attacker octet"))
}

/// Cell segment parameters chosen by the plan (see
/// [`HierarchyParams::deterministic_cells`]).
fn cell_params(p: &HierarchyParams) -> SegmentParams {
    if p.deterministic_cells {
        SegmentParams::with_latency(SimDuration::from_millis(2))
    } else {
        SegmentParams::wireless()
    }
}

/// Parameters of a hierarchical world.
#[derive(Debug, Clone)]
pub struct HierarchyParams {
    /// Number of regions (1..=200).
    pub regions: usize,
    /// Foreign agents (= wireless cells) per region (1..=250).
    pub fas_per_region: usize,
    /// Mobile hosts homed in each region (..=65_000), started away and
    /// spread round-robin over the region's cells.
    pub mobiles_per_region: usize,
    /// Whether to add an MHRP correspondent host on the backbone.
    pub correspondent: bool,
    /// Number of attacker hosts on the backbone (0..=50), addressed from
    /// `10.255.0.253` down. They are ordinary [`MhrpHostNode`]s built
    /// *after* every legitimate node, so `attackers: 0` yields a world
    /// byte-identical to the pre-adversary plan and any other count only
    /// appends node ids. The `adversary` crate drives them.
    pub attackers: usize,
    /// The protocol configuration shared by every MHRP node.
    pub config: MhrpConfig,
    /// Link latency of the wired segments.
    pub wired_latency: SimDuration,
    /// Run hierarchical MHRP (DESIGN.md §12): every regional router also
    /// hosts a regional agent owning its region's visitor bindings, and
    /// every cell foreign agent registers its visitors regionally instead
    /// of straight with the home agent. `false` builds the classic flat
    /// world, byte-identical to every pre-regional release.
    pub hierarchical: bool,
    /// Replace the wireless cells' default 1 ms per-receiver jitter with
    /// jitter-free 2 ms cells. Per-receiver jitter draws consume the
    /// owning world's RNG, which is the one source of divergence between
    /// equal worlds sharded differently — the shard-count determinism
    /// suite runs with this set. Off by default (classic worlds keep
    /// their golden-replay timing).
    pub deterministic_cells: bool,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for HierarchyParams {
    fn default() -> HierarchyParams {
        HierarchyParams {
            regions: 2,
            fas_per_region: 4,
            mobiles_per_region: 32,
            correspondent: true,
            attackers: 0,
            config: MhrpConfig::default(),
            wired_latency: SimDuration::from_micros(500),
            hierarchical: false,
            deterministic_cells: false,
            seed: 1994,
        }
    }
}

impl HierarchyParams {
    /// Total mobile hosts the plan creates.
    pub fn host_count(&self) -> usize {
        self.regions * self.mobiles_per_region
    }
}

/// The built hierarchical world with handles to every node.
#[derive(Debug)]
pub struct Hierarchy {
    /// The simulation world (started).
    pub world: World,
    /// Number of regions built.
    pub regions: usize,
    /// Foreign agents per region.
    pub fas_per_region: usize,
    /// Mobile hosts per region.
    pub mobiles_per_region: usize,
    /// Regional routers, indexed by region.
    pub routers: Vec<NodeId>,
    /// Foreign agents, indexed `region * fas_per_region + fa`.
    pub fas: Vec<NodeId>,
    /// Cell segments, indexed like [`Hierarchy::fas`].
    pub cells: Vec<SegmentId>,
    /// Mobile hosts, indexed `region * mobiles_per_region + i`.
    pub mobiles: Vec<NodeId>,
    /// The correspondent host, when built.
    pub correspondent: Option<NodeId>,
    /// Attacker hosts on the backbone (see [`HierarchyParams::attackers`]).
    pub attackers: Vec<NodeId>,
}

impl Hierarchy {
    /// Builds (and starts) the hierarchical world.
    ///
    /// # Panics
    ///
    /// Panics if the parameters exceed the address plan (see
    /// [`HierarchyParams`] field limits).
    pub fn build(p: HierarchyParams) -> Hierarchy {
        assert!((1..=200).contains(&p.regions), "regions must be in 1..=200");
        assert!((1..=250).contains(&p.fas_per_region), "fas_per_region must be in 1..=250");
        assert!(p.mobiles_per_region <= 65_000, "mobiles_per_region must be <= 65_000");
        assert!(p.attackers <= 50, "attackers must be <= 50");

        let mut w = World::new(p.seed);
        // The population is known up front, so hint the event queue's
        // steady-state size before anything is scheduled: each node keeps
        // a few timers armed (watchdog, advertiser, retransmit) plus its
        // share of frames in flight.
        let nodes = p.regions * (1 + p.fas_per_region)
            + p.host_count()
            + usize::from(p.correspondent)
            + p.attackers;
        w.reserve_events(nodes * 4);
        let wired = SegmentParams::with_latency(p.wired_latency);
        let backbone = w.add_segment(wired);
        let lans: Vec<SegmentId> = (0..p.regions).map(|_| w.add_segment(wired)).collect();
        let mut cells = Vec::with_capacity(p.regions * p.fas_per_region);
        for _ in 0..p.regions * p.fas_per_region {
            cells.push(w.add_segment(cell_params(&p)));
        }

        // --- Regional routers: backbone <-> region LAN, home agents ---
        let mut routers = Vec::with_capacity(p.regions);
        for (r, &lan) in lans.iter().enumerate() {
            let mut node = MhrpRouterNode::new(p.config.clone())
                .with_home_agent(IfaceId(1))
                .with_advertiser(vec![IfaceId(1)]);
            if p.hierarchical {
                node = node.with_regional_agent(IfaceId(1));
            }
            let id = w.add_node(node);
            w.add_iface(id, Some(backbone)); // iface 0
            w.add_iface(id, Some(lan)); // iface 1
            let fas_per_region = p.fas_per_region;
            let regions = p.regions;
            w.with_node::<MhrpRouterNode, _>(id, move |n, _| {
                n.stack.add_iface(IfaceId(0), backbone_addr(r), backbone_prefix());
                n.stack.add_iface(IfaceId(1), region_router_addr(r), region_prefix(r));
                for r2 in (0..regions).filter(|&r2| r2 != r) {
                    let via = backbone_addr(r2);
                    n.stack
                        .routes
                        .add(region_prefix(r2), NextHop::Gateway { iface: IfaceId(0), via });
                    n.stack
                        .routes
                        .add(cells_prefix(r2), NextHop::Gateway { iface: IfaceId(0), via });
                }
                for f in 0..fas_per_region {
                    n.stack.routes.add(
                        cell_prefix(r, f),
                        NextHop::Gateway { iface: IfaceId(1), via: fa_upstream_addr(r, f) },
                    );
                }
            });
            routers.push(id);
        }

        // --- Foreign agents: region LAN <-> own wireless cell ---
        let mut fas = Vec::with_capacity(p.regions * p.fas_per_region);
        for r in 0..p.regions {
            for f in 0..p.fas_per_region {
                let mut node = MhrpRouterNode::new(p.config.clone())
                    .with_foreign_agent(IfaceId(1))
                    .with_advertiser(vec![IfaceId(1)]);
                if p.hierarchical {
                    node = node.with_regional_parent(region_router_addr(r));
                }
                let id = w.add_node(node);
                w.add_iface(id, Some(lans[r])); // iface 0
                w.add_iface(id, Some(cells[r * p.fas_per_region + f])); // iface 1
                w.with_node::<MhrpRouterNode, _>(id, move |n, _| {
                    n.stack.add_iface(IfaceId(0), fa_upstream_addr(r, f), region_prefix(r));
                    n.stack.add_iface(IfaceId(1), fa_cell_addr(r, f), cell_prefix(r, f));
                    n.stack.routes.add(
                        Prefix::default_route(),
                        NextHop::Gateway { iface: IfaceId(0), via: region_router_addr(r) },
                    );
                });
                fas.push(id);
            }
        }

        // --- Correspondent host on the backbone ---
        let correspondent = p.correspondent.then(|| {
            let id = w.add_node(MhrpHostNode::new(&p.config));
            w.add_iface(id, Some(backbone));
            let regions = p.regions;
            w.with_node::<MhrpHostNode, _>(id, move |h, _| {
                h.stack.add_iface(IfaceId(0), CORRESPONDENT_ADDR, backbone_prefix());
                for r in 0..regions {
                    let via = backbone_addr(r);
                    h.stack
                        .routes
                        .add(region_prefix(r), NextHop::Gateway { iface: IfaceId(0), via });
                    h.stack
                        .routes
                        .add(cells_prefix(r), NextHop::Gateway { iface: IfaceId(0), via });
                }
            });
            id
        });

        // --- Mobile hosts: homed on the regional LAN, started away in the
        // region's cells (round-robin) ---
        let mut mobiles = Vec::with_capacity(p.host_count());
        for r in 0..p.regions {
            for i in 0..p.mobiles_per_region {
                let id = w.add_node(MobileHostNode::new(
                    mobile_home_addr(r, i),
                    region_prefix(r),
                    region_router_addr(r),
                    region_router_addr(r),
                    p.config.clone(),
                ));
                let cell = cells[r * p.fas_per_region + (i % p.fas_per_region)];
                w.add_iface(id, Some(cell));
                mobiles.push(id);
            }
        }

        // --- Attacker hosts on the backbone (built last: node ids of
        // every legitimate node are independent of the attacker count) ---
        let mut attackers = Vec::with_capacity(p.attackers);
        for a in 0..p.attackers {
            let id = w.add_node(MhrpHostNode::new(&p.config));
            w.add_iface(id, Some(backbone));
            let regions = p.regions;
            w.with_node::<MhrpHostNode, _>(id, move |h, _| {
                h.stack.add_iface(IfaceId(0), attacker_addr(a), backbone_prefix());
                for r in 0..regions {
                    let via = backbone_addr(r);
                    h.stack
                        .routes
                        .add(region_prefix(r), NextHop::Gateway { iface: IfaceId(0), via });
                    h.stack
                        .routes
                        .add(cells_prefix(r), NextHop::Gateway { iface: IfaceId(0), via });
                }
            });
            attackers.push(id);
        }

        w.start();
        Hierarchy {
            world: w,
            regions: p.regions,
            fas_per_region: p.fas_per_region,
            mobiles_per_region: p.mobiles_per_region,
            routers,
            fas,
            cells,
            mobiles,
            correspondent,
            attackers,
        }
    }

    /// Mobile host `idx`'s home address (`idx` indexes [`Hierarchy::mobiles`]).
    pub fn mobile_addr(&self, idx: usize) -> Ipv4Addr {
        mobile_home_addr(idx / self.mobiles_per_region, idx % self.mobiles_per_region)
    }

    /// The cell foreign agent mobile host `idx` starts under.
    pub fn mobile_cell_fa(&self, idx: usize) -> Ipv4Addr {
        let r = idx / self.mobiles_per_region;
        let f = (idx % self.mobiles_per_region) % self.fas_per_region;
        fa_cell_addr(r, f)
    }

    /// How many mobile hosts are currently registered with a foreign
    /// agent.
    pub fn attached_count(&self) -> usize {
        self.mobiles
            .iter()
            .filter(|&&m| {
                matches!(self.world.node::<MobileHostNode>(m).core.state, Attachment::Foreign(_))
            })
            .count()
    }

    /// Runs until at least `fraction` of the mobile hosts are registered
    /// away (or `deadline` of additional simulated time passes). Returns
    /// `true` on success.
    pub fn run_until_attached(&mut self, fraction: f64, deadline: SimDuration) -> bool {
        let want = (self.mobiles.len() as f64 * fraction).ceil() as usize;
        let end = self.world.now() + deadline;
        loop {
            if self.attached_count() >= want {
                return true;
            }
            if self.world.now() >= end {
                return false;
            }
            self.world.run_for(SimDuration::from_millis(250));
        }
    }
}

/// The shard owning `region` when `regions` regions are spread over
/// `shards` shards: contiguous balanced blocks, so neighbouring regions
/// share a shard and every shard gets `regions/shards` ± 1 regions.
pub fn shard_of_region(region: usize, regions: usize, shards: usize) -> usize {
    region * shards / regions
}

/// The hierarchical world built region-by-region onto a
/// [`ShardedWorld`]: every region's LAN, cells, routers, agents and
/// mobiles live on one shard (regions in contiguous blocks), the
/// backbone is the single portal segment, and the correspondent sits on
/// shard 0.
///
/// Node and segment creation follows *exactly* the same global order as
/// [`Hierarchy::build`], so node ids and MAC addresses are identical to
/// the classic world no matter the shard count — which is what lets the
/// determinism suite compare merged telemetry across shard counts
/// directly.
#[derive(Debug)]
pub struct ShardedHierarchy {
    /// The sharded simulation world (started).
    pub world: ShardedWorld,
    /// Number of regions built.
    pub regions: usize,
    /// Foreign agents per region.
    pub fas_per_region: usize,
    /// Mobile hosts per region.
    pub mobiles_per_region: usize,
    /// Shard owning each region.
    pub region_shard: Vec<usize>,
    /// Regional routers, indexed by region.
    pub routers: Vec<NodeId>,
    /// Foreign agents, indexed `region * fas_per_region + fa`.
    pub fas: Vec<NodeId>,
    /// Cell segments, indexed like [`ShardedHierarchy::fas`].
    pub cells: Vec<SegmentId>,
    /// Mobile hosts, indexed `region * mobiles_per_region + i`.
    pub mobiles: Vec<NodeId>,
    /// The correspondent host, when built.
    pub correspondent: Option<NodeId>,
    /// Attacker hosts on the backbone, on shard 0 (see
    /// [`HierarchyParams::attackers`]).
    pub attackers: Vec<NodeId>,
}

impl ShardedHierarchy {
    /// Builds (and starts) the hierarchy over `shards` shards (clamped
    /// to the region count — a shard with no region would idle through
    /// every barrier window).
    ///
    /// # Panics
    ///
    /// As [`Hierarchy::build`], plus `shards == 0`.
    pub fn build(p: HierarchyParams, shards: usize) -> ShardedHierarchy {
        assert!(shards >= 1, "need at least one shard");
        assert!((1..=200).contains(&p.regions), "regions must be in 1..=200");
        assert!((1..=250).contains(&p.fas_per_region), "fas_per_region must be in 1..=250");
        assert!(p.mobiles_per_region <= 65_000, "mobiles_per_region must be <= 65_000");
        assert!(p.attackers <= 50, "attackers must be <= 50");
        let shards = shards.min(p.regions);
        let shard_of = |r: usize| shard_of_region(r, p.regions, shards);

        let mut w = ShardedWorld::new(p.seed, shards);
        let nodes = p.regions * (1 + p.fas_per_region)
            + p.host_count()
            + usize::from(p.correspondent)
            + p.attackers;
        w.reserve_events((nodes * 4).div_ceil(shards));
        let wired = SegmentParams::with_latency(p.wired_latency);
        let all_shards: Vec<usize> = (0..shards).collect();
        let backbone = w.add_portal_segment(wired, &all_shards);
        let lans: Vec<SegmentId> =
            (0..p.regions).map(|r| w.add_segment(shard_of(r), wired)).collect();
        let mut cells = Vec::with_capacity(p.regions * p.fas_per_region);
        for r in 0..p.regions {
            for _ in 0..p.fas_per_region {
                cells.push(w.add_segment(shard_of(r), cell_params(&p)));
            }
        }

        // --- Regional routers: backbone <-> region LAN, home agents ---
        let mut routers = Vec::with_capacity(p.regions);
        for (r, &lan) in lans.iter().enumerate() {
            let mut node = MhrpRouterNode::new(p.config.clone())
                .with_home_agent(IfaceId(1))
                .with_advertiser(vec![IfaceId(1)]);
            if p.hierarchical {
                node = node.with_regional_agent(IfaceId(1));
            }
            let id = w.add_node(shard_of(r), node);
            w.add_iface(id, Some(backbone)); // iface 0
            w.add_iface(id, Some(lan)); // iface 1
            let fas_per_region = p.fas_per_region;
            let regions = p.regions;
            w.with_node::<MhrpRouterNode, _>(id, move |n, _| {
                n.stack.add_iface(IfaceId(0), backbone_addr(r), backbone_prefix());
                n.stack.add_iface(IfaceId(1), region_router_addr(r), region_prefix(r));
                for r2 in (0..regions).filter(|&r2| r2 != r) {
                    let via = backbone_addr(r2);
                    n.stack
                        .routes
                        .add(region_prefix(r2), NextHop::Gateway { iface: IfaceId(0), via });
                    n.stack
                        .routes
                        .add(cells_prefix(r2), NextHop::Gateway { iface: IfaceId(0), via });
                }
                for f in 0..fas_per_region {
                    n.stack.routes.add(
                        cell_prefix(r, f),
                        NextHop::Gateway { iface: IfaceId(1), via: fa_upstream_addr(r, f) },
                    );
                }
            });
            routers.push(id);
        }

        // --- Foreign agents: region LAN <-> own wireless cell ---
        let mut fas = Vec::with_capacity(p.regions * p.fas_per_region);
        for r in 0..p.regions {
            for f in 0..p.fas_per_region {
                let mut node = MhrpRouterNode::new(p.config.clone())
                    .with_foreign_agent(IfaceId(1))
                    .with_advertiser(vec![IfaceId(1)]);
                if p.hierarchical {
                    node = node.with_regional_parent(region_router_addr(r));
                }
                let id = w.add_node(shard_of(r), node);
                w.add_iface(id, Some(lans[r])); // iface 0
                w.add_iface(id, Some(cells[r * p.fas_per_region + f])); // iface 1
                w.with_node::<MhrpRouterNode, _>(id, move |n, _| {
                    n.stack.add_iface(IfaceId(0), fa_upstream_addr(r, f), region_prefix(r));
                    n.stack.add_iface(IfaceId(1), fa_cell_addr(r, f), cell_prefix(r, f));
                    n.stack.routes.add(
                        Prefix::default_route(),
                        NextHop::Gateway { iface: IfaceId(0), via: region_router_addr(r) },
                    );
                });
                fas.push(id);
            }
        }

        // --- Correspondent host on the backbone (shard 0) ---
        let correspondent = p.correspondent.then(|| {
            let id = w.add_node(0, MhrpHostNode::new(&p.config));
            w.add_iface(id, Some(backbone));
            let regions = p.regions;
            w.with_node::<MhrpHostNode, _>(id, move |h, _| {
                h.stack.add_iface(IfaceId(0), CORRESPONDENT_ADDR, backbone_prefix());
                for r in 0..regions {
                    let via = backbone_addr(r);
                    h.stack
                        .routes
                        .add(region_prefix(r), NextHop::Gateway { iface: IfaceId(0), via });
                    h.stack
                        .routes
                        .add(cells_prefix(r), NextHop::Gateway { iface: IfaceId(0), via });
                }
            });
            id
        });

        // --- Mobile hosts: homed on the regional LAN, started away in the
        // region's cells (round-robin) ---
        let mut mobiles = Vec::with_capacity(p.host_count());
        for r in 0..p.regions {
            for i in 0..p.mobiles_per_region {
                let id = w.add_node(
                    shard_of(r),
                    MobileHostNode::new(
                        mobile_home_addr(r, i),
                        region_prefix(r),
                        region_router_addr(r),
                        region_router_addr(r),
                        p.config.clone(),
                    ),
                );
                let cell = cells[r * p.fas_per_region + (i % p.fas_per_region)];
                w.add_iface(id, Some(cell));
                mobiles.push(id);
            }
        }

        // --- Attacker hosts on the backbone, shard 0 (built last, same
        // global order as the unsharded world) ---
        let mut attackers = Vec::with_capacity(p.attackers);
        for a in 0..p.attackers {
            let id = w.add_node(0, MhrpHostNode::new(&p.config));
            w.add_iface(id, Some(backbone));
            let regions = p.regions;
            w.with_node::<MhrpHostNode, _>(id, move |h, _| {
                h.stack.add_iface(IfaceId(0), attacker_addr(a), backbone_prefix());
                for r in 0..regions {
                    let via = backbone_addr(r);
                    h.stack
                        .routes
                        .add(region_prefix(r), NextHop::Gateway { iface: IfaceId(0), via });
                    h.stack
                        .routes
                        .add(cells_prefix(r), NextHop::Gateway { iface: IfaceId(0), via });
                }
            });
            attackers.push(id);
        }

        w.start();
        ShardedHierarchy {
            world: w,
            regions: p.regions,
            fas_per_region: p.fas_per_region,
            mobiles_per_region: p.mobiles_per_region,
            region_shard: (0..p.regions).map(shard_of).collect(),
            routers,
            fas,
            cells,
            mobiles,
            correspondent,
            attackers,
        }
    }

    /// Mobile host `idx`'s home address (`idx` indexes
    /// [`ShardedHierarchy::mobiles`]).
    pub fn mobile_addr(&self, idx: usize) -> Ipv4Addr {
        mobile_home_addr(idx / self.mobiles_per_region, idx % self.mobiles_per_region)
    }

    /// The cell foreign agent mobile host `idx` starts under.
    pub fn mobile_cell_fa(&self, idx: usize) -> Ipv4Addr {
        let r = idx / self.mobiles_per_region;
        let f = (idx % self.mobiles_per_region) % self.fas_per_region;
        fa_cell_addr(r, f)
    }

    /// How many mobile hosts are currently registered with a foreign
    /// agent.
    pub fn attached_count(&self) -> usize {
        self.mobiles
            .iter()
            .filter(|&&m| {
                matches!(self.world.node::<MobileHostNode>(m).core.state, Attachment::Foreign(_))
            })
            .count()
    }

    /// Runs until at least `fraction` of the mobile hosts are registered
    /// away (or `deadline` of additional simulated time passes). Returns
    /// `true` on success.
    pub fn run_until_attached(&mut self, fraction: f64, deadline: SimDuration) -> bool {
        let want = (self.mobiles.len() as f64 * fraction).ceil() as usize;
        let end = self.world.now() + deadline;
        loop {
            if self.attached_count() >= want {
                return true;
            }
            if self.world.now() >= end {
                return false;
            }
            self.world.run_for(SimDuration::from_millis(250));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_plan_is_disjoint() {
        // Region LANs, cells and the backbone never overlap.
        assert!(!backbone_prefix().contains(region_router_addr(0)));
        assert!(!region_prefix(0).contains(region_router_addr(1)));
        assert!(!cells_prefix(0).contains(fa_upstream_addr(0, 0)));
        assert!(cell_prefix(1, 3).contains(fa_cell_addr(1, 3)));
        assert!(cells_prefix(1).contains(fa_cell_addr(1, 3)));
        assert!(region_prefix(2).contains(mobile_home_addr(2, 64_999)));
        assert_eq!(mobile_home_addr(0, 0), Ipv4Addr::new(10, 1, 1, 0));
    }

    #[test]
    fn small_world_registers_everyone() {
        let p = HierarchyParams {
            regions: 2,
            fas_per_region: 3,
            mobiles_per_region: 9,
            ..Default::default()
        };
        let mut h = Hierarchy::build(p);
        assert_eq!(h.mobiles.len(), 18);
        assert_eq!(h.fas.len(), 6);
        // Mobiles start away and must all register: discovery takes the
        // watchdog's loss tolerance (3 s) before the host searches.
        assert!(h.run_until_attached(1.0, SimDuration::from_secs(30)), "registration stalled");
        // Each host sits under the round-robin cell it was placed in.
        for idx in [0, 4, 17] {
            let m = h.mobiles[idx];
            let state = h.world.node::<MobileHostNode>(m).core.state;
            assert_eq!(state, Attachment::Foreign(h.mobile_cell_fa(idx)));
        }
    }

    #[test]
    fn sharded_world_registers_everyone() {
        let p = HierarchyParams {
            regions: 2,
            fas_per_region: 3,
            mobiles_per_region: 9,
            ..Default::default()
        };
        let mut h = ShardedHierarchy::build(p, 2);
        assert_eq!(h.world.shard_count(), 2);
        assert_eq!(h.region_shard, vec![0, 1]);
        assert!(h.run_until_attached(1.0, SimDuration::from_secs(30)), "registration stalled");
        for idx in [0, 4, 17] {
            let m = h.mobiles[idx];
            let state = h.world.node::<MobileHostNode>(m).core.state;
            assert_eq!(state, Attachment::Foreign(h.mobile_cell_fa(idx)));
        }
    }

    #[test]
    fn hierarchical_cross_region_visit_registers_regionally() {
        let p = HierarchyParams {
            regions: 2,
            fas_per_region: 3,
            mobiles_per_region: 3,
            hierarchical: true,
            ..Default::default()
        };
        let mut h = Hierarchy::build(p);
        assert!(h.run_until_attached(1.0, SimDuration::from_secs(30)), "registration stalled");
        // Carry region 0's host 0 into region 1's cell 1 — a cross-region
        // visit that must be served by region 1's regional agent.
        let mover = h.mobiles[0];
        let at = h.world.now() + SimDuration::from_millis(10);
        h.world.schedule_admin(
            at,
            netsim::AdminOp::MoveIface { node: mover, iface: IfaceId(0), segment: h.cells[3 + 1] },
        );
        h.world.run_for(SimDuration::from_secs(10));
        let state = h.world.node::<MobileHostNode>(mover).core.state;
        assert_eq!(state, Attachment::Foreign(fa_cell_addr(1, 1)));
        assert!(
            h.world.stats().counter("mhrp.reg_registrations") > 0,
            "the regional tier saw no registration"
        );
        // Correspondent traffic reaches the visitor through the two-tier
        // tunnel (home agent -> regional agent -> cell FA).
        let target = h.mobile_addr(0);
        let c = h.correspondent.expect("correspondent");
        h.world.with_node::<MhrpHostNode, _>(c, |host, ctx| {
            host.send_udp(ctx, target, 4242, 4242, vec![7; 16]);
        });
        h.world.run_for(SimDuration::from_secs(2));
        let got = h
            .world
            .node::<MobileHostNode>(mover)
            .endpoint
            .log
            .udp_rx
            .iter()
            .any(|r| r.payload == vec![7; 16]);
        assert!(got, "probe did not reach the cross-region visitor");
    }

    #[test]
    fn build_is_deterministic() {
        let p = HierarchyParams {
            regions: 2,
            fas_per_region: 2,
            mobiles_per_region: 6,
            ..Default::default()
        };
        let mut a = Hierarchy::build(p.clone());
        let mut b = Hierarchy::build(p);
        a.world.run_for(SimDuration::from_secs(8));
        b.world.run_for(SimDuration::from_secs(8));
        assert_eq!(a.world.events_processed(), b.world.events_processed());
        assert_eq!(a.attached_count(), b.attached_count());
    }
}

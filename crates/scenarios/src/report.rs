//! Plain-text table rendering for the `report` binary and EXPERIMENTS.md.

/// Renders an aligned plain-text table.
///
/// ```rust
/// let t = scenarios::report::table(
///     &["proto", "overhead"],
///     vec![vec!["MHRP".into(), "8".into()], vec!["Sony VIP".into(), "28".into()]],
/// );
/// assert!(t.contains("MHRP"));
/// assert!(t.lines().count() >= 4);
/// ```
pub fn table(headers: &[&str], rows: Vec<Vec<String>>) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str("| ");
            out.push_str(cell);
            out.push_str(&" ".repeat(widths[i] - cell.len() + 1));
        }
        out.push_str("|\n");
    };
    sep(&mut out);
    line(&mut out, &headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>());
    sep(&mut out);
    for row in &rows {
        line(&mut out, row);
    }
    sep(&mut out);
    out
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = table(&["a", "bbbb"], vec![vec!["xxxxx".into(), "y".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
        // All lines have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let _ = table(&["a", "b"], vec![vec!["only-one".into()]]);
    }

    #[test]
    fn f2_formats() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f2(12.5), "12.50");
    }
}

//! The §7 protocol shootout: MHRP and all five baselines on the *same*
//! physical internetwork (the Figure 1 layout), running the same
//! workload, measured the same way.
//!
//! Workload: the mobile host M starts at home, moves to wireless network
//! D, sends one packet to the correspondent S (mobile-initiated contact —
//! required for the IBM protocol to learn a reverse route, and realistic
//! for every other protocol), then S streams UDP data packets to M.
//! Measured: encapsulation overhead per data packet, delivery ratio,
//! forward-path length in router hops (from received TTLs), and protocol
//! control messages. Periodic agent beacons/advertisements are excluded
//! from the control count for every protocol (they are a comparable,
//! constant background cost); each driver documents its formula.

use std::net::Ipv4Addr;

use baselines::columbia::{ColumbiaMobileNode, MsrNode};
use baselines::common::TempAddrPool;
use baselines::ibm_lsrr::{BaseStationNode, LsrrHostNode, LsrrMobileNode};
use baselines::matsushita::{IptpAgentNode, MatsushitaHostNode, MatsushitaMobileNode, PfsNode};
use baselines::sony_vip::{VipHostNode, VipMobileNode, VipRouterNode};
use baselines::sunshine_postel::{SpDirectoryNode, SpForwarderNode, SpHostNode, SpMobileNode};
use mhrp::{MhrpHostNode, MobileHostNode};
use netsim::time::{SimDuration, SimTime};
use netsim::{IfaceId, NodeId, SegmentId, SegmentParams, World};
use netstack::nodes::RouterNode;
use workload::{Flow, FlowCfg, Pattern};

use crate::metrics::ComparisonRow;
use crate::topology::{
    backbone_addr, configure_host_s_stack, configure_router_stack, net, CorrespondentKind, Figure1,
    Figure1Addrs, Figure1Options,
};

/// UDP port used by the data stream (no echo service listens there, so
/// the stream is one-way).
pub const DATA_PORT: u16 = 5001;

/// A closure sending one packet: `(world, destination, payload)`.
type SendFn = Box<dyn Fn(&mut World, Ipv4Addr, Vec<u8>)>;
/// A closure reading the mobile host's data-packet log.
type MobileRxFn = Box<dyn Fn(&World) -> Vec<RxRecord>>;

/// One data packet as received by the mobile host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxRecord {
    /// Arrival time at the mobile host.
    pub at: SimTime,
    /// Remaining IP TTL (forward hop count is `64 - ttl`).
    pub ttl: u8,
    /// The workload probe sequence number, when the payload carries the
    /// [`workload::encode_probe`] header.
    pub seq: Option<u32>,
}

/// A protocol under test, with everything the common workload needs.
pub struct Driver {
    /// Protocol name for the report.
    pub name: &'static str,
    /// The §7 figure quoted by the paper, for the comparison column.
    pub paper_overhead: &'static str,
    /// The running world.
    pub world: World,
    /// Stats counter holding accumulated encapsulation bytes.
    pub overhead_counter: &'static str,
    mobile_home: Ipv4Addr,
    s_addr: Ipv4Addr,
    net_d: SegmentId,
    net_e: SegmentId,
    m_node: NodeId,
    send_s_to_m: SendFn,
    send_m_to_s: SendFn,
    mobile_rx: MobileRxFn,
    control_messages: Box<dyn Fn(&World) -> u64>,
}

impl std::fmt::Debug for Driver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Driver").field("name", &self.name).finish()
    }
}

impl Driver {
    /// Physically carries M to network D.
    pub fn move_m_to_d(&mut self) {
        self.world.move_iface(self.m_node, IfaceId(0), Some(self.net_d));
    }

    /// Physically carries M to network E.
    pub fn move_m_to_e(&mut self) {
        self.world.move_iface(self.m_node, IfaceId(0), Some(self.net_e));
    }

    /// Sends one data packet from S toward M.
    pub fn send_data(&mut self, payload: Vec<u8>) {
        (self.send_s_to_m)(&mut self.world, self.mobile_home, payload);
    }

    /// Sends one packet from M toward S (mobile-initiated contact).
    pub fn send_from_mobile(&mut self, payload: Vec<u8>) {
        (self.send_m_to_s)(&mut self.world, self.s_addr, payload);
    }

    /// Data packets received by M on [`DATA_PORT`]: `(arrival, ttl)`.
    pub fn mobile_received(&self) -> Vec<(SimTime, u8)> {
        (self.mobile_rx)(&self.world).into_iter().map(|r| (r.at, r.ttl)).collect()
    }

    /// Data packets received by M on [`DATA_PORT`], with decoded
    /// workload probe sequence numbers.
    pub fn mobile_received_probes(&self) -> Vec<RxRecord> {
        (self.mobile_rx)(&self.world)
    }

    /// The protocol's control-message count so far.
    pub fn control_messages(&self) -> u64 {
        (self.control_messages)(&self.world)
    }
}

/// The physical substrate shared by the non-MHRP builders (and the E07
/// scalability experiment): the Figure 1 segments with no nodes yet.
pub struct Phys {
    /// The world (segments added, not started).
    pub world: World,
    /// The backbone segment.
    pub backbone: SegmentId,
    /// Network A.
    pub net_a: SegmentId,
    /// Network B (mobile hosts' home).
    pub net_b: SegmentId,
    /// Network C.
    pub net_c: SegmentId,
    /// Network D (wireless).
    pub net_d: SegmentId,
    /// Network E (wireless).
    pub net_e: SegmentId,
}

/// Builds the bare Figure 1 physical layout.
pub fn phys(seed: u64) -> Phys {
    let mut world = World::new(seed);
    let wired = SegmentParams::with_latency(SimDuration::from_micros(500));
    Phys {
        backbone: world.add_segment(wired),
        net_a: world.add_segment(wired),
        net_b: world.add_segment(wired),
        net_c: world.add_segment(wired),
        net_d: world.add_segment(SegmentParams::wireless()),
        net_e: world.add_segment(SegmentParams::wireless()),
        world,
    }
}

/// Adds a plain (mobility-unaware) router at Figure 1 position `1..=5`.
pub fn add_plain_router(p: &mut Phys, position: u8) -> NodeId {
    let (seg_a, seg_b) = match position {
        1 => (p.backbone, p.net_a),
        2 => (p.backbone, p.net_b),
        3 => (p.backbone, p.net_c),
        4 => (p.net_c, p.net_d),
        _ => (p.net_c, p.net_e),
    };
    let id = p.world.add_node(RouterNode::new());
    p.world.add_iface(id, Some(seg_a));
    p.world.add_iface(id, Some(seg_b));
    p.world.with_node::<RouterNode, _>(id, |r, _| configure_router_stack(&mut r.stack, position));
    id
}

fn udp_filter(log: &netstack::EndpointLog) -> Vec<RxRecord> {
    log.udp_rx
        .iter()
        .filter(|r| r.dst_port == DATA_PORT)
        .map(|r| RxRecord {
            at: r.at,
            ttl: r.ttl,
            seq: workload::decode_probe(&r.payload).map(|(_, seq)| seq),
        })
        .collect()
}

/// Builds the MHRP driver (reusing the Figure 1 topology).
pub fn mhrp_driver(seed: u64) -> Driver {
    let f = Figure1::build(Figure1Options {
        correspondent: CorrespondentKind::Mhrp,
        seed,
        ..Default::default()
    });
    let addrs = f.addrs;
    let (s, m) = (f.s, f.m);
    Driver {
        name: "MHRP",
        paper_overhead: "8 (12 via agent)",
        mobile_home: addrs.m,
        s_addr: addrs.s,
        net_d: f.net_d,
        net_e: f.net_e,
        m_node: m,
        world: f.world,
        overhead_counter: "mhrp.overhead_bytes",
        send_s_to_m: Box::new(move |w, dst, payload| {
            w.with_node::<MhrpHostNode, _>(s, |h, ctx| {
                h.send_udp(ctx, dst, DATA_PORT, DATA_PORT, payload)
            });
        }),
        send_m_to_s: Box::new(move |w, dst, payload| {
            w.with_node::<MobileHostNode, _>(m, |h, ctx| h.send_udp(ctx, dst, 5002, 5002, payload));
        }),
        mobile_rx: Box::new(move |w| udp_filter(&w.node::<MobileHostNode>(m).endpoint.log)),
        // Registrations + acks (2x sends) + location updates.
        control_messages: Box::new(|w| {
            let s = w.stats();
            2 * s.counter("mhrp.registration_msgs_sent") + s.counter("mhrp.updates_sent")
        }),
    }
}

/// Builds the Sunshine–Postel driver.
pub fn sunshine_postel_driver(seed: u64) -> Driver {
    let mut p = phys(seed);
    let addrs = Figure1Addrs::plan();
    for pos in 1..=3 {
        add_plain_router(&mut p, pos);
    }
    // Forwarders at positions 4 and 5.
    for (pos, seg) in [(4u8, p.net_d), (5u8, p.net_e)] {
        let id = p.world.add_node(SpForwarderNode::new(IfaceId(1)));
        p.world.add_iface(id, Some(p.net_c));
        p.world.add_iface(id, Some(seg));
        p.world
            .with_node::<SpForwarderNode, _>(id, |r, _| configure_router_stack(&mut r.stack, pos));
    }
    // The global directory, on the backbone.
    let dir_addr = backbone_addr(9);
    let dir = p.world.add_node(SpDirectoryNode::new());
    p.world.add_iface(dir, Some(p.backbone));
    p.world.with_node::<SpDirectoryNode, _>(dir, |d, _| {
        d.stack.add_iface(IfaceId(0), dir_addr, net(0));
        d.stack.routes.add(
            ip::Prefix::default_route(),
            netstack::route::NextHop::Gateway { iface: IfaceId(0), via: backbone_addr(1) },
        );
    });
    // S and M.
    let s = p.world.add_node(SpHostNode::new(dir_addr));
    p.world.add_iface(s, Some(p.net_a));
    p.world.with_node::<SpHostNode, _>(s, |h, _| configure_host_s_stack(&mut h.stack));
    let m = p.world.add_node(SpMobileNode::new(addrs.m, net(2), addrs.r2, dir_addr));
    p.world.add_iface(m, Some(p.net_b));
    p.world.start();
    Driver {
        name: "Sunshine-Postel",
        paper_overhead: "src-route (8 here)",
        mobile_home: addrs.m,
        s_addr: addrs.s,
        net_d: p.net_d,
        net_e: p.net_e,
        m_node: m,
        world: p.world,
        overhead_counter: "sp.overhead_bytes",
        send_s_to_m: Box::new(move |w, dst, payload| {
            w.with_node::<SpHostNode, _>(s, |h, ctx| {
                h.send_udp(ctx, dst, DATA_PORT, DATA_PORT, payload)
            });
        }),
        send_m_to_s: Box::new(move |w, dst, payload| {
            w.with_node::<SpMobileNode, _>(m, |h, ctx| {
                let src = h.home_addr;
                let pkt = netstack::nodes::Endpoint::make_udp(src, dst, 5002, 5002, payload);
                h.stack.send(ctx, pkt);
            });
        }),
        mobile_rx: Box::new(move |w| udp_filter(&w.node::<SpMobileNode>(m).endpoint.log)),
        // Directory registrations + query/response pairs + local forwarder
        // (re-)registrations, which this protocol refreshes every beacon.
        control_messages: Box::new(|w| {
            let s = w.stats();
            s.counter("sp.mobile_registrations")
                + 2 * s.counter("sp.host_queries")
                + s.counter("sp.fwd_registrations")
        }),
    }
}

/// Builds the Columbia driver.
pub fn columbia_driver(seed: u64) -> Driver {
    let mut p = phys(seed);
    let addrs = Figure1Addrs::plan();
    add_plain_router(&mut p, 1);
    add_plain_router(&mut p, 3);
    // MSRs at positions 2 (home), 4 and 5.
    let msr_addrs = [addrs.r2, addrs.r4, addrs.r5];
    let mut msrs = Vec::new();
    for (pos, seg) in [(2u8, p.net_b), (4, p.net_d), (5, p.net_e)] {
        let id = p.world.add_node(MsrNode::new(IfaceId(1)));
        let first = if pos == 2 { p.backbone } else { p.net_c };
        p.world.add_iface(id, Some(first));
        p.world.add_iface(id, Some(seg));
        p.world.with_node::<MsrNode, _>(id, |r, _| {
            configure_router_stack(&mut r.stack, pos);
            let self_addr = r.stack.iface_addr(IfaceId(1)).unwrap().addr;
            r.peers = msr_addrs.iter().copied().filter(|a| *a != self_addr).collect();
        });
        msrs.push(id);
    }
    let home_msr = msrs[0];
    p.world.with_node::<MsrNode, _>(home_msr, |r, _| r.add_home_mobile(addrs.m));
    // S is a *plain* host: Columbia demands nothing from correspondents.
    let s = p.world.add_node(netstack::HostNode::new());
    p.world.add_iface(s, Some(p.net_a));
    p.world.with_node::<netstack::HostNode, _>(s, |h, _| configure_host_s_stack(&mut h.stack));
    let m = p.world.add_node(ColumbiaMobileNode::new(addrs.m, net(2), addrs.r2));
    p.world.add_iface(m, Some(p.net_b));
    p.world.start();
    Driver {
        name: "Columbia IPIP",
        paper_overhead: "24",
        mobile_home: addrs.m,
        s_addr: addrs.s,
        net_d: p.net_d,
        net_e: p.net_e,
        m_node: m,
        world: p.world,
        overhead_counter: "columbia.overhead_bytes",
        send_s_to_m: Box::new(move |w, dst, payload| {
            w.with_node::<netstack::HostNode, _>(s, |h, ctx| {
                h.send_udp(ctx, dst, DATA_PORT, DATA_PORT, payload)
            });
        }),
        send_m_to_s: Box::new(move |w, dst, payload| {
            w.with_node::<ColumbiaMobileNode, _>(m, |h, ctx| {
                h.send_udp(ctx, dst, 5002, 5002, payload)
            });
        }),
        mobile_rx: Box::new(move |w| udp_filter(&w.node::<ColumbiaMobileNode>(m).endpoint.log)),
        // Registrations + the multicast query fan-out + replies + popups.
        control_messages: Box::new(|w| {
            let s = w.stats();
            s.counter("columbia.registrations")
                + s.counter("columbia.query_messages")
                + s.counter("columbia.query_rounds") // replies (≤ one per round)
                + s.counter("columbia.popup_registrations")
        }),
    }
}

/// Builds the Sony VIP driver.
pub fn sony_vip_driver(seed: u64) -> Driver {
    let mut p = phys(seed);
    let addrs = Figure1Addrs::plan();
    // All five routers speak VIP; R4/R5 assign temporary addresses.
    let router_addrs = [addrs.r1, addrs.r2, addrs.r3, addrs.r4, addrs.r5];
    let mut ids = Vec::new();
    for (pos, local) in [(1u8, p.net_a), (2, p.net_b), (3, p.net_c), (4, p.net_d), (5, p.net_e)] {
        let id = p.world.add_node(VipRouterNode::new(IfaceId(1)));
        let first = if pos <= 3 { p.backbone } else { p.net_c };
        p.world.add_iface(id, Some(first));
        p.world.add_iface(id, Some(local));
        p.world.with_node::<VipRouterNode, _>(id, |r, _| {
            configure_router_stack(&mut r.stack, pos);
            let self_addr = router_addrs[usize::from(pos) - 1];
            r.flood_peers = router_addrs.iter().copied().filter(|a| *a != self_addr).collect();
            if pos >= 4 {
                r.pool = Some(TempAddrPool::new(net(pos), 100, 32));
            }
        });
        ids.push(id);
    }
    let s = p.world.add_node(VipHostNode::new(addrs.s));
    p.world.add_iface(s, Some(p.net_a));
    p.world.with_node::<VipHostNode, _>(s, |h, _| configure_host_s_stack(&mut h.stack));
    let m = p.world.add_node(VipMobileNode::new(addrs.m, net(2), addrs.r2, addrs.r2));
    p.world.add_iface(m, Some(p.net_b));
    p.world.start();
    Driver {
        name: "Sony VIP",
        paper_overhead: "28",
        mobile_home: addrs.m,
        s_addr: addrs.s,
        net_d: p.net_d,
        net_e: p.net_e,
        m_node: m,
        world: p.world,
        overhead_counter: "vip.overhead_bytes",
        send_s_to_m: Box::new(move |w, dst, payload| {
            w.with_node::<VipHostNode, _>(s, |h, ctx| {
                h.send_udp(ctx, dst, DATA_PORT, DATA_PORT, payload)
            });
        }),
        send_m_to_s: Box::new(move |w, dst, payload| {
            w.with_node::<VipMobileNode, _>(m, |h, ctx| h.send_udp(ctx, dst, 5002, 5002, payload));
        }),
        mobile_rx: Box::new(move |w| udp_filter(&w.node::<VipMobileNode>(m).endpoint.log)),
        // Temp handshakes (2/move) + home registrations + the flood +
        // misdelivery notices.
        control_messages: Box::new(|w| {
            let s = w.stats();
            2 * s.counter("vip.mobile_moves")
                + s.counter("vip.home_registrations")
                + s.counter("vip.flood_messages")
                + s.counter("vip.misdelivered")
        }),
    }
}

/// Builds the Matsushita driver.
pub fn matsushita_driver(seed: u64) -> Driver {
    let mut p = phys(seed);
    let addrs = Figure1Addrs::plan();
    add_plain_router(&mut p, 1);
    add_plain_router(&mut p, 3);
    // The PFS at position 2.
    let pfs = p.world.add_node(PfsNode::new(IfaceId(1)));
    p.world.add_iface(pfs, Some(p.backbone));
    p.world.add_iface(pfs, Some(p.net_b));
    p.world.with_node::<PfsNode, _>(pfs, |r, _| configure_router_stack(&mut r.stack, 2));
    // Address agents at positions 4 and 5.
    for (pos, seg) in [(4u8, p.net_d), (5, p.net_e)] {
        let pool = TempAddrPool::new(net(pos), 100, 32);
        let id = p.world.add_node(IptpAgentNode::new(IfaceId(1), pool));
        p.world.add_iface(id, Some(p.net_c));
        p.world.add_iface(id, Some(seg));
        p.world.with_node::<IptpAgentNode, _>(id, |r, _| configure_router_stack(&mut r.stack, pos));
    }
    let s = p.world.add_node(MatsushitaHostNode::new());
    p.world.add_iface(s, Some(p.net_a));
    p.world.with_node::<MatsushitaHostNode, _>(s, |h, _| configure_host_s_stack(&mut h.stack));
    let m = p.world.add_node(MatsushitaMobileNode::new(addrs.m, net(2), addrs.r2, addrs.r2));
    p.world.add_iface(m, Some(p.net_b));
    p.world.start();
    Driver {
        name: "Matsushita IPTP",
        paper_overhead: "40",
        mobile_home: addrs.m,
        s_addr: addrs.s,
        net_d: p.net_d,
        net_e: p.net_e,
        m_node: m,
        world: p.world,
        overhead_counter: "iptp.overhead_bytes",
        send_s_to_m: Box::new(move |w, dst, payload| {
            w.with_node::<MatsushitaHostNode, _>(s, |h, ctx| {
                h.send_udp(ctx, dst, DATA_PORT, DATA_PORT, payload)
            });
        }),
        send_m_to_s: Box::new(move |w, dst, payload| {
            w.with_node::<MatsushitaMobileNode, _>(m, |h, ctx| {
                let src = h.home_addr;
                let pkt = netstack::nodes::Endpoint::make_udp(src, dst, 5002, 5002, payload);
                h.stack.send(ctx, pkt);
            });
        }),
        mobile_rx: Box::new(move |w| udp_filter(&w.node::<MatsushitaMobileNode>(m).endpoint.log)),
        control_messages: Box::new(|w| {
            let s = w.stats();
            2 * s.counter("iptp.mobile_moves")
                + s.counter("iptp.registrations")
                + s.counter("iptp.autonomous_enabled")
        }),
    }
}

/// Builds the IBM LSRR driver. `broken_s` makes S one of the §7 "broken"
/// LSRR implementations; `slow_path_penalty` is the per-router extra
/// latency for optioned packets.
pub fn ibm_lsrr_driver(seed: u64, broken_s: bool, slow_path_penalty: SimDuration) -> Driver {
    let mut p = phys(seed);
    let addrs = Figure1Addrs::plan();
    for pos in 1..=3 {
        let id = add_plain_router(&mut p, pos);
        p.world.with_node::<RouterNode, _>(id, |r, _| r.option_penalty = slow_path_penalty);
    }
    for (pos, seg) in [(4u8, p.net_d), (5, p.net_e)] {
        let id = p.world.add_node(BaseStationNode::new(IfaceId(1)));
        p.world.add_iface(id, Some(p.net_c));
        p.world.add_iface(id, Some(seg));
        p.world
            .with_node::<BaseStationNode, _>(id, |r, _| configure_router_stack(&mut r.stack, pos));
    }
    let s = p.world.add_node(LsrrHostNode::new(broken_s));
    p.world.add_iface(s, Some(p.net_a));
    p.world.with_node::<LsrrHostNode, _>(s, |h, _| configure_host_s_stack(&mut h.stack));
    let m = p.world.add_node(LsrrMobileNode::new(addrs.m, net(2), addrs.r2));
    p.world.add_iface(m, Some(p.net_b));
    p.world.start();
    Driver {
        name: if broken_s { "IBM LSRR (broken peer)" } else { "IBM LSRR" },
        paper_overhead: "8 (+8 from mobile)",
        mobile_home: addrs.m,
        s_addr: addrs.s,
        net_d: p.net_d,
        net_e: p.net_e,
        m_node: m,
        world: p.world,
        overhead_counter: "lsrr.overhead_bytes",
        send_s_to_m: Box::new(move |w, dst, payload| {
            w.with_node::<LsrrHostNode, _>(s, |h, ctx| {
                h.send_udp(ctx, dst, DATA_PORT, DATA_PORT, payload)
            });
        }),
        send_m_to_s: Box::new(move |w, dst, payload| {
            w.with_node::<LsrrMobileNode, _>(m, |h, ctx| h.send_udp(ctx, dst, 5002, 5002, payload));
        }),
        mobile_rx: Box::new(move |w| udp_filter(&w.node::<LsrrMobileNode>(m).endpoint.log)),
        control_messages: Box::new(|w| w.stats().counter("lsrr.registrations")),
    }
}

/// Builds every driver (the IBM one with a correct peer and no slow-path
/// penalty).
pub fn all_drivers(seed: u64) -> Vec<Driver> {
    vec![
        mhrp_driver(seed),
        sunshine_postel_driver(seed),
        columbia_driver(seed),
        sony_vip_driver(seed),
        matsushita_driver(seed),
        ibm_lsrr_driver(seed, false, SimDuration::ZERO),
    ]
}

/// Wire size of every measured shootout probe (golden-pinned by the E02
/// overhead counters).
pub const PROBE_BYTES: usize = 64;

/// Runs the common workload on one driver and produces its comparison
/// row.
///
/// The measured stream is emitted by a `workload` CBR [`Flow`] — the
/// same generator the soak runs use — so latency pairing rides on the
/// probe sequence numbers instead of arrival order.
pub fn run_comparison(mut d: Driver, n_packets: u32) -> ComparisonRow {
    // Phase 1: settle at home, then move to network D and let the
    // protocol's registration machinery converge.
    d.world.run_until(SimTime::from_secs(3));
    d.move_m_to_d();
    d.world.run_until(SimTime::from_secs(12));
    // Phase 2: mobile-initiated contact primes reverse routes/caches.
    d.send_from_mobile(b"hello from the road".to_vec());
    d.world.run_for(SimDuration::from_secs(1));
    // Phase 3: the measured data stream — one CBR probe per 100 ms.
    let overhead0 = d.world.stats().counter(d.overhead_counter);
    let control0 = d.control_messages();
    let data_start = d.world.now();
    let mut flow = Flow::new(
        0,
        FlowCfg {
            pattern: Pattern::Cbr { interval: SimDuration::from_millis(100) },
            bytes: PROBE_BYTES,
            seed: 0, // CBR draws nothing from the RNG
            limit: Some(u64::from(n_packets)),
        },
    );
    let mut emits = Vec::new();
    while !flow.done() {
        emits.clear();
        flow.on_tick(d.world.now(), &mut emits);
        for e in &emits {
            d.send_data(workload::encode_probe(0, e.seq, e.bytes));
        }
        d.world.run_for(SimDuration::from_millis(100));
    }
    d.world.run_for(SimDuration::from_secs(3));

    let rx: Vec<RxRecord> =
        d.mobile_received_probes().into_iter().filter(|r| r.at >= data_start).collect();
    let delivered = rx.len() as u64;
    let overhead_bytes = d.world.stats().counter(d.overhead_counter) - overhead0;
    let control_messages = d.control_messages() - control0;
    let avg_forward_hops = if rx.is_empty() {
        0.0
    } else {
        rx.iter().map(|r| f64::from(64 - r.ttl)).sum::<f64>() / rx.len() as f64
    };
    // Latency pairs by embedded sequence number (exact even if a probe
    // is lost mid-stream); hop counts come from received TTLs. Both are
    // merged into the world's stats hub under the per-flow histogram
    // names and copied onto the row.
    let lat_id = d
        .world
        .stats_mut()
        .histogram_metric("flow.latency_us", netsim::telemetry::LATENCY_US_BOUNDS);
    let hops_id =
        d.world.stats_mut().histogram_metric("flow.fwd_hops", netsim::telemetry::HOP_BOUNDS);
    for r in &rx {
        let seq = r.seq.expect("measured stream carries probe headers");
        flow.on_delivered(seq, r.at);
        let sent_at = flow.sent_time(seq).expect("delivered probe was sent by this flow");
        d.world.stats_mut().record_hist_id(lat_id, r.at.since(sent_at).as_micros());
        d.world.stats_mut().record_hist_id(hops_id, u64::from(64 - r.ttl));
    }
    let latency_us = d.world.stats().histogram("flow.latency_us").expect("registered").clone();
    let hops_hist = d.world.stats().histogram("flow.fwd_hops").expect("registered").clone();
    ComparisonRow {
        protocol: d.name.to_owned(),
        workload: flow.cfg.pattern.describe(flow.cfg.bytes),
        data_packets_sent: flow.stats.sent,
        delivered,
        overhead_bytes,
        overhead_per_packet: overhead_bytes as f64 / flow.stats.sent as f64,
        avg_forward_hops,
        latency_us,
        hops_hist,
        control_messages,
        paper_overhead: d.paper_overhead,
    }
}

//! Structured-trace assertion helpers: turn [`netsim::Journey`] hop lists
//! into named paths and assert the paper's path claims (e.g. Figure 1's
//! `S -> R1 -> R2 -> R3 -> R4 -> M`) directly against telemetry.

use netsim::{JourneyId, NodeId, TeleEventKind, World};

use crate::topology::Figure1;

/// The Figure 1 display name of `node` (`"R1"`..`"R5"`, `"S"`, `"M"`), or
/// `"?"` for a node outside the canonical cast.
pub fn fig1_name(f: &Figure1, node: NodeId) -> &'static str {
    if node == f.r1 {
        "R1"
    } else if node == f.r2 {
        "R2"
    } else if node == f.r3 {
        "R3"
    } else if node == f.r4 {
        "R4"
    } else if node == f.r5 {
        "R5"
    } else if node == f.s {
        "S"
    } else if node == f.m {
        "M"
    } else {
        "?"
    }
}

/// The named hop list of `id` in a Figure 1 world: each node that
/// *received* a frame of the journey, in order.
pub fn fig1_hops(f: &Figure1, id: JourneyId) -> Vec<&'static str> {
    f.world.journey_hops(id).into_iter().map(|n| fig1_name(f, n)).collect()
}

/// Asserts that journey `id` visited exactly `want` (receiving nodes in
/// order), with a readable diff on mismatch.
///
/// # Panics
///
/// Panics when the reconstructed path differs from `want`.
pub fn assert_path(world: &World, id: JourneyId, want: &[NodeId]) {
    let got = world.journey_hops(id);
    assert_eq!(
        got,
        want,
        "journey {id} path mismatch:\n  got  {got:?}\n  want {want:?}\n  events: {:#?}",
        world.journey(id).events
    );
}

/// Number of tunnel encapsulations recorded on journey `id`.
pub fn encap_count(world: &World, id: JourneyId) -> usize {
    world
        .journey(id)
        .events
        .iter()
        .filter(|e| matches!(e.kind, TeleEventKind::Encap { .. }))
        .count()
}

/// Whether journey `id` triggered loop detection (§5.3).
pub fn loop_detected(world: &World, id: JourneyId) -> bool {
    world.journey(id).loop_detected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Figure1Options;

    #[test]
    fn fig1_names_cover_the_cast() {
        let f = Figure1::build(Figure1Options::default());
        let names: Vec<&str> =
            [f.r1, f.r2, f.r3, f.r4, f.r5, f.s, f.m].iter().map(|&n| fig1_name(&f, n)).collect();
        assert_eq!(names, ["R1", "R2", "R3", "R4", "R5", "S", "M"]);
        assert_eq!(fig1_name(&f, NodeId(99)), "?");
    }
}

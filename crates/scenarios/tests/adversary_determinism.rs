//! Determinism contract for the adversary engine (DESIGN.md §13):
//!
//! 1. A fixed [`AttackPlan`] replays byte-identically — same seed, same
//!    plan, same typed-event log, with authentication off *and* on.
//! 2. The plan lowers onto the sharded engine through shard-routable
//!    admin ops, so on jitter-free worlds the merged typed-event stream
//!    is invariant over shard counts {1, 2, 4} — hostile traffic
//!    included.

use adversary::{AttackOp, AttackPlan, Binding};
use mhrp::MhrpConfig;
use netsim::time::{SimDuration, SimTime};
use netsim::IfaceId;
use scenarios::hierarchy::{
    attacker_addr, mobile_home_addr, region_router_addr, Hierarchy, HierarchyParams,
    ShardedHierarchy, CORRESPONDENT_ADDR,
};

const KEY: u64 = 0x1994_0d0c_5bad_c0de;

fn params(seed: u64, regions: usize, auth: bool) -> HierarchyParams {
    HierarchyParams {
        regions,
        fas_per_region: 2,
        mobiles_per_region: 4,
        attackers: 1,
        deterministic_cells: true,
        config: MhrpConfig { auth_key: auth.then_some(KEY), ..Default::default() },
        seed,
        ..Default::default()
    }
}

/// The fixed hostile plan: every op class once — forged registrations
/// against the nearest and the farthest region (the latter crosses the
/// portal on multi-shard layouts), cache poisoning, a seeded storm, and
/// a ping-pong oscillation.
fn hostile_plan(from: SimTime, regions: usize) -> AttackPlan {
    let far = regions - 1;
    AttackPlan::new()
        .op(
            from,
            AttackOp::ForgeHaRegister {
                attacker: 0,
                mobile: mobile_home_addr(0, 0),
                home_agent: region_router_addr(0),
                fa: attacker_addr(0),
                seq: 0x7001,
            },
        )
        .op(
            from + SimDuration::from_millis(100),
            AttackOp::ForgeHaRegister {
                attacker: 0,
                mobile: mobile_home_addr(far, 0),
                home_agent: region_router_addr(far),
                fa: attacker_addr(0),
                seq: 0x7002,
            },
        )
        .op(
            from + SimDuration::from_millis(200),
            AttackOp::PoisonUpdate {
                attacker: 0,
                target: CORRESPONDENT_ADDR,
                mobile: mobile_home_addr(0, 1),
                foreign_agent: attacker_addr(0),
            },
        )
        .update_storm(
            from + SimDuration::from_millis(300),
            SimDuration::from_millis(250),
            0,
            mobile_home_addr(0, 2),
            4,
            60,
            1994,
        )
        .ping_pong(from + SimDuration::from_secs(2), SimDuration::from_secs(2), 0, 0, 1, 4)
}

fn binding_for_flat(h: &Hierarchy) -> Binding {
    Binding {
        attackers: h.attackers.clone(),
        mobiles: h.mobiles.iter().map(|&m| (m, IfaceId(0))).collect(),
        cells: h.cells.clone(),
    }
}

fn run_flat(seed: u64, auth: bool) -> (Vec<netsim::Event>, u64, u64) {
    let mut h = Hierarchy::build(params(seed, 2, auth));
    h.world.set_telemetry(true);
    h.world.run_until(SimTime::from_secs(8));
    let b = binding_for_flat(&h);
    hostile_plan(SimTime::from_secs(8), 2).install(&mut h.world, &b);
    h.world.run_until(SimTime::from_secs(20));
    let events: Vec<netsim::Event> = h.world.telemetry().events().copied().collect();
    let delivered = h.world.stats().counter("link.frames_delivered");
    let rejected = h.world.stats().counter("mhrp.auth.rejected");
    (events, delivered, rejected)
}

fn run_sharded(seed: u64, shards: usize) -> (Vec<netsim::Event>, u64) {
    let mut h = ShardedHierarchy::build(params(seed, 4, false), shards);
    h.world.set_telemetry(true);
    h.world.run_until(SimTime::from_secs(8));
    let b = Binding {
        attackers: h.attackers.clone(),
        mobiles: h.mobiles.iter().map(|&m| (m, IfaceId(0))).collect(),
        cells: h.cells.clone(),
    };
    hostile_plan(SimTime::from_secs(8), 4).install(&mut h.world, &b);
    h.world.run_until(SimTime::from_secs(20));
    (h.world.merged_events(), h.world.counter("link.frames_delivered"))
}

/// Same seed + same plan ⇒ byte-identical typed-event log, with the
/// authentication extension off and on.
#[test]
fn attack_plan_replay_is_byte_identical() {
    for auth in [false, true] {
        let (a, delivered_a, rejected_a) = run_flat(1994, auth);
        let (b, delivered_b, rejected_b) = run_flat(1994, auth);
        assert!(!a.is_empty(), "telemetry produced nothing (auth={auth})");
        assert_eq!(delivered_a, delivered_b, "delivery diverged across replays (auth={auth})");
        assert_eq!(rejected_a, rejected_b, "rejections diverged across replays (auth={auth})");
        assert_eq!(a, b, "typed-event logs diverged across replays (auth={auth})");
        if auth {
            assert!(rejected_a > 0, "auth run should reject the forged registrations");
        } else {
            assert_eq!(rejected_a, 0, "plain run has nothing to reject");
        }
    }
}

/// The plan lowers identically at every shard count: merged streams at
/// {2, 4} shards match the 1-shard baseline record-for-record.
#[test]
fn attack_plan_is_shard_count_independent() {
    let (base, delivered) = run_sharded(1994, 1);
    assert!(!base.is_empty(), "telemetry produced nothing");
    for shards in [2, 4] {
        let (events, d) = run_sharded(1994, shards);
        assert_eq!(delivered, d, "frames delivered diverged at {shards} shards");
        assert_eq!(base.len(), events.len(), "stream lengths diverged at {shards} shards");
        for (i, (x, y)) in base.iter().zip(events.iter()).enumerate() {
            assert_eq!(x, y, "merged stream diverged at {shards} shards, record {i}");
        }
    }
}

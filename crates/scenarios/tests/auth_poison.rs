//! Cache-poisoning enforcement at both cache-agent tiers (DESIGN.md
//! §13): a spoofed location update from a non-authoritative sender —
//! the attacker was never on the packet's path, so it could never
//! legitimately appear as a previous source — must be dropped and
//! counted (`mhrp.cache.poison_dropped`) when authentication is on,
//! at the end-host cache agent and at the forwarding-path (router)
//! snoop alike, in flat and regional-tier worlds. With authentication
//! off, the same update is believed — the 1994 baseline E19 measures.

use adversary::{AttackOp, AttackPlan, Binding};
use mhrp::{MhrpConfig, MhrpHostNode};
use netsim::time::SimDuration;
use scenarios::hierarchy::{
    attacker_addr, mobile_home_addr, Hierarchy, HierarchyParams, CORRESPONDENT_ADDR,
};

const KEY: u64 = 0x1994_0d0c_5bad_c0de;

/// Builds a one-region world, fires two spoofed updates (one at the
/// correspondent's own cache agent, one routed *through* the regional
/// router so its forwarding-path snoop sees it), and returns the
/// poison-drop count plus the correspondent's resulting cache entry
/// for the victim.
fn poison_run(auth: bool, hierarchical: bool) -> (u64, Option<std::net::Ipv4Addr>) {
    let mut h = Hierarchy::build(HierarchyParams {
        regions: 1,
        fas_per_region: 2,
        mobiles_per_region: 4,
        attackers: 1,
        hierarchical,
        config: MhrpConfig { auth_key: auth.then_some(KEY), ..Default::default() },
        seed: 1994,
        ..Default::default()
    });
    assert!(
        h.run_until_attached(1.0, SimDuration::from_secs(30)),
        "mobile hosts failed to register"
    );
    let victim = mobile_home_addr(0, 0);
    let now = h.world.now();
    let plan = AttackPlan::new()
        // End-host tier: poison the correspondent's cache directly.
        .op(
            now + SimDuration::from_millis(100),
            AttackOp::PoisonUpdate {
                attacker: 0,
                target: CORRESPONDENT_ADDR,
                mobile: victim,
                foreign_agent: attacker_addr(0),
            },
        )
        // Router tier: an update addressed to a host *behind* the
        // regional router transits its forwarding path, where the §4.3
        // snoop must apply the same verification.
        .op(
            now + SimDuration::from_millis(200),
            AttackOp::PoisonUpdate {
                attacker: 0,
                target: mobile_home_addr(0, 1),
                mobile: victim,
                foreign_agent: attacker_addr(0),
            },
        );
    let binding = Binding { attackers: h.attackers.clone(), ..Default::default() };
    plan.install(&mut h.world, &binding);
    h.world.run_for(SimDuration::from_secs(2));

    let dropped = h.world.stats().counter("mhrp.cache.poison_dropped");
    let correspondent = h.correspondent.expect("correspondent");
    let cached =
        h.world.with_node::<MhrpHostNode, _>(correspondent, |c, _| c.ca.cache.peek(victim));
    (dropped, cached)
}

#[test]
fn flat_tier_drops_and_counts_poisoned_updates() {
    let (dropped, cached) = poison_run(true, false);
    // Both tiers saw the spoof: the correspondent's own cache agent and
    // the router snoop each dropped and counted one.
    assert!(dropped >= 2, "expected both tiers to count drops, got {dropped}");
    assert_ne!(cached, Some(attacker_addr(0)), "correspondent cache was poisoned");
}

#[test]
fn regional_tier_drops_and_counts_poisoned_updates() {
    let (dropped, cached) = poison_run(true, true);
    assert!(dropped >= 2, "expected both tiers to count drops, got {dropped}");
    assert_ne!(cached, Some(attacker_addr(0)), "correspondent cache was poisoned");
}

#[test]
fn without_auth_the_same_spoof_is_believed() {
    // The 1994 baseline: no MAC, no verification — the forged binding
    // lands in the correspondent's cache and nothing is counted.
    let (dropped, cached) = poison_run(false, false);
    assert_eq!(dropped, 0, "plain mode has no poison detection");
    assert_eq!(cached, Some(attacker_addr(0)), "spoof should have been believed");
}

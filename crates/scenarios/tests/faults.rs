//! Fault-injection integration tests on the paper's Figure 1 topology:
//! crash→reboot leaves every node *re-registrable* (volatile protocol
//! state is rebuilt through the protocol itself, not by test fiat), and
//! a fixed fault plan replays byte-identically — the full event trace
//! and every counter.

use mhrp::{Attachment, MhrpConfig, MhrpHostNode, MhrpRouterNode, MobileHostNode};
use netsim::time::{SimDuration, SimTime};
use netsim::{Event, FaultOp, FaultPlan, IfaceId, MacAddr, TeleEventKind};
use netstack::nodes::HostNode;
use scenarios::topology::{CorrespondentKind, Figure1, Figure1Options};

const DATA_PORT: u16 = 7001;

fn attach_m_at_r4(f: &mut Figure1) {
    f.world.run_until(SimTime::from_secs(2));
    f.move_m_to_d();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(2));
}

/// A crashed mobile host loses all volatile protocol state (pending
/// registrations, watchdog timers, its attachment) and must come back
/// as a *registrable* node: discovery restarts from scratch and the §3
/// sequence runs again, end to end.
#[test]
fn crashed_mobile_host_reboots_and_reregisters() {
    let mut f = Figure1::build(Figure1Options {
        correspondent: CorrespondentKind::Mhrp,
        seed: 71,
        ..Default::default()
    });
    attach_m_at_r4(&mut f);
    let acked_before = f.world.node::<MobileHostNode>(f.m).core.stats.ha_registrations_acked;

    let crash_at = f.world.now() + SimDuration::from_millis(100);
    f.world.install_faults(&FaultPlan::new().crash(f.m, crash_at, SimDuration::from_secs(2)));
    f.world.run_until(crash_at + SimDuration::from_secs(1));
    assert!(f.world.node_is_down(f.m), "M should be down mid-window");

    // After the outage M rediscovers R4 and re-runs the whole §3
    // sequence — foreign agent, then home agent.
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(2));
    let m = f.world.node::<MobileHostNode>(f.m);
    assert_eq!(m.core.stats.reboots, 1);
    assert_eq!(f.world.stats().counter("mhrp.mh_reboots"), 1);
    assert!(
        m.core.stats.ha_registrations_acked > acked_before,
        "home agent never acked the post-reboot registration"
    );

    // And the restored registration actually carries traffic.
    let m_addr = f.addrs.m;
    let rx_before = f.world.node::<MobileHostNode>(f.m).endpoint.log.udp_rx.len();
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![1; 16]);
    });
    f.world.run_for(SimDuration::from_secs(2));
    assert!(f.world.node::<MobileHostNode>(f.m).endpoint.log.udp_rx.len() > rx_before);
}

/// A crashed foreign agent restarts its advertiser (fresh timer epoch,
/// no doubled chain) and broadcasts the §5.2 recovery query; the mobile
/// host re-registers and delivery resumes.
#[test]
fn crashed_foreign_agent_recovers_its_visitors() {
    let mut f = Figure1::build(Figure1Options {
        correspondent: CorrespondentKind::Mhrp,
        seed: 73,
        ..Default::default()
    });
    attach_m_at_r4(&mut f);

    let adverts_before = f.world.stats().counter("mhrp.adverts_sent");
    let crash_at = f.world.now() + SimDuration::from_millis(100);
    f.world.install_faults(&FaultPlan::new().crash(f.r4, crash_at, SimDuration::from_secs(2)));
    f.world.run_until(crash_at + SimDuration::from_secs(2) + SimDuration::from_millis(1));
    assert!(f.world.stats().counter("mhrp.fa_recovery_queries") >= 1);

    // M answers the recovery query; the visitor entry is restored.
    f.world.run_for(SimDuration::from_secs(3));
    let m_addr = f.addrs.m;
    assert!(f.world.node::<MhrpRouterNode>(f.r4).fa.as_ref().unwrap().has_visitor(m_addr));

    // The advertiser restarted at exactly one chain: over the next four
    // seconds R4+R2+R5 emit roughly one advert per second each (solicited
    // responses allowed), not double R4's rate.
    let t0 = f.world.stats().counter("mhrp.adverts_sent");
    f.world.run_for(SimDuration::from_secs(4));
    let per_sec = (f.world.stats().counter("mhrp.adverts_sent") - t0) / 4;
    assert!(per_sec <= 4, "advert chains doubled after reboot: {per_sec}/s");
    assert!(f.world.stats().counter("mhrp.adverts_sent") > adverts_before);

    // Delivery works end to end again.
    let rx_before = f.world.node::<MobileHostNode>(f.m).endpoint.log.udp_rx.len();
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![2; 16]);
    });
    f.world.run_for(SimDuration::from_secs(2));
    assert!(f.world.node::<MobileHostNode>(f.m).endpoint.log.udp_rx.len() > rx_before);
}

/// §5.2 + §2 regression: a rebooting home agent must *re-broadcast* the
/// gratuitous ARP for every binding it reloads from disk, not merely
/// re-install its local proxy/capture state. A home-network neighbour
/// whose ARP cache went stale during the outage would otherwise keep
/// sending the mobile host's packets to a dead MAC until its cache
/// expires — with no ARP request for the proxy to answer.
#[test]
fn rebooted_home_agent_rebroadcasts_gratuitous_arp() {
    let mut f = Figure1::build(Figure1Options {
        correspondent: CorrespondentKind::Mhrp,
        config: MhrpConfig { home_agent_disk: true, ..Default::default() },
        home_host: true,
        seed: 79,
        ..Default::default()
    });
    let h = f.h.expect("built with home_host");
    attach_m_at_r4(&mut f);

    // H (M's LAN neighbour) resolves M's address: R2's proxy ARP answers
    // and the packet is intercepted + tunneled to R4.
    let m_addr = f.addrs.m;
    let rx_before = f.world.node::<MobileHostNode>(f.m).endpoint.log.udp_rx.len();
    f.world.with_node::<HostNode, _>(h, |host, ctx| {
        host.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![3; 16]);
    });
    f.world.run_for(SimDuration::from_secs(2));
    assert!(
        f.world.node::<MobileHostNode>(f.m).endpoint.log.udp_rx.len() > rx_before,
        "baseline interception never delivered"
    );
    let r2_mac = f.world.node::<HostNode>(h).stack.arp.lookup(IfaceId(0), m_addr).unwrap();

    // R2 crashes. While it is down H's cache goes stale (modeling cache
    // churn during the outage: the entry now names a MAC nobody owns).
    let crash_at = f.world.now() + SimDuration::from_millis(100);
    f.world.install_faults(&FaultPlan::new().crash(f.r2, crash_at, SimDuration::from_secs(2)));
    f.world.run_until(crash_at + SimDuration::from_secs(1));
    assert!(f.world.node_is_down(f.r2), "R2 should be down mid-window");
    let bogus = MacAddr::from_index(9_999);
    f.world.with_node::<HostNode, _>(h, |host, _| {
        host.stack.arp.insert(IfaceId(0), m_addr, bogus);
    });

    // Reboot: the journaled binding reloads and the gratuitous ARP
    // broadcast must overwrite H's stale mapping straight away — M does
    // not re-register (it is stably attached at R4), so nothing else
    // would repair it.
    f.world.run_until(crash_at + SimDuration::from_secs(2) + SimDuration::from_millis(200));
    let repaired = f.world.node::<HostNode>(h).stack.arp.lookup(IfaceId(0), m_addr);
    assert_eq!(repaired, Some(r2_mac), "reboot did not re-broadcast the gratuitous ARP");

    // And interception carries traffic end to end again.
    let rx_before = f.world.node::<MobileHostNode>(f.m).endpoint.log.udp_rx.len();
    f.world.with_node::<HostNode, _>(h, |host, ctx| {
        host.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![4; 16]);
    });
    f.world.run_for(SimDuration::from_secs(2));
    assert!(f.world.node::<MobileHostNode>(f.m).endpoint.log.udp_rx.len() > rx_before);
}

/// The fixed "drill" plan: every fault class the engine supports, on the
/// full Figure 1 world, while M moves D→E mid-plan. Returns the full
/// structured telemetry event log and every counter.
fn drill(seed: u64) -> (Vec<Event>, Vec<(String, u64)>) {
    let mut f = Figure1::build(Figure1Options {
        correspondent: CorrespondentKind::Mhrp,
        seed,
        ..Default::default()
    });
    f.world.set_telemetry(true);
    f.world.set_telemetry_capacity(1 << 18);
    let plan = FaultPlan::new()
        .flap(
            f.net_d,
            SimTime::from_millis(2_500),
            SimDuration::from_millis(400),
            SimDuration::from_millis(600),
            3,
        )
        .partition(f.backbone, SimTime::from_secs(8), SimTime::from_secs(12))
        .op(
            SimTime::from_secs(6),
            FaultOp::LatencySpike {
                segment: f.net_c,
                extra: SimDuration::from_millis(30),
                duration: SimDuration::from_secs(2),
            },
        )
        .op(
            SimTime::from_secs(7),
            FaultOp::SetSegmentCorruption { segment: f.net_e, probability: 0.2 },
        )
        .crash(f.r4, SimTime::from_secs(13), SimDuration::from_secs(2))
        .mute_window(f.r5, IfaceId(1), SimTime::from_secs(4), SimTime::from_secs(5));
    f.world.install_faults(&plan);

    f.world.run_until(SimTime::from_secs(2));
    f.move_m_to_d();
    f.world.run_until(SimTime::from_secs(9));
    f.move_m_to_e();
    let m_addr = f.addrs.m;
    for i in 0..40u32 {
        f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
            s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![i as u8; 24]);
        });
        f.world.run_for(SimDuration::from_millis(250));
    }
    f.world.run_until(SimTime::from_secs(20));

    assert_eq!(f.world.telemetry().overwritten(), 0, "ring too small for the full drill trace");
    let trace = f.world.telemetry().events().copied().collect();
    let counters = f.world.stats().counters().map(|(n, v)| (n.to_owned(), v)).collect();
    (trace, counters)
}

/// Identical seed + identical plan ⇒ identical run: the full structured
/// event log (every frame tx/rx/drop, timer and fault op, in order, with
/// identical timestamps and journey ids) and every counter. This is the
/// determinism contract the fault engine must keep. The string-trace
/// form of this contract lives on as the legacy golden
/// `fault_plan_runs_are_byte_identical` in `netsim::world`.
#[test]
fn fixed_drill_plan_replays_byte_identically() {
    let (trace_a, counters_a) = drill(1994);
    let (trace_b, counters_b) = drill(1994);
    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b);
    assert_eq!(counters_a, counters_b);

    // The structured log agrees with the engine's own accounting: every
    // fault op the plan applied shows up as a typed Fault event.
    let fault_events =
        trace_a.iter().filter(|e| matches!(e.kind, TeleEventKind::Fault { .. })).count() as u64;
    let applied = counters_a.iter().find(|(n, _)| n == "fault.ops_applied").map_or(0, |&(_, v)| v);
    assert_eq!(fault_events, applied, "typed fault events vs fault.ops_applied");

    // Golden anchors for the fixed plan itself: all 13 scheduled ops
    // fired (3 flap cycles = 6, partition = 2, spike + corruption = 2,
    // crash = 1, mute window = 2) plus the spike's scheduled restore and
    // the crash's scheduled reboot.
    let counter = |name: &str| counters_a.iter().find(|(n, _)| n == name).map_or(0, |&(_, v)| v);
    assert_eq!(counter("fault.ops_applied"), 15);
    assert_eq!(counter("fault.crashes"), 1);
    assert!(counter("fault.tx_muted") >= 1, "mute window suppressed nothing");
    assert!(counter("link.frames_corrupted") >= 1, "corruption never fired");

    // A different seed is a different world (the plan does not pin the
    // RNG): the trace must differ somewhere.
    let (trace_c, _) = drill(1995);
    assert_ne!(trace_a, trace_c);
}

//! Journey-propagation integration tests: the structured telemetry log
//! must string one packet's frames together across netstack forwarding
//! and `mhrp::tunnel` encap/decap — through the home-agent triangle, and
//! through a §5.3 routing loop up to the point the loop is cut.

use mhrp::{Attachment, MhrpConfig, MhrpHostNode, MhrpRouterNode};
use netsim::time::{SimDuration, SimTime};
use netsim::{JourneyId, TeleEventKind};
use scenarios::topology::{CorrespondentKind, Figure1, Figure1Options};
use scenarios::trace::{assert_path, encap_count, fig1_hops};

const DATA_PORT: u16 = 7001;

fn send_from_s(f: &mut Figure1, marker: u8) {
    let m_addr = f.addrs.m;
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, vec![marker; 32]);
    });
}

/// The most recent journey that originated at S (skips advertisements,
/// ARP and other background journeys).
fn last_journey_from_s(f: &Figure1) -> JourneyId {
    let tele = f.world.telemetry();
    let s = f.s.0 as u32;
    tele.journeys()
        .into_iter()
        .rfind(|&id| tele.journey(id).events.first().is_some_and(|e| e.node == Some(s)))
        .expect("no journey originated at S")
}

/// A packet to a departed M rides the home-agent tunnel: its single
/// journey must cross the encapsulation at R2 (§4.2, `by_sender: false`)
/// and the decapsulation at the foreign agent R4, with the hop list
/// tracing the full Figure 1 triangle.
#[test]
fn tunnel_encap_decap_stay_on_one_journey() {
    let mut f = Figure1::build(Figure1Options {
        correspondent: CorrespondentKind::Mhrp,
        seed: 1994,
        ..Default::default()
    });
    f.world.set_telemetry(true);

    // Prime at home (warms ARP), then move M to D and settle.
    f.world.run_until(SimTime::from_secs(2));
    send_from_s(&mut f, 1);
    f.world.run_for(SimDuration::from_secs(2));
    f.move_m_to_d();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(2));

    send_from_s(&mut f, 2);
    f.world.run_for(SimDuration::from_secs(2));

    let id = last_journey_from_s(&f);
    assert_path(&f.world, id, &[f.r1, f.r2, f.r3, f.r4, f.m]);

    let journey = f.world.journey(id);
    let at = |kind_match: fn(&TeleEventKind) -> bool| {
        journey.events.iter().filter(|e| kind_match(&e.kind)).map(|e| e.node).collect::<Vec<_>>()
    };
    assert_eq!(
        at(|k| matches!(k, TeleEventKind::Encap { by_sender: false })),
        [Some(f.r2.0 as u32)],
        "home agent R2 must encapsulate, exactly once"
    );
    assert_eq!(
        at(|k| matches!(k, TeleEventKind::Decap)),
        [Some(f.r4.0 as u32)],
        "foreign agent R4 must decapsulate, exactly once"
    );
    assert_eq!(journey.decap_count(), 1);
    assert!(!journey.loop_detected());
}

/// The E05 loop world with §5.3 detection on: poisoned caches bounce the
/// packet between R4 and R5 until the previous-source list catches the
/// repeat. The reconstructed journey must show the loop — both members
/// on the hop list, a tunnel transit between them — and its cut: a
/// `LoopDetected` event after which the packet moves no further.
#[test]
fn loop_dissolution_journey_shows_loop_and_cut() {
    let mut f = Figure1::build(Figure1Options {
        config: MhrpConfig { detect_loops: true, ..Default::default() },
        correspondent: CorrespondentKind::Mhrp,
        seed: 17,
        ..Default::default()
    });
    f.world.set_telemetry(true);
    let m_addr = f.addrs.m;
    let (r4_addr, r5_addr) = (f.addrs.r4, f.addrs.r5);

    f.world.run_until(SimTime::from_secs(2));
    // Prime S's ARP while M is still home, so the looped packet's journey
    // is not trailed by a fresh ARP-request journey from S.
    send_from_s(&mut f, 0);
    f.world.run_for(SimDuration::from_secs(2));
    // M vanishes; the buggy caches point at each other (E05's setup).
    f.detach_m();
    f.world.run_for(SimDuration::from_millis(100));
    let now = f.world.now();
    f.world.with_node::<MhrpRouterNode, _>(f.r4, |r, _| {
        r.ca.cache.insert(m_addr, r5_addr, now);
    });
    f.world.with_node::<MhrpRouterNode, _>(f.r5, |r, _| {
        r.ca.cache.insert(m_addr, r4_addr, now);
    });
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        let t = ctx.now();
        s.ca.cache.insert(m_addr, r4_addr, t);
    });

    send_from_s(&mut f, 3);
    f.world.run_for(SimDuration::from_secs(2));

    let id = last_journey_from_s(&f);
    let journey = f.world.journey(id);
    let hops = fig1_hops(&f, id);

    assert!(
        journey.loop_detected(),
        "no LoopDetected on the journey; events: {:#?}",
        journey.events
    );
    assert!(journey.visited(f.r4.0 as u32), "loop member R4 missing from {hops:?}");
    assert!(journey.visited(f.r5.0 as u32), "loop member R5 missing from {hops:?}");
    assert!(!hops.contains(&"M"), "packet must never reach the detached M: {hops:?}");
    assert!(encap_count(&f.world, id) >= 1, "the packet was never tunneled");

    // The cut: once the loop is detected the packet is dropped, so the
    // journey records no transmissions (and no further hops) after it.
    let cut = journey
        .events
        .iter()
        .position(|e| matches!(e.kind, TeleEventKind::LoopDetected { .. }))
        .unwrap();
    assert!(
        journey.events[cut..].iter().all(|e| !matches!(
            e.kind,
            TeleEventKind::FrameTx { .. } | TeleEventKind::FrameRx { .. }
        )),
        "packet kept moving after the loop was cut: {:#?}",
        journey.events
    );
    // And the detector named both members of the two-agent loop.
    let TeleEventKind::LoopDetected { members } = journey.events[cut].kind else { unreachable!() };
    assert_eq!(members, 2, "§5.3 should report the 2-agent loop");
}

/// Delivered frames captured to pcap-ng round-trip through the in-repo
/// reader: same frame count the world reports, plausible ethernet
/// framing, and IPv4 ethertype on the data frames.
#[test]
fn pcap_capture_round_trips() {
    let mut f = Figure1::build(Figure1Options {
        correspondent: CorrespondentKind::Mhrp,
        seed: 1994,
        ..Default::default()
    });
    f.world.start_pcap_capture();
    f.world.run_until(SimTime::from_secs(2));
    send_from_s(&mut f, 4);
    f.world.run_for(SimDuration::from_secs(2));

    let captured = f.world.pcap_frame_count();
    assert!(captured > 0, "nothing captured");
    let bytes = f.world.take_pcap().expect("capture was started");
    let frames = netsim::telemetry::pcapng::read(&bytes).expect("generated pcap must parse");
    assert_eq!(frames.len(), captured, "reader count vs writer count");
    for fr in &frames {
        assert!(fr.bytes.len() >= 14, "frame shorter than an ethernet header");
    }
    assert!(
        frames.iter().any(|fr| fr.bytes[12] == 0x08 && fr.bytes[13] == 0x00),
        "no IPv4 ethertype frame in the capture"
    );
    // Timestamps are non-decreasing (delivered in simulated-time order).
    assert!(frames.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos));
}

//! End-to-end MHRP protocol tests on the paper's Figure 1 internetwork,
//! following the walkthroughs of §6.

use mhrp::{Attachment, MhrpHostNode, MhrpRouterNode, MobileHostNode};
use netsim::time::{SimDuration, SimTime};
use netstack::nodes::HostNode;
use scenarios::topology::{CorrespondentKind, Figure1, Figure1Options};

fn settle(f: &mut Figure1, secs: u64) {
    let t = f.world.now() + SimDuration::from_secs(secs);
    f.world.run_until(t);
}

/// Carry M to network D and wait for the full §3 registration sequence.
fn move_m_to_d_and_register(f: &mut Figure1) {
    f.move_m_to_d();
    assert!(
        f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)),
        "M failed to attach to R4"
    );
    settle(f, 3); // let FA/HA registration acks and deregistrations finish
    let r4 = f.world.node::<MhrpRouterNode>(f.r4);
    assert!(r4.fa.as_ref().unwrap().has_visitor(f.addrs.m), "R4 has no visitor entry");
    let r2 = f.world.node::<MhrpRouterNode>(f.r2);
    assert_eq!(
        r2.ha.as_ref().unwrap().binding(f.addrs.m),
        Some(f.addrs.r4),
        "home agent binding missing"
    );
}

#[test]
fn m_at_home_pings_work_with_zero_mhrp_traffic() {
    // §1/§8: "no penalty for being mobile capable" — E10's core claim.
    let mut f = Figure1::build(Figure1Options::default());
    settle(&mut f, 2);
    let m_addr = f.addrs.m;
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 2);
    assert_eq!(f.world.node::<MhrpHostNode>(f.s).log().echo_replies.len(), 1);
    let stats = f.world.stats();
    assert_eq!(stats.counter("mhrp.ha_tunneled"), 0);
    assert_eq!(stats.counter("mhrp.tunneled_by_sender"), 0);
    assert_eq!(stats.counter("mhrp.updates_sent"), 0);
    assert_eq!(stats.counter("mhrp.registration_msgs_sent"), 0);
}

#[test]
fn first_packet_via_home_agent_then_direct_tunnel() {
    // §6.1 + §6.2: the initial packet is intercepted by R2 and tunneled to
    // R4; the location update lets S tunnel subsequent packets itself.
    let mut f = Figure1::build(Figure1Options::default());
    settle(&mut f, 2);
    move_m_to_d_and_register(&mut f);

    let m_addr = f.addrs.m;
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 3);
    {
        let s = f.world.node::<MhrpHostNode>(f.s);
        assert_eq!(s.log().echo_replies.len(), 1, "first ping must be answered");
        // The home agent's location update primed S's cache.
        assert_eq!(s.ca.cache.peek(m_addr), Some(f.addrs.r4), "S cache not primed");
    }
    assert_eq!(f.world.stats().counter("mhrp.ha_tunneled"), 1);

    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 3);
    let s = f.world.node::<MhrpHostNode>(f.s);
    assert_eq!(s.log().echo_replies.len(), 2, "second ping must be answered");
    // The second ping went sender-tunneled, not through the home agent.
    assert_eq!(f.world.stats().counter("mhrp.tunneled_by_sender"), 1);
    assert_eq!(f.world.stats().counter("mhrp.ha_tunneled"), 1);
}

#[test]
fn udp_flow_reaches_mobile_on_foreign_net_and_back() {
    let mut f = Figure1::build(Figure1Options::default());
    settle(&mut f, 2);
    move_m_to_d_and_register(&mut f);
    let m_addr = f.addrs.m;
    let s_addr = f.addrs.s;
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, 5000, 7, b"to the road warrior".to_vec());
    });
    settle(&mut f, 3);
    {
        let m = f.world.node::<MobileHostNode>(f.m);
        assert_eq!(m.log().udp_rx.len(), 1);
        assert_eq!(m.log().udp_rx[0].payload, b"to the road warrior");
    }
    // The echo service answered from M's home address back to S.
    let s = f.world.node::<MhrpHostNode>(f.s);
    assert_eq!(s.log().udp_rx.len(), 1);
    assert_eq!(s.log().udp_rx[0].src, m_addr);
    let _ = s_addr;
}

#[test]
fn moving_m_between_foreign_agents_converges_caches() {
    // §6.3: M moves from R4 to R5; the next packet from S chases the
    // forwarding pointer and S's cache is updated to R5.
    let mut f = Figure1::build(Figure1Options::default());
    settle(&mut f, 2);
    move_m_to_d_and_register(&mut f);
    let m_addr = f.addrs.m;

    // Prime S's cache via one ping.
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 3);
    assert_eq!(f.world.node::<MhrpHostNode>(f.s).ca.cache.peek(m_addr), Some(f.addrs.r4));

    // M moves to R5's cell.
    f.move_m_to_e();
    assert!(
        f.run_until_attached(Attachment::Foreign(f.addrs.r5), SimDuration::from_secs(10)),
        "M failed to attach to R5"
    );
    settle(&mut f, 3);
    // The old FA kept a forwarding pointer.
    assert_eq!(
        f.world.node::<MhrpRouterNode>(f.r4).ca.cache.peek(m_addr),
        Some(f.addrs.r5),
        "R4 forwarding pointer missing"
    );

    // Next ping from S: tunneled to R4 (stale), re-tunneled to R5,
    // delivered; R5 sends S a location update.
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 3);
    let s = f.world.node::<MhrpHostNode>(f.s);
    assert_eq!(s.log().echo_replies.len(), 2, "ping after move must be answered");
    assert_eq!(s.ca.cache.peek(m_addr), Some(f.addrs.r5), "S cache must converge to R5");
    assert!(f.world.stats().counter("mhrp.fa_forward_pointer_used") >= 1);
}

#[test]
fn returning_home_clears_caches_and_restores_plain_routing() {
    // §6.3 second half: M returns home; S's next packet bounces off R4 to
    // the home network, M itself answers with an "at home" update, and
    // traffic reverts to plain IP.
    let mut f = Figure1::build(Figure1Options::default());
    settle(&mut f, 2);
    move_m_to_d_and_register(&mut f);
    let m_addr = f.addrs.m;
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 3);
    assert_eq!(f.world.node::<MhrpHostNode>(f.s).ca.cache.peek(m_addr), Some(f.addrs.r4));

    f.move_m_home();
    assert!(
        f.run_until_attached(Attachment::Home, SimDuration::from_secs(10)),
        "M failed to re-attach at home"
    );
    settle(&mut f, 3);
    // Home agent binding cleared; R4 dropped the visitor without keeping a
    // forwarding pointer (§6.3: "R4 does not create a forwarding pointer").
    assert_eq!(f.world.node::<MhrpRouterNode>(f.r2).ha.as_ref().unwrap().binding(m_addr), None);
    assert!(!f.world.node::<MhrpRouterNode>(f.r4).fa.as_ref().unwrap().has_visitor(m_addr));
    assert_eq!(f.world.node::<MhrpRouterNode>(f.r4).ca.cache.peek(m_addr), None);

    // S still has a stale cache entry pointing at R4. The next ping chases
    // it: R4 -> home -> delivered to M at home; M's location update clears
    // S's cache.
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 3);
    {
        let s = f.world.node::<MhrpHostNode>(f.s);
        assert_eq!(s.log().echo_replies.len(), 2, "ping after return-home must be answered");
        assert_eq!(s.ca.cache.peek(m_addr), None, "S cache must be cleared by at-home update");
    }

    // And the ping after that is plain IP end to end.
    let tunneled_before = f.world.stats().counter("mhrp.tunneled_by_sender");
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 3);
    assert_eq!(f.world.node::<MhrpHostNode>(f.s).log().echo_replies.len(), 3);
    assert_eq!(f.world.stats().counter("mhrp.tunneled_by_sender"), tunneled_before);
}

#[test]
fn plain_host_served_by_first_hop_cache_agent_router() {
    // §6.2: "A local network of hosts that do not yet support MHRP may
    // also be supported by a single cache agent functioning in the IP
    // router that connects that local network to the rest of the
    // Internet" — R1 tunnels on behalf of plain S.
    let mut f = Figure1::build(Figure1Options {
        correspondent: CorrespondentKind::Plain,
        r1_cache_agent: true,
        ..Default::default()
    });
    settle(&mut f, 2);
    move_m_to_d_and_register(&mut f);
    let m_addr = f.addrs.m;

    // First ping: via home agent. R1 forwards the location update R2 sends
    // toward S and snoops it into its own cache (§4.3).
    f.world.with_node::<HostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 3);
    assert_eq!(f.world.node::<HostNode>(f.s).log().echo_replies.len(), 1);
    assert_eq!(
        f.world.node::<MhrpRouterNode>(f.r1).ca.cache.peek(m_addr),
        Some(f.addrs.r4),
        "R1 must snoop the forwarded location update"
    );
    // Plain S ignored the update (unknown ICMP type).
    assert!(f.world.node::<HostNode>(f.s).log().icmp_ignored >= 1);

    // Second ping: R1 intercepts on the forwarding path and tunnels.
    f.world.with_node::<HostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 3);
    assert_eq!(f.world.node::<HostNode>(f.s).log().echo_replies.len(), 2);
    assert!(f.world.stats().counter("mhrp.tunneled_by_router_ca") >= 1);
    assert_eq!(f.world.stats().counter("mhrp.ha_tunneled"), 1);
}

#[test]
fn foreign_agent_reboot_recovers_via_home_agent_updates() {
    // §5.2: R4 reboots and forgets M. The recovery query makes M
    // re-register; even without it, a packet bounced to the home agent
    // triggers a location update that re-adds the visitor.
    let mut f = Figure1::build(Figure1Options::default());
    settle(&mut f, 2);
    move_m_to_d_and_register(&mut f);
    let m_addr = f.addrs.m;

    f.world.reboot_node(f.r4);
    assert!(!f.world.node::<MhrpRouterNode>(f.r4).fa.as_ref().unwrap().has_visitor(m_addr));

    // The §5.2 broadcast recovery query prompts M to re-register quickly.
    settle(&mut f, 3);
    assert!(
        f.world.node::<MhrpRouterNode>(f.r4).fa.as_ref().unwrap().has_visitor(m_addr),
        "recovery query should re-register M"
    );
    assert!(f.world.stats().counter("mhrp.fa_recovery_queries") >= 1);
    assert!(f.world.stats().counter("mhrp.mh_recovery_reregs") >= 1);

    // Connectivity works again.
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 3);
    assert_eq!(f.world.node::<MhrpHostNode>(f.s).log().echo_replies.len(), 1);
}

#[test]
fn foreign_agent_reboot_recovers_even_without_reregistration() {
    // §5.2's main mechanism: suppress the recovery-query path by dropping
    // the broadcast (detach M during the reboot instant is complex;
    // instead we wipe R4's visitor list silently via a scripted call) and
    // verify the home-agent update path alone re-adds the visitor.
    let mut f = Figure1::build(Figure1Options::default());
    settle(&mut f, 2);
    move_m_to_d_and_register(&mut f);
    let m_addr = f.addrs.m;

    // Silently lose the visitor state (no broadcast, no M notification).
    f.world.with_node::<MhrpRouterNode, _>(f.r4, |r, _| {
        r.fa.as_mut().unwrap().reboot();
    });
    assert!(!f.world.node::<MhrpRouterNode>(f.r4).fa.as_ref().unwrap().has_visitor(m_addr));

    // S (cache already primed? no — prime it first via the HA path).
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 5);
    // The flow: S -> home agent -> tunnel to R4 -> R4 has no visitor and no
    // pointer -> tunnels to home -> home agent sees R4 already handled it,
    // drops the packet and sends R4 a location update naming R4 itself ->
    // R4 re-adds M. The *ping itself* may be lost; connectivity must
    // recover for the next one.
    assert!(
        f.world.node::<MhrpRouterNode>(f.r4).fa.as_ref().unwrap().has_visitor(m_addr),
        "home-agent update must re-add the visitor"
    );
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 3);
    assert!(
        !f.world.node::<MhrpHostNode>(f.s).log().echo_replies.is_empty(),
        "connectivity must recover after FA state loss"
    );
}

#[test]
fn mobility_stats_track_moves() {
    let mut f = Figure1::build(Figure1Options::default());
    settle(&mut f, 2);
    move_m_to_d_and_register(&mut f);
    f.move_m_to_e();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r5), SimDuration::from_secs(10)));
    f.move_m_home();
    assert!(f.run_until_attached(Attachment::Home, SimDuration::from_secs(10)));
    settle(&mut f, 2);
    let m = f.world.node::<MobileHostNode>(f.m);
    assert_eq!(m.core.stats.moves, 3);
    assert!(m.core.stats.ha_registrations_acked >= 3);
    assert_eq!(m.core.stats.registrations_failed, 0);
    assert!(f.world.now() < SimTime::from_secs(120));
}

#[test]
fn truncation_updates_fire_in_live_multihop_chase() {
    // §4.4 truncation, live: with a previous-source list capped at one
    // entry, a packet chasing M through two stale hops (S -> R4 -> R5 ->
    // home) overflows the list; the truncating agent must flush location
    // updates to the listed nodes, and delivery must still converge.
    let mut f = Figure1::build(Figure1Options {
        config: mhrp::MhrpConfig { max_prev_sources: 1, ..Default::default() },
        ..Default::default()
    });
    let m_addr = f.addrs.m;
    settle(&mut f, 2);

    // M: home -> D (prime S's cache) -> E -> home again.
    move_m_to_d_and_register(&mut f);
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 3);
    assert_eq!(f.world.node::<MhrpHostNode>(f.s).ca.cache.peek(m_addr), Some(f.addrs.r4));
    f.move_m_to_e();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r5), SimDuration::from_secs(10)));
    settle(&mut f, 3);
    f.move_m_home();
    assert!(f.run_until_attached(Attachment::Home, SimDuration::from_secs(10)));
    settle(&mut f, 3);

    // S's stale cache still points at R4; R4's pointer points at R5; R5
    // tunnels home. Two re-tunnels against a one-entry list = truncation.
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 5);
    let s = f.world.node::<MhrpHostNode>(f.s);
    assert_eq!(s.log().echo_replies.len(), 2, "chase must still deliver");
    // Convergence: after M's at-home update, subsequent traffic is plain.
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    settle(&mut f, 5);
    let s = f.world.node::<MhrpHostNode>(f.s);
    assert_eq!(s.log().echo_replies.len(), 3);
    assert_eq!(s.ca.cache.peek(m_addr), None, "cache must converge to empty at home");
}

#[test]
fn solicitation_beats_waiting_for_periodic_advertisement() {
    // §3: "mobile hosts may wait to hear the next periodic advertisement
    // message, or may optionally multicast an agent solicitation". Our
    // hosts solicit ~100 ms after attaching; attachment must complete
    // well inside one 1 s advertisement period.
    let mut f = Figure1::build(Figure1Options { seed: 5150, ..Default::default() });
    settle(&mut f, 2);
    // Move just *after* an advertisement went out, so a passive host
    // would wait nearly a full period.
    let moved_at = f.world.now();
    f.move_m_to_d();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(5)));
    let took = f.world.now().since(moved_at);
    assert!(
        took < SimDuration::from_millis(900),
        "attachment took {took}, solicitation should beat the 1 s period"
    );
    assert!(f.world.stats().counter("mhrp.solicits_sent") >= 1);
}

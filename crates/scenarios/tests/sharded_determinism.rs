//! The sharding determinism contract (DESIGN.md §10):
//!
//! 1. `--shards 1` is *byte-identical* to the classic single world —
//!    same seed, same build order, no portal machinery, so counters,
//!    event counts and the typed-event log all match exactly.
//! 2. Same seed + any shard count ⇒ identical **merged** typed-event
//!    logs, on jitter-free worlds (`deterministic_cells`): per-receiver
//!    jitter draws consume the owning shard's RNG and are the one
//!    intentional divergence between shard layouts.
//! 3. Both hold under an active fault plan (crashes, mutes, cell and
//!    portal partitions).

use netsim::time::{SimDuration, SimTime};
use netsim::FaultOp;
use proptest::prelude::*;
use scenarios::hierarchy::{Hierarchy, HierarchyParams, ShardedHierarchy};
use scenarios::soak::{run_random_waypoint_soak_sharded, RwSoakConfig};

fn small_params(seed: u64) -> HierarchyParams {
    HierarchyParams {
        regions: 2,
        fas_per_region: 3,
        mobiles_per_region: 6,
        deterministic_cells: true,
        seed,
        ..Default::default()
    }
}

/// Classic world vs 1-shard sharded world: the same seed and build
/// order must replay event-for-event, including the telemetry stream.
#[test]
fn one_shard_matches_classic_world_exactly() {
    let p = small_params(1994);
    let mut classic = Hierarchy::build(p.clone());
    classic.world.set_telemetry(true);
    let mut sharded = ShardedHierarchy::build(p, 1);
    sharded.world.set_telemetry(true);

    classic.world.run_until(SimTime::from_secs(20));
    sharded.world.run_until(SimTime::from_secs(20));

    assert_eq!(classic.world.events_processed(), sharded.world.events_processed());
    assert_eq!(classic.attached_count(), sharded.attached_count());
    for name in ["link.frames_delivered", "mhrp.updates_sent", "mhrp.overhead_bytes"] {
        assert_eq!(
            classic.world.stats().counter(name),
            sharded.world.counter(name),
            "counter {name} diverged"
        );
    }
    // With one shard there is one world, seeded with exactly the same
    // seed and built in exactly the same order — its raw telemetry log
    // must match the classic world record-for-record (journeys included:
    // shard 0's journey base is 0).
    let classic_events: Vec<netsim::Event> = classic.world.telemetry().events().copied().collect();
    let shard_events: Vec<netsim::Event> =
        sharded.world.shard(0).telemetry().events().copied().collect();
    assert_eq!(classic_events, shard_events, "raw telemetry logs diverged");
}

/// Panics at the first index where the two streams differ, printing a
/// few records of context (a full-vector `assert_eq!` dump is unusable
/// at these sizes).
fn assert_streams_eq(base: &[netsim::Event], other: &[netsim::Event], what: &str) {
    let n = base.len().min(other.len());
    for i in 0..n {
        if base[i] != other[i] {
            let lo = i.saturating_sub(3);
            panic!(
                "{what}: streams diverge at record {i}\n  base[{lo}..={i}]: {:#?}\n  \
                 other[{lo}..={i}]: {:#?}",
                &base[lo..=i],
                &other[lo..=i]
            );
        }
    }
    assert_eq!(base.len(), other.len(), "{what}: stream lengths diverge (common prefix {n})");
}

/// Runs a 4-region jitter-free world at one shard count and returns its
/// canonical merged stream plus headline counters; optionally under a
/// fault plan exercising node, cell and portal faults.
fn run_world(seed: u64, shards: usize, faults: bool) -> (Vec<netsim::Event>, u64, usize) {
    let p = HierarchyParams {
        regions: 4,
        fas_per_region: 2,
        mobiles_per_region: 4,
        deterministic_cells: true,
        seed,
        ..Default::default()
    };
    let mut h = ShardedHierarchy::build(p, shards);
    h.world.set_telemetry(true);
    if faults {
        // Faults with global ids: translation must land each on its
        // owning shard regardless of the layout. The portal partition
        // exercises the replica mirroring; timings use odd-microsecond
        // offsets so fault instants never collide with protocol timers.
        let backbone_cut = SimTime::from_micros(6_000_300);
        let backbone_heal = SimTime::from_micros(9_000_700);
        h.world.schedule_fault(
            SimTime::from_micros(4_000_100),
            FaultOp::Crash { node: h.mobiles[5], down_for: SimDuration::from_secs(3) },
        );
        h.world.schedule_fault(
            SimTime::from_micros(5_000_900),
            FaultOp::MuteBroadcasts { node: h.fas[3], iface: netsim::IfaceId(1) },
        );
        h.world.schedule_fault(
            SimTime::from_micros(12_000_500),
            FaultOp::UnmuteBroadcasts { node: h.fas[3], iface: netsim::IfaceId(1) },
        );
        // Cell partition (a local segment on whichever shard owns it).
        h.world.schedule_fault(
            SimTime::from_micros(7_000_300),
            FaultOp::SegmentDown { segment: h.cells[2] },
        );
        h.world.schedule_fault(
            SimTime::from_micros(10_000_900),
            FaultOp::SegmentUp { segment: h.cells[2] },
        );
        // Backbone partition: the portal itself goes down and heals.
        // (Segment id 0 is the backbone by build order.)
        h.world
            .schedule_fault(backbone_cut, FaultOp::SegmentDown { segment: netsim::SegmentId(0) });
        h.world.schedule_fault(backbone_heal, FaultOp::SegmentUp { segment: netsim::SegmentId(0) });
    }
    h.world.run_until(SimTime::from_secs(16));
    (h.world.merged_events(), h.world.counter("link.frames_delivered"), h.attached_count())
}

/// The tentpole invariant: equal seeds produce identical merged streams
/// at shard counts 1, 2 and 4 (8 clamps to the region count), with the
/// thread pool on and off.
#[test]
fn shard_count_does_not_change_merged_stream() {
    let (base, delivered, attached) = run_world(1994, 1, false);
    assert!(!base.is_empty(), "telemetry produced nothing");
    assert!(attached > 0, "nobody registered");
    for shards in [2, 4, 8] {
        let (events, d, a) = run_world(1994, shards, false);
        assert_eq!(delivered, d, "frames delivered diverged at {shards} shards");
        assert_eq!(attached, a, "attachment diverged at {shards} shards");
        assert_streams_eq(&base, &events, &format!("merged stream at {shards} shards"));
    }
}

/// Same invariant under the fault plan.
#[test]
fn shard_count_invariant_holds_under_faults() {
    let (base, delivered, _) = run_world(77, 1, true);
    assert!(!base.is_empty());
    for shards in [2, 4] {
        let (events, d, _) = run_world(77, shards, true);
        assert_eq!(delivered, d, "frames delivered diverged at {shards} shards");
        assert_streams_eq(
            &base,
            &events,
            &format!("merged stream at {shards} shards under faults"),
        );
    }
}

/// The sharded soak (mobility + traffic + SLO evaluation) replays
/// byte-identically and is shard-count independent.
#[test]
fn sharded_soak_is_shard_count_independent() {
    let mk = |shards: usize| RwSoakConfig {
        params: small_params(1994),
        flows: 4,
        closed_flows: 1,
        duration: SimDuration::from_secs(3),
        telemetry: true,
        shards,
        ..RwSoakConfig::default()
    };
    let one = run_random_waypoint_soak_sharded(&mk(1));
    assert!(one.report.measurements.delivered > 0, "sharded soak delivered nothing");
    let two = run_random_waypoint_soak_sharded(&mk(2));
    assert_eq!(one.events_log, two.events_log, "soak streams diverged across shard counts");
    assert_eq!(
        one.report.measurements.delivered, two.report.measurements.delivered,
        "soak delivery diverged across shard counts"
    );
    // Replay of the same shard count is exactly identical end to end.
    let again = run_random_waypoint_soak_sharded(&mk(2));
    assert_eq!(two.events_log, again.events_log);
    assert_eq!(two.report.to_json(), again.report.to_json());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized seeds: the merged stream is invariant over shard
    /// counts {1, 2, 4, 8}, with and without the fault plan.
    #[test]
    fn prop_merged_stream_invariant_over_shard_counts(
        seed in 1u64..1_000_000,
        faults in any::<bool>(),
    ) {
        let (base, delivered, _) = run_world(seed, 1, faults);
        prop_assert!(!base.is_empty());
        for shards in [2usize, 4, 8] {
            let (events, d, _) = run_world(seed, shards, faults);
            prop_assert_eq!(delivered, d, "delivered diverged: seed {} shards {}", seed, shards);
            prop_assert_eq!(&base, &events, "stream diverged: seed {} shards {}", seed, shards);
        }
    }
}

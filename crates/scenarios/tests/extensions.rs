//! End-to-end tests of the paper's optional/extension features:
//! replicated home agents (§2) and the host-specific-route interception
//! alternative (§3 end).

use std::net::Ipv4Addr;

use mhrp::{Attachment, MhrpConfig, MhrpHostNode, MhrpRouterNode, MobileHostNode};
use netsim::time::{SimDuration, SimTime};
use netsim::IfaceId;
use scenarios::shootout::DATA_PORT;
use scenarios::topology::{net, CorrespondentKind, Figure1, Figure1Options};

/// §2: "it can replicate the home agent function on several support
/// hosts on its own network, although these hosts must cooperate to
/// provide a consistent view of the database."
#[test]
fn replica_home_agent_takes_over_after_primary_loss() {
    let mut f = Figure1::build(Figure1Options {
        // No disk on the primary: the replica is the only redundancy.
        config: MhrpConfig { home_agent_disk: false, ..Default::default() },
        correspondent: CorrespondentKind::Mhrp,
        seed: 61,
        ..Default::default()
    });
    let m_addr = f.addrs.m;

    // Add a standby replica host on the home network (a "support host"
    // per §2: an MHRP router node with only the home-agent role, not in
    // the forwarding path).
    let replica_addr = Ipv4Addr::new(10, 2, 0, 2);
    let replica =
        f.world.add_node(MhrpRouterNode::new(MhrpConfig::default()).with_home_agent(IfaceId(0)));
    f.world.add_iface(replica, Some(f.net_b));
    f.world.with_node::<MhrpRouterNode, _>(replica, |r, _| {
        r.stack.add_iface(IfaceId(0), replica_addr, net(2));
        r.stack.routes.add(
            ip::Prefix::default_route(),
            netstack::route::NextHop::Gateway { iface: IfaceId(0), via: f.addrs.r2 },
        );
        // Demote to standby and wire the primary to sync to it.
        *r.ha.as_mut().unwrap() = mhrp::HomeAgentCore::new_replica(IfaceId(0), false);
    });
    f.world.with_node::<MhrpRouterNode, _>(f.r2, |r, _| {
        r.ha.as_mut().unwrap().replicas.push(replica_addr);
    });
    // ...and the standby back to the primary, so a promotion can push its
    // database to the (returned, amnesiac) ex-primary.
    let r2_addr = f.addrs.r2;
    f.world.with_node::<MhrpRouterNode, _>(replica, |r, _| {
        r.ha.as_mut().unwrap().replicas.push(r2_addr);
    });
    // The replica node was added after start(); fire its on_start by hand
    // (it has no advertiser, so this is a no-op, but keep the invariant).
    f.world.run_until(SimTime::from_secs(2));

    // M roams; the primary records and syncs the binding.
    f.move_m_to_d();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(2));
    assert_eq!(
        f.world.node::<MhrpRouterNode>(replica).ha.as_ref().unwrap().binding(m_addr),
        Some(f.addrs.r4),
        "replica never received the HaSync"
    );
    assert!(!f.world.node::<MhrpRouterNode>(replica).ha.as_ref().unwrap().is_active());

    // The primary loses everything (no disk). Mobile hosts appear home.
    f.world.with_node::<MhrpRouterNode, _>(f.r2, |r, ctx| {
        let _ = ctx;
        let stack = &mut r.stack;
        r.ha.as_mut().unwrap().wipe(stack);
    });
    assert_eq!(f.world.node::<MhrpRouterNode>(f.r2).ha.as_ref().unwrap().binding(m_addr), None);

    // Operations promotes the replica; it arms interception from its
    // synced database.
    f.world.with_node::<MhrpRouterNode, _>(replica, |r, ctx| {
        let stack = &mut r.stack;
        r.ha.as_mut().unwrap().activate(stack, ctx);
    });
    f.world.run_for(SimDuration::from_millis(100));

    // Traffic to M still works, intercepted by the replica.
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.send_udp(ctx, m_addr, DATA_PORT, DATA_PORT, b"via replica".to_vec());
    });
    f.world.run_for(SimDuration::from_secs(3));
    let m = f.world.node::<MobileHostNode>(f.m);
    assert_eq!(
        m.endpoint.log.udp_rx.iter().filter(|r| r.dst_port == DATA_PORT).count(),
        1,
        "packet not delivered via the replica home agent"
    );
    assert!(f.world.stats().counter("mhrp.ha_activations") >= 1);
    assert!(f.world.stats().counter("mhrp.ha_syncs_applied") >= 2);

    // Promotion also pushed the database to the new primary's own replica
    // list: the wiped ex-primary has caught back up and could itself be
    // re-promoted without another registration from M.
    assert_eq!(
        f.world.node::<MhrpRouterNode>(f.r2).ha.as_ref().unwrap().binding(m_addr),
        Some(f.addrs.r4),
        "activate never re-synced the promoted database to the ex-primary"
    );
}

/// §3 end: interception by host-specific routing instead of proxy ARP —
/// valid when the home agent is the border router every packet for the
/// home network traverses anyway.
#[test]
fn host_route_mode_intercepts_without_arp_tricks() {
    let mut f = Figure1::build(Figure1Options {
        correspondent: CorrespondentKind::Mhrp,
        seed: 67,
        ..Default::default()
    });
    let m_addr = f.addrs.m;
    f.world.with_node::<MhrpRouterNode, _>(f.r2, |r, _| {
        r.ha.as_mut().unwrap().host_route_mode = true;
    });
    f.world.run_until(SimTime::from_secs(2));
    f.move_m_to_d();
    assert!(f.run_until_attached(Attachment::Foreign(f.addrs.r4), SimDuration::from_secs(10)));
    f.world.run_for(SimDuration::from_secs(2));

    // No ARP games were played on the home segment...
    assert_eq!(f.world.stats().counter("arp.gratuitous_sent"), 0);
    assert!(!f.world.node::<MhrpRouterNode>(f.r2).stack.arp.is_proxied(IfaceId(1), m_addr));

    // ...yet remote traffic is intercepted (it crosses R2, the border
    // router) and tunneled as usual.
    f.world.with_node::<MhrpHostNode, _>(f.s, |s, ctx| {
        s.ping(ctx, m_addr);
    });
    f.world.run_for(SimDuration::from_secs(3));
    assert_eq!(f.world.node::<MhrpHostNode>(f.s).log().echo_replies.len(), 1);
    assert!(f.world.stats().counter("mhrp.ha_tunneled") >= 1);
}

//! Golden-value determinism tests: fixed seeds must keep producing the
//! exact counters recorded before the zero-allocation hot-path refactor
//! (interned metrics, shared payloads, dispatch scratch reuse).
//!
//! These are the regression tripwires for RNG draw order and event
//! ordering: any change that reorders loss/jitter draws or event
//! sequencing shows up here as a hard failure, not a silent drift in
//! experiment numbers.

use mhrp::{MhrpConfig, MhrpHostNode};
use netsim::time::{SimDuration, SimTime};
use netsim::{
    Ctx, EtherType, Event, Frame, IfaceId, Node, SegmentParams, TeleEventKind, TimerToken, World,
};
use scenarios::experiments::{e02_overhead, e07_scalability};
use scenarios::hierarchy::{Hierarchy, HierarchyParams};

/// E02 (§7 overhead comparison) at the fixed seed: per-protocol
/// delivered/overhead/control counters recorded pre-refactor.
#[test]
fn e02_overhead_matches_golden() {
    let rows = e02_overhead::run(1994, e02_overhead::DEFAULT_PACKETS);
    // (protocol prefix, sent, delivered, overhead_bytes, control_messages)
    let golden: &[(&str, u64, u64, u64, u64)] = &[
        ("MHRP", 20, 20, 164, 2),
        ("Sunshine", 20, 20, 160, 7),
        ("Columbia", 20, 20, 480, 8),
        ("Sony", 20, 20, 560, 0),
        ("Matsushita", 20, 20, 800, 1),
        ("IBM", 20, 20, 160, 0),
    ];
    for &(name, sent, delivered, overhead, control) in golden {
        let row = rows
            .iter()
            .find(|r| r.protocol.starts_with(name))
            .unwrap_or_else(|| panic!("no row for {name}"));
        assert_eq!(row.data_packets_sent, sent, "{name} sent");
        assert_eq!(row.delivered, delivered, "{name} delivered");
        assert_eq!(row.overhead_bytes, overhead, "{name} overhead");
        assert_eq!(row.control_messages, control, "{name} control");
    }
}

/// E02 is seed-stable where it should be: the workload is deterministic
/// enough that two different seeds produce the same counters (no lossy
/// segments in this experiment), and the same seed twice is identical.
#[test]
fn e02_overhead_is_seed_independent_and_repeatable() {
    let a = e02_overhead::run(7, e02_overhead::DEFAULT_PACKETS);
    let b = e02_overhead::run(1994, e02_overhead::DEFAULT_PACKETS);
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.protocol, rb.protocol);
        assert_eq!(ra.delivered, rb.delivered, "{}", ra.protocol);
        assert_eq!(ra.overhead_bytes, rb.overhead_bytes, "{}", ra.protocol);
        assert_eq!(ra.control_messages, rb.control_messages, "{}", ra.protocol);
    }
}

/// E07 (scalability) single MHRP point at the fixed seed.
#[test]
fn e07_mhrp_point_matches_golden() {
    let p = e07_scalability::mhrp_point(1994, 8);
    assert_eq!(p.mobiles, 8);
    assert!(
        (p.control_msgs_per_move - 4.125).abs() < 1e-9,
        "control_msgs_per_move = {}",
        p.control_msgs_per_move
    );
    assert_eq!(p.max_node_state, 8);
    assert_eq!(p.temp_addrs_used, 0);
}

/// A node broadcasting `len` zero bytes every millisecond.
struct Chatter {
    len: usize,
}

impl Node for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(1), TimerToken(0));
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
        let f = Frame::broadcast(ctx.mac(IfaceId(0)), EtherType::Other(0x7e57), vec![0; self.len]);
        ctx.send_frame(IfaceId(0), f);
        ctx.set_timer(SimDuration::from_millis(1), TimerToken(0));
    }
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _i: IfaceId, _f: &Frame) {}
}

/// Raw-simulator golden on a *lossy, jittery* segment: this pins the RNG
/// draw order inside `World::transmit` (per-receiver loss draw, then
/// jitter draw), which the scratch-buffer refactor must not disturb.
#[test]
fn lossy_world_matches_golden() {
    let mut w = World::new(42);
    let seg = w.add_segment(SegmentParams {
        loss: 0.3,
        jitter: SimDuration::from_millis(1),
        ..Default::default()
    });
    for _ in 0..4 {
        let id = w.add_node(Chatter { len: 64 });
        w.add_iface(id, Some(seg));
    }
    w.start();
    w.run_until(SimTime::from_millis(500));
    assert_eq!(w.stats().counter("link.frames_sent"), 2000);
    assert_eq!(w.stats().counter("link.frames_delivered"), 4157);
    assert_eq!(w.stats().counter("link.frames_dropped"), 1828);
}

/// Same world as [`lossy_world_matches_golden`] with structured telemetry
/// on. One run of the lossy chatter world, returning its full event log.
fn lossy_events(seed: u64) -> (Vec<Event>, u64, u64) {
    let mut w = World::new(seed);
    w.set_telemetry(true);
    w.set_telemetry_capacity(1 << 16);
    let seg = w.add_segment(SegmentParams {
        loss: 0.3,
        jitter: SimDuration::from_millis(1),
        ..Default::default()
    });
    for _ in 0..4 {
        let id = w.add_node(Chatter { len: 64 });
        w.add_iface(id, Some(seg));
    }
    w.start();
    w.run_until(SimTime::from_millis(500));
    assert_eq!(w.telemetry().overwritten(), 0, "ring too small for full trace");
    (
        w.telemetry().events().copied().collect(),
        w.stats().counter("link.frames_delivered"),
        w.stats().counter("link.frames_dropped"),
    )
}

/// The structured-event successor of the string-trace determinism golden:
/// the same seed must replay the *typed* event log identically (every
/// timestamp, node, journey id and event kind), and the log must agree
/// with the pinned counters — one `FrameRx` per delivery and one
/// `FrameDrop` per loss draw. Telemetry being on must not perturb the
/// RNG draw order, so the pinned counter goldens hold unchanged.
#[test]
fn lossy_world_structured_events_replay_identically() {
    let (events_a, delivered, dropped) = lossy_events(42);
    let (events_b, _, _) = lossy_events(42);
    assert!(!events_a.is_empty());
    assert_eq!(events_a, events_b);

    assert_eq!(delivered, 4157, "telemetry perturbed the RNG draw order");
    assert_eq!(dropped, 1828, "telemetry perturbed the RNG draw order");
    let rx = events_a.iter().filter(|e| matches!(e.kind, TeleEventKind::FrameRx { .. })).count();
    let drops =
        events_a.iter().filter(|e| matches!(e.kind, TeleEventKind::FrameDrop { .. })).count();
    assert_eq!(rx as u64, delivered, "one FrameRx per delivered frame");
    assert_eq!(drops as u64, dropped, "one FrameDrop per lost frame");
}

/// One run of an eviction-heavy hierarchy world: a capacity-2 location
/// cache under a round-robin stream to 16 mobiles, so every cache agent
/// on the path evicts continuously. Returns the typed event log and the
/// world-wide eviction totals.
fn eviction_heavy_events(seed: u64) -> (Vec<Event>, u64, u64) {
    let config = MhrpConfig {
        cache_capacity: 2,
        update_rate_entries: 2,
        update_min_interval: SimDuration::from_millis(50),
        ..Default::default()
    };
    let mut h = Hierarchy::build(HierarchyParams {
        regions: 2,
        fas_per_region: 2,
        mobiles_per_region: 8,
        correspondent: true,
        config,
        seed,
        ..Default::default()
    });
    h.world.set_telemetry(true);
    h.world.set_telemetry_capacity(1 << 18);
    assert!(h.run_until_attached(1.0, SimDuration::from_secs(30)));
    let s = h.correspondent.expect("correspondent");
    for round in 0u8..3 {
        for idx in 0..h.mobiles.len() {
            let dst = h.mobile_addr(idx);
            h.world.with_node::<MhrpHostNode, _>(s, |c, ctx| {
                c.send_udp(ctx, dst, 7777, 7777, vec![round; 16]);
            });
            h.world.run_for(SimDuration::from_millis(20));
        }
    }
    // Mobile-to-mobile cross traffic: every home agent now updates many
    // distinct senders, overflowing the 2-entry per-agent rate-limiter
    // list as well.
    for idx in 0..h.mobiles.len() {
        let dst = h.mobile_addr((idx + 3) % h.mobiles.len());
        let m = h.mobiles[idx];
        h.world.with_node::<mhrp::MobileHostNode, _>(m, |mh, ctx| {
            mh.send_udp(ctx, dst, 7778, 7778, vec![idx as u8; 16]);
        });
        h.world.run_for(SimDuration::from_millis(20));
    }
    h.world.run_for(SimDuration::from_secs(1));
    assert_eq!(h.world.telemetry().overwritten(), 0, "ring too small for full trace");
    (
        h.world.telemetry().events().copied().collect(),
        h.world.stats().counter("mhrp.cache.evictions"),
        h.world.stats().counter("mhrp.rate_limit.evictions"),
    )
}

/// The O(1) LRU must be deterministic *by construction*: a world built to
/// evict on nearly every cache touch replays the identical typed event
/// stream for the same seed, and both eviction counters actually moved
/// (the old `HashMap`-iteration tie-break made exactly this world
/// nondeterministic).
#[test]
fn eviction_heavy_world_replays_identically() {
    let (events_a, cache_ev_a, rate_ev_a) = eviction_heavy_events(1994);
    let (events_b, cache_ev_b, rate_ev_b) = eviction_heavy_events(1994);
    assert!(cache_ev_a > 0, "world never evicted a cache entry");
    assert!(rate_ev_a > 0, "world never evicted a rate-limiter entry");
    assert_eq!(cache_ev_a, cache_ev_b);
    assert_eq!(rate_ev_a, rate_ev_b);
    assert!(!events_a.is_empty());
    assert_eq!(events_a, events_b);
}

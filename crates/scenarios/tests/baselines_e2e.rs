//! End-to-end tests of each baseline protocol's *distinctive* behaviour —
//! the §7 properties the comparison hinges on.

use baselines::matsushita::MatsushitaHostNode;
use baselines::sony_vip::VipRouterNode;
use baselines::sunshine_postel::{SpHostNode, SpMobileNode};
use netsim::time::{SimDuration, SimTime};
use scenarios::shootout::{
    columbia_driver, ibm_lsrr_driver, matsushita_driver, mhrp_driver, run_comparison,
    sony_vip_driver, sunshine_postel_driver, Driver,
};

fn settle_move_to_d(d: &mut Driver) {
    d.world.run_until(SimTime::from_secs(3));
    d.move_m_to_d();
    d.world.run_until(SimTime::from_secs(12));
}

#[test]
fn sunshine_postel_requeries_after_stale_forwarder() {
    let mut d = sunshine_postel_driver(71);
    settle_move_to_d(&mut d);
    // Deliver one packet via the D forwarder (queries the directory).
    d.send_data(vec![1; 16]);
    d.world.run_for(SimDuration::from_secs(2));
    assert_eq!(d.mobile_received().len(), 1);
    // M moves to E; the sender's cached forwarder (D) is stale. The old
    // forwarder's lease lapses, it answers host-unreachable, the sender
    // re-queries the directory and retransmits from its buffer.
    d.move_m_to_e();
    d.world.run_for(SimDuration::from_secs(6)); // lease expiry + re-registration
    d.send_data(vec![2; 16]);
    d.world.run_for(SimDuration::from_secs(8));
    let received = d.mobile_received();
    assert!(received.len() >= 2, "retransmission after re-query failed: got {}", received.len());
    assert!(d.world.stats().counter("sp.unreachable_returned") >= 1);
    assert!(d.world.stats().counter("sp.requery_after_unreachable") >= 1);
}

#[test]
fn columbia_uses_multicast_query_then_caches() {
    let mut d = columbia_driver(73);
    settle_move_to_d(&mut d);
    // First packet: home MSR cache miss -> multicast query to all peers.
    d.send_data(vec![1; 16]);
    d.world.run_for(SimDuration::from_secs(2));
    let rounds = d.world.stats().counter("columbia.query_rounds");
    let msgs = d.world.stats().counter("columbia.query_messages");
    assert!(rounds >= 1, "no query round");
    assert_eq!(msgs, rounds * 2, "each round multicasts to both peer MSRs");
    // Second packet: served from the MSR cache, no new round.
    d.send_data(vec![2; 16]);
    d.world.run_for(SimDuration::from_secs(2));
    assert_eq!(d.world.stats().counter("columbia.query_rounds"), rounds);
    assert_eq!(d.mobile_received().len(), 2);
}

#[test]
fn sony_flood_miss_leaves_stale_cache_and_recovers_via_error() {
    let mut d = sony_vip_driver(79);
    // R1 (the sender's first-hop) misses every flood: its observational
    // cache goes stale after each move — §7's "some may remain".
    d.world.with_node::<VipRouterNode, _>(netsim::NodeId(0), |r, _| {
        r.flood_apply_prob = 0.0;
    });
    settle_move_to_d(&mut d);
    // M -> S primes S's (and R1's) caches with M's temp address on D.
    d.send_from_mobile(vec![0; 16]);
    d.world.run_for(SimDuration::from_secs(1));
    d.send_data(vec![1; 16]);
    d.world.run_for(SimDuration::from_secs(2));
    assert_eq!(d.mobile_received().len(), 1);
    // Move to E: flood invalidation runs but R1 ignores it.
    d.move_m_to_e();
    d.world.run_for(SimDuration::from_secs(8));
    assert!(d.world.stats().counter("vip.flood_missed") >= 1, "flood miss not modeled");
    // Fast-forward the D-side router's ARP expiry for the departed host
    // (the simulator's segments otherwise swallow frames to a dead MAC
    // silently, as real Ethernet does until the ARP entry times out).
    d.world.with_node::<VipRouterNode, _>(netsim::NodeId(3), |r, _| {
        r.stack.arp.clear_iface(netsim::IfaceId(1));
    });
    // S sends; the stale physical address dies; errors purge caches and
    // within a few retries the home path heals delivery.
    for i in 0..6 {
        d.send_data(vec![i; 16]);
        d.world.run_for(SimDuration::from_secs(3));
    }
    assert!(
        d.mobile_received().len() >= 2,
        "delivery never recovered after flood miss: {}",
        d.mobile_received().len()
    );
    assert!(d.world.stats().counter("vip.cache_purges") >= 1);
}

#[test]
fn matsushita_autonomous_mode_engages_and_falls_back() {
    let mut d = matsushita_driver(83);
    settle_move_to_d(&mut d);
    // First packet goes via the PFS, which notifies the sender.
    d.send_data(vec![1; 16]);
    d.world.run_for(SimDuration::from_secs(2));
    assert!(d.world.stats().counter("iptp.forwarded") >= 1);
    assert!(d.world.stats().counter("iptp.autonomous_enabled") >= 1);
    // Second packet is tunneled directly by the sender.
    d.send_data(vec![2; 16]);
    d.world.run_for(SimDuration::from_secs(2));
    assert!(d.world.stats().counter("iptp.autonomous_sent") >= 1);
    assert_eq!(d.mobile_received().len(), 2);
    // After a move the cached temporary address is stale; the unreachable
    // error drops the sender back to forwarding mode.
    d.move_m_to_e();
    d.world.run_for(SimDuration::from_secs(8));
    // ARP expiry for the departed host on network D (see the Sony test).
    d.world.with_node::<baselines::matsushita::IptpAgentNode, _>(netsim::NodeId(3), |r, _| {
        r.stack.arp.clear_iface(netsim::IfaceId(1));
    });
    for i in 0..4 {
        d.send_data(vec![10 + i; 16]);
        d.world.run_for(SimDuration::from_secs(3));
    }
    assert!(
        d.world.stats().counter("iptp.fallback_to_forwarding") >= 1,
        "no fallback after stale temp address"
    );
    assert!(d.mobile_received().len() >= 3, "delivery never recovered");
    // The node-type probe used by E03 stays valid.
    let _ = d.world.node::<MatsushitaHostNode>(netsim::NodeId(5));
}

#[test]
fn ibm_broken_peer_loses_everything_correct_peer_does_not() {
    let correct = run_comparison(ibm_lsrr_driver(89, false, SimDuration::ZERO), 10);
    assert_eq!(correct.delivered, 10);
    let broken = run_comparison(ibm_lsrr_driver(89, true, SimDuration::ZERO), 10);
    // §7: a peer that does not reverse the recorded route sends replies
    // (and fresh packets) to the mobile host's home, where nothing
    // forwards them.
    assert_eq!(broken.delivered, 0, "broken peer should deliver nothing");
}

#[test]
fn ibm_slow_path_penalty_inflates_latency() {
    // The same single packet with and without the per-router option
    // penalty — the §7 "cannot use the fast path" argument as measured
    // transit latency.
    let transit = |penalty_ms: u64| -> SimDuration {
        let mut d = ibm_lsrr_driver(97, false, SimDuration::from_millis(penalty_ms));
        settle_move_to_d(&mut d);
        d.send_from_mobile(vec![0; 8]); // prime the reverse route
        d.world.run_for(SimDuration::from_secs(1));
        let sent_at = d.world.now();
        d.send_data(vec![1; 16]);
        d.world.run_for(SimDuration::from_secs(5));
        let rx = d.mobile_received();
        assert_eq!(rx.len(), 1, "penalty {penalty_ms}ms run lost the packet");
        rx[0].0.since(sent_at)
    };
    let fast = transit(0);
    let slow = transit(10);
    // The reply path S->BS crosses the two plain backbone routers with a
    // 10 ms penalty each (plus queueing on the forward leg).
    assert!(
        slow >= fast + SimDuration::from_millis(20),
        "slow path {slow} not ≥ fast {fast} + 20ms"
    );
}

#[test]
fn every_protocol_delivers_at_home_too() {
    // Before any movement, plain routing must work under every protocol
    // (their at-home cost differs — Sony pays its 28 bytes even here).
    for mut d in [
        mhrp_driver(101),
        sunshine_postel_driver(101),
        columbia_driver(101),
        sony_vip_driver(101),
        matsushita_driver(101),
        ibm_lsrr_driver(101, false, SimDuration::ZERO),
    ] {
        d.world.run_until(SimTime::from_secs(3));
        let name = d.name;
        d.send_from_mobile(vec![9; 8]); // prime reverse routes (IBM)
        d.world.run_for(SimDuration::from_secs(1));
        d.send_data(vec![1; 16]);
        d.world.run_for(SimDuration::from_secs(3));
        assert_eq!(d.mobile_received().len(), 1, "{name} failed at home");
    }
    // Sony's at-home overhead is its §7 distinguishing cost.
    let mut sony = sony_vip_driver(103);
    sony.world.run_until(SimTime::from_secs(3));
    let before = sony.world.stats().counter("vip.overhead_bytes");
    sony.send_data(vec![1; 16]);
    sony.world.run_for(SimDuration::from_secs(2));
    assert_eq!(sony.world.stats().counter("vip.overhead_bytes") - before, 28);
}

#[test]
fn sp_directory_is_a_single_point_of_knowledge() {
    let mut d = sunshine_postel_driver(107);
    settle_move_to_d(&mut d);
    d.send_data(vec![1; 16]);
    d.world.run_for(SimDuration::from_secs(2));
    // Every location fact flowed through node 5 (the directory).
    let dir = d.world.node::<baselines::sunshine_postel::SpDirectoryNode>(netsim::NodeId(5));
    assert!(dir.db_size() >= 1);
    assert!(d.world.stats().counter("sp.db_queries") >= 1);
    // Node-type probes for the S/M endpoints stay valid.
    let _ = d.world.node::<SpHostNode>(netsim::NodeId(6));
    let _ = d.world.node::<SpMobileNode>(netsim::NodeId(7));
}

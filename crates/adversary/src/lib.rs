//! # adversary — deterministic attack engine for MHRP
//!
//! The 1994 protocol trusts the network: any host that can source a UDP
//! datagram can register any mobile anywhere, and any host that can
//! source an ICMP location update can poison any location cache. This
//! crate turns those observations into *reproducible experiments*
//! (DESIGN.md §13): an [`AttackPlan`] is an ordered list of
//! `(time, AttackOp)` pairs — the hostile sibling of
//! [`netsim::faults::FaultPlan`] and `workload`'s `MovePlan` — compiled
//! onto the world's single event queue at [`AttackPlan::install`] time,
//! so attack traffic interleaves with frames, timers and admin
//! operations under the same total `(time, seq)` order. The same seed
//! plus the same plan reproduces a byte-identical run, on a plain
//! [`netsim::World`] and on any shard count of a
//! [`netsim::ShardedWorld`] alike (packet-forging ops lower to the
//! shard-routable [`AdminOp::CallNode`]).
//!
//! Plans speak in *indices* (attacker `0..`, mobile host `0..`, cell
//! `0..`) plus concrete protocol addresses, not [`NodeId`]s, so a plan
//! is a pure value that can be generated, compared and property-tested
//! without a world; the world binding happens only at install time via
//! a [`Binding`].
//!
//! The operations cover the attack classes E19–E21 measure:
//!
//! * **Forged registrations** — [`AttackOp::ForgeHaRegister`] /
//!   [`AttackOp::ForgeRegRegister`]: an off-path attacker claims a
//!   mobile lives behind an agent of the attacker's choosing. Without
//!   the DESIGN.md §13 authentication extension the home agent
//!   believes it and diverts the victim's traffic.
//! * **Cache poisoning** — [`AttackOp::PoisonUpdate`]: a spoofed §4.3
//!   location update pointing a correspondent's cache at a black hole.
//! * **Registration storms** — [`AttackOp::StormTunnel`]: forged MHRP
//!   tunnels whose fat previous-source lists make the home agent's
//!   §5.1 fan-out churn its bounded [`mhrp::UpdateRateLimiter`]
//!   (amplification: one packet provokes up to 255 updates).
//! * **Ping-pong mobility** — [`AttackOp::MoveMobile`]: a victim
//!   carried (or lured) back and forth between two cells as fast as
//!   registration completes, maximising handoff-window loss.
//!
//! Attackers never hold the authentication key: every forged message is
//! sent in the plain 1994 format, which is exactly what
//! `mhrp.auth.rejected` / `mhrp.cache.poison_dropped` count when the
//! defense is on.

#![deny(missing_docs)]

use std::fmt;
use std::net::Ipv4Addr;

use ip::icmp::{IcmpMessage, LocationUpdate, LocationUpdateCode};
use ip::ipv4::Ipv4Packet;
use ip::proto;
use mhrp::messages::{ControlMessage, MHRP_PORT};
use mhrp::{MhrpHeader, MhrpHostNode};
use netsim::time::{SimDuration, SimTime};
use netsim::{AdminOp, IfaceId, NodeId, SegmentId, SimWorld};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One hostile operation, applied at a scheduled instant.
///
/// Every variant is a pure value (`Clone + PartialEq`), so plans can be
/// generated, compared and replayed — the same foundation the golden
/// determinism tests build on for fault and mobility plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOp {
    /// Forge a `HaRegister` to `home_agent` claiming `mobile` is served
    /// by foreign agent `fa` (typically the attacker itself, which
    /// silently drops the diverted tunnels — a black hole).
    ForgeHaRegister {
        /// Index of the sending attacker host.
        attacker: usize,
        /// The victim mobile host's home address.
        mobile: Ipv4Addr,
        /// The victim's home agent.
        home_agent: Ipv4Addr,
        /// The foreign agent the forgery names.
        fa: Ipv4Addr,
        /// The registration sequence number the forgery carries.
        seq: u16,
    },
    /// Forge a `RegRegister` to a regional agent (the hierarchical-tier
    /// twin of [`AttackOp::ForgeHaRegister`]).
    ForgeRegRegister {
        /// Index of the sending attacker host.
        attacker: usize,
        /// The victim mobile host's home address.
        mobile: Ipv4Addr,
        /// The regional agent under attack.
        regional: Ipv4Addr,
        /// The victim's home agent (carried in the message).
        home_agent: Ipv4Addr,
        /// The cell foreign agent the forgery names.
        fa: Ipv4Addr,
        /// The registration sequence number the forgery carries.
        seq: u16,
    },
    /// Spoof a §4.3 location update to `target`, claiming `mobile` is
    /// served by `foreign_agent` (cache poisoning: subsequent sends
    /// tunnel into the claimed agent).
    PoisonUpdate {
        /// Index of the sending attacker host.
        attacker: usize,
        /// The cache agent being poisoned.
        target: Ipv4Addr,
        /// The victim mobile host's home address.
        mobile: Ipv4Addr,
        /// Where the poisoned cache will tunnel to.
        foreign_agent: Ipv4Addr,
    },
    /// Send a forged MHRP tunnel toward `mobile`'s home address with a
    /// fabricated previous-source list (at most 255 entries, the wire
    /// format's count octet). The intercepting home agent's §5.1
    /// fan-out then sends one location update per listed source — the
    /// amplification that drives its bounded per-destination rate
    /// limiter to the eviction edge (E20).
    StormTunnel {
        /// Index of the sending attacker host.
        attacker: usize,
        /// The victim mobile host's home address.
        mobile: Ipv4Addr,
        /// The fabricated previous-source addresses.
        fake_sources: Vec<Ipv4Addr>,
    },
    /// Carry mobile host `host` into `cell` — the raw material of the
    /// E21 ping-pong oscillation. Indices follow the [`Binding`].
    MoveMobile {
        /// Index of the victim mobile host.
        host: usize,
        /// Destination cell index.
        cell: usize,
    },
}

impl fmt::Display for AttackOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackOp::ForgeHaRegister { attacker, mobile, fa, .. } => {
                write!(f, "a{attacker}: forge HaRegister {mobile} -> {fa}")
            }
            AttackOp::ForgeRegRegister { attacker, mobile, fa, .. } => {
                write!(f, "a{attacker}: forge RegRegister {mobile} -> {fa}")
            }
            AttackOp::PoisonUpdate { attacker, target, mobile, .. } => {
                write!(f, "a{attacker}: poison {target} about {mobile}")
            }
            AttackOp::StormTunnel { attacker, mobile, fake_sources } => {
                write!(f, "a{attacker}: storm {mobile} x{}", fake_sources.len())
            }
            AttackOp::MoveMobile { host, cell } => write!(f, "ping-pong h{host} -> c{cell}"),
        }
    }
}

/// World handles an [`AttackPlan`] binds to at install time. Plans
/// stay pure values; this is the only place [`NodeId`]s appear.
#[derive(Debug, Clone, Default)]
pub struct Binding {
    /// Attacker hosts, indexed by `AttackOp::attacker` (the hierarchy
    /// builders expose them as `attackers`).
    pub attackers: Vec<NodeId>,
    /// Victim mobile hosts and their roaming interface, indexed by
    /// `AttackOp::MoveMobile::host`.
    pub mobiles: Vec<(NodeId, IfaceId)>,
    /// Wireless cells, indexed by `AttackOp::MoveMobile::cell`.
    pub cells: Vec<SegmentId>,
}

/// An ordered schedule of timed [`AttackOp`]s — the hostile analogue of
/// [`netsim::faults::FaultPlan`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttackPlan {
    ops: Vec<(SimTime, AttackOp)>,
}

impl AttackPlan {
    /// Creates an empty plan.
    pub fn new() -> AttackPlan {
        AttackPlan::default()
    }

    /// Adds one operation at an absolute time.
    pub fn op(mut self, at: SimTime, op: AttackOp) -> AttackPlan {
        self.ops.push((at, op));
        self
    }

    /// The scheduled operations, in insertion order.
    pub fn ops(&self) -> &[(SimTime, AttackOp)] {
        &self.ops
    }

    /// Number of scheduled operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of [`AttackOp::MoveMobile`] operations — the handoff
    /// count E21 normalises loss by.
    pub fn moves(&self) -> u64 {
        self.ops.iter().filter(|(_, op)| matches!(op, AttackOp::MoveMobile { .. })).count() as u64
    }

    /// Schedules a forged `HaRegister` for each of `mobiles`, `interval`
    /// apart starting at `from`, all diverting traffic to `fa`. One
    /// sweep is enough to black-hole every listed victim until its next
    /// genuine re-registration.
    #[allow(clippy::too_many_arguments)]
    pub fn forged_registration_sweep(
        mut self,
        from: SimTime,
        interval: SimDuration,
        attacker: usize,
        home_agent: Ipv4Addr,
        fa: Ipv4Addr,
        mobiles: &[Ipv4Addr],
        seq: u16,
    ) -> AttackPlan {
        let mut t = from;
        for &mobile in mobiles {
            self.ops.push((t, AttackOp::ForgeHaRegister { attacker, mobile, home_agent, fa, seq }));
            t += interval;
        }
        self
    }

    /// Schedules `packets` forged storm tunnels toward `mobile`,
    /// `interval` apart starting at `from`, each listing
    /// `sources_per_packet` seeded-random fabricated sources from
    /// `192.168.0.0/16` (distinct, unroutable — the damage is the home
    /// agent's rate-limiter churn, not misdelivery). Deterministic in
    /// `seed`.
    #[allow(clippy::too_many_arguments)]
    pub fn update_storm(
        mut self,
        from: SimTime,
        interval: SimDuration,
        attacker: usize,
        mobile: Ipv4Addr,
        packets: usize,
        sources_per_packet: usize,
        seed: u64,
    ) -> AttackPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6164_7665_7273_6172); // "adversar"
        let per = sources_per_packet.min(255);
        let mut t = from;
        for _ in 0..packets {
            let fake_sources: Vec<Ipv4Addr> = (0..per)
                .map(|_| {
                    let host: u64 = rng.random_range(1..65_535u64);
                    Ipv4Addr::from(0xC0A8_0000 | u32::try_from(host).expect("16-bit host"))
                })
                .collect();
            self.ops.push((t, AttackOp::StormTunnel { attacker, mobile, fake_sources }));
            t += interval;
        }
        self
    }

    /// Schedules `handoffs` alternating moves of `host` between
    /// `cell_a` and `cell_b`, one every `half_period` starting at
    /// `from` (the host is assumed to start in `cell_a`).
    pub fn ping_pong(
        mut self,
        from: SimTime,
        half_period: SimDuration,
        host: usize,
        cell_a: usize,
        cell_b: usize,
        handoffs: usize,
    ) -> AttackPlan {
        let mut t = from;
        for i in 0..handoffs {
            let cell = if i % 2 == 0 { cell_b } else { cell_a };
            self.ops.push((t, AttackOp::MoveMobile { host, cell }));
            t += half_period;
        }
        self
    }

    /// Compiles the plan onto `w`'s event queue. Packet-forging ops
    /// lower to [`AdminOp::CallNode`] closures that run *inside* the
    /// owning shard's deterministic event order; moves lower to plain
    /// [`AdminOp::MoveIface`]. Installing the same plan at the same
    /// times into equal worlds yields byte-identical runs.
    ///
    /// # Panics
    ///
    /// Panics if an op's attacker/host/cell index is out of the
    /// binding's range (eagerly, at install time — not mid-run).
    pub fn install<W: SimWorld>(&self, w: &mut W, b: &Binding) {
        for (at, op) in &self.ops {
            w.schedule_admin(*at, lower(op.clone(), b));
        }
    }
}

/// Lowers one op to the [`AdminOp`] that executes it.
fn lower(op: AttackOp, b: &Binding) -> AdminOp {
    match op {
        AttackOp::ForgeHaRegister { attacker, mobile, home_agent, fa, seq } => AdminOp::CallNode {
            node: b.attackers[attacker],
            script: Box::new(move |w, n| {
                w.with_node::<MhrpHostNode, _>(n, |h, ctx| {
                    let msg = ControlMessage::HaRegister { mobile, fa, seq };
                    h.stack.send_udp(ctx, home_agent, MHRP_PORT, MHRP_PORT, msg.encode());
                });
            }),
        },
        AttackOp::ForgeRegRegister { attacker, mobile, regional, home_agent, fa, seq } => {
            AdminOp::CallNode {
                node: b.attackers[attacker],
                script: Box::new(move |w, n| {
                    w.with_node::<MhrpHostNode, _>(n, |h, ctx| {
                        let msg = ControlMessage::RegRegister { mobile, home_agent, fa, seq };
                        h.stack.send_udp(ctx, regional, MHRP_PORT, MHRP_PORT, msg.encode());
                    });
                }),
            }
        }
        AttackOp::PoisonUpdate { attacker, target, mobile, foreign_agent } => AdminOp::CallNode {
            node: b.attackers[attacker],
            script: Box::new(move |w, n| {
                w.with_node::<MhrpHostNode, _>(n, |h, ctx| {
                    // Spoofed updates never carry a MAC: the attacker
                    // does not hold the key.
                    let msg = IcmpMessage::LocationUpdate(LocationUpdate {
                        code: LocationUpdateCode::Bind,
                        mobile,
                        foreign_agent,
                        mac: None,
                    });
                    h.stack.send_icmp(ctx, target, &msg, None);
                });
            }),
        },
        AttackOp::StormTunnel { attacker, mobile, mut fake_sources } => AdminOp::CallNode {
            node: b.attackers[attacker],
            script: Box::new(move |w, n| {
                w.with_node::<MhrpHostNode, _>(n, |h, ctx| {
                    let Some(src) = h.stack.pick_src(mobile) else { return };
                    fake_sources.truncate(255);
                    let mut header = MhrpHeader::new(proto::UDP, mobile);
                    header.prev_sources = fake_sources;
                    // A minimal inner datagram: the tunnel is addressed
                    // to the victim's *home* address, so the home agent
                    // intercepts it and fans §5.1 updates out to every
                    // fabricated previous source.
                    let inner = ip::udp::UdpDatagram::new(9, 9, vec![0xA5; 8]).encode();
                    let mut payload = header.encode();
                    payload.extend_from_slice(&inner);
                    let ident = h.stack.next_ident();
                    let pkt = Ipv4Packet::new(src, mobile, proto::MHRP, payload).with_ident(ident);
                    h.stack.send(ctx, pkt);
                });
            }),
        },
        AttackOp::MoveMobile { host, cell } => {
            let (node, iface) = b.mobiles[host];
            AdminOp::MoveIface { node, iface, segment: b.cells[cell] }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    #[test]
    fn update_storm_is_deterministic_in_seed() {
        let mk = |seed| {
            AttackPlan::new().update_storm(
                SimTime::from_secs(1),
                SimDuration::from_millis(10),
                0,
                a(7),
                4,
                100,
                seed,
            )
        };
        assert_eq!(mk(5), mk(5));
        assert_ne!(mk(5), mk(6));
        let plan = mk(5);
        assert_eq!(plan.len(), 4);
        for (_, op) in plan.ops() {
            let AttackOp::StormTunnel { fake_sources, .. } = op else {
                panic!("unexpected op {op}")
            };
            assert_eq!(fake_sources.len(), 100);
            for s in fake_sources {
                assert_eq!(s.octets()[0], 192, "fabricated sources stay in 192.168/16");
            }
        }
    }

    #[test]
    fn storm_sources_cap_at_wire_limit() {
        let plan = AttackPlan::new().update_storm(
            SimTime::from_secs(1),
            SimDuration::from_millis(10),
            0,
            a(7),
            1,
            1000,
            1,
        );
        let AttackOp::StormTunnel { fake_sources, .. } = &plan.ops()[0].1 else { panic!() };
        assert_eq!(fake_sources.len(), 255, "count octet bounds the list");
    }

    #[test]
    fn ping_pong_alternates_and_counts_moves() {
        let plan = AttackPlan::new().ping_pong(
            SimTime::from_secs(2),
            SimDuration::from_secs(1),
            3,
            0,
            1,
            4,
        );
        assert_eq!(plan.moves(), 4);
        let cells: Vec<usize> = plan
            .ops()
            .iter()
            .map(|(_, op)| match op {
                AttackOp::MoveMobile { cell, .. } => *cell,
                other => panic!("unexpected op {other}"),
            })
            .collect();
        assert_eq!(cells, vec![1, 0, 1, 0]);
        assert_eq!(plan.ops()[3].0, SimTime::from_secs(5));
    }

    #[test]
    fn sweep_schedules_one_forgery_per_victim() {
        let victims = [a(1), a(2), a(3)];
        let plan = AttackPlan::new().forged_registration_sweep(
            SimTime::from_secs(1),
            SimDuration::from_millis(100),
            0,
            a(250),
            a(251),
            &victims,
            9,
        );
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.moves(), 0);
        assert_eq!(
            plan.ops()[2].1,
            AttackOp::ForgeHaRegister {
                attacker: 0,
                mobile: a(3),
                home_agent: a(250),
                fa: a(251),
                seq: 9
            }
        );
    }
}

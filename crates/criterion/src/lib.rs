//! Minimal, self-contained benchmark harness.
//!
//! A local stand-in for the subset of the `criterion` crate API used by
//! this workspace (the build environment has no crates.io access). It
//! keeps the authoring surface — `Criterion`, `benchmark_group`,
//! `Bencher::iter`/`iter_batched`, `criterion_group!`/`criterion_main!` —
//! and reports min/median/max wall-clock time per iteration in plain
//! text. There is no statistical regression testing or HTML output.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum measured wall-clock per sample; fast routines are batched
/// until one sample takes at least this long.
const TARGET_SAMPLE: Duration = Duration::from_micros(200);

/// How the measurement routine's per-iteration setup cost is amortized.
/// Only a hint in real criterion; ignored here beyond API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: setup cost is negligible per batch.
    SmallInput,
    /// Large input: batches are kept short.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Passed to every benchmark closure; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    /// Collected nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, batching iterations so each sample is long enough
    /// to measure reliably.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and batch calibration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        let batch = if once >= TARGET_SAMPLE {
            1
        } else {
            (TARGET_SAMPLE.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as usize
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size.max(1) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_and_report(name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { sample_size, samples: Vec::new() };
    f(&mut b);
    let mut s = b.samples;
    if s.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    s.sort_by(|a, b| a.total_cmp(b));
    let min = s[0];
    let med = s[s.len() / 2];
    let max = s[s.len() - 1];
    println!("{name:<40} time: [{} {} {}]", fmt_ns(min), fmt_ns(med), fmt_ns(max));
}

/// The harness entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark (config-style,
    /// by value, for `criterion_group!` config expressions).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnOnce(&mut Bencher)) {
        run_and_report(name.as_ref(), self.sample_size, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.as_ref());
        BenchmarkGroup { sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks with its own sample size.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark inside the group.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnOnce(&mut Bencher)) {
        run_and_report(name.as_ref(), self.sample_size, f);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, in either the simple or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group unless the
/// harness was invoked by `cargo test` (which only checks that benches
/// still build and run; `--test` mode runs nothing, matching criterion).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("tiny", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn group_api_works() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("in_group", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }
}

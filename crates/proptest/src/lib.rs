//! Minimal, self-contained property-based testing.
//!
//! A local stand-in for the subset of the `proptest` crate API used by
//! this workspace (the build environment has no crates.io access). It
//! keeps the same test-authoring surface — `proptest!`, `prop_compose!`,
//! strategies with `prop_map`/`prop_filter`, `prop_assert*` — but trades
//! away shrinking: a failing case reports its values and deterministic
//! case number instead of a minimized counterexample.
//!
//! Cases are generated from a seed derived from the test name, so runs
//! are reproducible without a persistence file.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of filter retries before a strategy gives up.
const MAX_FILTER_ATTEMPTS: usize = 1_000;

/// A failed property case (early-returned by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of test values.
///
/// Unlike real proptest there is no shrinking; `generate` draws one value
/// directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (regenerating, up to a
    /// bounded number of attempts).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Boxes the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy trait object.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_FILTER_ATTEMPTS {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, bool, f64);

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut StdRng) -> i32 {
        rng.random::<u32>() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> i64 {
        rng.random::<u64>() as i64
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.random::<u8>();
        }
        out
    }
}

/// The full-domain strategy for `T` (unit interval for `f64`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Strategy modules under the `prop::` path, mirroring real proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// An inclusive size bound for generated collections.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end - 1 }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange { lo: *r.start(), hi: *r.end() }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n }
            }
        }

        /// A strategy producing `Vec`s of `element` with a length drawn
        /// from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.random_range(self.size.lo..=self.size.hi);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::*;

        /// An index into a collection of yet-unknown length.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Resolves against a concrete collection length.
            ///
            /// # Panics
            ///
            /// Panics if `len` is zero.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut StdRng) -> Index {
                Index(rng.random::<u64>())
            }
        }
    }
}

/// FNV-1a over a byte string; seeds each property deterministically from
/// its test path so distinct tests explore distinct value streams.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `body` over `cases` generated values of `strategy` (driver behind
/// the `proptest!` macro).
pub fn run_property<S: Strategy>(
    test_path: &str,
    config: &ProptestConfig,
    strategy: &S,
    body: impl Fn(S::Value) -> Result<(), TestCaseError>,
) where
    S::Value: std::fmt::Debug + Clone,
{
    let base = seed_for(test_path);
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(base.wrapping_add(case as u64));
        let value = strategy.generate(&mut rng);
        if let Err(e) = body(value.clone()) {
            panic!(
                "property {test_path} failed at case {case}/{}: {e}\n  input: {value:?}",
                config.cases
            );
        }
    }
}

/// The property-test macro. Matches the real proptest authoring surface:
/// an optional `#![proptest_config(..)]` header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); ) => {};
    (@impl ($cfg:expr);
        $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                &config,
                &strategy,
                |($($pat,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                },
            );
        }
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Builds a reusable strategy function from argument strategies, like
/// real proptest's `prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(($($strat,)+), move |($($pat,)+)| $body)
        }
    };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assert_ne failed: both sides = {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// One-stop import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_run_and_respect_bounds() {
        let config = ProptestConfig::with_cases(50);
        crate::run_property("bounds", &config, &(1u32..10,), |(x,)| {
            prop_assert!((1..10).contains(&x));
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        let config = ProptestConfig::with_cases(50);
        crate::run_property("fails", &config, &(0u32..100,), |(x,)| {
            prop_assert!(x < 5, "x was {}", x);
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_works(x in any::<u8>(), v in prop::collection::vec(any::<u8>(), 0..=4)) {
            prop_assert!(v.len() <= 4);
            prop_assert_eq!(u16::from(x) * 2, u16::from(x) + u16::from(x));
        }

        #[test]
        fn oneof_and_filter(x in prop_oneof![Just(1u8), Just(3u8)],
                            y in (0u8..20).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert!(x == 1 || x == 3);
            prop_assert_eq!(y % 2, 0);
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u8..10, b in 0u8..10) -> (u8, u8) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed_strategy(p in arb_pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }
    }
}

//! Self-contained stand-in for the subset of the tokio API this
//! workspace uses (see the workspace `Cargo.toml`: the build environment
//! has no registry access, so external dependencies are provided by
//! local crates implementing exactly the surface the repo consumes).
//!
//! What this provides:
//!
//! * [`runtime::Runtime`] — a **current-thread polling executor**:
//!   `block_on` drives the main future plus every [`task::spawn`]ed task
//!   by polling them in rounds, parking briefly between rounds (bounded
//!   by the earliest timer deadline and a small I/O poll interval).
//!   Wakers are no-ops: correctness comes from re-polling every pending
//!   task each round, which is cheap at the task counts the live
//!   loopback harness runs (tens of agents).
//! * [`net::UdpSocket`] — async UDP over a nonblocking std socket.
//! * [`time`] — [`time::sleep`] and [`time::timeout`] against the OS
//!   monotonic clock.
//! * [`sync::mpsc`] — unbounded channels usable across tasks.
//!
//! Semantic differences from real tokio, chosen for simplicity and fine
//! for the loopback harness: everything runs on the caller's thread
//! (`spawn` requires being inside `block_on`), spawned tasks are dropped
//! when `block_on` returns, and wake-up latency is bounded by the poll
//! interval (200 µs) rather than being edge-triggered.

#![deny(missing_docs)]

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use std::time::{Duration, Instant};

/// How long the executor parks when every task is pending on I/O with no
/// nearer timer deadline. Bounds wake-up latency for socket readiness.
const IO_POLL: Duration = Duration::from_micros(200);

thread_local! {
    static EXEC: RefCell<Option<ExecState>> = const { RefCell::new(None) };
}

/// Executor bookkeeping shared (via thread-local) with leaf futures.
struct ExecState {
    /// Tasks spawned while a poll round is in progress; merged into the
    /// round-robin set between rounds.
    incoming: Vec<Pin<Box<dyn Future<Output = ()>>>>,
    /// Earliest timer deadline any future registered this round.
    next_wake: Option<Instant>,
    /// Whether any future is waiting on socket readiness this round.
    io_wait: bool,
}

fn with_exec<R>(f: impl FnOnce(&mut ExecState) -> R) -> R {
    EXEC.with(|e| {
        let mut e = e.borrow_mut();
        let state = e.as_mut().expect("must be called from within a tokio runtime");
        f(state)
    })
}

/// Records that the current task is waiting for socket readiness.
fn note_io_wait() {
    with_exec(|e| e.io_wait = true);
}

/// Records a timer deadline the executor must not park past.
fn note_deadline(at: Instant) {
    with_exec(|e| {
        e.next_wake = Some(match e.next_wake {
            Some(cur) if cur <= at => cur,
            _ => at,
        });
    });
}

fn noop_waker() -> Waker {
    const VTABLE: RawWakerVTable =
        RawWakerVTable::new(|_| RawWaker::new(std::ptr::null(), &VTABLE), |_| {}, |_| {}, |_| {});
    // SAFETY: every vtable entry is a no-op over a null pointer.
    unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VTABLE)) }
}

/// The executor. See the [crate docs](crate) for the execution model.
pub mod runtime {
    use super::*;

    /// A current-thread polling runtime.
    pub struct Runtime {
        _priv: (),
    }

    impl Runtime {
        /// Creates a runtime. Never fails (the `Result` mirrors tokio's
        /// signature so call sites read identically).
        pub fn new() -> std::io::Result<Runtime> {
            Ok(Runtime { _priv: () })
        }

        /// Runs `fut` to completion on the calling thread, driving every
        /// task spawned from it. Outstanding spawned tasks are dropped
        /// when the main future finishes.
        ///
        /// # Panics
        ///
        /// Panics when nested inside another `block_on` on this thread.
        pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
            EXEC.with(|e| {
                let mut e = e.borrow_mut();
                assert!(e.is_none(), "nested Runtime::block_on on one thread");
                *e = Some(ExecState { incoming: Vec::new(), next_wake: None, io_wait: false });
            });
            // Ensure the executor slot is cleared even if a task panics.
            struct Reset;
            impl Drop for Reset {
                fn drop(&mut self) {
                    EXEC.with(|e| *e.borrow_mut() = None);
                }
            }
            let _reset = Reset;

            let mut main = Box::pin(fut);
            let mut tasks: Vec<Pin<Box<dyn Future<Output = ()>>>> = Vec::new();
            let waker = noop_waker();
            let mut cx = Context::from_waker(&waker);
            loop {
                with_exec(|e| {
                    e.next_wake = None;
                    e.io_wait = false;
                });
                let done = main.as_mut().poll(&mut cx);
                let before = tasks.len();
                tasks.retain_mut(|t| t.as_mut().poll(&mut cx).is_pending());
                let completed = tasks.len() != before;
                // Tasks spawned during this round get their first poll
                // in the next one (matches tokio: spawn returns before
                // the task runs).
                let spawned = with_exec(|e| std::mem::take(&mut e.incoming));
                let progressed = completed || !spawned.is_empty();
                tasks.extend(spawned);
                if let Poll::Ready(v) = done {
                    return v;
                }
                if progressed {
                    // Something finished or arrived this round; a waiter
                    // may be ready right now — poll again immediately.
                    continue;
                }
                let (next_wake, io_wait) = with_exec(|e| (e.next_wake, e.io_wait));
                // With neither sockets nor timers pending, the only
                // possible progress is task-to-task (channel) traffic,
                // which the next round discovers — park briefly rather
                // than spin.
                let cap = if io_wait { IO_POLL } else { Duration::from_millis(5) };
                let park = match next_wake {
                    Some(at) => at.saturating_duration_since(Instant::now()).min(cap),
                    None => cap,
                };
                if !park.is_zero() {
                    std::thread::sleep(park);
                }
            }
        }
    }
}

/// Task spawning.
pub mod task {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// Error type of [`JoinHandle`]. This executor never cancels or
    /// loses a task (panics propagate out of `block_on` instead), so a
    /// `JoinError` is never actually produced; the type exists so call
    /// sites match tokio's `handle.await?` shape.
    #[derive(Debug)]
    pub struct JoinError(());

    impl std::fmt::Display for JoinError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "task join error")
        }
    }
    impl std::error::Error for JoinError {}

    /// Handle to a spawned task; awaiting it yields the task's output.
    pub struct JoinHandle<T> {
        slot: Rc<Cell<Option<T>>>,
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;
        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            match self.slot.take() {
                Some(v) => Poll::Ready(Ok(v)),
                None => Poll::Pending,
            }
        }
    }

    /// Spawns `fut` onto the current runtime. The task gets its first
    /// poll on the next executor round.
    ///
    /// # Panics
    ///
    /// Panics when called outside [`runtime::Runtime::block_on`].
    pub fn spawn<T: 'static>(fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let slot = Rc::new(Cell::new(None));
        let out = slot.clone();
        with_exec(|e| {
            e.incoming.push(Box::pin(async move {
                out.set(Some(fut.await));
            }));
        });
        JoinHandle { slot }
    }

    /// Yields once: the current task goes to the back of this round and
    /// resumes on the next one.
    pub async fn yield_now() {
        let mut yielded = false;
        std::future::poll_fn(|_cx| {
            if yielded {
                Poll::Ready(())
            } else {
                yielded = true;
                Poll::Pending
            }
        })
        .await
    }
}

/// Async networking over nonblocking std sockets.
pub mod net {
    use super::*;
    use std::io;
    use std::net::{SocketAddr, ToSocketAddrs};

    /// An async UDP socket.
    #[derive(Debug)]
    pub struct UdpSocket {
        inner: std::net::UdpSocket,
    }

    impl UdpSocket {
        /// Binds a UDP socket to `addr` (async for tokio API parity;
        /// binding itself does not block).
        pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
            let inner = std::net::UdpSocket::bind(addr)?;
            inner.set_nonblocking(true)?;
            Ok(UdpSocket { inner })
        }

        /// Wraps an already-bound std socket (switched to nonblocking).
        pub fn from_std(inner: std::net::UdpSocket) -> io::Result<UdpSocket> {
            inner.set_nonblocking(true)?;
            Ok(UdpSocket { inner })
        }

        /// The socket's local address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// A cloned nonblocking std handle to the same socket (shares
        /// the OS descriptor) — lets synchronous code transmit while an
        /// async task owns the receive side.
        pub fn std_clone(&self) -> io::Result<std::net::UdpSocket> {
            self.inner.try_clone()
        }

        /// Receives a datagram, waiting until one arrives.
        pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
            std::future::poll_fn(|_cx| match self.inner.recv_from(buf) {
                Ok(v) => Poll::Ready(Ok(v)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    note_io_wait();
                    Poll::Pending
                }
                Err(e) => Poll::Ready(Err(e)),
            })
            .await
        }

        /// Sends a datagram to `addr`, waiting while the socket buffer
        /// is full.
        pub async fn send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
            std::future::poll_fn(|_cx| match self.inner.send_to(buf, addr) {
                Ok(n) => Poll::Ready(Ok(n)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    note_io_wait();
                    Poll::Pending
                }
                Err(e) => Poll::Ready(Err(e)),
            })
            .await
        }

        /// Attempts a send without waiting (`WouldBlock` on a full
        /// buffer — on loopback effectively never).
        pub fn try_send_to(&self, buf: &[u8], addr: SocketAddr) -> io::Result<usize> {
            self.inner.send_to(buf, addr)
        }
    }
}

/// Timers against the OS monotonic clock.
pub mod time {
    use super::*;
    pub use std::time::{Duration, Instant};

    /// Future returned by [`sleep`].
    pub struct Sleep {
        deadline: Instant,
    }

    impl Future for Sleep {
        type Output = ();
        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
            if Instant::now() >= self.deadline {
                Poll::Ready(())
            } else {
                note_deadline(self.deadline);
                Poll::Pending
            }
        }
    }

    /// Completes `d` from now.
    pub fn sleep(d: Duration) -> Sleep {
        sleep_until(Instant::now() + d)
    }

    /// Completes at `deadline`.
    pub fn sleep_until(deadline: Instant) -> Sleep {
        Sleep { deadline }
    }

    /// Timeout errors.
    pub mod error {
        /// The future did not complete before the deadline.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Elapsed(pub(crate) ());

        impl std::fmt::Display for Elapsed {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "deadline has elapsed")
            }
        }
        impl std::error::Error for Elapsed {}
    }

    /// Future returned by [`timeout`].
    pub struct Timeout<F: Future> {
        fut: Pin<Box<F>>,
        sleep: Sleep,
    }

    impl<F: Future> Future for Timeout<F> {
        type Output = Result<F::Output, error::Elapsed>;
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            if let Poll::Ready(v) = self.fut.as_mut().poll(cx) {
                return Poll::Ready(Ok(v));
            }
            match Pin::new(&mut self.sleep).poll(cx) {
                Poll::Ready(()) => Poll::Ready(Err(error::Elapsed(()))),
                Poll::Pending => Poll::Pending,
            }
        }
    }

    /// Requires `fut` to complete within `d`; yields `Err(Elapsed)`
    /// otherwise.
    pub fn timeout<F: Future>(d: Duration, fut: F) -> Timeout<F> {
        Timeout { fut: Box::pin(fut), sleep: sleep(d) }
    }
}

/// Synchronization primitives.
pub mod sync {
    /// Multi-producer single-consumer channels.
    pub mod mpsc {
        use super::super::*;
        use std::collections::VecDeque;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::{Arc, Mutex};

        struct Chan<T> {
            queue: Mutex<VecDeque<T>>,
            senders: AtomicUsize,
        }

        /// The sending half of an unbounded channel.
        pub struct UnboundedSender<T> {
            chan: Arc<Chan<T>>,
        }

        /// The receiving half of an unbounded channel.
        pub struct UnboundedReceiver<T> {
            chan: Arc<Chan<T>>,
        }

        /// Error returned when the receiver is gone.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct SendError<T>(pub T);

        impl<T> std::fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "channel closed")
            }
        }
        impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

        impl<T> Clone for UnboundedSender<T> {
            fn clone(&self) -> Self {
                self.chan.senders.fetch_add(1, Ordering::Relaxed);
                UnboundedSender { chan: self.chan.clone() }
            }
        }

        impl<T> Drop for UnboundedSender<T> {
            fn drop(&mut self) {
                self.chan.senders.fetch_sub(1, Ordering::Release);
            }
        }

        impl<T> UnboundedSender<T> {
            /// Sends a value; fails only if the receiver was dropped.
            pub fn send(&self, value: T) -> Result<(), SendError<T>> {
                // 2 = this sender + the receiver's Arc. No receiver (it
                // holds exactly one Arc) can only mean it was dropped
                // when the strong count equals the sender count + 0.
                if Arc::strong_count(&self.chan) <= self.chan.senders.load(Ordering::Relaxed) {
                    return Err(SendError(value));
                }
                self.chan.queue.lock().expect("mpsc poisoned").push_back(value);
                Ok(())
            }
        }

        impl<T> UnboundedReceiver<T> {
            /// Receives the next value, waiting for one; `None` once
            /// every sender is dropped and the queue is drained.
            pub async fn recv(&mut self) -> Option<T> {
                std::future::poll_fn(|_cx| {
                    if let Some(v) = self.chan.queue.lock().expect("mpsc poisoned").pop_front() {
                        return Poll::Ready(Some(v));
                    }
                    if self.chan.senders.load(Ordering::Acquire) == 0 {
                        return Poll::Ready(None);
                    }
                    Poll::Pending
                })
                .await
            }

            /// Non-blocking receive.
            pub fn try_recv(&mut self) -> Option<T> {
                self.chan.queue.lock().expect("mpsc poisoned").pop_front()
            }
        }

        /// Creates an unbounded channel.
        pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
            let chan =
                Arc::new(Chan { queue: Mutex::new(VecDeque::new()), senders: AtomicUsize::new(1) });
            (UnboundedSender { chan: chan.clone() }, UnboundedReceiver { chan })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_returns_the_value() {
        let rt = runtime::Runtime::new().unwrap();
        assert_eq!(rt.block_on(async { 40 + 2 }), 42);
    }

    #[test]
    fn spawned_tasks_run_and_join() {
        let rt = runtime::Runtime::new().unwrap();
        let got = rt.block_on(async {
            let h = task::spawn(async {
                task::yield_now().await;
                7
            });
            h.await.unwrap()
        });
        assert_eq!(got, 7);
    }

    #[test]
    fn sleep_waits_and_timeout_fires() {
        let rt = runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let t0 = std::time::Instant::now();
            time::sleep(Duration::from_millis(20)).await;
            assert!(t0.elapsed() >= Duration::from_millis(20));
            let r = time::timeout(Duration::from_millis(10), std::future::pending::<()>()).await;
            assert!(r.is_err(), "pending future must time out");
        });
    }

    #[test]
    fn udp_round_trip_on_loopback() {
        let rt = runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let a = net::UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let b = net::UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let b_addr = b.local_addr().unwrap();
            a.send_to(b"ping", b_addr).await.unwrap();
            let mut buf = [0u8; 16];
            let (n, from) = time::timeout(Duration::from_secs(2), b.recv_from(&mut buf))
                .await
                .expect("datagram must arrive")
                .unwrap();
            assert_eq!(&buf[..n], b"ping");
            assert_eq!(from, a.local_addr().unwrap());
        });
    }

    #[test]
    fn mpsc_crosses_tasks() {
        let rt = runtime::Runtime::new().unwrap();
        let got = rt.block_on(async {
            let (tx, mut rx) = sync::mpsc::unbounded_channel();
            task::spawn(async move {
                tx.send(1).unwrap();
                tx.send(2).unwrap();
            });
            let a = rx.recv().await.unwrap();
            let b = rx.recv().await.unwrap();
            assert_eq!(rx.recv().await, None, "closed after sender drop");
            a + b
        });
        assert_eq!(got, 3);
    }
}

//! Property tests for [`netsim::Payload`] sharing: broadcast fan-out
//! clones frames by bumping a refcount, so the test obligation is that a
//! receiver can never observe bytes changed by anything another receiver
//! (or the sender) did afterwards.

use netsim::time::{SimDuration, SimTime};
use netsim::{Ctx, EtherType, Frame, IfaceId, Node, Payload, SegmentParams, TimerToken, World};
use proptest::prelude::*;

proptest! {
    /// Clones of a payload stay byte-identical to the original no matter
    /// what is done with other handles: dropping some, re-wrapping
    /// others, or building new payloads from mutated copies of the bytes.
    #[test]
    fn clones_are_immune_to_other_handles(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        clones in 1usize..16,
        flip in any::<prop::sample::Index>(),
    ) {
        let original = Payload::from(bytes.clone());
        let mut handles: Vec<Payload> = (0..clones).map(|_| original.clone()).collect();

        // A "mutation" in the shared-payload world: copy out, change the
        // copy, wrap it as a *new* payload. The old handles must not see it.
        let mut copy = original.to_vec();
        if !copy.is_empty() {
            let i = flip.index(copy.len());
            copy[i] = copy[i].wrapping_add(1);
        }
        let mutated = Payload::from(copy.clone());

        // Drop half the handles; the survivors still read the original bytes.
        handles.truncate(clones.div_ceil(2));
        for h in &handles {
            prop_assert_eq!(h.as_slice(), &bytes[..]);
        }
        prop_assert_eq!(original.as_slice(), &bytes[..]);
        if !bytes.is_empty() {
            prop_assert_ne!(mutated.as_slice(), &bytes[..]);
        }
    }

    /// Every receiver of a broadcast sees exactly the bytes that were
    /// sent, and all receivers share one allocation (refcount clones).
    #[test]
    fn broadcast_receivers_see_identical_unshared_views(
        bytes in prop::collection::vec(any::<u8>(), 1..128),
        receivers in 2usize..8,
    ) {
        struct Sender { bytes: Vec<u8> }
        impl Node for Sender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), TimerToken(0));
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
                let f = Frame::broadcast(
                    ctx.mac(IfaceId(0)),
                    EtherType::Other(0x5a5a),
                    self.bytes.clone(),
                );
                ctx.send_frame(IfaceId(0), f);
            }
            fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _i: IfaceId, _f: &Frame) {}
        }
        struct Receiver { seen: Vec<Vec<u8>>, ptrs: Vec<usize> }
        impl Node for Receiver {
            fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _i: IfaceId, f: &Frame) {
                self.seen.push(f.payload.to_vec());
                self.ptrs.push(f.payload.as_slice().as_ptr() as usize);
            }
        }

        let mut w = World::new(11);
        let seg = w.add_segment(SegmentParams::default());
        let s = w.add_node(Sender { bytes: bytes.clone() });
        w.add_iface(s, Some(seg));
        let rx: Vec<_> = (0..receivers)
            .map(|_| {
                let id = w.add_node(Receiver { seen: Vec::new(), ptrs: Vec::new() });
                w.add_iface(id, Some(seg));
                id
            })
            .collect();
        w.start();
        w.run_until(SimTime::from_millis(10));

        let mut ptrs = Vec::new();
        for &id in &rx {
            let r = w.node::<Receiver>(id);
            prop_assert_eq!(r.seen.len(), 1);
            prop_assert_eq!(&r.seen[0], &bytes);
            ptrs.push(r.ptrs[0]);
        }
        // All receivers read the same underlying allocation.
        for &p in &ptrs[1..] {
            prop_assert_eq!(p, ptrs[0]);
        }
    }
}

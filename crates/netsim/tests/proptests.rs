//! Property-based tests of the simulator's core guarantees: determinism,
//! conservation of frames, and clock monotonicity — under randomized
//! topologies, parameters and traffic.

use netsim::time::{SimDuration, SimTime};
use netsim::{Ctx, EtherType, Frame, IfaceId, Node, SegmentParams, TimerToken, World};
use proptest::prelude::*;

/// A node that broadcasts `count` frames at `interval` and counts
/// receptions.
struct Chatter {
    count: u32,
    interval: SimDuration,
    sent: u32,
    received: u64,
}

impl Chatter {
    fn new(count: u32, interval_us: u64) -> Chatter {
        Chatter {
            count,
            interval: SimDuration::from_micros(interval_us.max(1)),
            sent: 0,
            received: 0,
        }
    }
}

impl Node for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.interval, TimerToken(1));
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
        if self.sent < self.count {
            self.sent += 1;
            let f = Frame::broadcast(ctx.mac(IfaceId(0)), EtherType::Other(0x7777), vec![0; 16]);
            ctx.send_frame(IfaceId(0), f);
            ctx.set_timer(self.interval, TimerToken(1));
        }
    }
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _i: IfaceId, _f: &Frame) {
        self.received += 1;
    }
}

fn run_world(seed: u64, nodes: usize, loss: f64, jitter_us: u64, count: u32) -> (u64, u64, u64) {
    let mut w = World::new(seed);
    let seg = w.add_segment(SegmentParams {
        latency: SimDuration::from_micros(100),
        jitter: SimDuration::from_micros(jitter_us),
        loss,
        ..Default::default()
    });
    let ids: Vec<_> = (0..nodes)
        .map(|i| {
            let id = w.add_node(Chatter::new(count, 500 + i as u64));
            w.add_iface(id, Some(seg));
            id
        })
        .collect();
    w.start();
    w.run_until(SimTime::from_secs(60));
    let total_rx: u64 = ids.iter().map(|&id| w.node::<Chatter>(id).received).sum();
    (total_rx, w.stats().counter("link.frames_sent"), w.stats().counter("link.frames_dropped"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn identical_seeds_are_bit_identical(seed in any::<u64>(), nodes in 2usize..6,
                                         loss in 0.0f64..0.9, jitter in 0u64..2_000,
                                         count in 1u32..20) {
        let a = run_world(seed, nodes, loss, jitter, count);
        let b = run_world(seed, nodes, loss, jitter, count);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn frames_are_conserved(seed in any::<u64>(), nodes in 2usize..6,
                            loss in 0.0f64..1.0, count in 1u32..20) {
        // Every broadcast frame is either delivered or dropped, exactly
        // once per potential receiver.
        let (rx, sent, dropped) = run_world(seed, nodes, loss, 0, count);
        let offered = sent * (nodes as u64 - 1);
        prop_assert_eq!(rx + dropped, offered, "sent={} rx={} dropped={}", sent, rx, dropped);
    }

    #[test]
    fn lossless_delivers_everything(seed in any::<u64>(), nodes in 2usize..6, count in 1u32..20) {
        let (rx, sent, dropped) = run_world(seed, nodes, 0.0, 1_000, count);
        prop_assert_eq!(dropped, 0u64);
        prop_assert_eq!(rx, sent * (nodes as u64 - 1));
        prop_assert_eq!(sent, u64::from(count) * nodes as u64);
    }
}

/// Clock monotonicity under dense same-time events.
#[test]
fn clock_never_goes_backwards() {
    struct Spammer {
        times: Vec<SimTime>,
    }
    impl Node for Spammer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for _ in 0..50 {
                ctx.set_timer(SimDuration::from_micros(10), TimerToken(0));
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
            self.times.push(ctx.now());
        }
        fn on_frame(&mut self, _c: &mut Ctx<'_>, _i: IfaceId, _f: &Frame) {}
    }
    let mut w = World::new(5);
    let id = w.add_node(Spammer { times: Vec::new() });
    w.add_iface(id, None);
    w.start();
    w.run_until(SimTime::from_secs(1));
    let times = &w.node::<Spammer>(id).times;
    assert_eq!(times.len(), 50);
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

//! Property tests of the fault-injection engine: an *arbitrary* fault
//! plan must leave the world consistent — every transmitted frame is
//! accounted for exactly once, crashed nodes come back and keep working,
//! and the same seed with the same plan reproduces identical runs.

use netsim::time::{SimDuration, SimTime};
use netsim::{
    Ctx, EtherType, FaultOp, FaultPlan, Frame, IfaceId, Node, NodeId, SegmentId, SegmentParams,
    TimerToken, World,
};
use proptest::prelude::*;

/// When the chatters stop sending. Runs drain well past this (plus the
/// largest latency any generated op can set) so the conservation ledger
/// sees every in-flight frame land.
const STOP_SENDING_AT: SimTime = SimTime::from_millis(2_500);

/// A node that broadcasts every 2 ms until [`STOP_SENDING_AT`], counts
/// receptions, and — unlike a protocol-free test node — re-arms its
/// timer chain after a reboot, the way every real node type in this
/// workspace does.
struct Chatter {
    received: u64,
}

impl Node for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(2), TimerToken(0));
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
        if ctx.now() >= STOP_SENDING_AT {
            return;
        }
        let f = Frame::broadcast(ctx.mac(IfaceId(0)), EtherType::Other(0x7a11), vec![0; 24]);
        ctx.send_frame(IfaceId(0), f);
        ctx.set_timer(SimDuration::from_millis(2), TimerToken(0));
    }
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _i: IfaceId, _f: &Frame) {
        self.received += 1;
    }
    fn on_reboot(&mut self, ctx: &mut Ctx<'_>) {
        // Volatile state (pending timers) died with the crash.
        ctx.set_timer(SimDuration::from_millis(2), TimerToken(0));
    }
}

const NODES: usize = 4;

/// One raw generated op: (selector, time offset µs, magnitude). Kept as
/// plain integers so the strategy stays shrink-free and `Debug`-printable
/// by the stand-in proptest.
type RawOp = (u8, u64, u64);

/// Builds a deterministic fault plan from raw generated tuples. Ops are
/// restricted to ones that do not move interfaces, so the
/// frame-conservation ledger stays exact (`offered = sent × (N-1)`).
fn build_plan(raw: &[RawOp], seg: SegmentId) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &(sel, at_us, mag) in raw {
        let at = SimTime::from_micros(at_us % 2_000_000);
        let op = match sel % 8 {
            0 => FaultOp::SegmentDown { segment: seg },
            1 => FaultOp::SegmentUp { segment: seg },
            2 => FaultOp::SetSegmentLoss { segment: seg, loss: (mag % 90) as f64 / 100.0 },
            3 => FaultOp::SetSegmentLatency {
                segment: seg,
                latency: SimDuration::from_micros(1 + mag % 5_000),
            },
            4 => FaultOp::LatencySpike {
                segment: seg,
                extra: SimDuration::from_micros(mag % 10_000),
                duration: SimDuration::from_micros(1 + mag % 300_000),
            },
            5 => FaultOp::SetSegmentCorruption {
                segment: seg,
                probability: (mag % 100) as f64 / 100.0,
            },
            6 => FaultOp::Crash {
                node: NodeId((mag % NODES as u64) as usize),
                down_for: SimDuration::from_micros(1 + mag % 500_000),
            },
            _ => FaultOp::MuteBroadcasts {
                node: NodeId((mag % NODES as u64) as usize),
                iface: IfaceId(0),
            },
        };
        plan = plan.op(at, op);
    }
    plan
}

/// Runs the chatter world under `plan` and returns
/// `(per-node receptions, all counters)`.
fn run_with_plan(seed: u64, plan: &FaultPlan) -> (Vec<u64>, Vec<(String, u64)>) {
    let mut w = World::new(seed);
    let seg = w.add_segment(SegmentParams::default());
    let ids: Vec<_> = (0..NODES)
        .map(|_| {
            let id = w.add_node(Chatter { received: 0 });
            w.add_iface(id, Some(seg));
            id
        })
        .collect();
    w.install_faults(plan);
    w.start();
    w.run_until(SimTime::from_secs(3));
    let rx = ids.iter().map(|&id| w.node::<Chatter>(id).received).collect();
    let counters = w.stats().counters().map(|(k, v)| (k.to_owned(), v)).collect();
    (rx, counters)
}

fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters.iter().find(|(k, _)| k == name).map_or(0, |&(_, v)| v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every frame that made it onto the wire is delivered,
    /// dropped by loss, or dropped at a crashed receiver — exactly once
    /// per potential receiver, no matter what the fault plan did.
    #[test]
    fn random_plan_conserves_frames(seed in any::<u64>(),
                                    raw in prop::collection::vec((0u8..8, 0u64..2_000_000, any::<u64>()), 0..12)) {
        let mut probe = World::new(0);
        let seg = probe.add_segment(SegmentParams::default());
        let plan = build_plan(&raw, seg);
        let (rx, counters) = run_with_plan(seed, &plan);
        let offered = counter(&counters, "link.frames_sent") * (NODES as u64 - 1);
        let accounted = rx.iter().sum::<u64>()
            + counter(&counters, "link.frames_dropped")
            + counter(&counters, "fault.frames_dropped_node_down")
            + counter(&counters, "link.frames_lost_moved");
        prop_assert_eq!(accounted, offered, "counters: {:?}", counters);
        // Delivered includes corrupted copies; they are delivered, not lost.
        prop_assert_eq!(rx.iter().sum::<u64>(), counter(&counters, "link.frames_delivered"));
    }

    /// Reproducibility: the same seed and the same plan give the same
    /// world, reception counts and counters included.
    #[test]
    fn random_plan_is_deterministic(seed in any::<u64>(),
                                    raw in prop::collection::vec((0u8..8, 0u64..2_000_000, any::<u64>()), 0..12)) {
        let mut probe = World::new(0);
        let seg = probe.add_segment(SegmentParams::default());
        let plan = build_plan(&raw, seg);
        let a = run_with_plan(seed, &plan);
        let b = run_with_plan(seed, &plan);
        prop_assert_eq!(a, b);
    }

    /// Liveness after the plan: once every scheduled fault (and crash
    /// window) has passed and the segment is up, traffic flows again —
    /// a crash is an outage, not a permanent death.
    #[test]
    fn crashed_nodes_recover_and_chat_again(seed in any::<u64>(),
                                            down_us in 1u64..1_000_000,
                                            crash_at_us in 0u64..500_000) {
        let mut w = World::new(seed);
        let seg = w.add_segment(SegmentParams::default());
        let ids: Vec<_> = (0..NODES)
            .map(|_| {
                let id = w.add_node(Chatter { received: 0 });
                w.add_iface(id, Some(seg));
                id
            })
            .collect();
        let victim = ids[0];
        let plan = FaultPlan::new().crash(
            victim,
            SimTime::from_micros(crash_at_us),
            SimDuration::from_micros(down_us),
        );
        w.install_faults(&plan);
        w.start();
        w.run_until(SimTime::from_micros(crash_at_us) + SimDuration::from_micros(down_us));
        prop_assert!(!w.node_is_down(victim));
        let rx_at_reboot = w.node::<Chatter>(victim).received;
        w.run_for(SimDuration::from_secs(1));
        // The rebooted node both hears the others again…
        prop_assert!(w.node::<Chatter>(victim).received > rx_at_reboot);
        // …and its own re-armed timer chain keeps the others fed.
        prop_assert_eq!(w.stats().counter("fault.crashes"), 1);
    }
}

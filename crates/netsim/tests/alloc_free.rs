//! Proves the unicast delivery hot path is allocation-free at steady
//! state: after warmup, ping-ponging a shared-payload frame between two
//! nodes performs **zero** heap allocations per delivered frame.
//!
//! This is the acceptance tripwire for the zero-allocation refactor:
//! interned metric counters (no name hashing or map growth), `Payload`
//! clones that are refcount bumps, and `World` scratch buffers that are
//! reused across `dispatch`/`transmit` calls. A regression in any of
//! those shows up here as a nonzero allocation count.
//!
//! The counter is thread-local: this test drives a classic `World` on
//! one thread, and the libtest harness's own threads (progress
//! reporting, timers) must not pollute the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use netsim::time::{SimDuration, SimTime};
use netsim::{Ctx, EtherType, Frame, IfaceId, Node, SegmentParams, TimerToken, World};

/// Counts every allocation (and growth-realloc) made by the *current
/// thread*. Deallocations are free and not counted.
struct CountingAlloc;

thread_local! {
    // const-initialized: accessing it never itself allocates, and
    // Cell<u64> has no destructor to register.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    ALLOCS.with(|c| c.set(c.get() + 1));
}

fn thread_allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

const ET: EtherType = EtherType::Other(0x0f0f);

/// Echoes every received frame back to its sender, reusing the payload
/// (an `Arc` refcount bump, not a copy). The kickoff node sends one
/// broadcast on start; after that every frame is unicast.
struct Pinger {
    kickoff: bool,
}

impl Node for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.kickoff {
            let f = Frame::broadcast(ctx.mac(IfaceId(0)), ET, vec![0xA5; 32]);
            ctx.send_frame(IfaceId(0), f);
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _iface: IfaceId, f: &Frame) {
        let reply = Frame::new(ctx.mac(IfaceId(0)), f.src, ET, f.payload.clone());
        ctx.send_frame(IfaceId(0), reply);
    }
}

#[test]
fn unicast_steady_state_allocates_nothing() {
    let mut w = World::new(7);
    let seg = w.add_segment(SegmentParams::with_latency(SimDuration::from_micros(100)));
    for kickoff in [true, false] {
        let id = w.add_node(Pinger { kickoff });
        w.add_iface(id, Some(seg));
    }
    w.start();

    // Warmup: the kickoff broadcast, payload creation, scratch-buffer and
    // event-queue capacity growth, and metric-id registration all happen
    // here.
    w.run_until(SimTime::from_millis(50));
    let delivered_before = w.stats().counter("link.frames_delivered");
    let allocs_before = thread_allocs();

    // Measured window: pure unicast ping-pong.
    w.run_until(SimTime::from_millis(450));

    let allocs = thread_allocs() - allocs_before;
    let delivered = w.stats().counter("link.frames_delivered") - delivered_before;
    assert!(delivered >= 1000, "expected a busy window, delivered only {delivered}");
    assert_eq!(allocs, 0, "hot path allocated {allocs} times across {delivered} deliveries");
}

/// Perpetually re-arms a short timer, periodically arming-and-cancelling
/// a second one — the MHRP watchdog/advertiser pattern, exercising the
/// timer wheel's schedule → cascade → fire cycle plus the cancellation
/// watermark path.
struct Spinner {
    fires: u64,
}

impl Node for Spinner {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_micros(50), TimerToken(0));
    }

    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _iface: IfaceId, _f: &Frame) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, t: TimerToken) {
        if t != TimerToken(0) {
            return; // a cancelled TimerToken(1) never reaches here
        }
        self.fires += 1;
        ctx.set_timer(SimDuration::from_micros(50), TimerToken(0));
        if self.fires.is_multiple_of(8) {
            // Arm a decoy and cancel it immediately: the queue suppresses
            // it via the watermark without searching or shifting entries.
            // The 200 µs horizon still hops wheel levels near slot
            // boundaries without clustering more entries into one
            // higher-level slot than its seeded capacity holds (arbitrary
            // clustering grows a slot once and is then alloc-free, but
            // only after a full rotation of that level — longer than
            // this test's warmup for level 2 and up).
            ctx.set_timer(SimDuration::from_micros(200), TimerToken(1));
            ctx.cancel_timer(TimerToken(1));
        }
    }
}

/// After warmup, a steady stream of timer fires (including wheel
/// cascades across slot and level boundaries, and watermark-cancelled
/// timers) performs zero heap allocations — the acceptance tripwire for
/// the timer-wheel scheduler.
#[test]
fn timer_fires_steady_state_allocate_nothing() {
    let mut w = World::new(11);
    // Pre-sizing is part of the contract under test: a world that hints
    // its steady-state event count never grows queue storage afterwards.
    w.reserve_events(64);
    let id = w.add_node(Spinner { fires: 0 });
    w.add_iface(id, None);
    w.start();

    // Warmup: level-0/1 slot rotation, cancellation map insertion.
    w.run_until(SimTime::from_millis(50));
    let fires_before = w.node::<Spinner>(id).fires;
    let allocs_before = thread_allocs();

    // Measured window: long enough that the wheel cursor crosses many
    // level-2 slot boundaries (one per ~4.2 ms) and cascades there.
    w.run_until(SimTime::from_millis(450));

    let allocs = thread_allocs() - allocs_before;
    let fires = w.node::<Spinner>(id).fires - fires_before;
    assert!(fires >= 5000, "expected a busy window, fired only {fires}");
    assert_eq!(allocs, 0, "timer path allocated {allocs} times across {fires} fires");
}

//! Simulated time: nanosecond-resolution instants and durations.
//!
//! Simulated time is a `u64` count of nanoseconds since the start of the
//! run, which gives ~584 years of range — effectively unbounded for the
//! experiments in this repository.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
///
/// ```rust
/// use netsim::time::{SimTime, SimDuration};
/// let t = SimTime::from_millis(5) + SimDuration::from_micros(250);
/// assert_eq!(t.as_nanos(), 5_250_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
///
/// ```rust
/// use netsim::time::SimDuration;
/// assert_eq!(SimDuration::from_millis(2) * 3, SimDuration::from_micros(6000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> SimTime {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> SimTime {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> SimTime {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0.checked_sub(earlier.0).expect("SimTime::since: `earlier` is later than `self`"),
        )
    }

    /// Saturating instant addition: clamps at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> SimDuration {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> SimDuration {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> SimDuration {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> SimDuration {
        SimDuration(secs * 1_000_000_000)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scales the duration by a float factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "SimDuration::mul_f64: factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(4).as_nanos(), 4_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!((t + d).as_millis(), 15);
        assert_eq!((t - d).as_millis(), 5);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 3, SimDuration::from_millis(15));
        assert_eq!(d / 5, SimDuration::from_millis(1));
    }

    #[test]
    fn since_measures_elapsed() {
        let a = SimTime::from_millis(2);
        let b = SimTime::from_millis(9);
        assert_eq!(b.since(a), SimDuration::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "`earlier` is later")]
    fn since_panics_when_reversed() {
        let _ = SimTime::from_millis(1).since(SimTime::from_millis(2));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration::from_nanos(10).mul_f64(0.25), SimDuration::from_nanos(3));
        assert_eq!(SimDuration::from_secs(2).mul_f64(0.5), SimDuration::from_secs(1));
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
    }
}

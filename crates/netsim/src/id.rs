//! Identifiers for simulation entities: nodes, segments, interfaces, MACs.

use std::fmt;

/// Identifies a node (host or router) within a [`crate::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Identifies a broadcast segment (an Ethernet-like network) within a
/// [`crate::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub usize);

/// Identifies an interface *local to one node* (its index in the node's
/// interface list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IfaceId(pub usize);

/// Identifies a cross-shard portal segment within a
/// [`ShardedWorld`](crate::shard::ShardedWorld).
///
/// A portal is one physical segment (e.g. the hierarchy backbone)
/// replicated into every shard that has nodes attached to it; the id names
/// the *physical* segment, shared by all replicas, so the barrier
/// coordinator can route an egress frame from the sending shard's replica
/// to every other replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortalId(pub usize);

/// A 48-bit link-layer address.
///
/// The [`World`](crate::World) hands out globally unique unicast MACs from a
/// counter; [`MacAddr::BROADCAST`] addresses every attachment on a segment.
///
/// ```rust
/// use netsim::MacAddr;
/// assert!(MacAddr::BROADCAST.is_broadcast());
/// assert_eq!(format!("{}", MacAddr([2, 0, 0, 0, 0, 7])), "02:00:00:00:00:07");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A conventional "no address" placeholder (all zero).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Returns true if this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }

    /// Derives the `n`-th locally-administered unicast MAC.
    pub fn from_index(n: u64) -> MacAddr {
        let b = n.to_be_bytes();
        // 0x02 sets the locally-administered bit and keeps unicast (bit 0 = 0).
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", b[0], b[1], b[2], b[3], b[4], b[5])
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

impl fmt::Display for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_from_index_unique_and_unicast() {
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        assert_ne!(a, b);
        assert!(!a.is_broadcast());
        // Locally administered, unicast.
        assert_eq!(a.0[0] & 0x03, 0x02);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{}", SegmentId(1)), "seg1");
        assert_eq!(format!("{}", IfaceId(0)), "if0");
        assert_eq!(format!("{}", MacAddr::BROADCAST), "ff:ff:ff:ff:ff:ff");
    }
}

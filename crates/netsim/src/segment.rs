//! Broadcast segments: Ethernet-like shared media with latency, jitter and
//! loss.

use crate::id::{IfaceId, MacAddr, NodeId};
use crate::time::SimDuration;

/// Propagation and reliability parameters for a segment.
///
/// The defaults model a quiet wired LAN: 500 µs latency, no jitter, no loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentParams {
    /// Base one-way propagation + transmission delay for every frame.
    pub latency: SimDuration,
    /// Additional uniformly-random delay in `[0, jitter]` drawn per receiver.
    pub jitter: SimDuration,
    /// Independent per-receiver probability in `[0, 1]` that a frame is lost.
    pub loss: f64,
    /// Independent per-receiver probability in `[0, 1]` that a delivered
    /// frame has one random payload bit flipped (fault injection; see
    /// [`crate::faults::FaultOp::SetSegmentCorruption`]). Corrupted copies
    /// still arrive — IPv4/UDP checksums make the damage visible.
    pub corrupt: f64,
}

impl Default for SegmentParams {
    fn default() -> SegmentParams {
        SegmentParams {
            latency: SimDuration::from_micros(500),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            corrupt: 0.0,
        }
    }
}

impl SegmentParams {
    /// A convenience constructor for a lossless fixed-latency segment.
    pub fn with_latency(latency: SimDuration) -> SegmentParams {
        SegmentParams { latency, ..SegmentParams::default() }
    }

    /// Typical wireless cell: higher latency, jitter, and some loss.
    pub fn wireless() -> SegmentParams {
        SegmentParams {
            latency: SimDuration::from_millis(2),
            jitter: SimDuration::from_millis(1),
            ..SegmentParams::default()
        }
    }
}

/// One interface attached to a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Attachment {
    pub node: NodeId,
    pub iface: IfaceId,
    pub mac: MacAddr,
}

/// A broadcast domain. Frames sent by one attachment are delivered to every
/// other attachment whose MAC matches (or all of them for broadcast).
#[derive(Debug)]
pub(crate) struct Segment {
    pub params: SegmentParams,
    pub up: bool,
    pub attachments: Vec<Attachment>,
}

impl Segment {
    pub fn new(params: SegmentParams) -> Segment {
        Segment { params, up: true, attachments: Vec::new() }
    }

    pub fn attach(&mut self, node: NodeId, iface: IfaceId, mac: MacAddr) {
        debug_assert!(
            !self.attachments.iter().any(|a| a.node == node && a.iface == iface),
            "interface attached twice to the same segment"
        );
        self.attachments.push(Attachment { node, iface, mac });
    }

    pub fn detach(&mut self, node: NodeId, iface: IfaceId) {
        self.attachments.retain(|a| !(a.node == node && a.iface == iface));
    }

    /// All attachments that should receive a frame sent by `(node, iface)`
    /// to `dst`.
    pub fn receivers(
        &self,
        sender_node: NodeId,
        sender_iface: IfaceId,
        dst: MacAddr,
    ) -> impl Iterator<Item = &Attachment> {
        self.attachments.iter().filter(move |a| {
            let is_sender = a.node == sender_node && a.iface == sender_iface;
            !is_sender && (dst.is_broadcast() || a.mac == dst)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg_with_three() -> Segment {
        let mut s = Segment::new(SegmentParams::default());
        s.attach(NodeId(0), IfaceId(0), MacAddr::from_index(0));
        s.attach(NodeId(1), IfaceId(0), MacAddr::from_index(1));
        s.attach(NodeId(2), IfaceId(1), MacAddr::from_index(2));
        s
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let s = seg_with_three();
        let rx: Vec<_> =
            s.receivers(NodeId(0), IfaceId(0), MacAddr::BROADCAST).map(|a| a.node).collect();
        assert_eq!(rx, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn unicast_reaches_only_matching_mac() {
        let s = seg_with_three();
        let rx: Vec<_> =
            s.receivers(NodeId(0), IfaceId(0), MacAddr::from_index(2)).map(|a| a.node).collect();
        assert_eq!(rx, vec![NodeId(2)]);
    }

    #[test]
    fn detach_removes_attachment() {
        let mut s = seg_with_three();
        s.detach(NodeId(1), IfaceId(0));
        assert_eq!(s.attachments.len(), 2);
        let rx: Vec<_> =
            s.receivers(NodeId(0), IfaceId(0), MacAddr::BROADCAST).map(|a| a.node).collect();
        assert_eq!(rx, vec![NodeId(2)]);
    }

    #[test]
    fn default_params_are_lossless() {
        let p = SegmentParams::default();
        assert_eq!(p.loss, 0.0);
        assert!(p.latency > SimDuration::ZERO);
    }
}

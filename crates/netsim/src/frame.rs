//! Link-layer frames carried across segments.

use std::ops::Deref;
use std::sync::Arc;

use crate::id::MacAddr;
use telemetry::JourneyId;

/// The payload type carried by a [`Frame`], mirroring Ethernet ethertypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// An IPv4 packet (`0x0800`).
    Ipv4,
    /// An ARP message (`0x0806`).
    Arp,
    /// Any other ethertype, kept for extensibility and tests.
    Other(u16),
}

impl EtherType {
    /// The on-wire 16-bit ethertype value.
    pub fn as_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Parses a 16-bit ethertype value.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// Immutable, cheaply-clonable frame payload bytes.
///
/// Broadcast fan-out and store-and-forward hops clone frames once per
/// receiver; sharing the bytes behind an `Arc` makes each clone a
/// refcount bump instead of a deep copy. Immutability is what makes the
/// sharing sound: a node that wants to alter a payload builds a new one
/// (`Payload::from(vec)`), it can never mutate bytes another in-flight
/// frame is reading.
///
/// Derefs to `&[u8]`, so decoding call sites (`decode(&frame.payload)`)
/// are unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// An empty payload (no allocation).
    pub fn empty() -> Payload {
        Payload(Arc::from(&[][..]))
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copies the bytes into a fresh mutable `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// How many frames currently share these bytes (diagnostics/tests).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::empty()
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload(Arc::from(v))
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Payload {
        Payload(Arc::from(v))
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(v: [u8; N]) -> Payload {
        Payload(Arc::from(&v[..]))
    }
}

impl FromIterator<u8> for Payload {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Payload {
        Payload(iter.into_iter().collect())
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.0 == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        *self.0 == other[..]
    }
}

/// A link-layer frame: source/destination MAC, ethertype, payload bytes.
///
/// Payloads are always fully-encoded wire bytes (e.g. an encoded IPv4
/// packet), so every hop in the simulator exercises real encode/decode
/// paths. Cloning a frame shares the payload (see [`Payload`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sender's MAC address.
    pub src: MacAddr,
    /// Destination MAC address (possibly [`MacAddr::BROADCAST`]).
    pub dst: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
    /// Encoded payload bytes (shared, immutable).
    pub payload: Payload,
    /// The packet journey this frame belongs to (telemetry sidecar, not
    /// on the wire). `None` until [`crate::Ctx::send_frame`] stamps it;
    /// always `None` while telemetry is disabled.
    pub journey: Option<JourneyId>,
}

/// Link-layer header bytes accounted per frame (dst + src + ethertype),
/// matching Ethernet II without preamble/FCS.
pub const LINK_HEADER_BYTES: usize = 14;

impl Frame {
    /// Creates a unicast frame.
    pub fn new(
        src: MacAddr,
        dst: MacAddr,
        ethertype: EtherType,
        payload: impl Into<Payload>,
    ) -> Frame {
        Frame { src, dst, ethertype, payload: payload.into(), journey: None }
    }

    /// Creates a broadcast frame.
    pub fn broadcast(src: MacAddr, ethertype: EtherType, payload: impl Into<Payload>) -> Frame {
        Frame::new(src, MacAddr::BROADCAST, ethertype, payload)
    }

    /// Total on-wire size in bytes (link header plus payload).
    pub fn wire_len(&self) -> usize {
        LINK_HEADER_BYTES + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethertype_round_trips() {
        for et in [EtherType::Ipv4, EtherType::Arp, EtherType::Other(0x88b5)] {
            assert_eq!(EtherType::from_u16(et.as_u16()), et);
        }
    }

    #[test]
    fn known_ethertype_values() {
        assert_eq!(EtherType::Ipv4.as_u16(), 0x0800);
        assert_eq!(EtherType::Arp.as_u16(), 0x0806);
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
    }

    #[test]
    fn wire_len_includes_link_header() {
        let f = Frame::broadcast(MacAddr::from_index(1), EtherType::Ipv4, vec![0; 20]);
        assert_eq!(f.wire_len(), 34);
        assert!(f.dst.is_broadcast());
    }

    #[test]
    fn cloned_frames_share_payload_bytes() {
        let f = Frame::broadcast(MacAddr::from_index(1), EtherType::Ipv4, vec![7; 64]);
        assert_eq!(f.payload.ref_count(), 1);
        let clones: Vec<Frame> = (0..10).map(|_| f.clone()).collect();
        assert_eq!(f.payload.ref_count(), 11);
        for c in &clones {
            assert_eq!(c.payload, f.payload);
            assert!(std::ptr::eq(c.payload.as_slice(), f.payload.as_slice()));
        }
    }

    #[test]
    fn payload_compares_with_plain_byte_types() {
        let p = Payload::from(vec![1u8, 2, 3]);
        assert_eq!(p, vec![1u8, 2, 3]);
        assert_eq!(p, [1u8, 2, 3]);
        assert_eq!(p, &[1u8, 2, 3][..]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.to_vec(), vec![1, 2, 3]);
        assert!(Payload::empty().is_empty());
    }
}

//! Link-layer frames carried across segments.

use crate::id::MacAddr;

/// The payload type carried by a [`Frame`], mirroring Ethernet ethertypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// An IPv4 packet (`0x0800`).
    Ipv4,
    /// An ARP message (`0x0806`).
    Arp,
    /// Any other ethertype, kept for extensibility and tests.
    Other(u16),
}

impl EtherType {
    /// The on-wire 16-bit ethertype value.
    pub fn as_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Parses a 16-bit ethertype value.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// A link-layer frame: source/destination MAC, ethertype, payload bytes.
///
/// Payloads are always fully-encoded wire bytes (e.g. an encoded IPv4
/// packet), so every hop in the simulator exercises real encode/decode
/// paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sender's MAC address.
    pub src: MacAddr,
    /// Destination MAC address (possibly [`MacAddr::BROADCAST`]).
    pub dst: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
    /// Encoded payload bytes.
    pub payload: Vec<u8>,
}

/// Link-layer header bytes accounted per frame (dst + src + ethertype),
/// matching Ethernet II without preamble/FCS.
pub const LINK_HEADER_BYTES: usize = 14;

impl Frame {
    /// Creates a unicast frame.
    pub fn new(src: MacAddr, dst: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> Frame {
        Frame { src, dst, ethertype, payload }
    }

    /// Creates a broadcast frame.
    pub fn broadcast(src: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> Frame {
        Frame::new(src, MacAddr::BROADCAST, ethertype, payload)
    }

    /// Total on-wire size in bytes (link header plus payload).
    pub fn wire_len(&self) -> usize {
        LINK_HEADER_BYTES + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethertype_round_trips() {
        for et in [EtherType::Ipv4, EtherType::Arp, EtherType::Other(0x88b5)] {
            assert_eq!(EtherType::from_u16(et.as_u16()), et);
        }
    }

    #[test]
    fn known_ethertype_values() {
        assert_eq!(EtherType::Ipv4.as_u16(), 0x0800);
        assert_eq!(EtherType::Arp.as_u16(), 0x0806);
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
    }

    #[test]
    fn wire_len_includes_link_header() {
        let f = Frame::broadcast(MacAddr::from_index(1), EtherType::Ipv4, vec![0; 20]);
        assert_eq!(f.wire_len(), 34);
        assert!(f.dst.is_broadcast());
    }
}

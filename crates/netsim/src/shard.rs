//! Conservative parallel simulation: region-owned shards exchanging
//! cross-shard frames at barrier windows.
//!
//! A [`ShardedWorld`] is a set of ordinary [`World`]s — the *shards* —
//! each owning a disjoint set of nodes and segments (its own event wheel,
//! node arena, RNG, statistics and telemetry log), plus a handful of
//! *portal* segments replicated into every shard that has attachments on
//! them. The hierarchy generator maps this directly: every region is a
//! shard, and the backbone is the one portal.
//!
//! # Execution model
//!
//! The coordinator runs classic conservative (CMB-style) windows. Let `L`
//! be the **lookahead**: the minimum latency over all portal segments.
//! Execution alternates:
//!
//! 1. **Window** — every shard independently runs `run_until(barrier +
//!    L)`. Shards share nothing, so windows run on scoped worker threads
//!    (or sequentially — the result is identical by construction).
//! 2. **Exchange** — each shard drains its egress mailbox (frames it
//!    transmitted onto a portal during the window). The coordinator sorts
//!    the union by `(arrival time, source shard, per-shard send order)`
//!    and injects each frame into every *other* replica of its portal.
//!
//! This is safe because a frame sent onto a portal at time `t` arrives at
//! `t + latency ≥ t + L`, which is strictly after the barrier that closes
//! the window containing `t` — no shard can ever receive an event in its
//! past, so no rollback machinery (Time Warp) is needed. See DESIGN.md
//! §10 for the derivation and the determinism argument.
//!
//! # Determinism
//!
//! Within one shard, execution is the ordinary sequential `(time, seq)`
//! order. Across shards, the exchange order above is a pure function of
//! the simulation content, so replays are byte-identical regardless of
//! whether windows ran on threads. Comparing runs *across shard counts*
//! uses [`ShardedWorld::merged_events`], which normalizes the per-shard
//! telemetry logs into one canonical stream (global node ids, journeys
//! renumbered by first appearance).

use std::collections::HashMap;

use crate::faults::{FaultOp, FaultPlan};
use crate::id::{IfaceId, MacAddr, NodeId, PortalId, SegmentId};
use crate::node::Ctx;
use crate::segment::SegmentParams;
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::world::{AdminOp, EgressFrame, World};
use crate::Node;
use telemetry::{Event, EventKind, FaultKind, JourneyId};

/// The surface shared by [`World`] and [`ShardedWorld`]: everything a
/// scenario driver (soak harness, mobility plan, experiment script)
/// needs to run a simulation without caring how it executes.
///
/// Generic drivers take `W: SimWorld` and work unchanged on both; code
/// that needs world-building or fault-injection APIs keeps the concrete
/// type.
pub trait SimWorld {
    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Processes all events up to and including `t`, then advances the
    /// clock to `t`.
    fn run_until(&mut self, t: SimTime);

    /// Runs for `d` of simulated time from now.
    fn run_for(&mut self, d: SimDuration) {
        let t = self.now() + d;
        self.run_until(t);
    }

    /// Typed shared access to a node.
    fn node<T: 'static>(&self, id: NodeId) -> &T;

    /// Runs `f` with typed mutable access to a node and a live [`Ctx`].
    fn with_node<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R;

    /// Schedules an [`AdminOp`] at absolute time `at`.
    fn schedule_admin(&mut self, at: SimTime, op: AdminOp);

    /// A named counter's value (summed over shards for sharded worlds).
    fn counter(&self, name: &str) -> u64;

    /// Total events processed since creation (summed over shards).
    fn events_processed(&self) -> u64;
}

impl SimWorld for World {
    fn now(&self) -> SimTime {
        World::now(self)
    }
    fn run_until(&mut self, t: SimTime) {
        World::run_until(self, t);
    }
    fn node<T: 'static>(&self, id: NodeId) -> &T {
        World::node(self, id)
    }
    fn with_node<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R {
        World::with_node(self, id, f)
    }
    fn schedule_admin(&mut self, at: SimTime, op: AdminOp) {
        World::schedule_admin(self, at, op);
    }
    fn counter(&self, name: &str) -> u64 {
        self.stats().counter(name)
    }
    fn events_processed(&self) -> u64 {
        World::events_processed(self)
    }
}

/// Journey-id namespace stride: shard `s` mints ids above `s << 40`, so
/// concurrent mints on different shards never collide (2^40 journeys per
/// shard before overlap — far beyond the telemetry ring's horizon).
const JOURNEY_SHARD_SHIFT: u32 = 40;

/// A [`World`] wrapped for transfer to a worker thread.
///
/// `World` is not auto-`Send` only because node state lives behind
/// `NonNull<dyn Node>` arena pointers. Those pointees are `dyn Node`,
/// and [`Node`] requires `Send`; every pointer targets memory owned
/// exclusively by this world's arena, and nothing else ever aliases it.
/// All remaining fields (`StdRng`, queues, stats, telemetry, pools) are
/// ordinary owned data. Moving the whole cell between threads is
/// therefore sound.
struct ShardCell(World);

// SAFETY: see the `ShardCell` doc comment — the only non-Send fields are
// arena pointers to `dyn Node` (a `Send` trait object) owned exclusively
// by this cell's own arena.
unsafe impl Send for ShardCell {}

/// Where a global segment id lives.
#[derive(Debug, Clone, Copy)]
enum SegLoc {
    /// An ordinary segment owned by one shard.
    Local {
        shard: u32,
        seg: SegmentId,
    },
    Portal(PortalId),
}

/// One physical portal segment and its per-shard replicas.
#[derive(Debug)]
struct PortalInfo {
    /// `(shard, local segment id)` of every replica, in shard order.
    replicas: Vec<(u32, SegmentId)>,
}

/// A parallel simulation world: shard-owned [`World`]s coordinated by a
/// conservative barrier scheduler (see the [module docs](self)).
///
/// The builder API mirrors [`World`] with an explicit home shard per
/// node/segment; ids handed out are *global* and translated internally.
/// A `ShardedWorld` with one shard behaves exactly like the `World` it
/// wraps (no portals are created, so the exchange machinery never runs).
pub struct ShardedWorld {
    cells: Vec<ShardCell>,
    time: SimTime,
    started: bool,
    /// Global node id → (owning shard, shard-local id).
    node_loc: Vec<(u32, NodeId)>,
    /// Per shard: shard-local node id → global node id.
    node_global: Vec<Vec<u32>>,
    /// Global segment id → location.
    seg_loc: Vec<SegLoc>,
    portals: Vec<PortalInfo>,
    /// Global MAC counter: addresses are assigned in world-build order,
    /// independent of the shard count (the determinism contract).
    mac_counter: u64,
    /// Minimum portal latency; `None` until a portal exists (then runs
    /// execute as one window).
    lookahead: Option<SimDuration>,
    /// Run windows on scoped threads (true by default on multi-core
    /// hosts). Execution mode never changes results.
    parallel: bool,
    /// Barrier windows executed (diagnostics).
    windows: u64,
    exchange_scratch: Vec<(u32, EgressFrame)>,
}

impl ShardedWorld {
    /// Creates a world of `shards` empty shards.
    ///
    /// Shard 0 is seeded with exactly `seed` (a 1-shard world replays a
    /// classic `World::new(seed)` bit-for-bit); shard `i` derives its RNG
    /// stream as `seed + i * GOLDEN_GAMMA`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(seed: u64, shards: usize) -> ShardedWorld {
        assert!(shards >= 1, "a sharded world needs at least one shard");
        let cells = (0..shards)
            .map(|i| {
                ShardCell(World::new(
                    seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ))
            })
            .collect();
        ShardedWorld {
            cells,
            time: SimTime::ZERO,
            started: false,
            node_loc: Vec::new(),
            node_global: vec![Vec::new(); shards],
            seg_loc: Vec::new(),
            portals: Vec::new(),
            mac_counter: 0,
            lookahead: None,
            parallel: std::thread::available_parallelism().map(|n| n.get() > 1).unwrap_or(false),
            windows: 0,
            exchange_scratch: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// The barrier lookahead (minimum portal latency), once a portal
    /// exists.
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// Barrier windows executed so far (diagnostics; 0 before the first
    /// run).
    pub fn windows_run(&self) -> u64 {
        self.windows
    }

    /// Forces windows to run sequentially (`false`) or on scoped worker
    /// threads (`true`). The default probes the host's parallelism.
    /// Execution mode never affects results — flipping this is a cheap
    /// way to bisect a suspected determinism bug.
    pub fn set_parallel(&mut self, on: bool) {
        self.parallel = on;
    }

    /// Read access to one shard's underlying [`World`] (diagnostics,
    /// per-shard stats and telemetry).
    pub fn shard(&self, shard: usize) -> &World {
        &self.cells[shard].0
    }

    /// Adds an ordinary segment owned by `shard`. Returns a global id.
    pub fn add_segment(&mut self, shard: usize, params: SegmentParams) -> SegmentId {
        let local = self.cells[shard].0.add_segment(params);
        let id = SegmentId(self.seg_loc.len());
        self.seg_loc.push(SegLoc::Local { shard: shard as u32, seg: local });
        id
    }

    /// Adds a portal segment replicated into every shard in `shards`
    /// (deduplicated; order is normalized). Returns a global id.
    ///
    /// With a single distinct shard this degenerates to an ordinary local
    /// segment — which is why a 1-shard world carries zero portal
    /// overhead and replays the classic path exactly.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, or (with ≥ 2 distinct shards) if
    /// `params` is not deterministic — portals need fixed latency and no
    /// jitter/loss/corruption, both for the lookahead bound and because
    /// arrivals are replayed into other shards without re-drawing
    /// randomness.
    pub fn add_portal_segment(&mut self, params: SegmentParams, shards: &[usize]) -> SegmentId {
        let mut list: Vec<usize> = shards.to_vec();
        list.sort_unstable();
        list.dedup();
        assert!(!list.is_empty(), "portal needs at least one shard");
        if list.len() == 1 {
            return self.add_segment(list[0], params);
        }
        let portal = PortalId(self.portals.len());
        let mut replicas = Vec::with_capacity(list.len());
        for &s in &list {
            let local = self.cells[s].0.add_segment(params);
            self.cells[s].0.mark_portal(local, portal);
            replicas.push((s as u32, local));
        }
        self.portals.push(PortalInfo { replicas });
        self.lookahead = Some(self.lookahead.map_or(params.latency, |l| l.min(params.latency)));
        let id = SegmentId(self.seg_loc.len());
        self.seg_loc.push(SegLoc::Portal(portal));
        id
    }

    /// Adds a node owned by `shard`. Returns a global id (assigned in
    /// call order, independent of the shard count).
    pub fn add_node(&mut self, shard: usize, node: impl Node) -> NodeId {
        let local = self.cells[shard].0.add_node(node);
        let id = NodeId(self.node_loc.len());
        self.node_loc.push((shard as u32, local));
        self.node_global[shard].push(id.0 as u32);
        id
    }

    /// Adds an interface to `node`, optionally attached to a (global)
    /// segment. MAC addresses come from one global counter, so a node
    /// keeps the same address no matter how the world is sharded.
    ///
    /// # Panics
    ///
    /// Panics if `segment` is a local segment of a different shard, or a
    /// portal without a replica in the node's shard.
    pub fn add_iface(&mut self, node: NodeId, segment: Option<SegmentId>) -> (IfaceId, MacAddr) {
        let (shard, local_node) = self.node_loc[node.0];
        let local_seg = segment.map(|s| self.seg_in_shard(s, shard));
        let mac_index = self.mac_counter;
        self.mac_counter += 1;
        self.cells[shard as usize].0.add_iface_with_mac(local_node, local_seg, mac_index)
    }

    /// Hints the expected steady-state event population *per shard* (see
    /// [`World::reserve_events`]).
    pub fn reserve_events(&mut self, per_shard: usize) {
        for cell in &mut self.cells {
            cell.0.reserve_events(per_shard);
        }
    }

    /// Runs every node's `on_start`, shard by shard, then exchanges any
    /// portal egress the start handlers produced. Call exactly once.
    pub fn start(&mut self) {
        assert!(!self.started, "ShardedWorld::start called twice");
        self.started = true;
        for cell in &mut self.cells {
            cell.0.start();
        }
        self.exchange();
    }

    /// Enables or disables structured telemetry on every shard. Each
    /// shard's log mints journey ids in its own namespace
    /// (`shard << 40`); [`ShardedWorld::merged_events`] renumbers them
    /// into one dense canonical sequence.
    pub fn set_telemetry(&mut self, enabled: bool) {
        for (i, cell) in self.cells.iter_mut().enumerate() {
            cell.0.set_telemetry(enabled);
            cell.0.telemetry_mut().set_journey_base((i as u64) << JOURNEY_SHARD_SHIFT);
        }
    }

    /// Re-sizes every shard's telemetry ring (see
    /// [`World::set_telemetry_capacity`]).
    pub fn set_telemetry_capacity(&mut self, events_per_shard: usize) {
        for cell in &mut self.cells {
            cell.0.set_telemetry_capacity(events_per_shard);
        }
    }

    /// Whether `node` is currently crashed by a fault.
    pub fn node_is_down(&self, node: NodeId) -> bool {
        let (shard, local) = self.node_loc[node.0];
        self.cells[shard as usize].0.node_is_down(local)
    }

    /// Compiles a [`FaultPlan`] onto the shards, translating each
    /// operation to its owning shard (see [`ShardedWorld::schedule_fault`]
    /// for the rules).
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        for (at, op) in plan.ops() {
            self.schedule_fault(*at, op.clone());
        }
    }

    /// Schedules one [`FaultOp`], translated to the owning shard:
    ///
    /// * node-scoped ops go to the node's shard;
    /// * local-segment ops go to the segment's shard;
    /// * portal `SegmentDown`/`SegmentUp` apply the real fault on the
    ///   first replica (one telemetry event and one `fault.ops_applied`
    ///   count, exactly like a single world) and mirror the up/down state
    ///   silently onto the other replicas.
    ///
    /// # Panics
    ///
    /// Panics for latency/loss/corruption faults on a portal: they would
    /// invalidate the lookahead bound or desynchronize the replicas'
    /// RNG-free replay. Partition the hierarchy with portal
    /// `SegmentDown` instead.
    pub fn schedule_fault(&mut self, at: SimTime, op: FaultOp) {
        match op {
            FaultOp::SegmentDown { segment } | FaultOp::SegmentUp { segment } => {
                let up = matches!(op, FaultOp::SegmentUp { .. });
                match self.seg_loc[segment.0] {
                    SegLoc::Local { shard, seg } => {
                        let op = if up {
                            FaultOp::SegmentUp { segment: seg }
                        } else {
                            FaultOp::SegmentDown { segment: seg }
                        };
                        self.cells[shard as usize].0.schedule_fault(at, op);
                    }
                    SegLoc::Portal(p) => {
                        for (i, &(shard, seg)) in self.portals[p.0].replicas.iter().enumerate() {
                            if i == 0 {
                                let op = if up {
                                    FaultOp::SegmentUp { segment: seg }
                                } else {
                                    FaultOp::SegmentDown { segment: seg }
                                };
                                self.cells[shard as usize].0.schedule_fault(at, op);
                            } else {
                                self.cells[shard as usize]
                                    .0
                                    .schedule_admin(at, AdminOp::SetSegmentUp { segment: seg, up });
                            }
                        }
                    }
                }
            }
            FaultOp::SetSegmentLoss { segment, loss } => {
                let (shard, seg) = self.local_seg_only(segment, "SetSegmentLoss");
                self.cells[shard]
                    .0
                    .schedule_fault(at, FaultOp::SetSegmentLoss { segment: seg, loss });
            }
            FaultOp::SetSegmentLatency { segment, latency } => {
                let (shard, seg) = self.local_seg_only(segment, "SetSegmentLatency");
                self.cells[shard]
                    .0
                    .schedule_fault(at, FaultOp::SetSegmentLatency { segment: seg, latency });
            }
            FaultOp::LatencySpike { segment, extra, duration } => {
                let (shard, seg) = self.local_seg_only(segment, "LatencySpike");
                self.cells[shard]
                    .0
                    .schedule_fault(at, FaultOp::LatencySpike { segment: seg, extra, duration });
            }
            FaultOp::SetSegmentCorruption { segment, probability } => {
                let (shard, seg) = self.local_seg_only(segment, "SetSegmentCorruption");
                self.cells[shard].0.schedule_fault(
                    at,
                    FaultOp::SetSegmentCorruption { segment: seg, probability },
                );
            }
            FaultOp::DetachIface { node, iface } => {
                let (shard, local) = self.node_loc[node.0];
                self.cells[shard as usize]
                    .0
                    .schedule_fault(at, FaultOp::DetachIface { node: local, iface });
            }
            FaultOp::AttachIface { node, iface, segment } => {
                let (shard, local) = self.node_loc[node.0];
                let seg = self.seg_in_shard(segment, shard);
                self.cells[shard as usize]
                    .0
                    .schedule_fault(at, FaultOp::AttachIface { node: local, iface, segment: seg });
            }
            FaultOp::Crash { node, down_for } => {
                let (shard, local) = self.node_loc[node.0];
                self.cells[shard as usize]
                    .0
                    .schedule_fault(at, FaultOp::Crash { node: local, down_for });
            }
            FaultOp::Reboot { node } => {
                let (shard, local) = self.node_loc[node.0];
                self.cells[shard as usize].0.schedule_fault(at, FaultOp::Reboot { node: local });
            }
            FaultOp::MuteBroadcasts { node, iface } => {
                let (shard, local) = self.node_loc[node.0];
                self.cells[shard as usize]
                    .0
                    .schedule_fault(at, FaultOp::MuteBroadcasts { node: local, iface });
            }
            FaultOp::UnmuteBroadcasts { node, iface } => {
                let (shard, local) = self.node_loc[node.0];
                self.cells[shard as usize]
                    .0
                    .schedule_fault(at, FaultOp::UnmuteBroadcasts { node: local, iface });
            }
        }
    }

    /// A merged copy of every shard's statistics (counters summed,
    /// series and histograms concatenated per name).
    pub fn merged_stats(&self) -> Stats {
        let mut out = Stats::new();
        for cell in &self.cells {
            out.merge(cell.0.stats());
        }
        out
    }

    /// The canonical cross-shard telemetry stream: every shard's typed
    /// events with node ids translated to global ids, sorted by
    /// `(time, node, kind)` — stable, so same-key events keep their
    /// per-shard log order — with journey ids renumbered densely by
    /// first appearance.
    ///
    /// Two runs of the same scenario produce identical streams across
    /// *any* shard count, provided the scenario itself is shard-count
    /// neutral (no segment jitter/loss on traffic paths, and no node
    /// draws from the per-shard RNG). The determinism proptests pin
    /// this for the hierarchy worlds.
    pub fn merged_events(&self) -> Vec<Event> {
        let mut keyed: Vec<((u64, u32, u32), Event)> = Vec::new();
        for (si, cell) in self.cells.iter().enumerate() {
            for ev in cell.0.telemetry().events() {
                let mut ev = *ev;
                if let Some(local) = ev.node {
                    ev.node = Some(self.node_global[si][local as usize]);
                }
                keyed.push(((ev.at_nanos, ev.node.unwrap_or(u32::MAX), kind_rank(&ev.kind)), ev));
            }
        }
        keyed.sort_by_key(|&(k, _)| k);
        let mut renumber: HashMap<u64, u64> = HashMap::new();
        let mut next = 0u64;
        let mut out = Vec::with_capacity(keyed.len());
        for (_, mut ev) in keyed {
            if let Some(j) = ev.journey {
                let id = *renumber.entry(j.0).or_insert_with(|| {
                    next += 1;
                    next
                });
                ev.journey = Some(JourneyId(id));
            }
            out.push(ev);
        }
        out
    }

    /// Runs all shards to `t` in conservative barrier windows (see the
    /// [module docs](self)).
    ///
    /// With parallel execution on, one set of worker threads is spawned
    /// up front and persists across every window of this call — windows
    /// are often tiny (one lookahead), so per-window spawns would
    /// dominate. Sequential and threaded modes drive the identical
    /// barrier loop (`drive_windows`) and produce identical
    /// results: shards share no state inside a window.
    pub fn run_until(&mut self, t: SimTime) {
        assert!(self.started, "call ShardedWorld::start before running");
        if self.parallel && self.cells.len() > 1 {
            self.run_until_threaded(t);
        } else {
            self.drive_windows(t, |cells, end| {
                for cell in cells.iter_mut() {
                    cell.0.run_until(end);
                }
            });
        }
    }

    /// The barrier loop shared by sequential and threaded execution:
    /// pick the window end (min of lookahead and the target), let `run`
    /// advance every shard to it, then drain the cross-shard mailboxes
    /// at the barrier.
    fn drive_windows(&mut self, t: SimTime, mut run: impl FnMut(&mut Vec<ShardCell>, SimTime)) {
        loop {
            let end = match self.lookahead {
                Some(l) if self.time + l < t => self.time + l,
                _ => t,
            };
            run(&mut self.cells, end);
            self.exchange();
            self.windows += 1;
            if end >= t {
                self.time = t.max(self.time);
                return;
            }
            self.time = end;
        }
    }

    /// Threaded window execution on persistent workers: each shard gets
    /// one worker for the whole call, cells travel to their worker and
    /// back through channels each window (a send/recv pair, not a thread
    /// spawn), and the barrier holds because the driver collects all
    /// `cells.len()` completions before exchanging.
    fn run_until_threaded(&mut self, t: SimTime) {
        let n = self.cells.len();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<(usize, ShardCell)>();
        std::thread::scope(|s| {
            let mut work_txs = Vec::with_capacity(n);
            for i in 0..n {
                let (tx, rx) = std::sync::mpsc::channel::<(ShardCell, SimTime)>();
                work_txs.push(tx);
                let done = done_tx.clone();
                s.spawn(move || {
                    while let Ok((mut cell, end)) = rx.recv() {
                        cell.0.run_until(end);
                        if done.send((i, cell)).is_err() {
                            return;
                        }
                    }
                });
            }
            self.drive_windows(t, |cells, end| {
                for (i, cell) in cells.drain(..).enumerate() {
                    work_txs[i].send((cell, end)).expect("shard worker alive");
                }
                let mut returned: Vec<Option<ShardCell>> = (0..n).map(|_| None).collect();
                for _ in 0..n {
                    let (i, cell) = done_rx.recv().expect("shard worker alive");
                    returned[i] = Some(cell);
                }
                cells.extend(returned.into_iter().map(|c| c.expect("one cell per worker")));
            });
            // Closing the work channels ends the workers' recv loops so
            // the scope can join them.
            drop(work_txs);
        });
    }

    /// Runs for `d` of simulated time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.time + d;
        self.run_until(t);
    }

    /// Current simulated time (the last barrier every shard reached).
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.cells.iter().map(|c| c.0.events_processed()).sum()
    }

    /// A named counter summed across all shards.
    pub fn counter(&self, name: &str) -> u64 {
        self.cells.iter().map(|c| c.0.stats().counter(name)).sum()
    }

    /// Typed shared access to a node (global id).
    pub fn node<T: 'static>(&self, id: NodeId) -> &T {
        let (shard, local) = self.node_loc[id.0];
        self.cells[shard as usize].0.node(local)
    }

    /// Runs `f` with typed mutable access to a node and a live [`Ctx`]
    /// on its owning shard, then exchanges any portal egress the handler
    /// produced (so script-driven sends cross shards without waiting for
    /// the next barrier).
    pub fn with_node<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R {
        let (shard, local) = self.node_loc[id.0];
        let out = self.cells[shard as usize].0.with_node(local, f);
        self.exchange();
        out
    }

    /// Schedules an [`AdminOp`] (global ids), translated to the owning
    /// shard. Portal segments accept only `SetSegmentUp` (mirrored onto
    /// every replica).
    ///
    /// # Panics
    ///
    /// Panics on `AdminOp::Call` (a script closure cannot run against
    /// one shard and still observe the whole world — use the node-scoped
    /// `AdminOp::CallNode`, which is routed to the owning shard with the
    /// node id rewritten to the shard-local one), on cross-shard
    /// `MoveIface`/`AttachIface` (shard migration is unsupported; keep
    /// mobility region-confined), and on `SetSegmentLoss` for a portal.
    pub fn schedule_admin(&mut self, at: SimTime, op: AdminOp) {
        match op {
            AdminOp::AttachIface { node, iface, segment } => {
                let (shard, local) = self.node_loc[node.0];
                let seg = self.seg_in_shard(segment, shard);
                self.cells[shard as usize]
                    .0
                    .schedule_admin(at, AdminOp::AttachIface { node: local, iface, segment: seg });
            }
            AdminOp::MoveIface { node, iface, segment } => {
                let (shard, local) = self.node_loc[node.0];
                let seg = self.seg_in_shard(segment, shard);
                self.cells[shard as usize]
                    .0
                    .schedule_admin(at, AdminOp::MoveIface { node: local, iface, segment: seg });
            }
            AdminOp::DetachIface { node, iface } => {
                let (shard, local) = self.node_loc[node.0];
                self.cells[shard as usize]
                    .0
                    .schedule_admin(at, AdminOp::DetachIface { node: local, iface });
            }
            AdminOp::SetSegmentUp { segment, up } => match self.seg_loc[segment.0] {
                SegLoc::Local { shard, seg } => {
                    self.cells[shard as usize]
                        .0
                        .schedule_admin(at, AdminOp::SetSegmentUp { segment: seg, up });
                }
                SegLoc::Portal(p) => {
                    for &(shard, seg) in &self.portals[p.0].replicas {
                        self.cells[shard as usize]
                            .0
                            .schedule_admin(at, AdminOp::SetSegmentUp { segment: seg, up });
                    }
                }
            },
            AdminOp::SetSegmentLoss { segment, loss } => {
                let (shard, seg) = self.local_seg_only(segment, "SetSegmentLoss");
                self.cells[shard]
                    .0
                    .schedule_admin(at, AdminOp::SetSegmentLoss { segment: seg, loss });
            }
            AdminOp::Reboot { node } => {
                let (shard, local) = self.node_loc[node.0];
                self.cells[shard as usize].0.schedule_admin(at, AdminOp::Reboot { node: local });
            }
            AdminOp::Call(_) => {
                panic!(
                    "AdminOp::Call is not supported on a ShardedWorld: a script closure \
                        would see one shard, not the world"
                )
            }
            AdminOp::CallNode { node, script } => {
                let (shard, local) = self.node_loc[node.0];
                self.cells[shard as usize]
                    .0
                    .schedule_admin(at, AdminOp::CallNode { node: local, script });
            }
        }
    }

    /// Resolves a global segment to its id inside `shard` (a local
    /// segment owned by that shard, or that shard's portal replica).
    fn seg_in_shard(&self, segment: SegmentId, shard: u32) -> SegmentId {
        match self.seg_loc[segment.0] {
            SegLoc::Local { shard: s, seg } => {
                assert!(
                    s == shard,
                    "segment {segment} is owned by shard {s}, not shard {shard} \
                     (cross-shard attachment is unsupported — keep mobility region-confined)"
                );
                seg
            }
            SegLoc::Portal(p) => self.portals[p.0]
                .replicas
                .iter()
                .find(|&&(s, _)| s == shard)
                .map(|&(_, seg)| seg)
                .unwrap_or_else(|| panic!("shard {shard} has no replica of portal {segment}")),
        }
    }

    /// Resolves a global segment that must not be a portal.
    fn local_seg_only(&self, segment: SegmentId, what: &str) -> (usize, SegmentId) {
        match self.seg_loc[segment.0] {
            SegLoc::Local { shard, seg } => (shard as usize, seg),
            SegLoc::Portal(_) => panic!(
                "{what} is not supported on portal {segment}: portals must keep fixed latency \
                 and deterministic delivery (the lookahead bound depends on it); use \
                 SegmentDown/SegmentUp to partition instead"
            ),
        }
    }

    /// The barrier exchange: drain every shard's portal egress, order
    /// the union deterministically by `(arrival time, source shard,
    /// per-shard send order)` — the mailbox invariant — and inject each
    /// frame into every other replica of its portal. By the lookahead
    /// rule every arrival lies strictly beyond the barrier, so injection
    /// never reaches into a shard's past.
    fn exchange(&mut self) {
        let mut batch = std::mem::take(&mut self.exchange_scratch);
        for (i, cell) in self.cells.iter_mut().enumerate() {
            cell.0.drain_egress_into(i as u32, &mut batch);
        }
        if !batch.is_empty() {
            // Stable sort; per-shard drains preserve send order, so the
            // third key of the invariant is implicit.
            batch.sort_by_key(|&(src, ref ef)| (ef.at, src));
            for (src, ef) in batch.drain(..) {
                for &(shard, seg) in &self.portals[ef.portal.0].replicas {
                    if shard == src {
                        continue;
                    }
                    self.cells[shard as usize].0.inject_portal_frame(ef.at, seg, &ef.frame);
                }
            }
        }
        batch.clear();
        self.exchange_scratch = batch;
    }
}

impl std::fmt::Debug for ShardedWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedWorld")
            .field("shards", &self.cells.len())
            .field("time", &self.time)
            .field("nodes", &self.node_loc.len())
            .field("portals", &self.portals.len())
            .field("lookahead", &self.lookahead)
            .field("windows", &self.windows)
            .finish()
    }
}

impl SimWorld for ShardedWorld {
    fn now(&self) -> SimTime {
        ShardedWorld::now(self)
    }
    fn run_until(&mut self, t: SimTime) {
        ShardedWorld::run_until(self, t);
    }
    fn node<T: 'static>(&self, id: NodeId) -> &T {
        ShardedWorld::node(self, id)
    }
    fn with_node<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R {
        ShardedWorld::with_node(self, id, f)
    }
    fn schedule_admin(&mut self, at: SimTime, op: AdminOp) {
        ShardedWorld::schedule_admin(self, at, op);
    }
    fn counter(&self, name: &str) -> u64 {
        ShardedWorld::counter(self, name)
    }
    fn events_processed(&self) -> u64 {
        ShardedWorld::events_processed(self)
    }
}

/// A total order over [`EventKind`] variants (and fault sub-kinds) used
/// to break cross-shard ties between same-instant events at the same
/// node key. Same-node events come from one shard and keep log order;
/// this rank only ever decides between *global* (node-less) fault events
/// from different shards, whose payload is the kind itself.
fn kind_rank(kind: &EventKind) -> u32 {
    match kind {
        EventKind::FrameTx { .. } => 0,
        EventKind::FrameRx { .. } => 1,
        EventKind::FrameDrop { .. } => 2,
        EventKind::Timer { .. } => 3,
        EventKind::Encap { .. } => 4,
        EventKind::Decap => 5,
        EventKind::Retunnel => 6,
        EventKind::LoopDetected { .. } => 7,
        EventKind::CacheHit => 8,
        EventKind::CacheUpdate => 9,
        EventKind::AuthReject => 10,
        EventKind::PoisonDrop => 11,
        EventKind::Fault { kind } => {
            16 + match kind {
                FaultKind::SegmentDown => 0,
                FaultKind::SegmentUp => 1,
                FaultKind::Loss => 2,
                FaultKind::Latency => 3,
                FaultKind::Corruption => 4,
                FaultKind::Detach => 5,
                FaultKind::Attach => 6,
                FaultKind::Crash => 7,
                FaultKind::Reboot => 8,
                FaultKind::Mute => 9,
                FaultKind::Unmute => 10,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{EtherType, Frame};
    use crate::node::{LinkEvent, TimerToken};
    use crate::IfaceId;

    /// Counts received frames; optionally replies to unicasts.
    struct Sink {
        rx: usize,
        last_payload: Vec<u8>,
        reply: bool,
    }
    impl Sink {
        fn new(reply: bool) -> Sink {
            Sink { rx: 0, last_payload: Vec::new(), reply }
        }
    }
    impl Node for Sink {
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
            self.rx += 1;
            self.last_payload = frame.payload.to_vec();
            if self.reply && !frame.dst.is_broadcast() {
                let f = Frame::new(ctx.mac(iface), frame.src, frame.ethertype, vec![0x5a]);
                ctx.send_frame(iface, f);
            }
        }
    }

    /// Sends one unicast to a fixed MAC at t = 1 ms.
    struct Pinger {
        dst: MacAddr,
        rx: usize,
    }
    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(1), TimerToken(1));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
            let f = Frame::new(ctx.mac(IfaceId(0)), self.dst, EtherType::Other(0x1234), vec![7]);
            ctx.send_frame(IfaceId(0), f);
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _i: IfaceId, _f: &Frame) {
            self.rx += 1;
        }
    }

    /// Two shards joined by a portal; a ping from shard 0 must reach the
    /// sink on shard 1 and the reply must come back — entirely through
    /// the barrier exchange.
    #[test]
    fn portal_round_trip_across_two_shards() {
        let mut w = ShardedWorld::new(7, 2);
        let portal = w.add_portal_segment(SegmentParams::default(), &[0, 1]);
        let sink_mac = MacAddr::from_index(1);
        let pinger = w.add_node(0, Pinger { dst: sink_mac, rx: 0 });
        w.add_iface(pinger, Some(portal));
        let sink = w.add_node(1, Sink::new(true));
        let (_, mac) = w.add_iface(sink, Some(portal));
        assert_eq!(mac, sink_mac, "global MAC counter must match build order");
        w.start();
        w.run_until(SimTime::from_millis(10));
        assert_eq!(w.node::<Sink>(sink).rx, 1, "ping must cross the portal");
        assert_eq!(w.node::<Pinger>(pinger).rx, 1, "reply must cross back");
        assert_eq!(w.counter("shard.egress_frames"), 2);
        assert_eq!(w.counter("shard.ingress_frames"), 2);
        assert!(w.windows_run() > 1, "portal latency must bound the windows");
    }

    /// Sequential and threaded window execution produce identical
    /// results.
    #[test]
    fn parallel_flag_does_not_change_results() {
        let run = |parallel: bool| -> (u64, usize, usize) {
            let mut w = ShardedWorld::new(3, 2);
            let portal = w.add_portal_segment(SegmentParams::default(), &[0, 1]);
            let sink_mac = MacAddr::from_index(1);
            let pinger = w.add_node(0, Pinger { dst: sink_mac, rx: 0 });
            w.add_iface(pinger, Some(portal));
            let sink = w.add_node(1, Sink::new(true));
            w.add_iface(sink, Some(portal));
            w.set_parallel(parallel);
            w.start();
            w.run_until(SimTime::from_millis(10));
            (w.events_processed(), w.node::<Sink>(sink).rx, w.node::<Pinger>(pinger).rx)
        };
        assert_eq!(run(false), run(true));
    }

    /// A 1-shard ShardedWorld replays the classic World bit-for-bit:
    /// same counters, same event count (same seed, same build order).
    #[test]
    fn single_shard_matches_classic_world() {
        let build_classic = || {
            let mut w = World::new(42);
            let seg = w.add_segment(SegmentParams::default());
            let sink_mac = MacAddr::from_index(1);
            let p = w.add_node(Pinger { dst: sink_mac, rx: 0 });
            w.add_iface(p, Some(seg));
            let s = w.add_node(Sink::new(true));
            w.add_iface(s, Some(seg));
            w.start();
            w.run_until(SimTime::from_secs(1));
            (w.events_processed(), w.stats().counter("link.frames_delivered"))
        };
        let build_sharded = || {
            let mut w = ShardedWorld::new(42, 1);
            // A "portal" with one shard degenerates to a local segment.
            let seg = w.add_portal_segment(SegmentParams::default(), &[0, 0]);
            let sink_mac = MacAddr::from_index(1);
            let p = w.add_node(0, Pinger { dst: sink_mac, rx: 0 });
            w.add_iface(p, Some(seg));
            let s = w.add_node(0, Sink::new(true));
            w.add_iface(s, Some(seg));
            w.start();
            w.run_until(SimTime::from_secs(1));
            (w.events_processed(), w.counter("link.frames_delivered"))
        };
        assert_eq!(build_classic(), build_sharded());
        // And no portal machinery ran.
        let mut w = ShardedWorld::new(42, 1);
        w.add_portal_segment(SegmentParams::default(), &[0]);
        assert_eq!(w.lookahead(), None);
    }

    /// Portal SegmentDown blocks transmission from every shard, and
    /// SegmentUp restores it; fault accounting matches a single world
    /// (one op applied per scheduled fault).
    #[test]
    fn portal_fault_mirrors_across_replicas() {
        let mut w = ShardedWorld::new(5, 2);
        let portal = w.add_portal_segment(SegmentParams::default(), &[0, 1]);
        let sink_mac = MacAddr::from_index(1);
        let pinger = w.add_node(0, Pinger { dst: sink_mac, rx: 0 });
        w.add_iface(pinger, Some(portal));
        let sink = w.add_node(1, Sink::new(false));
        w.add_iface(sink, Some(portal));
        // Down before the 1 ms ping, up afterwards.
        w.schedule_fault(SimTime::from_micros(100), FaultOp::SegmentDown { segment: portal });
        w.schedule_fault(SimTime::from_millis(5), FaultOp::SegmentUp { segment: portal });
        w.start();
        w.run_until(SimTime::from_millis(4));
        assert_eq!(w.node::<Sink>(sink).rx, 0, "down portal must block the ping");
        assert_eq!(w.counter("link.tx_segment_down"), 1);
        // Re-ping after the 5 ms restoration.
        w.run_until(SimTime::from_millis(6));
        w.with_node::<Pinger, _>(pinger, |n, ctx| n.on_timer(ctx, TimerToken(1)));
        w.run_until(SimTime::from_millis(10));
        assert_eq!(w.node::<Sink>(sink).rx, 1, "restored portal must deliver");
        assert_eq!(w.counter("fault.ops_applied"), 2, "one count per scheduled fault");
    }

    /// Node-scoped faults and admin moves translate to the owning shard.
    #[test]
    fn node_faults_and_moves_translate_to_owning_shard() {
        let mut w = ShardedWorld::new(9, 2);
        let portal = w.add_portal_segment(SegmentParams::default(), &[0, 1]);
        let cell_a = w.add_segment(1, SegmentParams::default());
        let sink_mac = MacAddr::from_index(1);
        let pinger = w.add_node(0, Pinger { dst: sink_mac, rx: 0 });
        w.add_iface(pinger, Some(portal));
        let sink = w.add_node(1, Sink::new(false));
        w.add_iface(sink, Some(portal));
        // Crash the sink across the ping, then move it to a local cell.
        w.schedule_fault(
            SimTime::from_micros(500),
            FaultOp::Crash { node: sink, down_for: SimDuration::from_millis(3) },
        );
        w.start();
        w.run_until(SimTime::from_millis(2));
        assert!(w.node_is_down(sink));
        assert_eq!(w.counter("fault.frames_dropped_node_down"), 1);
        w.run_until(SimTime::from_millis(5));
        assert!(!w.node_is_down(sink));
        w.schedule_admin(
            SimTime::from_millis(6),
            AdminOp::MoveIface { node: sink, iface: IfaceId(0), segment: cell_a },
        );
        w.run_until(SimTime::from_millis(7));
        assert_eq!(w.counter("world.reboots"), 1);
    }

    /// Telemetry merging: global node ids, canonical order, dense
    /// journey renumbering, and replay identity.
    #[test]
    fn merged_events_are_canonical_and_replayable() {
        let run = || {
            let mut w = ShardedWorld::new(11, 2);
            let portal = w.add_portal_segment(SegmentParams::default(), &[0, 1]);
            let sink_mac = MacAddr::from_index(1);
            let pinger = w.add_node(0, Pinger { dst: sink_mac, rx: 0 });
            w.add_iface(pinger, Some(portal));
            let sink = w.add_node(1, Sink::new(true));
            w.add_iface(sink, Some(portal));
            w.set_telemetry(true);
            w.start();
            w.run_until(SimTime::from_millis(10));
            w.merged_events()
        };
        let a = run();
        assert!(!a.is_empty());
        // Node ids in the stream are global (0 = pinger, 1 = sink).
        assert!(a.iter().all(|e| e.node.is_none_or(|n| n < 2)));
        // Journeys are dense from 1.
        let max_j = a.iter().filter_map(|e| e.journey).map(|j| j.0).max().unwrap();
        assert!((1..1 << JOURNEY_SHARD_SHIFT).contains(&max_j), "journeys must be renumbered");
        assert_eq!(a, run(), "merged stream must replay identically");
    }

    /// Detached/attached link events still fire through translated admin
    /// ops (regression guard for the id translation).
    #[test]
    fn translated_detach_fires_link_event() {
        struct Watcher {
            events: Vec<LinkEvent>,
        }
        impl Node for Watcher {
            fn on_frame(&mut self, _c: &mut Ctx<'_>, _i: IfaceId, _f: &Frame) {}
            fn on_link(&mut self, _c: &mut Ctx<'_>, _i: IfaceId, ev: LinkEvent) {
                self.events.push(ev);
            }
        }
        let mut w = ShardedWorld::new(1, 2);
        let seg = w.add_segment(1, SegmentParams::default());
        let n = w.add_node(1, Watcher { events: Vec::new() });
        w.add_iface(n, Some(seg));
        w.start();
        w.schedule_admin(
            SimTime::from_millis(1),
            AdminOp::DetachIface { node: n, iface: IfaceId(0) },
        );
        w.run_until(SimTime::from_millis(2));
        assert_eq!(w.node::<Watcher>(n).events, vec![LinkEvent::Detached]);
    }
}

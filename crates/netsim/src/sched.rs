//! The raw-speed scheduler: a hierarchical timer wheel with an overflow
//! level, preserving the exact `(time, sequence)` total order of a binary
//! heap at O(1) amortized cost per event.
//!
//! # Why a wheel
//!
//! The simulator's dominant event class is the short-horizon periodic
//! timer: every MHRP node perpetually re-arms watchdog, advertiser and
//! backoff timers, and every frame in flight is one more queue entry. A
//! global `BinaryHeap` pays O(log n) comparisons *and* O(log n) large
//! element moves per push and pop, which is exactly the cost that made
//! event throughput degrade as worlds grew. The wheel replaces that with
//! one `Vec` push on schedule and one batch drain per occupied slot.
//!
//! # Structure
//!
//! Time is bucketed into *ticks* of 2^[`TICK_SHIFT`] ns (8.192 µs). The
//! wheel has [`LEVELS`] levels of [`SLOTS`] slots each; a slot at level
//! `L` spans `SLOTS^L` ticks, so level 0 resolves single ticks and the
//! whole wheel spans 2^36 ticks ≈ 6.5 days. Events beyond the span —
//! soak horizons, fault plans, admin ops scheduled "at infinity" — go to
//! a small overflow `BinaryHeap` and migrate into the wheel as the
//! cursor approaches them. An event's level is the position of the
//! highest bit in which its tick differs from the cursor (the hashed
//! hierarchical wheel scheme): as the cursor advances into a higher-level
//! slot, that slot's events *cascade* down into lower levels, each event
//! descending at most [`LEVELS`]−1 times over its lifetime.
//!
//! # Determinism
//!
//! The binary heap's contract was a total order on `(time, seq)` with
//! `seq` assigned in push order. The wheel preserves it *exactly*: when
//! the cursor reaches an occupied level-0 slot, the slot's events are
//! drained into a ready batch and sorted by `(time, seq)`; events
//! scheduled into the already-drained window (same-instant pushes from a
//! running handler, or pushes below a batch that [`TimerWheel::peek`]
//! collected early) are merge-inserted into the batch at their ordered
//! position. Every golden replay and typed-event-log test holds
//! byte-identical because pop order is bit-for-bit the heap's pop order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of nanoseconds per tick: 1 tick = 8.192 µs. Chosen so the
/// simulator's dominant deadlines — protocol timers and link latencies
/// in the tens-to-hundreds of microseconds — mostly land in level 0
/// directly (one slot push, no cascade) while a level-0 slot still only
/// batches events closer together than one tick, keeping drain sorts
/// small.
pub const TICK_SHIFT: u32 = 13;
/// log2 of slots per level.
pub const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; deadlines past `SLOTS^LEVELS` ticks overflow.
pub const LEVELS: usize = 6;
/// Ticks covered by the wheel proper (2^36 ≈ 6.5 days at 8.192 µs/tick).
pub const SPAN_TICKS: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// One scheduled entry: an absolute deadline, the tie-breaking sequence
/// number assigned at schedule time, and the caller's payload.
#[derive(Debug)]
struct Entry<T> {
    at: u64,
    seq: u64,
    value: T,
}

/// Overflow entries live in a max-heap; reverse the comparison so the
/// earliest `(at, seq)` is on top. Payloads never participate in the
/// ordering (seq is unique, so the order is total without them).
struct OverflowEntry<T>(Entry<T>);

impl<T> PartialEq for OverflowEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<T> Eq for OverflowEntry<T> {}
impl<T> PartialOrd for OverflowEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OverflowEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.at.cmp(&self.0.at).then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// Initial capacity of every slot bucket. Slot `Vec`s are seeded eagerly
/// (rather than allocated on first touch) because the cursor reaches
/// higher-level slots for the *first* time throughout a run — at level 1
/// every ~0.5 ms of simulated time for the first ~34 ms, at level 2 for
/// the first ~2.1 s — and a lazy first-touch allocation there would
/// break the steady-state zero-allocation guarantee the delivery and
/// timer hot paths hold.
/// Capacity is conserved thereafter: drains and cascades swap buckets
/// back in place, so a slot grown once never reallocates at that size.
const SLOT_SEED: usize = 4;

/// One wheel level: 64 unsorted slot buckets plus an occupancy bitmap so
/// the next occupied slot is a `trailing_zeros` away.
struct Level<T> {
    occupied: u64,
    slots: [Vec<Entry<T>>; SLOTS],
}

impl<T> Level<T> {
    fn new() -> Level<T> {
        Level { occupied: 0, slots: std::array::from_fn(|_| Vec::with_capacity(SLOT_SEED)) }
    }
}

/// A deterministic priority queue over `(SimTime, seq)` built on a
/// hierarchical timer wheel.
///
/// `schedule` assigns each entry a monotonically increasing sequence
/// number and returns it; `pop` yields entries in strictly increasing
/// `(time, seq)` order — the exact order a `BinaryHeap` keyed the same
/// way would produce, including for entries scheduled "in the past"
/// (they fire at their ordered position before anything later).
pub struct TimerWheel<T> {
    /// The next batch, sorted *descending* by `(at, seq)` so the next
    /// entry to pop is at the back — `Vec::pop` moves it out safely in
    /// O(1), with none of a deque's ring arithmetic on the hot path. All
    /// entries with `tick < cur` live here (or have been popped).
    ready: Vec<Entry<T>>,
    levels: [Level<T>; LEVELS],
    /// Entries whose tick shares no 2^36-aligned prefix with `cur` yet.
    overflow: BinaryHeap<OverflowEntry<T>>,
    /// Wheel cursor in ticks: every entry still in the levels has
    /// `tick >= cur` and shares `cur`'s bits above its level.
    cur: u64,
    next_seq: u64,
    /// Entries across ready + levels + overflow.
    len: usize,
    /// Entries currently in the levels (fast empty check for `advance`).
    wheel_len: usize,
    /// Reused buffer for cascading a higher-level slot.
    cascade_scratch: Vec<Entry<T>>,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel with the cursor at time zero.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            ready: Vec::new(),
            levels: std::array::from_fn(|_| Level::new()),
            overflow: BinaryHeap::new(),
            cur: 0,
            next_seq: 0,
            len: 0,
            wheel_len: 0,
            cascade_scratch: Vec::new(),
        }
    }

    /// Pre-sizes queue storage for a steady state of roughly `events`
    /// outstanding entries: the ready batch gets the full hint and each
    /// level-0 slot a proportional share, so a run whose population is
    /// known up front (the hierarchy generator knows its host count)
    /// never reallocates queue storage after warmup.
    pub fn reserve(&mut self, events: usize) {
        self.ready.reserve(events);
        let per_slot = (events / SLOTS).max(1);
        for slot in &mut self.levels[0].slots {
            slot.reserve(per_slot);
        }
    }

    /// Number of scheduled entries (including any a [`TimerWheel::peek`]
    /// has already staged in the ready batch).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sequence number the next [`TimerWheel::schedule`] will assign.
    /// Callers use this as a watermark: every entry currently in the
    /// wheel has a strictly smaller sequence number.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Schedules `value` at `at`, returning the assigned sequence number.
    /// Entries at equal times pop in schedule order.
    pub fn schedule(&mut self, at: SimTime, value: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let entry = Entry { at: at.as_nanos(), seq, value };
        let tick = entry.at >> TICK_SHIFT;
        if tick < self.cur {
            // The entry lands inside the window already drained into the
            // ready batch: merge it at its ordered position (the batch is
            // sorted descending, next pop at the back). The scan from
            // the back costs one comparison per batch entry at or after
            // the new deadline — the batch is one tick's events, so it
            // stays small.
            let mut i = self.ready.len();
            while i > 0 {
                let prev = &self.ready[i - 1];
                if (prev.at, prev.seq) >= (entry.at, entry.seq) {
                    break;
                }
                i -= 1;
            }
            self.ready.insert(i, entry);
        } else {
            self.insert_wheel(entry, tick);
        }
        seq
    }

    /// Time and sequence of the next entry to pop, staging its batch.
    pub fn peek(&mut self) -> Option<(SimTime, u64)> {
        self.peek_entry().map(|(at, seq, _)| (at, seq))
    }

    /// Time, sequence and payload of the next entry to pop.
    pub fn peek_entry(&mut self) -> Option<(SimTime, u64, &T)> {
        if self.ready.is_empty() {
            self.advance();
        }
        self.ready.last().map(|e| (SimTime::from_nanos(e.at), e.seq, &e.value))
    }

    /// Removes and returns the earliest `(time, seq)` entry.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.ready.is_empty() {
            self.advance();
        }
        let e = self.ready.pop()?;
        self.len -= 1;
        Some((SimTime::from_nanos(e.at), e.seq, e.value))
    }

    /// Removes and returns the earliest entry only if it is due at or
    /// before `t` — the fused peek/pop the simulator's bounded run loop
    /// performs once per event.
    pub fn pop_due(&mut self, t: SimTime) -> Option<(SimTime, u64, T)> {
        if self.ready.is_empty() {
            self.advance();
        }
        if self.ready.last()?.at > t.as_nanos() {
            return None;
        }
        let e = self.ready.pop().expect("peeked above");
        self.len -= 1;
        Some((SimTime::from_nanos(e.at), e.seq, e.value))
    }

    /// Places `entry` (with `tick >= self.cur`) into a level slot or the
    /// overflow heap.
    fn insert_wheel(&mut self, entry: Entry<T>, tick: u64) {
        debug_assert!(tick >= self.cur);
        // Hashed-wheel level assignment: the level is determined by the
        // highest bit in which the deadline tick differs from the
        // cursor. A tick agreeing with the cursor above bit 36 is within
        // the wheel span; anything else overflows (note `tick - cur <
        // SPAN` is *not* sufficient — the prefix must match, or cascades
        // from the top level would skip it).
        let diff = tick ^ self.cur;
        if diff >= SPAN_TICKS {
            self.overflow.push(OverflowEntry(entry));
            return;
        }
        let level = if diff == 0 { 0 } else { ((63 - diff.leading_zeros()) / SLOT_BITS) as usize };
        let slot = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[level].slots[slot].push(entry);
        self.levels[level].occupied |= 1 << slot;
        self.wheel_len += 1;
    }

    /// Advances the cursor to the next occupied level-0 slot and drains
    /// it into the ready batch, cascading higher-level slots and
    /// migrating overflow entries along the way. Leaves `ready` sorted
    /// ascending by `(at, seq)`. No-op when nothing is scheduled.
    fn advance(&mut self) {
        debug_assert!(self.ready.is_empty());
        loop {
            // Overflow entries whose tick now shares the cursor's
            // 2^36-aligned prefix belong in the wheel. Deadline order is
            // monotone in the prefix, so only the heap top needs
            // checking.
            while let Some(top) = self.overflow.peek() {
                let tick = top.0.at >> TICK_SHIFT;
                if (tick >> (SLOT_BITS * LEVELS as u32))
                    != (self.cur >> (SLOT_BITS * LEVELS as u32))
                {
                    break;
                }
                let OverflowEntry(entry) = self.overflow.pop().expect("peeked");
                self.insert_wheel(entry, tick);
            }
            if self.wheel_len == 0 {
                match self.overflow.peek() {
                    // Jump the cursor to the overflow's earliest tick so
                    // the migration above picks its prefix up next loop.
                    Some(top) => {
                        self.cur = top.0.at >> TICK_SHIFT;
                        continue;
                    }
                    None => return,
                }
            }
            // The earliest occupied slot across levels. Within a level
            // every occupied slot is at an index >= the cursor's index
            // (lower indices would be in the past), so the next one is a
            // masked trailing_zeros. On an expiry tie the *highest* level
            // wins (`<=` below): a level-0 slot and a higher-level slot
            // can start at the same tick, and the higher slot may hold an
            // earlier-scheduled event for that exact tick — cascading it
            // first merges both into one sorted level-0 batch, while
            // collecting level 0 first would pop the later event early.
            let mut best: Option<(usize, usize, u64)> = None;
            for level in 0..LEVELS {
                let occ = self.levels[level].occupied;
                if occ == 0 {
                    continue;
                }
                let shift = SLOT_BITS * level as u32;
                let ix = ((self.cur >> shift) & (SLOTS as u64 - 1)) as u32;
                let bits = occ & (!0u64 << ix);
                debug_assert!(bits != 0, "occupied slot behind the cursor at level {level}");
                let slot = bits.trailing_zeros() as usize;
                let high_mask = !((1u64 << (shift + SLOT_BITS)) - 1);
                let expiry = (self.cur & high_mask) | ((slot as u64) << shift);
                if best.is_none_or(|(_, _, e)| expiry <= e) {
                    best = Some((level, slot, expiry));
                }
            }
            let Some((level, slot, expiry)) = best else {
                debug_assert_eq!(self.wheel_len, 0);
                continue;
            };
            if level == 0 {
                // A level-0 slot holds exactly one tick's entries: drain,
                // sort descending by (at, seq) — sub-tick times and
                // sequence ties — and hand the batch to the popper (next
                // pop at the back). Slot pushes arrive in ascending seq
                // and usually ascending time, so the batch is typically
                // already sorted once reversed; check before paying for
                // a sort.
                let bucket = &mut self.levels[0].slots[slot];
                self.wheel_len -= bucket.len();
                self.ready.extend(bucket.drain(..).rev());
                self.levels[0].occupied &= !(1 << slot);
                self.cur = expiry + 1;
                let sorted =
                    self.ready.windows(2).all(|w| (w[0].at, w[0].seq) >= (w[1].at, w[1].seq));
                if !sorted {
                    self.ready.sort_unstable_by_key(|e| core::cmp::Reverse((e.at, e.seq)));
                }
                return;
            }
            // Cascade: the cursor has reached a higher-level slot; move
            // its entries down (each lands at a strictly lower level
            // relative to the new cursor). The scratch swap keeps the
            // slot's capacity for its next rotation.
            let mut scratch = std::mem::take(&mut self.cascade_scratch);
            std::mem::swap(&mut scratch, &mut self.levels[level].slots[slot]);
            self.levels[level].occupied &= !(1 << slot);
            self.wheel_len -= scratch.len();
            self.cur = expiry;
            for entry in scratch.drain(..) {
                let tick = entry.at >> TICK_SHIFT;
                self.insert_wheel(entry, tick);
            }
            std::mem::swap(&mut scratch, &mut self.levels[level].slots[slot]);
            self.cascade_scratch = scratch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u32>) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| w.pop()).map(|(at, seq, _)| (at.as_nanos(), seq)).collect()
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_millis(5), 5);
        w.schedule(SimTime::from_millis(1), 1);
        w.schedule(SimTime::from_millis(3), 3);
        w.schedule(SimTime::from_millis(1), 11);
        let order: Vec<u64> = drain(&mut w).iter().map(|&(at, _)| at).collect();
        assert_eq!(order, vec![1_000_000, 1_000_000, 3_000_000, 5_000_000]);
    }

    #[test]
    fn same_tick_sub_tick_times_sort() {
        // Distinct nanosecond times inside one 1.024 µs tick must pop in
        // time order, not insertion order.
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_nanos(700), 0);
        w.schedule(SimTime::from_nanos(100), 1);
        w.schedule(SimTime::from_nanos(400), 2);
        let order: Vec<u64> = drain(&mut w).iter().map(|&(at, _)| at).collect();
        assert_eq!(order, vec![100, 400, 700]);
    }

    #[test]
    fn push_below_staged_batch_merges_in_order() {
        let mut w = TimerWheel::new();
        w.schedule(SimTime::from_millis(5), 0);
        // Staging the 5 ms batch advances the cursor past 5 ms...
        assert_eq!(w.peek(), Some((SimTime::from_millis(5), 0)));
        // ...but a later push at 2 ms must still pop first.
        w.schedule(SimTime::from_millis(2), 1);
        let order: Vec<u64> = drain(&mut w).iter().map(|&(at, _)| at).collect();
        assert_eq!(order, vec![2_000_000, 5_000_000]);
    }

    #[test]
    fn far_future_overflow_round_trips() {
        let mut w = TimerWheel::new();
        let span_ns = SPAN_TICKS << TICK_SHIFT;
        // One entry either side of the overflow boundary, one at the
        // boundary itself, and one effectively at infinity.
        w.schedule(SimTime::from_nanos(span_ns - 1), 0);
        w.schedule(SimTime::from_nanos(span_ns), 1);
        w.schedule(SimTime::from_nanos(span_ns + 1), 2);
        w.schedule(SimTime::from_nanos(u64::MAX), 3);
        w.schedule(SimTime::from_nanos(1), 4);
        let order: Vec<u64> = drain(&mut w).iter().map(|&(at, _)| at).collect();
        assert_eq!(order, vec![1, span_ns - 1, span_ns, span_ns + 1, u64::MAX]);
    }

    #[test]
    fn cross_prefix_neighbors_stay_ordered() {
        // Ticks straddling a 2^36-tick prefix boundary differ in a high
        // bit even when numerically adjacent; the overflow path must
        // keep them ordered.
        let boundary = SPAN_TICKS << TICK_SHIFT;
        let mut w = TimerWheel::new();
        for (i, at) in
            [boundary - (1 << TICK_SHIFT), boundary + (1 << TICK_SHIFT)].iter().enumerate()
        {
            w.schedule(SimTime::from_nanos(*at), i as u32);
        }
        let order: Vec<u64> = drain(&mut w).iter().map(|&(at, _)| at).collect();
        assert!(order.windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn len_tracks_schedule_and_pop() {
        let mut w = TimerWheel::new();
        assert!(w.is_empty());
        w.schedule(SimTime::from_millis(1), 0);
        w.schedule(SimTime::from_secs(100_000), 1); // overflow level
        assert_eq!(w.len(), 2);
        w.pop();
        assert_eq!(w.len(), 1);
        w.pop();
        assert!(w.is_empty());
        assert!(w.pop().is_none());
    }

    #[test]
    fn reserve_is_observable_only_as_capacity() {
        let mut w = TimerWheel::new();
        w.reserve(1024);
        w.schedule(SimTime::from_millis(1), 7);
        assert_eq!(w.pop().map(|(_, _, v)| v), Some(7));
    }

    #[test]
    fn expiry_tie_cascades_before_collecting() {
        // A sits at tick 64 in level 1 while the cursor is at 0. Popping
        // the filler at tick 63 moves the cursor to 64; B then lands at
        // the same tick in level 0. Both slots now expire at tick 64 —
        // the cascade must run first so A (earlier seq) pops before B.
        let tick = |t: u64| SimTime::from_nanos(t << TICK_SHIFT);
        let mut w = TimerWheel::new();
        let a = w.schedule(tick(64), 'a');
        w.schedule(tick(63), 'f');
        assert_eq!(w.pop().map(|(_, _, v)| v), Some('f'));
        let b = w.schedule(tick(64), 'b');
        assert!(a < b);
        let order: Vec<char> = std::iter::from_fn(|| w.pop()).map(|(_, _, v)| v).collect();
        assert_eq!(order, vec!['a', 'b']);
    }

    mod model {
        use super::*;
        use proptest::prelude::*;

        /// One step of the adversarial interleaving exercised by
        /// `matches_reference_model_under_interleaving`.
        #[derive(Debug, Clone)]
        enum Op {
            /// Schedule at a time drawn from the adversarial pool.
            Schedule(usize),
            /// Pop once and compare against the reference.
            Pop,
            /// Peek (stages a batch and advances the cursor) — must not
            /// change what subsequently pops.
            Peek,
        }

        proptest! {
            #[test]
            fn matches_reference_model_under_interleaving(
                // Arms are repeated to weight the uniform choice 3:2:1
                // towards schedules (a full wheel exercises more paths).
                ops in prop::collection::vec(
                    prop_oneof![
                        (0usize..12).prop_map(Op::Schedule),
                        (0usize..12).prop_map(Op::Schedule),
                        (0usize..12).prop_map(Op::Schedule),
                        Just(Op::Pop),
                        Just(Op::Pop),
                        Just(Op::Peek),
                    ],
                    1..120,
                ),
            ) {
                // Times straddling every interesting boundary: sub-tick
                // neighbors, slot/level boundaries, the overflow span,
                // and the u64 ceiling.
                let span_ns = SPAN_TICKS << TICK_SHIFT;
                let pool: [u64; 12] = [
                    0, 1, 1023, 1024, 1025,
                    64 << TICK_SHIFT,
                    (SLOTS as u64).pow(3) << TICK_SHIFT,
                    span_ns - 1, span_ns, span_ns + 1,
                    2 * span_ns + 7,
                    u64::MAX,
                ];
                let mut wheel: TimerWheel<()> = TimerWheel::new();
                // Reference: the sorted (at, seq) list the old BinaryHeap
                // queue would pop, consumed as the wheel pops.
                let mut model: Vec<(u64, u64)> = Vec::new();
                let mut next_seq = 0u64;
                for op in ops {
                    match op {
                        Op::Schedule(i) => {
                            let at = pool[i];
                            let seq = wheel.schedule(SimTime::from_nanos(at), ());
                            prop_assert_eq!(seq, next_seq);
                            model.push((at, seq));
                            model.sort_unstable();
                            next_seq += 1;
                        }
                        Op::Pop => {
                            let got = wheel.pop().map(|(at, seq, ())| (at.as_nanos(), seq));
                            let want =
                                if model.is_empty() { None } else { Some(model.remove(0)) };
                            prop_assert_eq!(got, want);
                        }
                        Op::Peek => {
                            let got = wheel.peek();
                            let want =
                                model.first().map(|&(at, seq)| (SimTime::from_nanos(at), seq));
                            prop_assert_eq!(got, want);
                        }
                    }
                }
                // Drain: the full remaining pop order must match.
                let rest: Vec<(u64, u64)> = std::iter::from_fn(|| wheel.pop())
                    .map(|(at, seq, ())| (at.as_nanos(), seq))
                    .collect();
                prop_assert_eq!(rest, model);
                prop_assert!(wheel.is_empty());
            }
        }
    }
}

//! Lightweight event tracing for debugging and test assertions.
//!
//! Tracing is off by default; when enabled, every [`Tracer::record`] call
//! stores a [`TraceEvent`]. The detail string is built lazily so disabled
//! tracing costs almost nothing.

use crate::id::NodeId;
use crate::time::SimTime;

/// A single trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event occurred.
    pub time: SimTime,
    /// Which node produced it (if any; world-level events have none).
    pub node: Option<NodeId>,
    /// A short machine-matchable kind, e.g. `"mhrp.tunnel"`.
    pub kind: &'static str,
    /// Free-form human-readable detail.
    pub detail: String,
}

/// Collects [`TraceEvent`]s when enabled.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// Creates a disabled tracer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Enables or disables collection.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether collection is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event; `detail` is only invoked when tracing is enabled.
    #[inline]
    pub fn record(
        &mut self,
        time: SimTime,
        node: Option<NodeId>,
        kind: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if self.enabled {
            self.events.push(TraceEvent { time, node, kind, detail: detail() });
        }
    }

    /// All collected events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one kind, in order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Drops all collected events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_skips_detail() {
        let mut t = Tracer::new();
        let mut called = false;
        t.record(SimTime::ZERO, None, "x", || {
            called = true;
            String::new()
        });
        assert!(!called);
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_tracer_records_in_order() {
        let mut t = Tracer::new();
        t.set_enabled(true);
        t.record(SimTime::from_millis(1), Some(NodeId(0)), "a", || "one".into());
        t.record(SimTime::from_millis(2), None, "b", || "two".into());
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.of_kind("b").count(), 1);
        assert_eq!(t.events()[0].detail, "one");
        t.clear();
        assert!(t.events().is_empty());
        assert!(t.enabled());
    }
}

//! Deterministic, schedule-driven fault injection.
//!
//! A [`FaultPlan`] is an ordered list of `(time, FaultOp)` pairs. Installing
//! a plan ([`crate::World::install_faults`]) compiles every entry onto the
//! world's single event queue, so faults interleave with frames, timers and
//! admin operations under the same total `(time, seq)` order. The same seed
//! plus the same plan therefore reproduces a byte-identical run — every
//! trace event, every counter.
//!
//! The operations cover the failure modes the paper's §5 robustness
//! mechanisms are designed around:
//!
//! * **Link flaps and partitions** — [`FaultOp::SegmentDown`] /
//!   [`FaultOp::SegmentUp`], with the [`FaultPlan::flap`] and
//!   [`FaultPlan::partition`] conveniences.
//! * **Latency spikes and loss changes** — [`FaultOp::LatencySpike`],
//!   [`FaultOp::SetSegmentLatency`], [`FaultOp::SetSegmentLoss`].
//! * **Payload corruption** — [`FaultOp::SetSegmentCorruption`] flips one
//!   random bit per affected frame copy, which downstream IPv4 header or
//!   UDP checksums then catch (`ip.rx_malformed`).
//! * **Node crashes with state loss** — [`FaultOp::Crash`] takes a node
//!   dark (frames and timers addressed to it are dropped) and reboots it
//!   after the outage via [`crate::Node::on_reboot`]; pending timers do
//!   *not* survive, so nodes must re-arm from `on_reboot`.
//! * **Advertisement suppression** — [`FaultOp::MuteBroadcasts`] drops
//!   broadcast frames transmitted by one interface (a jammed beacon
//!   channel), without affecting unicast forwarding.
//!
//! # Example
//!
//! ```rust
//! use netsim::faults::{FaultOp, FaultPlan};
//! use netsim::time::{SimDuration, SimTime};
//! use netsim::SegmentId;
//!
//! let plan = FaultPlan::new()
//!     .flap(
//!         SegmentId(0),
//!         SimTime::from_secs(1),
//!         SimDuration::from_millis(500),
//!         SimDuration::from_millis(500),
//!         4,
//!     )
//!     .op(SimTime::from_secs(10), FaultOp::SetSegmentLoss {
//!         segment: SegmentId(0),
//!         loss: 0.2,
//!     });
//! assert_eq!(plan.len(), 9);
//! ```

use std::fmt;

use crate::id::{IfaceId, NodeId, SegmentId};
use crate::time::{SimDuration, SimTime};

/// One injectable fault, applied at a scheduled instant.
///
/// Every variant is a pure value (`Clone + PartialEq`), so plans can be
/// generated, compared and replayed — the foundation of the golden
/// determinism tests and the property tests over random plans.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultOp {
    /// Take a segment down: transmissions onto it are dropped
    /// (`link.tx_segment_down`). One half of a link flap or partition.
    SegmentDown {
        /// The segment to take down.
        segment: SegmentId,
    },
    /// Bring a segment back up (flap recovery / partition heal).
    SegmentUp {
        /// The segment to restore.
        segment: SegmentId,
    },
    /// Change a segment's per-receiver loss probability.
    SetSegmentLoss {
        /// The segment to change.
        segment: SegmentId,
        /// New loss probability in `[0, 1]`.
        loss: f64,
    },
    /// Set a segment's base latency outright.
    SetSegmentLatency {
        /// The segment to change.
        segment: SegmentId,
        /// The new base one-way latency.
        latency: SimDuration,
    },
    /// Add `extra` to a segment's latency for `duration`, then restore the
    /// previous value (a congestion spike). The restore is scheduled on
    /// the event queue when the spike is applied.
    LatencySpike {
        /// The segment to slow down.
        segment: SegmentId,
        /// Additional latency during the spike.
        extra: SimDuration,
        /// How long the spike lasts.
        duration: SimDuration,
    },
    /// Set a segment's per-receiver payload-corruption probability. Each
    /// affected frame copy gets exactly one random bit flipped
    /// (`link.frames_corrupted`), which IPv4/UDP checksums make visible
    /// at the receiver. `0.0` disables corruption again.
    SetSegmentCorruption {
        /// The segment to corrupt.
        segment: SegmentId,
        /// Corruption probability in `[0, 1]`.
        probability: f64,
    },
    /// Detach an interface from its segment (cable pulled / host carried
    /// out of range).
    DetachIface {
        /// The node owning the interface.
        node: NodeId,
        /// The interface to detach.
        iface: IfaceId,
    },
    /// Attach an interface to a segment (cable restored).
    AttachIface {
        /// The node owning the interface.
        node: NodeId,
        /// The interface to attach.
        iface: IfaceId,
        /// The segment to attach to.
        segment: SegmentId,
    },
    /// Crash a node for `down_for`: while down it receives no frames and
    /// no timers (its pending timers are consumed and dropped — volatile
    /// state is lost), then [`crate::Node::on_reboot`] fires and the node
    /// must rebuild from whatever it considers stable storage.
    Crash {
        /// The node to crash.
        node: NodeId,
        /// Length of the outage before the automatic reboot.
        down_for: SimDuration,
    },
    /// Reboot a node immediately (fires [`crate::Node::on_reboot`]; also
    /// ends a [`FaultOp::Crash`] outage early).
    Reboot {
        /// The node to reboot.
        node: NodeId,
    },
    /// Drop every *broadcast* frame transmitted by `(node, iface)` —
    /// agent advertisements, ARP requests, recovery queries — while
    /// leaving unicast traffic untouched (a jammed beacon channel).
    MuteBroadcasts {
        /// The node whose broadcasts are suppressed.
        node: NodeId,
        /// The interface to mute.
        iface: IfaceId,
    },
    /// Stop suppressing broadcasts from `(node, iface)`.
    UnmuteBroadcasts {
        /// The node to restore.
        node: NodeId,
        /// The interface to restore.
        iface: IfaceId,
    },
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOp::SegmentDown { segment } => write!(f, "segment-down {segment}"),
            FaultOp::SegmentUp { segment } => write!(f, "segment-up {segment}"),
            FaultOp::SetSegmentLoss { segment, loss } => write!(f, "set-loss {segment} {loss}"),
            FaultOp::SetSegmentLatency { segment, latency } => {
                write!(f, "set-latency {segment} {}us", latency.as_micros())
            }
            FaultOp::LatencySpike { segment, extra, duration } => {
                write!(
                    f,
                    "latency-spike {segment} +{}us for {}us",
                    extra.as_micros(),
                    duration.as_micros()
                )
            }
            FaultOp::SetSegmentCorruption { segment, probability } => {
                write!(f, "set-corruption {segment} {probability}")
            }
            FaultOp::DetachIface { node, iface } => write!(f, "detach {node} {iface}"),
            FaultOp::AttachIface { node, iface, segment } => {
                write!(f, "attach {node} {iface} {segment}")
            }
            FaultOp::Crash { node, down_for } => {
                write!(f, "crash {node} for {}us", down_for.as_micros())
            }
            FaultOp::Reboot { node } => write!(f, "reboot {node}"),
            FaultOp::MuteBroadcasts { node, iface } => write!(f, "mute-bcast {node} {iface}"),
            FaultOp::UnmuteBroadcasts { node, iface } => write!(f, "unmute-bcast {node} {iface}"),
        }
    }
}

/// An ordered schedule of timed [`FaultOp`]s.
///
/// Built with the chainable constructors below, then handed to
/// [`crate::World::install_faults`], which pushes every entry onto the
/// event queue. Entries do not need to be added in time order; the queue
/// orders them. Installing the same plan into two worlds built with the
/// same seed yields byte-identical runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    ops: Vec<(SimTime, FaultOp)>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds one operation at an absolute time.
    pub fn op(mut self, at: SimTime, op: FaultOp) -> FaultPlan {
        self.ops.push((at, op));
        self
    }

    /// Adds a link flap: `cycles` repetitions of (down at `first_down +
    /// k*(down_for+up_for)`, up again `down_for` later). The final cycle
    /// also comes back up, so the plan leaves the segment up.
    pub fn flap(
        mut self,
        segment: SegmentId,
        first_down: SimTime,
        down_for: SimDuration,
        up_for: SimDuration,
        cycles: u32,
    ) -> FaultPlan {
        let mut at = first_down;
        for _ in 0..cycles {
            self.ops.push((at, FaultOp::SegmentDown { segment }));
            self.ops.push((at + down_for, FaultOp::SegmentUp { segment }));
            at = at + down_for + up_for;
        }
        self
    }

    /// Adds a partition window: the segment goes down at `from` and heals
    /// at `heal_at`.
    pub fn partition(mut self, segment: SegmentId, from: SimTime, heal_at: SimTime) -> FaultPlan {
        assert!(heal_at > from, "partition must heal after it starts");
        self.ops.push((from, FaultOp::SegmentDown { segment }));
        self.ops.push((heal_at, FaultOp::SegmentUp { segment }));
        self
    }

    /// Adds a crash-with-reboot: the node goes dark at `at` and reboots
    /// `down_for` later.
    pub fn crash(mut self, node: NodeId, at: SimTime, down_for: SimDuration) -> FaultPlan {
        self.ops.push((at, FaultOp::Crash { node, down_for }));
        self
    }

    /// Adds a broadcast-suppression window on `(node, iface)` from `from`
    /// to `until`.
    pub fn mute_window(
        mut self,
        node: NodeId,
        iface: IfaceId,
        from: SimTime,
        until: SimTime,
    ) -> FaultPlan {
        assert!(until > from, "mute window must end after it starts");
        self.ops.push((from, FaultOp::MuteBroadcasts { node, iface }));
        self.ops.push((until, FaultOp::UnmuteBroadcasts { node, iface }));
        self
    }

    /// The scheduled operations, in insertion order.
    pub fn ops(&self) -> &[(SimTime, FaultOp)] {
        &self.ops
    }

    /// Number of scheduled operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The time of the latest scheduled operation (accounting for crash
    /// reboots that fire `down_for` after their crash), or
    /// [`SimTime::ZERO`] for an empty plan. Useful for "run until the plan
    /// has fully played out" loops.
    pub fn end(&self) -> SimTime {
        self.ops
            .iter()
            .map(|(at, op)| match op {
                FaultOp::Crash { down_for, .. } => *at + *down_for,
                FaultOp::LatencySpike { duration, .. } => *at + *duration,
                _ => *at,
            })
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flap_emits_paired_ops_and_ends_up() {
        let plan = FaultPlan::new().flap(
            SegmentId(2),
            SimTime::from_secs(1),
            SimDuration::from_millis(200),
            SimDuration::from_millis(300),
            3,
        );
        assert_eq!(plan.len(), 6);
        let ops = plan.ops();
        assert_eq!(ops[0], (SimTime::from_secs(1), FaultOp::SegmentDown { segment: SegmentId(2) }));
        assert_eq!(
            ops[1],
            (SimTime::from_millis(1200), FaultOp::SegmentUp { segment: SegmentId(2) })
        );
        // Last op restores the segment.
        assert!(matches!(ops[5].1, FaultOp::SegmentUp { .. }));
        assert_eq!(plan.end(), SimTime::from_millis(2200));
    }

    #[test]
    fn end_accounts_for_crash_outage_and_spike_duration() {
        let plan =
            FaultPlan::new().crash(NodeId(1), SimTime::from_secs(5), SimDuration::from_secs(3)).op(
                SimTime::from_secs(6),
                FaultOp::LatencySpike {
                    segment: SegmentId(0),
                    extra: SimDuration::from_millis(50),
                    duration: SimDuration::from_secs(4),
                },
            );
        assert_eq!(plan.end(), SimTime::from_secs(10));
    }

    #[test]
    fn plans_are_comparable_values() {
        let a =
            FaultPlan::new().partition(SegmentId(0), SimTime::from_secs(1), SimTime::from_secs(2));
        let b =
            FaultPlan::new().partition(SegmentId(0), SimTime::from_secs(1), SimTime::from_secs(2));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = b.clone().op(SimTime::from_secs(3), FaultOp::Reboot { node: NodeId(0) });
        assert_ne!(a, c);
    }

    #[test]
    fn display_is_compact() {
        let op = FaultOp::Crash { node: NodeId(3), down_for: SimDuration::from_secs(2) };
        assert_eq!(op.to_string(), "crash n3 for 2000000us");
    }
}

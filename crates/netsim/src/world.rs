//! The [`World`]: owns every node, segment and the event queue, and drives
//! the simulation deterministically.

use std::collections::HashSet;
use std::fmt;
use std::ptr::NonNull;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::arena::NodeArena;
use crate::event::{BatchEvent, EventKind, EventQueue, FrameEvent, ScheduledEvent};
use crate::faults::{FaultOp, FaultPlan};
use crate::frame::{Frame, Payload};
use crate::id::{IfaceId, MacAddr, NodeId, PortalId, SegmentId};
use crate::node::{Action, Ctx, IfaceInfo, LinkEvent, Node};
use crate::segment::{Segment, SegmentParams};
use crate::stats::{metric, Stats};
use crate::time::{SimDuration, SimTime};
use crate::trace::Tracer;
use telemetry::pcapng::PcapWriter;
use telemetry::{DropReason, EventLog, FaultKind, Journey, JourneyId};

/// A node-scoped admin script: receives the world and the (possibly
/// shard-local) id of the node it is bound to.
pub type NodeScript = Box<dyn FnOnce(&mut World, NodeId) + Send>;

/// A scripted world mutation, schedulable on the event queue.
///
/// Admin operations model everything "physical" that happens to the network
/// from outside the protocols: a host being carried to a different network,
/// a link going down, a router crashing and rebooting.
pub enum AdminOp {
    /// Attach interface `iface` of `node` to `segment`.
    AttachIface {
        /// The node owning the interface.
        node: NodeId,
        /// The interface to attach.
        iface: IfaceId,
        /// The segment to attach to.
        segment: SegmentId,
    },
    /// Detach interface `iface` of `node` from whatever segment it is on.
    DetachIface {
        /// The node owning the interface.
        node: NodeId,
        /// The interface to detach.
        iface: IfaceId,
    },
    /// Detach-then-attach in one step (host movement).
    MoveIface {
        /// The node owning the interface.
        node: NodeId,
        /// The interface to move.
        iface: IfaceId,
        /// The destination segment.
        segment: SegmentId,
    },
    /// Bring a whole segment up or down (backbone link failure).
    SetSegmentUp {
        /// The segment to change.
        segment: SegmentId,
        /// New state.
        up: bool,
    },
    /// Change a segment's loss rate on the fly.
    SetSegmentLoss {
        /// The segment to change.
        segment: SegmentId,
        /// New per-receiver loss probability in `[0, 1]`.
        loss: f64,
    },
    /// Reboot a node ([`Node::on_reboot`] fires; volatile state is the
    /// node's responsibility to discard).
    Reboot {
        /// The node to reboot.
        node: NodeId,
    },
    /// Run an arbitrary script against the world.
    ///
    /// `Send` because worlds (and the queues holding pending ops) migrate
    /// to worker threads when run as a shard of a
    /// [`ShardedWorld`](crate::shard::ShardedWorld).
    Call(Box<dyn FnOnce(&mut World) + Send>),
    /// Run a script scoped to a single node.
    ///
    /// Unlike [`AdminOp::Call`], this variant is shard-routable: a
    /// [`ShardedWorld`](crate::shard::ShardedWorld) forwards it to the
    /// shard owning `node` (with `node` rewritten to the shard-local id),
    /// so the same plan lowers identically on flat and sharded worlds.
    /// The script must confine its effects to `node` — in a sharded run
    /// the `World` it receives is one shard, not the whole topology.
    CallNode {
        /// The node the script is scoped to.
        node: NodeId,
        /// The script; receives the (possibly shard-local) node id.
        script: NodeScript,
    },
}

impl fmt::Debug for AdminOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdminOp::AttachIface { node, iface, segment } => {
                write!(f, "AttachIface({node}, {iface}, {segment})")
            }
            AdminOp::DetachIface { node, iface } => write!(f, "DetachIface({node}, {iface})"),
            AdminOp::MoveIface { node, iface, segment } => {
                write!(f, "MoveIface({node}, {iface}, {segment})")
            }
            AdminOp::SetSegmentUp { segment, up } => write!(f, "SetSegmentUp({segment}, {up})"),
            AdminOp::SetSegmentLoss { segment, loss } => {
                write!(f, "SetSegmentLoss({segment}, {loss})")
            }
            AdminOp::Reboot { node } => write!(f, "Reboot({node})"),
            AdminOp::Call(_) => write!(f, "Call(<script>)"),
            AdminOp::CallNode { node, .. } => write!(f, "CallNode({node}, <script>)"),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct IfaceBinding {
    mac: MacAddr,
    segment: Option<SegmentId>,
}

/// A frame transmitted onto a portal segment, buffered for the barrier
/// exchange: the coordinator drains these from every shard at the end of
/// a window and injects them into the other replicas of the portal.
#[derive(Debug)]
pub(crate) struct EgressFrame {
    /// Absolute arrival time (`send time + portal latency`). By the
    /// lookahead rule this is always past the barrier at which it is
    /// exchanged, so injection never schedules into a shard's past.
    pub at: SimTime,
    /// The physical portal segment the frame was sent onto.
    pub portal: PortalId,
    /// The frame (payload shared by refcount with the local copy).
    pub frame: Frame,
}

/// The simulation world.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct World {
    time: SimTime,
    queue: EventQueue,
    // Node state is arena-allocated for cache locality: `nodes` holds
    // stable pointers into `arena`'s chunks (or dangling pointers for
    // zero-sized nodes). A slot is `None` only while that node is
    // mid-dispatch (taken out for aliasing-free `&mut` access) — or,
    // briefly, in `Drop`. The `Drop` impl runs each node's destructor in
    // place; the arena then frees the chunks.
    nodes: Vec<Option<NonNull<dyn Node>>>,
    arena: NodeArena,
    bindings: Vec<Vec<IfaceBinding>>,
    segments: Vec<Segment>,
    rng: StdRng,
    tracer: Tracer,
    stats: Stats,
    mac_counter: u64,
    started: bool,
    events_processed: u64,
    queue_sample_every: Option<SimDuration>,
    // Fault-injection state (see the `faults` module): crashed nodes
    // receive neither frames nor timers until their scheduled reboot;
    // muted (node, iface) pairs have their broadcast transmissions
    // suppressed.
    down_nodes: Vec<bool>,
    muted_broadcasts: HashSet<(NodeId, IfaceId)>,
    // Per-node interface views handed to `Ctx` during dispatch, kept in
    // sync incrementally at the three binding mutation points
    // (`add_node`, `add_iface`, `move_iface`) instead of being rebuilt
    // from `bindings` on every dispatch. Borrowed immutably for the
    // duration of a handler (handlers cannot reach binding mutations).
    iface_infos: Vec<Vec<IfaceInfo>>,
    // Scratch buffers reused across events so the steady-state hot path
    // (dispatch + transmit) allocates nothing. Taken with `mem::take`, so
    // an unexpected nested use degrades to a fresh allocation instead of
    // corrupting the outer call.
    action_scratch: Vec<Action>,
    rx_scratch: Vec<(NodeId, IfaceId)>,
    // Box pools for the payload-carrying queue events, keeping `EventKind`
    // pointer-sized without paying an allocation per transmission: a
    // popped box returns here and its fields are overwritten at the next
    // transmit (the stale frame inside a pooled box keeps its payload
    // refcount until then — bounded by the pool's high-water mark).
    // (clippy::vec_box: the boxing is the point — pooled boxes are moved
    // into `EventKind` whole, so the allocation itself is what's recycled.)
    #[allow(clippy::vec_box)]
    frame_pool: Vec<Box<FrameEvent>>,
    #[allow(clippy::vec_box)]
    batch_pool: Vec<Box<BatchEvent>>,
    // Structured telemetry (see the `telemetry` crate): a bounded ring of
    // typed events plus an optional pcap-ng capture of delivered frames.
    // Both are off by default and cost nothing until enabled.
    tele: EventLog,
    pcap: Option<PcapWriter>,
    // Cross-shard plumbing (see the `shard` module). `portal_of[seg]`
    // names the physical portal a segment is a replica of; transmissions
    // onto it are mirrored into `egress` for the barrier exchange. Both
    // stay empty in a standalone world, and `has_portals` keeps the whole
    // mechanism to one branch per transmit.
    has_portals: bool,
    portal_of: Vec<Option<PortalId>>,
    egress: Vec<EgressFrame>,
}

impl World {
    /// Creates an empty world whose randomness derives entirely from `seed`.
    pub fn new(seed: u64) -> World {
        World {
            time: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            arena: NodeArena::new(),
            bindings: Vec::new(),
            segments: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            tracer: Tracer::new(),
            stats: Stats::new(),
            mac_counter: 0,
            started: false,
            events_processed: 0,
            queue_sample_every: None,
            down_nodes: Vec::new(),
            muted_broadcasts: HashSet::new(),
            iface_infos: Vec::new(),
            action_scratch: Vec::new(),
            rx_scratch: Vec::new(),
            frame_pool: Vec::new(),
            batch_pool: Vec::new(),
            tele: EventLog::new(),
            pcap: None,
            has_portals: false,
            portal_of: Vec::new(),
            egress: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Adds a broadcast segment and returns its id.
    pub fn add_segment(&mut self, params: SegmentParams) -> SegmentId {
        assert!((0.0..=1.0).contains(&params.loss), "segment loss must be a probability in [0, 1]");
        assert!(
            (0.0..=1.0).contains(&params.corrupt),
            "segment corruption must be a probability in [0, 1]"
        );
        let id = SegmentId(self.segments.len());
        self.segments.push(Segment::new(params));
        self.portal_of.push(None);
        id
    }

    /// Adds a node and returns its id. Interfaces are added separately via
    /// [`World::add_iface`].
    ///
    /// The node is moved into the world's internal arena (contiguous
    /// chunks rather than one heap box per node), so dense worlds keep
    /// node state cache-local. Nodes live as long as the world.
    pub fn add_node(&mut self, node: impl Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        let ptr = self.arena.alloc(node);
        self.nodes.push(Some(ptr));
        self.bindings.push(Vec::new());
        self.iface_infos.push(Vec::new());
        self.down_nodes.push(false);
        id
    }

    /// Hints that roughly `events` events will be outstanding at once, so
    /// the event queue can pre-size its storage and steady-state runs
    /// never reallocate it. Builders that know their population (e.g. the
    /// hierarchy generator) call this once before [`World::start`].
    pub fn reserve_events(&mut self, events: usize) {
        self.queue.reserve(events);
    }

    /// Adds an interface to `node`, optionally attached to a segment, and
    /// returns its node-local id and freshly assigned MAC address.
    pub fn add_iface(&mut self, node: NodeId, segment: Option<SegmentId>) -> (IfaceId, MacAddr) {
        let mac = MacAddr::from_index(self.mac_counter);
        self.mac_counter += 1;
        let iface = IfaceId(self.bindings[node.0].len());
        self.bindings[node.0].push(IfaceBinding { mac, segment });
        self.iface_infos[node.0].push(IfaceInfo { mac, attached: segment.is_some() });
        if let Some(seg) = segment {
            self.segments[seg.0].attach(node, iface, mac);
        }
        (iface, mac)
    }

    /// Like [`World::add_iface`], but with an explicit MAC index instead
    /// of the world's own counter.
    ///
    /// A [`ShardedWorld`](crate::shard::ShardedWorld) assigns MAC indices
    /// from one *global* counter so that a node keeps the same address no
    /// matter how many shards the world is split into — the determinism
    /// contract (same seed, any shard count, identical logs) depends on
    /// it. The world's own counter is bumped past `mac_index` so later
    /// [`World::add_iface`] calls never collide.
    pub fn add_iface_with_mac(
        &mut self,
        node: NodeId,
        segment: Option<SegmentId>,
        mac_index: u64,
    ) -> (IfaceId, MacAddr) {
        let mac = MacAddr::from_index(mac_index);
        self.mac_counter = self.mac_counter.max(mac_index + 1);
        let iface = IfaceId(self.bindings[node.0].len());
        self.bindings[node.0].push(IfaceBinding { mac, segment });
        self.iface_infos[node.0].push(IfaceInfo { mac, attached: segment.is_some() });
        if let Some(seg) = segment {
            self.segments[seg.0].attach(node, iface, mac);
        }
        (iface, mac)
    }

    /// Marks `segment` as a replica of physical portal `portal`:
    /// transmissions onto it are additionally buffered as egress for the
    /// barrier exchange (see the [`shard`](crate::shard) module).
    ///
    /// # Panics
    ///
    /// Panics unless the segment is deterministic end-to-end: zero jitter,
    /// zero loss, zero corruption. Portal arrivals are replayed into other
    /// shards without re-drawing randomness, and the conservative barrier
    /// scheduler derives its lookahead from the portal's *fixed* latency,
    /// so a random portal would break both determinism and safety.
    pub(crate) fn mark_portal(&mut self, segment: SegmentId, portal: PortalId) {
        let params = self.segments[segment.0].params;
        assert!(
            params.jitter == SimDuration::ZERO && params.loss == 0.0 && params.corrupt == 0.0,
            "portal segments must be deterministic (no jitter/loss/corruption)"
        );
        assert!(params.latency > SimDuration::ZERO, "portal segments need non-zero latency");
        self.portal_of[segment.0] = Some(portal);
        self.has_portals = true;
    }

    /// Drains the egress buffer into `out`, tagging each frame with this
    /// shard's index. Called by the barrier coordinator at window ends.
    pub(crate) fn drain_egress_into(&mut self, shard: u32, out: &mut Vec<(u32, EgressFrame)>) {
        out.extend(self.egress.drain(..).map(|ef| (shard, ef)));
    }

    /// Injects a portal frame that originated in another shard into this
    /// shard's replica `segment`, delivering to every attachment whose MAC
    /// matches (the sender is remote, so no sender exclusion applies).
    ///
    /// No segment-up recheck: like any frame already in flight, a portal
    /// frame that was accepted onto the segment at send time still arrives
    /// if the segment goes down mid-flight (down blocks only transmission).
    pub(crate) fn inject_portal_frame(&mut self, at: SimTime, segment: SegmentId, frame: &Frame) {
        debug_assert!(at >= self.time, "portal injection into the past");
        self.stats.incr_id(metric::SHARD_INGRESS_FRAMES);
        let mut receivers = std::mem::take(&mut self.rx_scratch);
        receivers.clear();
        receivers.extend(
            self.segments[segment.0]
                .attachments
                .iter()
                .filter(|a| frame.dst.is_broadcast() || a.mac == frame.dst)
                .map(|a| (a.node, a.iface)),
        );
        for &(rx_node, rx_iface) in &receivers {
            let fe = match self.frame_pool.pop() {
                Some(mut fe) => {
                    fe.node = rx_node;
                    fe.iface = rx_iface;
                    fe.segment = segment;
                    fe.frame = frame.clone();
                    fe
                }
                None => Box::new(FrameEvent {
                    node: rx_node,
                    iface: rx_iface,
                    segment,
                    frame: frame.clone(),
                }),
            };
            self.queue.push(at, EventKind::Frame(fe));
        }
        receivers.clear();
        self.rx_scratch = receivers;
    }

    /// Runs every node's [`Node::on_start`]. Must be called exactly once,
    /// before [`World::run_until`].
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self) {
        assert!(!self.started, "World::start called twice");
        self.started = true;
        for i in 0..self.nodes.len() {
            self.dispatch(NodeId(i), |node, ctx| node.on_start(ctx));
        }
    }

    /// Processes all events up to and including time `t`, then advances the
    /// clock to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        assert!(self.started, "call World::start before running");
        while let Some(ev) = self.queue.pop_due(t) {
            self.process_event(ev);
        }
        // Cancelled timers discarded by the pops above (including any
        // past `t` skimmed by the final one) fold into the counter once
        // per run, keeping the per-event loop free of stats traffic.
        self.drain_suppressed();
        if t > self.time {
            self.time = t;
        }
    }

    /// Runs for `d` of simulated time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.time + d;
        self.run_until(t);
    }

    /// Processes the single next event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        let popped = self.queue.pop();
        self.drain_suppressed();
        let Some(ev) = popped else { return false };
        self.process_event(ev);
        true
    }

    /// Timer events discarded by cancellation during a pop or peek
    /// surface as a counter, not as dispatches.
    #[inline]
    fn drain_suppressed(&mut self) {
        let suppressed = self.queue.take_suppressed();
        if suppressed > 0 {
            self.stats.add_id(metric::SIM_TIMERS_CANCELLED, suppressed);
        }
    }

    /// Advances the clock to a popped event and runs it. Shared by
    /// [`World::step`] and the [`World::run_until`] hot loop.
    fn process_event(&mut self, ev: ScheduledEvent) {
        debug_assert!(ev.at >= self.time, "event queue went backwards");
        self.time = ev.at;
        self.events_processed += 1;
        match ev.kind {
            EventKind::Frame(fe) => {
                self.deliver_frame(fe.node, fe.iface, fe.segment, &fe.frame);
                self.frame_pool.push(fe);
            }
            EventKind::FrameBatch(mut be) => {
                // One queue entry carrying receivers.len() deliveries:
                // count each so `events_processed` (and thus bench
                // throughput figures) match the unbatched scheme exactly.
                self.events_processed += be.receivers.len() as u64 - 1;
                for i in 0..be.receivers.len() {
                    let (node, iface) = be.receivers[i];
                    self.deliver_frame(node, iface, be.segment, &be.frame);
                }
                be.receivers.clear();
                self.batch_pool.push(be);
            }
            EventKind::Timer { node, token } => {
                if self.down_nodes[node.0] {
                    // Pending timers are volatile state: a crash consumes
                    // them. Nodes re-arm from `on_reboot`.
                    self.stats.incr_id(metric::FAULT_TIMERS_DROPPED_NODE_DOWN);
                    return;
                }
                self.tracer
                    .record(self.time, Some(node), "timer", || format!("token {:#x}", token.0));
                self.tele_record(Some(node), None, telemetry::EventKind::Timer { token: token.0 });
                self.dispatch(node, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::Admin(op) => self.apply_admin(*op),
            EventKind::Fault(op) => self.apply_fault(*op),
            EventKind::SampleQueue => {
                // The sample event itself was already popped, so `queue_len`
                // reflects only real pending work at this instant.
                if let Some(every) = self.queue_sample_every {
                    let depth = self.queue.len() as f64;
                    self.stats.record_id(metric::SIM_QUEUE_DEPTH, self.time, depth);
                    self.queue.push(self.time + every, EventKind::SampleQueue);
                }
            }
        }
    }

    /// Delivers one frame copy to `node`'s `iface`, running the full
    /// arrival pipeline (crash check, moved-away suppression, stats,
    /// trace, telemetry, pcap, dispatch). Shared by per-receiver `Frame`
    /// events and batched `FrameBatch` fan-outs.
    fn deliver_frame(&mut self, node: NodeId, iface: IfaceId, segment: SegmentId, frame: &Frame) {
        if self.down_nodes[node.0] {
            // A crashed node hears nothing.
            self.stats.incr_id(metric::FAULT_FRAMES_DROPPED_NODE_DOWN);
            self.tele_record(
                Some(node),
                frame.journey,
                telemetry::EventKind::FrameDrop { reason: DropReason::NodeDown },
            );
            return;
        }
        // Suppress delivery if the interface moved away mid-flight.
        let still_here = self
            .bindings
            .get(node.0)
            .and_then(|b| b.get(iface.0))
            .is_some_and(|b| b.segment == Some(segment));
        if still_here {
            self.stats.incr_id(metric::LINK_FRAMES_DELIVERED);
            self.tracer.record(self.time, Some(node), "frame", || {
                format!(
                    "if{} {} -> {} {:?} len {}",
                    iface.0,
                    frame.src,
                    frame.dst,
                    frame.ethertype,
                    frame.payload.len()
                )
            });
            self.tele_record(
                Some(node),
                frame.journey,
                telemetry::EventKind::FrameRx {
                    iface: iface.0 as u32,
                    bytes: frame.wire_len() as u32,
                },
            );
            if self.pcap.is_some() {
                self.pcap_capture(frame);
            }
            let journey = frame.journey;
            self.dispatch_with(node, journey, |n, ctx| n.on_frame(ctx, iface, frame));
        } else {
            self.stats.incr_id(metric::LINK_FRAMES_LOST_MOVED);
            self.tele_record(
                Some(node),
                frame.journey,
                telemetry::EventKind::FrameDrop { reason: DropReason::Moved },
            );
        }
    }

    /// Samples [`World::queue_len`] into the `sim.queue_depth` stats series
    /// every `interval`, starting one interval from now. Pass `None` to stop
    /// (an already-scheduled sample fires once more, records nothing further
    /// and does not reschedule).
    ///
    /// Note that while sampling is active the event queue never drains, so
    /// bound runs with [`World::run_until`]/[`World::run_for`] rather than
    /// looping on [`World::step`].
    pub fn set_queue_sampling(&mut self, interval: Option<SimDuration>) {
        let was_on = self.queue_sample_every.is_some();
        assert!(
            interval.is_none_or(|d| d > SimDuration::ZERO),
            "queue sampling interval must be positive"
        );
        self.queue_sample_every = interval;
        if let Some(every) = interval {
            if !was_on {
                self.queue.push(self.time + every, EventKind::SampleQueue);
            }
        }
    }

    /// Schedules an [`AdminOp`] at absolute time `at`.
    pub fn schedule_admin(&mut self, at: SimTime, op: AdminOp) {
        self.queue.push(at, EventKind::Admin(Box::new(op)));
    }

    /// Schedules a script callback at absolute time `at`.
    pub fn schedule_call(&mut self, at: SimTime, f: impl FnOnce(&mut World) + Send + 'static) {
        self.schedule_admin(at, AdminOp::Call(Box::new(f)));
    }

    /// Schedules one [`FaultOp`] at absolute time `at`.
    pub fn schedule_fault(&mut self, at: SimTime, op: FaultOp) {
        assert!(at >= self.time, "fault scheduled in the past");
        self.queue.push(at, EventKind::Fault(Box::new(op)));
    }

    /// Compiles a [`FaultPlan`] onto the event queue: every scheduled
    /// operation becomes an event, totally ordered with frames, timers and
    /// admin operations. Deterministic: the same seed and the same plan
    /// reproduce a byte-identical run.
    ///
    /// # Panics
    ///
    /// Panics if any operation is scheduled before the current time.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        for (at, op) in plan.ops() {
            self.schedule_fault(*at, op.clone());
        }
    }

    /// Whether `node` is currently crashed by a [`FaultOp::Crash`] (it
    /// receives no frames or timers until its scheduled reboot).
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.down_nodes[node.0]
    }

    fn apply_fault(&mut self, op: FaultOp) {
        self.stats.incr_id(metric::FAULT_OPS_APPLIED);
        self.tracer.record(self.time, None, "fault", || op.to_string());
        let fault_kind = match &op {
            FaultOp::SegmentDown { .. } => FaultKind::SegmentDown,
            FaultOp::SegmentUp { .. } => FaultKind::SegmentUp,
            FaultOp::SetSegmentLoss { .. } => FaultKind::Loss,
            FaultOp::SetSegmentLatency { .. } | FaultOp::LatencySpike { .. } => FaultKind::Latency,
            FaultOp::SetSegmentCorruption { .. } => FaultKind::Corruption,
            FaultOp::DetachIface { .. } => FaultKind::Detach,
            FaultOp::AttachIface { .. } => FaultKind::Attach,
            FaultOp::Crash { .. } => FaultKind::Crash,
            FaultOp::Reboot { .. } => FaultKind::Reboot,
            FaultOp::MuteBroadcasts { .. } => FaultKind::Mute,
            FaultOp::UnmuteBroadcasts { .. } => FaultKind::Unmute,
        };
        self.tele_record(None, None, telemetry::EventKind::Fault { kind: fault_kind });
        match op {
            FaultOp::SegmentDown { segment } => self.segments[segment.0].up = false,
            FaultOp::SegmentUp { segment } => self.segments[segment.0].up = true,
            FaultOp::SetSegmentLoss { segment, loss } => {
                assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
                self.segments[segment.0].params.loss = loss;
            }
            FaultOp::SetSegmentLatency { segment, latency } => {
                self.segments[segment.0].params.latency = latency;
            }
            FaultOp::LatencySpike { segment, extra, duration } => {
                let previous = self.segments[segment.0].params.latency;
                self.segments[segment.0].params.latency = previous + extra;
                self.schedule_fault(
                    self.time + duration,
                    FaultOp::SetSegmentLatency { segment, latency: previous },
                );
            }
            FaultOp::SetSegmentCorruption { segment, probability } => {
                assert!((0.0..=1.0).contains(&probability), "corruption must be a probability");
                self.segments[segment.0].params.corrupt = probability;
            }
            FaultOp::DetachIface { node, iface } => self.move_iface(node, iface, None),
            FaultOp::AttachIface { node, iface, segment } => {
                self.move_iface(node, iface, Some(segment));
            }
            FaultOp::Crash { node, down_for } => {
                if !self.down_nodes[node.0] {
                    self.stats.incr_id(metric::FAULT_CRASHES);
                    self.down_nodes[node.0] = true;
                    self.schedule_fault(self.time + down_for, FaultOp::Reboot { node });
                }
            }
            FaultOp::Reboot { node } => {
                self.down_nodes[node.0] = false;
                self.reboot_node(node);
            }
            FaultOp::MuteBroadcasts { node, iface } => {
                self.muted_broadcasts.insert((node, iface));
            }
            FaultOp::UnmuteBroadcasts { node, iface } => {
                self.muted_broadcasts.remove(&(node, iface));
            }
        }
    }

    /// Immediately moves `iface` of `node` to `segment` (detaching first if
    /// needed), firing [`Node::on_link`] events.
    pub fn move_iface(&mut self, node: NodeId, iface: IfaceId, segment: Option<SegmentId>) {
        let old = self.bindings[node.0][iface.0].segment;
        if old == segment {
            return;
        }
        // A crashed node's hardware still detaches/attaches, but its
        // software sees no link events until it reboots.
        let awake = !self.down_nodes[node.0];
        if let Some(old_seg) = old {
            self.segments[old_seg.0].detach(node, iface);
            self.bindings[node.0][iface.0].segment = None;
            self.iface_infos[node.0][iface.0].attached = false;
            if awake {
                self.dispatch(node, |n, ctx| n.on_link(ctx, iface, LinkEvent::Detached));
            }
        }
        if let Some(new_seg) = segment {
            let mac = self.bindings[node.0][iface.0].mac;
            self.segments[new_seg.0].attach(node, iface, mac);
            self.bindings[node.0][iface.0].segment = Some(new_seg);
            self.iface_infos[node.0][iface.0].attached = true;
            if awake {
                self.dispatch(node, |n, ctx| n.on_link(ctx, iface, LinkEvent::Attached));
            }
        }
    }

    /// Immediately reboots `node` (fires [`Node::on_reboot`]).
    pub fn reboot_node(&mut self, node: NodeId) {
        self.stats.incr_id(metric::WORLD_REBOOTS);
        self.dispatch(node, |n, ctx| n.on_reboot(ctx));
    }

    /// Typed shared access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a node of concrete type `T`.
    pub fn node<T: 'static>(&self, id: NodeId) -> &T {
        let ptr = self.nodes[id.0].expect("node is mid-dispatch");
        // SAFETY: the pointer came from `self.arena` (alive as long as
        // `self`), and the slot being `Some` means no `&mut` to this
        // node exists (dispatch takes the slot while it holds one).
        let node: &dyn Node = unsafe { ptr.as_ref() };
        node.as_any().downcast_ref::<T>().expect("node type mismatch")
    }

    /// Runs `f` with typed mutable access to a node *and* a live [`Ctx`], so
    /// scenario scripts can make nodes send packets or arm timers.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a node of concrete type `T`.
    pub fn with_node<T: 'static, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R {
        let mut out = None;
        self.dispatch(id, |node, ctx| {
            let typed = node.as_any_mut().downcast_mut::<T>().expect("node type mismatch");
            out = Some(f(typed, ctx));
        });
        out.expect("with_node closure did not run")
    }

    /// Global statistics (shared access).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Global statistics (mutable access, for scenario-level metrics).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// The trace collector.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Enables or disables tracing.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer.set_enabled(enabled);
    }

    /// Enables or disables structured telemetry (typed events + packet
    /// journeys). Off by default: disabled worlds mint no journey ids,
    /// record no events and allocate nothing for the log.
    pub fn set_telemetry(&mut self, enabled: bool) {
        self.tele.set_enabled(enabled);
    }

    /// Re-sizes the telemetry ring buffer (discards buffered events).
    /// Size long-running traced worlds generously; overwrites are counted
    /// in [`telemetry::EventLog::overwritten`].
    pub fn set_telemetry_capacity(&mut self, events: usize) {
        self.tele.set_capacity(events);
    }

    /// The structured event log (query API lives on [`EventLog`]).
    pub fn telemetry(&self) -> &EventLog {
        &self.tele
    }

    /// Mutable access to the structured event log (e.g. to clear it
    /// between experiment phases).
    pub fn telemetry_mut(&mut self) -> &mut EventLog {
        &mut self.tele
    }

    /// Reconstructs one packet's journey from the event log.
    pub fn journey(&self, id: JourneyId) -> Journey {
        self.tele.journey(id)
    }

    /// The hop list of journey `id`: every node that a frame of this
    /// journey was *delivered* to, in order.
    pub fn journey_hops(&self, id: JourneyId) -> Vec<NodeId> {
        self.tele.journey(id).hops().into_iter().map(|n| NodeId(n as usize)).collect()
    }

    /// The journey of the most recent frame delivered to `node`, if any.
    pub fn last_journey_to(&self, node: NodeId) -> Option<JourneyId> {
        self.tele.last_journey_to(node.0 as u32)
    }

    /// Starts capturing every *delivered* frame into an in-memory
    /// pcap-ng buffer (14-byte synthesized ethernet header + payload,
    /// which for tunneled packets includes the MHRP header bytes).
    /// Independent of [`World::set_telemetry`].
    pub fn start_pcap_capture(&mut self) {
        if self.pcap.is_none() {
            self.pcap = Some(PcapWriter::new());
        }
    }

    /// Stops the pcap capture and returns the finished capture bytes
    /// (`None` if capture was never started).
    pub fn take_pcap(&mut self) -> Option<Vec<u8>> {
        self.pcap.take().map(PcapWriter::finish)
    }

    /// Number of frames captured so far (0 when capture is off).
    pub fn pcap_frame_count(&self) -> usize {
        self.pcap.as_ref().map_or(0, PcapWriter::frame_count)
    }

    /// Records a structured event stamped with the current time. Becomes
    /// a no-op shell without the `telemetry` cargo feature.
    #[inline]
    fn tele_record(
        &mut self,
        node: Option<NodeId>,
        journey: Option<JourneyId>,
        kind: telemetry::EventKind,
    ) {
        #[cfg(feature = "telemetry")]
        self.tele.record(telemetry::Event {
            at_nanos: self.time.as_nanos(),
            node: node.map(|n| n.0 as u32),
            journey,
            kind,
        });
        #[cfg(not(feature = "telemetry"))]
        let _ = (node, journey, kind);
    }

    /// Appends a delivered frame to the pcap capture, synthesizing the
    /// 14-byte ethernet header the simulator models but does not store.
    fn pcap_capture(&mut self, frame: &Frame) {
        let Some(pcap) = self.pcap.as_mut() else { return };
        let mut bytes = Vec::with_capacity(crate::frame::LINK_HEADER_BYTES + frame.payload.len());
        bytes.extend_from_slice(&frame.dst.0);
        bytes.extend_from_slice(&frame.src.0);
        bytes.extend_from_slice(&frame.ethertype.as_u16().to_be_bytes());
        bytes.extend_from_slice(&frame.payload);
        pcap.add_frame(self.time.as_nanos(), &bytes);
    }

    /// Number of events currently queued (useful to observe congestion).
    ///
    /// Cancelled timers are discarded lazily, so this can transiently
    /// overcount by the number of cancelled-but-not-yet-expired timers.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Total events processed since the world was created (frames, timers
    /// and admin operations). The bench harness divides this by wall time
    /// to report simulator throughput.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Whether the event queue has drained (nothing more will ever happen
    /// unless a node or script schedules it).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of nodes in the world.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The segment `iface` of `node` is currently attached to, if any.
    pub fn iface_segment(&self, node: NodeId, iface: IfaceId) -> Option<SegmentId> {
        self.bindings[node.0][iface.0].segment
    }

    /// The MAC address assigned to `iface` of `node`.
    pub fn iface_mac(&self, node: NodeId, iface: IfaceId) -> MacAddr {
        self.bindings[node.0][iface.0].mac
    }

    fn apply_admin(&mut self, op: AdminOp) {
        match op {
            AdminOp::AttachIface { node, iface, segment } => {
                self.move_iface(node, iface, Some(segment));
            }
            AdminOp::DetachIface { node, iface } => self.move_iface(node, iface, None),
            AdminOp::MoveIface { node, iface, segment } => {
                self.move_iface(node, iface, Some(segment));
            }
            AdminOp::SetSegmentUp { segment, up } => self.segments[segment.0].up = up,
            AdminOp::SetSegmentLoss { segment, loss } => {
                assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
                self.segments[segment.0].params.loss = loss;
            }
            AdminOp::Reboot { node } => self.reboot_node(node),
            AdminOp::Call(f) => f(self),
            AdminOp::CallNode { node, script } => script(self, node),
        }
    }

    fn dispatch(&mut self, node_id: NodeId, f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>)) {
        self.dispatch_with(node_id, None, f);
    }

    /// Dispatch with an ambient packet journey: frames the handler sends
    /// inherit `journey`, which is how one packet's hops stay linked as
    /// it is forwarded (and re-framed) across the internetwork.
    fn dispatch_with(
        &mut self,
        node_id: NodeId,
        journey: Option<JourneyId>,
        f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>),
    ) {
        let mut node = self.nodes[node_id.0].take().expect("re-entrant dispatch on one node");
        let mut actions = std::mem::take(&mut self.action_scratch);
        actions.clear();
        // The node's interface view is maintained incrementally (see the
        // `iface_infos` field) and borrowed straight into the context —
        // disjoint from the queue/rng/tracer fields borrowed mutably —
        // rather than rebuilt from `bindings` per dispatch.
        let mut ctx = Ctx {
            now: self.time,
            node: node_id,
            ifaces: &self.iface_infos[node_id.0],
            queue: &mut self.queue,
            actions,
            rng: &mut self.rng,
            tracer: &mut self.tracer,
            stats: &mut self.stats,
            tele: &mut self.tele,
            journey,
        };
        // SAFETY: `node` was taken out of its slot, so this is the only
        // live path to the object for the duration of the handler (a
        // re-entrant dispatch on the same node panics on the `take`
        // above; `World::node` panics on the empty slot).
        f(unsafe { node.as_mut() }, &mut ctx);
        let mut actions = ctx.actions;
        self.nodes[node_id.0] = Some(node);
        for action in actions.drain(..) {
            self.apply_action(node_id, action);
        }
        // Keep the larger buffer in case an action's own dispatch (e.g. a
        // link event) replaced the scratch while we were draining.
        if actions.capacity() > self.action_scratch.capacity() {
            self.action_scratch = actions;
        }
    }

    fn apply_action(&mut self, node_id: NodeId, action: Action) {
        match action {
            Action::SendFrame { iface, frame } => self.transmit(node_id, iface, frame),
            Action::SetTimer { delay, token } => {
                self.queue.push(self.time + delay, EventKind::Timer { node: node_id, token });
            }
            Action::CancelTimer { token } => self.queue.cancel_timer(node_id, token),
        }
    }

    fn transmit(&mut self, node_id: NodeId, iface: IfaceId, frame: Frame) {
        let Some(binding) = self.bindings[node_id.0].get(iface.0) else {
            self.stats.incr_id(metric::LINK_TX_BAD_IFACE);
            self.tele_record(
                Some(node_id),
                frame.journey,
                telemetry::EventKind::FrameDrop { reason: DropReason::BadIface },
            );
            return;
        };
        let Some(seg_id) = binding.segment else {
            // Transmitting into an unplugged cable.
            self.stats.incr_id(metric::LINK_TX_DETACHED);
            self.tele_record(
                Some(node_id),
                frame.journey,
                telemetry::EventKind::FrameDrop { reason: DropReason::Detached },
            );
            return;
        };
        let seg = &self.segments[seg_id.0];
        if !seg.up {
            self.stats.incr_id(metric::LINK_TX_SEGMENT_DOWN);
            self.tele_record(
                Some(node_id),
                frame.journey,
                telemetry::EventKind::FrameDrop { reason: DropReason::SegmentDown },
            );
            return;
        }
        if frame.dst.is_broadcast()
            && !self.muted_broadcasts.is_empty()
            && self.muted_broadcasts.contains(&(node_id, iface))
        {
            self.stats.incr_id(metric::FAULT_TX_MUTED);
            self.tele_record(
                Some(node_id),
                frame.journey,
                telemetry::EventKind::FrameDrop { reason: DropReason::Muted },
            );
            return;
        }
        let params = seg.params;
        self.stats.incr_id(metric::LINK_FRAMES_SENT);
        self.stats.add_id(metric::LINK_BYTES_SENT, frame.wire_len() as u64);
        self.tele_record(
            Some(node_id),
            frame.journey,
            telemetry::EventKind::FrameTx { iface: iface.0 as u32, bytes: frame.wire_len() as u32 },
        );
        if self.has_portals {
            // A send accepted onto a portal replica also crosses the shard
            // boundary: buffer a copy (payload shared by refcount) for the
            // barrier exchange. Local receivers are still served below.
            if let Some(portal) = self.portal_of[seg_id.0] {
                self.stats.incr_id(metric::SHARD_EGRESS_FRAMES);
                self.egress.push(EgressFrame {
                    at: self.time + params.latency,
                    portal,
                    frame: frame.clone(),
                });
            }
        }
        let mut receivers = std::mem::take(&mut self.rx_scratch);
        receivers.clear();
        receivers.extend(
            self.segments[seg_id.0].receivers(node_id, iface, frame.dst).map(|a| (a.node, a.iface)),
        );
        if frame.dst.is_broadcast()
            && receivers.len() > 1
            && params.jitter == SimDuration::ZERO
            && params.corrupt == 0.0
        {
            // Batched fan-out: with zero jitter and no per-copy
            // corruption, every surviving receiver gets an identical copy
            // at the identical instant, and the per-receiver `Frame`
            // events the unbatched path would push carry *consecutive*
            // sequence numbers — nothing can order between them. One
            // `FrameBatch` event therefore reproduces the exact
            // processing order while costing a single queue operation.
            // Loss is still drawn per receiver, in attachment order, so
            // the RNG stream is bit-identical to the unbatched scheme.
            let journey = frame.journey;
            let mut be = match self.batch_pool.pop() {
                Some(mut be) => {
                    be.segment = seg_id;
                    be.frame = frame;
                    be
                }
                None => Box::new(BatchEvent { segment: seg_id, frame, receivers: Vec::new() }),
            };
            debug_assert!(be.receivers.is_empty(), "pooled batch not cleared");
            for &(rx_node, rx_iface) in &receivers {
                if params.loss > 0.0 && self.rng.random::<f64>() < params.loss {
                    self.stats.incr_id(metric::LINK_FRAMES_DROPPED);
                    self.tele_record(
                        Some(rx_node),
                        journey,
                        telemetry::EventKind::FrameDrop { reason: DropReason::Loss },
                    );
                    continue;
                }
                be.receivers.push((rx_node, rx_iface));
            }
            if be.receivers.is_empty() {
                // Every copy was lost; recycle the box.
                self.batch_pool.push(be);
            } else {
                self.queue.push(self.time + params.latency, EventKind::FrameBatch(be));
            }
            receivers.clear();
            self.rx_scratch = receivers;
            return;
        }
        for &(rx_node, rx_iface) in &receivers {
            if params.loss > 0.0 && self.rng.random::<f64>() < params.loss {
                self.stats.incr_id(metric::LINK_FRAMES_DROPPED);
                self.tele_record(
                    Some(rx_node),
                    frame.journey,
                    telemetry::EventKind::FrameDrop { reason: DropReason::Loss },
                );
                continue;
            }
            let mut delay = params.latency;
            if params.jitter > SimDuration::ZERO {
                let j = self.rng.random_range(0..=params.jitter.as_nanos());
                delay += SimDuration::from_nanos(j);
            }
            // Cloning shares the payload bytes: per-receiver cost is a
            // refcount bump plus the fixed-size header. Fault-injected
            // corruption is the one case that pays for a private copy:
            // exactly one bit of this receiver's copy is flipped, so the
            // checksum failure is visible to it alone. The corruption
            // draw comes *after* the loss and jitter draws so that runs
            // with `corrupt == 0` consume the RNG identically to builds
            // without fault injection (the determinism goldens pin this).
            let mut rx_frame = frame.clone();
            if params.corrupt > 0.0
                && !rx_frame.payload.is_empty()
                && self.rng.random::<f64>() < params.corrupt
            {
                let bit = self.rng.random_range(0..rx_frame.payload.len() * 8);
                let mut bytes = rx_frame.payload.to_vec();
                bytes[bit / 8] ^= 1 << (bit % 8);
                rx_frame.payload = Payload::from(bytes);
                self.stats.incr_id(metric::LINK_FRAMES_CORRUPTED);
            }
            let fe = match self.frame_pool.pop() {
                Some(mut fe) => {
                    fe.node = rx_node;
                    fe.iface = rx_iface;
                    fe.segment = seg_id;
                    fe.frame = rx_frame;
                    fe
                }
                None => Box::new(FrameEvent {
                    node: rx_node,
                    iface: rx_iface,
                    segment: seg_id,
                    frame: rx_frame,
                }),
            };
            self.queue.push(self.time + delay, EventKind::Frame(fe));
        }
        receivers.clear();
        self.rx_scratch = receivers;
    }
}

impl Drop for World {
    fn drop(&mut self) {
        for slot in &mut self.nodes {
            if let Some(ptr) = slot.take() {
                // SAFETY: each pointer came from `self.arena`, is dropped
                // at most once (the slot is taken), and nothing uses it
                // afterwards. The arena itself (a later field) frees the
                // chunk memory after this runs. A node left mid-dispatch
                // by a panicking handler has an empty slot and is leaked
                // rather than double-dropped.
                unsafe { std::ptr::drop_in_place(ptr.as_ptr()) };
            }
        }
    }
}

impl fmt::Debug for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("time", &self.time)
            .field("nodes", &self.nodes.len())
            .field("segments", &self.segments.len())
            .field("queued_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::EtherType;
    use crate::node::TimerToken;

    /// Counts frames; optionally echoes them back.
    struct Counter {
        rx: usize,
        echo: bool,
        link_events: Vec<(IfaceId, LinkEvent)>,
        reboots: usize,
    }

    impl Counter {
        fn new(echo: bool) -> Counter {
            Counter { rx: 0, echo, link_events: Vec::new(), reboots: 0 }
        }
    }

    impl Node for Counter {
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
            self.rx += 1;
            if self.echo && !frame.dst.is_broadcast() {
                // avoid infinite ping-pong: only echo broadcasts once
            }
            if self.echo && frame.dst.is_broadcast() {
                let reply =
                    Frame::new(ctx.mac(iface), frame.src, frame.ethertype, frame.payload.clone());
                ctx.send_frame(iface, reply);
            }
        }
        fn on_link(&mut self, _ctx: &mut Ctx<'_>, iface: IfaceId, event: LinkEvent) {
            self.link_events.push((iface, event));
        }
        fn on_reboot(&mut self, _ctx: &mut Ctx<'_>) {
            self.reboots += 1;
            self.rx = 0;
        }
    }

    /// Sends one broadcast at t=1ms.
    struct Beacon;
    impl Node for Beacon {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(1), TimerToken(1));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
            let f = Frame::broadcast(ctx.mac(IfaceId(0)), EtherType::Other(0x1234), vec![0xab]);
            ctx.send_frame(IfaceId(0), f);
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _i: IfaceId, _f: &Frame) {}
    }

    fn two_node_world() -> (World, NodeId, NodeId) {
        let mut w = World::new(1);
        let seg = w.add_segment(SegmentParams::default());
        let beacon = w.add_node(Beacon);
        w.add_iface(beacon, Some(seg));
        let counter = w.add_node(Counter::new(false));
        w.add_iface(counter, Some(seg));
        (w, beacon, counter)
    }

    #[test]
    fn broadcast_delivery_and_latency() {
        let (mut w, _b, c) = two_node_world();
        w.start();
        // Frame sent at 1ms, latency 500us: not delivered at 1.4ms.
        w.run_until(SimTime::from_micros(1400));
        assert_eq!(w.node::<Counter>(c).rx, 0);
        w.run_until(SimTime::from_micros(1501));
        assert_eq!(w.node::<Counter>(c).rx, 1);
        assert_eq!(w.stats().counter("link.frames_sent"), 1);
        assert_eq!(w.stats().counter("link.frames_delivered"), 1);
    }

    #[test]
    fn detached_iface_drops_tx_and_rx() {
        let (mut w, b, c) = two_node_world();
        w.start();
        // Detach the receiver before the beacon fires.
        w.move_iface(c, IfaceId(0), None);
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node::<Counter>(c).rx, 0);
        assert_eq!(w.node::<Counter>(c).link_events, vec![(IfaceId(0), LinkEvent::Detached)]);
        // Detach the sender too; its transmission is counted as tx_detached.
        w.move_iface(b, IfaceId(0), None);
        w.with_node::<Beacon, _>(b, |n, ctx| n.on_timer(ctx, TimerToken(1)));
        assert_eq!(w.stats().counter("link.tx_detached"), 1);
    }

    #[test]
    fn frame_in_flight_is_lost_if_receiver_moves() {
        let (mut w, _b, c) = two_node_world();
        let other = w.add_segment(SegmentParams::default());
        w.start();
        // Beacon fires at 1ms; move receiver at 1.2ms (frame lands at 1.5ms).
        w.run_until(SimTime::from_micros(1200));
        w.move_iface(c, IfaceId(0), Some(other));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node::<Counter>(c).rx, 0);
        assert_eq!(w.stats().counter("link.frames_lost_moved"), 1);
    }

    #[test]
    fn segment_down_blocks_tx() {
        let (mut w, _b, c) = two_node_world();
        w.schedule_admin(
            SimTime::from_micros(500),
            AdminOp::SetSegmentUp { segment: SegmentId(0), up: false },
        );
        w.start();
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node::<Counter>(c).rx, 0);
        assert_eq!(w.stats().counter("link.tx_segment_down"), 1);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut w = World::new(9);
        let seg = w.add_segment(SegmentParams { loss: 1.0, ..Default::default() });
        let b = w.add_node(Beacon);
        w.add_iface(b, Some(seg));
        let c = w.add_node(Counter::new(false));
        w.add_iface(c, Some(seg));
        w.start();
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node::<Counter>(c).rx, 0);
        assert_eq!(w.stats().counter("link.frames_dropped"), 1);
    }

    #[test]
    fn reboot_fires_handler() {
        let (mut w, _b, c) = two_node_world();
        w.start();
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node::<Counter>(c).rx, 1);
        w.reboot_node(c);
        assert_eq!(w.node::<Counter>(c).reboots, 1);
        assert_eq!(w.node::<Counter>(c).rx, 0);
    }

    #[test]
    fn scheduled_call_runs_at_time() {
        let (mut w, _b, _c) = two_node_world();
        w.start();
        w.schedule_call(SimTime::from_millis(5), |w| {
            w.stats_mut().incr("script.ran");
        });
        w.run_until(SimTime::from_millis(4));
        assert_eq!(w.stats().counter("script.ran"), 0);
        w.run_until(SimTime::from_millis(5));
        assert_eq!(w.stats().counter("script.ran"), 1);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed: u64| -> (u64, u64) {
            let mut w = World::new(seed);
            let seg = w.add_segment(SegmentParams {
                loss: 0.5,
                jitter: SimDuration::from_millis(1),
                ..Default::default()
            });
            let b = w.add_node(Beacon);
            w.add_iface(b, Some(seg));
            let c = w.add_node(Counter::new(false));
            w.add_iface(c, Some(seg));
            w.start();
            w.run_until(SimTime::from_secs(1));
            (w.stats().counter("link.frames_delivered"), w.stats().counter("link.frames_dropped"))
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn unicast_echo_round_trip() {
        let mut w = World::new(3);
        let seg = w.add_segment(SegmentParams::default());
        let b = w.add_node(Beacon);
        w.add_iface(b, Some(seg));
        let e = w.add_node(Counter::new(true));
        w.add_iface(e, Some(seg));
        let c2 = w.add_node(Counter::new(false));
        w.add_iface(c2, Some(seg));
        w.start();
        w.run_until(SimTime::from_secs(1));
        // Echoer got the broadcast and unicast-replied to the beacon only.
        assert_eq!(w.node::<Counter>(e).rx, 1);
        // The third node saw only the broadcast, not the unicast echo.
        assert_eq!(w.node::<Counter>(c2).rx, 1);
    }

    #[test]
    fn iface_metadata_accessors() {
        let (w, b, _c) = two_node_world();
        assert_eq!(w.iface_segment(b, IfaceId(0)), Some(SegmentId(0)));
        assert_eq!(w.iface_mac(b, IfaceId(0)), MacAddr::from_index(0));
        assert_eq!(w.node_count(), 2);
    }

    #[test]
    #[should_panic(expected = "node type mismatch")]
    fn typed_access_panics_on_wrong_type() {
        let (w, b, _c) = two_node_world();
        let _ = w.node::<Counter>(b);
    }

    #[test]
    fn queue_sampling_records_series_at_interval() {
        let (mut w, _b, _c) = two_node_world();
        w.set_queue_sampling(Some(SimDuration::from_millis(100)));
        w.start();
        w.run_until(SimTime::from_millis(450));
        let samples = w.stats().series("sim.queue_depth");
        // First sample one interval after arming: t = 100, 200, 300, 400 ms.
        assert_eq!(samples.len(), 4);
        for (i, &(at, depth)) in samples.iter().enumerate() {
            assert_eq!(at, SimTime::from_millis(100 * (i as u64 + 1)));
            // Depth excludes the just-popped sampler event itself.
            assert!(depth >= 0.0, "depth = {depth}");
        }
        // Turning sampling off stops recording (one stale event may still
        // fire, but it records nothing).
        w.set_queue_sampling(None);
        w.run_until(SimTime::from_millis(1000));
        assert_eq!(w.stats().series("sim.queue_depth").len(), 4);
    }

    #[test]
    fn crash_window_drops_frames_and_timers_then_reboots() {
        use crate::faults::FaultPlan;
        let (mut w, _b, c) = two_node_world();
        // Beacon fires at 1ms (lands 1.5ms); crash the counter across
        // that window and give it a pending timer that must be consumed.
        let plan = FaultPlan::new().crash(c, SimTime::from_millis(1), SimDuration::from_millis(2));
        w.install_faults(&plan);
        w.start();
        w.with_node::<Counter, _>(c, |_n, ctx| {
            ctx.set_timer(SimDuration::from_millis(2), TimerToken(9));
        });
        w.run_until(SimTime::from_micros(1500));
        assert!(w.node_is_down(c));
        w.run_until(SimTime::from_secs(1));
        assert!(!w.node_is_down(c));
        let n = w.node::<Counter>(c);
        assert_eq!(n.rx, 0, "crashed node must not receive frames");
        assert_eq!(n.reboots, 1, "outage must end in a reboot");
        assert_eq!(w.stats().counter("fault.frames_dropped_node_down"), 1);
        assert_eq!(w.stats().counter("fault.timers_dropped_node_down"), 1);
        assert_eq!(w.stats().counter("fault.crashes"), 1);
        assert_eq!(w.stats().counter("world.reboots"), 1);
    }

    #[test]
    fn muted_broadcasts_are_suppressed_but_unicast_passes() {
        use crate::faults::FaultOp;
        let (mut w, b, c) = two_node_world();
        w.schedule_fault(SimTime::ZERO, FaultOp::MuteBroadcasts { node: b, iface: IfaceId(0) });
        w.start();
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.node::<Counter>(c).rx, 0);
        assert_eq!(w.stats().counter("fault.tx_muted"), 1);
        // Unicast from the muted interface still goes through.
        let dst = w.iface_mac(c, IfaceId(0));
        w.with_node::<Beacon, _>(b, |_n, ctx| {
            let f = Frame::new(ctx.mac(IfaceId(0)), dst, EtherType::Other(0x1234), vec![1]);
            ctx.send_frame(IfaceId(0), f);
        });
        w.run_until(SimTime::from_secs(2));
        assert_eq!(w.node::<Counter>(c).rx, 1);
        w.schedule_fault(w.now(), FaultOp::UnmuteBroadcasts { node: b, iface: IfaceId(0) });
        w.run_until(w.now()); // apply the unmute before transmitting
        w.with_node::<Beacon, _>(b, |n, ctx| n.on_timer(ctx, TimerToken(1)));
        w.run_until(SimTime::from_secs(3));
        assert_eq!(w.node::<Counter>(c).rx, 2, "unmuted broadcast must deliver");
    }

    #[test]
    fn latency_spike_applies_and_restores() {
        use crate::faults::FaultOp;
        let (mut w, _b, c) = two_node_world();
        // Spike covers the 1ms beacon: delivery at 1ms + (500us + 10ms).
        w.schedule_fault(
            SimTime::ZERO,
            FaultOp::LatencySpike {
                segment: SegmentId(0),
                extra: SimDuration::from_millis(10),
                duration: SimDuration::from_millis(5),
            },
        );
        w.start();
        w.run_until(SimTime::from_millis(11));
        assert_eq!(w.node::<Counter>(c).rx, 0, "spiked latency must delay delivery");
        w.run_until(SimTime::from_micros(11_500));
        assert_eq!(w.node::<Counter>(c).rx, 1);
        // After the spike window the base latency is restored.
        w.with_node::<Beacon, _>(_b, |n, ctx| n.on_timer(ctx, TimerToken(1)));
        let sent_at = w.now();
        w.run_until(sent_at + SimDuration::from_micros(600));
        assert_eq!(w.node::<Counter>(c).rx, 2, "latency must be restored after the spike");
    }

    #[test]
    fn corruption_flips_exactly_one_bit_per_corrupted_copy() {
        use crate::faults::FaultOp;

        struct Keeper {
            got: Vec<Vec<u8>>,
        }
        impl Node for Keeper {
            fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _i: IfaceId, f: &Frame) {
                self.got.push(f.payload.to_vec());
            }
        }

        let mut w = World::new(11);
        let seg = w.add_segment(SegmentParams::default());
        let b = w.add_node(Beacon);
        w.add_iface(b, Some(seg));
        let k = w.add_node(Keeper { got: Vec::new() });
        w.add_iface(k, Some(seg));
        w.schedule_fault(
            SimTime::ZERO,
            FaultOp::SetSegmentCorruption { segment: seg, probability: 1.0 },
        );
        w.start();
        w.run_until(SimTime::from_secs(1));
        let got = &w.node::<Keeper>(k).got;
        assert_eq!(got.len(), 1);
        // The beacon payload is [0xab]; exactly one bit differs.
        let diff: u32 = (got[0][0] ^ 0xab).count_ones();
        assert_eq!(diff, 1, "corruption must flip exactly one bit");
        assert_eq!(w.stats().counter("link.frames_corrupted"), 1);
    }

    #[test]
    fn fault_plan_runs_are_byte_identical() {
        use crate::faults::{FaultOp, FaultPlan};
        let run = |seed: u64| -> (Vec<String>, Vec<(String, u64)>) {
            let mut w = World::new(seed);
            let seg = w.add_segment(SegmentParams {
                loss: 0.2,
                jitter: SimDuration::from_millis(1),
                ..Default::default()
            });
            let b = w.add_node(Beacon);
            w.add_iface(b, Some(seg));
            let c = w.add_node(Counter::new(true));
            w.add_iface(c, Some(seg));
            w.set_tracing(true);
            let plan = FaultPlan::new()
                .flap(
                    seg,
                    SimTime::from_micros(900),
                    SimDuration::from_micros(50),
                    SimDuration::from_micros(50),
                    3,
                )
                .op(
                    SimTime::from_micros(950),
                    FaultOp::SetSegmentCorruption { segment: seg, probability: 0.5 },
                )
                .crash(c, SimTime::from_millis(2), SimDuration::from_millis(1));
            w.install_faults(&plan);
            w.start();
            w.run_until(SimTime::from_secs(1));
            let trace = w
                .tracer()
                .events()
                .iter()
                .map(|e| format!("{:?} {:?} {} {}", e.time, e.node, e.kind, e.detail))
                .collect();
            let counters = w.stats().counters().map(|(n, v)| (n.to_owned(), v)).collect();
            (trace, counters)
        };
        assert_eq!(run(1994), run(1994));
    }

    #[test]
    fn queue_sampling_reenable_does_not_double_schedule() {
        let (mut w, _b, _c) = two_node_world();
        w.set_queue_sampling(Some(SimDuration::from_millis(100)));
        // Re-arming with a new interval must not stack a second sampler:
        // the already-scheduled event (t=100) fires once, then the new
        // cadence takes over (t=300). A stacked sampler would also record
        // at t=200 and t=400.
        w.set_queue_sampling(Some(SimDuration::from_millis(200)));
        w.start();
        w.run_until(SimTime::from_millis(450));
        let times: Vec<_> = w.stats().series("sim.queue_depth").iter().map(|s| s.0).collect();
        assert_eq!(times, vec![SimTime::from_millis(100), SimTime::from_millis(300)]);
    }
}

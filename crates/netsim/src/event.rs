//! The global event queue: a total order over `(time, sequence)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::faults::FaultOp;
use crate::frame::Frame;
use crate::id::{IfaceId, NodeId, SegmentId};
use crate::node::TimerToken;
use crate::time::SimTime;
use crate::world::AdminOp;

/// What happens when an event fires.
pub(crate) enum EventKind {
    /// A frame arrives at a node's interface. `segment` records where the
    /// frame was transmitted so delivery can be suppressed if the interface
    /// has moved away in the meantime.
    Frame { node: NodeId, iface: IfaceId, segment: SegmentId, frame: Frame },
    /// A node timer fires.
    Timer { node: NodeId, token: TimerToken },
    /// A scripted world operation executes.
    Admin(AdminOp),
    /// A scheduled fault fires (see `World::install_faults`).
    Fault(FaultOp),
    /// Periodic queue-depth sample (see `World::set_queue_sampling`).
    SampleQueue,
}

pub(crate) struct ScheduledEvent {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event on top.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of scheduled events.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, kind });
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer { node: NodeId(node), token: TimerToken(token) }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), timer(0, 5));
        q.push(SimTime::from_millis(1), timer(0, 1));
        q.push(SimTime::from_millis(3), timer(0, 3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..10 {
            q.push(t, timer(0, i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_millis(2), timer(0, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}

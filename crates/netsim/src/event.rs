//! The per-world event queue: a total order over `(time, sequence)`.
//! A classic [`crate::World`] owns exactly one; a sharded run
//! ([`crate::ShardedWorld`]) owns one per shard, synchronized only at
//! conservative barrier windows, so nothing here is global state.
//!
//! Since the raw-speed scheduler rewrite this is a thin policy layer over
//! [`crate::sched::TimerWheel`]: the wheel provides the ordered store
//! (O(1) schedule, near-O(1) fire), while this module adds the simulator
//! event vocabulary (`EventKind`) and lazy timer cancellation.
//!
//! # Cancellation
//!
//! Timers are cancelled by *watermark*, not by search: cancelling
//! `(node, token)` records the wheel's next sequence number, and any
//! `Timer` event for that pair with a smaller sequence number is silently
//! discarded when it reaches the head of the queue. Cancellation is O(1),
//! never perturbs the order of surviving events, and a timer re-armed
//! *after* the cancel (larger sequence number) is unaffected. Cancelled
//! events keep occupying queue slots until their deadline passes, so
//! `EventQueue::len` may overcount by the number of pending corpses;
//! the world surfaces the discard count as the `sim.timers_cancelled`
//! counter.

use std::collections::HashMap;

use crate::faults::FaultOp;
use crate::frame::Frame;
use crate::id::{IfaceId, NodeId, SegmentId};
use crate::node::TimerToken;
use crate::sched::TimerWheel;
use crate::time::SimTime;
use crate::world::AdminOp;

/// A frame arriving at a node's interface. `segment` records where the
/// frame was transmitted so delivery can be suppressed if the interface
/// has moved away in the meantime.
pub(crate) struct FrameEvent {
    pub node: NodeId,
    pub iface: IfaceId,
    pub segment: SegmentId,
    pub frame: Frame,
}

/// One broadcast transmission arriving at every surviving receiver of a
/// zero-jitter segment at the same instant: one queue entry, one pop,
/// `receivers.len()` deliveries in the recorded order. The world only
/// batches when per-receiver delivery times are identical and the
/// receiver order matches what per-receiver frame events would have
/// produced, so processing order is unchanged.
pub(crate) struct BatchEvent {
    pub segment: SegmentId,
    pub frame: Frame,
    pub receivers: Vec<(NodeId, IfaceId)>,
}

/// What happens when an event fires.
///
/// Every queue entry is copied several times on its way through the
/// timer wheel (slot push, cascade, drain, pop), so the enum is kept to
/// pointer-and-a-half size: the payload-carrying variants live behind
/// boxes. The hot frame boxes are recycled through pools on `World`
/// (steady state allocates nothing); admin and fault events are rare
/// enough to pay a real allocation.
pub(crate) enum EventKind {
    /// A frame arrives at a node's interface (box pooled by the world).
    Frame(Box<FrameEvent>),
    /// A batched broadcast fan-out (box pooled by the world).
    FrameBatch(Box<BatchEvent>),
    /// A node timer fires.
    Timer { node: NodeId, token: TimerToken },
    /// A scripted world operation executes.
    Admin(Box<AdminOp>),
    /// A scheduled fault fires (see `World::install_faults`).
    Fault(Box<FaultOp>),
    /// Periodic queue-depth sample (see `World::set_queue_sampling`).
    SampleQueue,
}

pub(crate) struct ScheduledEvent {
    pub at: SimTime,
    #[cfg_attr(not(test), allow(dead_code))]
    pub seq: u64,
    pub kind: EventKind,
}

/// A deterministic min-queue of scheduled events.
#[derive(Default)]
pub(crate) struct EventQueue {
    wheel: TimerWheel<EventKind>,
    /// Cancellation watermarks: a `Timer { node, token }` event with
    /// `seq < cancelled[(node, token)]` is discarded at the queue head.
    cancelled: HashMap<(NodeId, TimerToken), u64>,
    /// Timer events discarded by cancellation since the last
    /// [`EventQueue::take_suppressed`].
    suppressed: u64,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Pre-sizes queue storage for roughly `events` outstanding events.
    pub fn reserve(&mut self, events: usize) {
        self.wheel.reserve(events);
    }

    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        self.wheel.schedule(at, kind);
    }

    /// Cancels every currently-pending timer event for `(node, token)`.
    /// Timers armed after this call fire normally.
    pub fn cancel_timer(&mut self, node: NodeId, token: TimerToken) {
        self.cancelled.insert((node, token), self.wheel.next_seq());
    }

    /// Discards cancelled timer events sitting at the queue head, so that
    /// both [`EventQueue::peek_time`] and [`EventQueue::pop`] only ever
    /// see live events (peek drives `World::run_until`'s time bound — a
    /// corpse there would stall or overshoot the loop).
    fn skim_cancelled(&mut self) {
        if self.cancelled.is_empty() {
            return;
        }
        while let Some((_, seq, kind)) = self.wheel.peek_entry() {
            let EventKind::Timer { node, token } = *kind else { break };
            match self.cancelled.get(&(node, token)) {
                Some(&mark) if seq < mark => {
                    self.wheel.pop();
                    self.suppressed += 1;
                }
                _ => break,
            }
        }
    }

    /// Timer events discarded by cancellation since the last call (the
    /// world drains this into the `sim.timers_cancelled` counter).
    pub fn take_suppressed(&mut self) -> u64 {
        std::mem::take(&mut self.suppressed)
    }

    /// Time of the next live event (drives [`crate::NodeHarness`]'s
    /// wake-up deadline; the world's run loop uses the fused
    /// [`EventQueue::pop_due`] instead).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.wheel.peek().map(|(at, _)| at)
    }

    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.skim_cancelled();
        self.wheel.pop().map(|(at, seq, kind)| ScheduledEvent { at, seq, kind })
    }

    /// Pops the next event only if it is due at or before `t`. Fuses the
    /// peek/pop pair in `World::run_until` into one head access (one
    /// cancellation skim, one wheel advance) per event.
    pub fn pop_due(&mut self, t: SimTime) -> Option<ScheduledEvent> {
        self.skim_cancelled();
        self.wheel.pop_due(t).map(|(at, seq, kind)| ScheduledEvent { at, seq, kind })
    }

    /// Pending events, *including* cancelled timers that have not yet
    /// reached the head of the queue.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer { node: NodeId(node), token: TimerToken(token) }
    }

    fn drain_tokens(q: &mut EventQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token.0,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), timer(0, 5));
        q.push(SimTime::from_millis(1), timer(0, 1));
        q.push(SimTime::from_millis(3), timer(0, 3));
        assert_eq!(drain_tokens(&mut q), vec![1, 3, 5]);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..10 {
            q.push(t, timer(0, i));
        }
        assert_eq!(drain_tokens(&mut q), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_millis(2), timer(0, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_discards_pending_but_not_rearmed_timers() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(1), timer(0, 7));
        q.push(SimTime::from_millis(2), timer(0, 7));
        q.push(SimTime::from_millis(3), timer(1, 7)); // other node, same token
        q.cancel_timer(NodeId(0), TimerToken(7));
        // Re-armed after the cancel: must survive.
        q.push(SimTime::from_millis(4), timer(0, 7));
        let popped: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { node, token } => (token.0, node.0),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(popped, vec![(7, 1), (7, 0)]);
        assert_eq!(q.take_suppressed(), 2);
        assert_eq!(q.take_suppressed(), 0, "take drains the counter");
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(1), timer(0, 1));
        q.push(SimTime::from_millis(5), timer(0, 2));
        q.cancel_timer(NodeId(0), TimerToken(1));
        // The cancelled corpse at 1ms must not be reported as the next
        // event time (run_until would process past its bound otherwise).
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        assert_eq!(drain_tokens(&mut q), vec![2]);
    }

    #[test]
    fn cancel_of_unknown_timer_is_a_noop() {
        let mut q = EventQueue::new();
        q.cancel_timer(NodeId(3), TimerToken(9));
        q.push(SimTime::from_millis(1), timer(3, 9));
        assert_eq!(drain_tokens(&mut q), vec![9]);
        assert_eq!(q.take_suppressed(), 0);
    }

    mod model {
        use super::*;
        use proptest::prelude::*;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        /// The pre-rewrite queue, reconstructed as a reference model: a
        /// `BinaryHeap` over `Reverse<(at, seq)>` with the same watermark
        /// cancellation semantics layered on top.
        #[derive(Default)]
        struct HeapQueue {
            heap: BinaryHeap<Reverse<(u64, u64, usize, u64)>>,
            next_seq: u64,
            cancelled: HashMap<(usize, u64), u64>,
        }

        impl HeapQueue {
            fn push(&mut self, at: u64, node: usize, token: u64) {
                self.heap.push(Reverse((at, self.next_seq, node, token)));
                self.next_seq += 1;
            }
            fn cancel(&mut self, node: usize, token: u64) {
                self.cancelled.insert((node, token), self.next_seq);
            }
            fn pop(&mut self) -> Option<(u64, u64)> {
                while let Some(Reverse((at, seq, node, token))) = self.heap.pop() {
                    match self.cancelled.get(&(node, token)) {
                        Some(&mark) if seq < mark => continue,
                        _ => return Some((at, seq)),
                    }
                }
                None
            }
        }

        #[derive(Debug, Clone)]
        enum Op {
            Schedule { at_ix: usize, node: usize, token: u64 },
            Cancel { node: usize, token: u64 },
            Pop,
        }

        proptest! {
            /// The wheel-backed queue and the reference heap pop
            /// identical `(at, seq)` sequences under adversarial
            /// schedule/cancel/pop interleavings, including times at the
            /// far-future overflow boundary.
            #[test]
            fn wheel_queue_matches_reference_heap(
                // Arms are repeated to weight the uniform choice roughly
                // 4:2:3 schedule/cancel/pop, keeping queues non-trivial.
                ops in prop::collection::vec(
                    prop_oneof![
                        (0usize..10, 0usize..3, 0u64..3)
                            .prop_map(|(at_ix, node, token)| Op::Schedule { at_ix, node, token }),
                        (0usize..10, 0usize..3, 0u64..3)
                            .prop_map(|(at_ix, node, token)| Op::Schedule { at_ix, node, token }),
                        (0usize..10, 0usize..3, 0u64..3)
                            .prop_map(|(at_ix, node, token)| Op::Schedule { at_ix, node, token }),
                        (0usize..10, 0usize..3, 0u64..3)
                            .prop_map(|(at_ix, node, token)| Op::Schedule { at_ix, node, token }),
                        (0usize..3, 0u64..3)
                            .prop_map(|(node, token)| Op::Cancel { node, token }),
                        (0usize..3, 0u64..3)
                            .prop_map(|(node, token)| Op::Cancel { node, token }),
                        Just(Op::Pop),
                        Just(Op::Pop),
                        Just(Op::Pop),
                    ],
                    1..150,
                ),
            ) {
                let span_ns = crate::sched::SPAN_TICKS << crate::sched::TICK_SHIFT;
                let pool: [u64; 10] = [
                    0, 1, 500, 1_000_000, 1_000_001,
                    span_ns - 1, span_ns, span_ns + 1,
                    3 * span_ns,
                    u64::MAX,
                ];
                let mut queue = EventQueue::new();
                let mut reference = HeapQueue::default();
                for op in ops {
                    match op {
                        Op::Schedule { at_ix, node, token } => {
                            let at = pool[at_ix];
                            queue.push(SimTime::from_nanos(at), timer(node, token));
                            reference.push(at, node, token);
                        }
                        Op::Cancel { node, token } => {
                            queue.cancel_timer(NodeId(node), TimerToken(token));
                            reference.cancel(node, token);
                        }
                        Op::Pop => {
                            let got = queue.pop().map(|e| (e.at.as_nanos(), e.seq));
                            prop_assert_eq!(got, reference.pop());
                        }
                    }
                }
                loop {
                    let got = queue.pop().map(|e| (e.at.as_nanos(), e.seq));
                    let want = reference.pop();
                    prop_assert_eq!(got, want);
                    if got.is_none() {
                        break;
                    }
                }
            }
        }
    }
}

//! Deterministic discrete-event internetwork simulator.
//!
//! `netsim` is the substrate on which the MHRP reproduction runs. It models:
//!
//! * **Segments** — Ethernet-like broadcast domains with configurable
//!   latency, jitter and loss. A frame sent to the broadcast MAC is delivered
//!   to every other attachment; a unicast frame only to the matching MAC.
//! * **Nodes** — user-defined protocol state machines implementing [`Node`],
//!   driven by frame arrivals, timers and link events.
//! * **A per-world event queue** — totally ordered by `(time, seq)` so
//!   that runs are bit-for-bit reproducible for a given RNG seed. Backed by
//!   a hierarchical timer wheel ([`sched`]) for O(1) scheduling, with
//!   queue-level timer cancellation ([`Ctx::cancel_timer`]). A classic
//!   [`World`] is one queue; a [`ShardedWorld`] runs several worlds in
//!   conservative barrier windows, exchanging cross-shard frames through
//!   portal segments ([`shard`]).
//! * **Admin operations** — scripted topology changes (interface moves for
//!   host mobility, segment up/down, node reboots) and arbitrary scripted
//!   callbacks, all scheduled on the same queue.
//!
//! # Example
//!
//! ```rust
//! use netsim::{World, Node, Ctx, Frame, EtherType, IfaceId, TimerToken, AsAny};
//! use netsim::time::{SimDuration, SimTime};
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_frame(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, frame: &Frame) {
//!         // Bounce every frame straight back to its sender.
//!         let reply = Frame::new(ctx.mac(iface), frame.src, EtherType::Other(0x88b5),
//!                                frame.payload.clone());
//!         ctx.send_frame(iface, reply);
//!     }
//! }
//!
//! struct Probe { got: usize }
//! impl Node for Probe {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.set_timer(SimDuration::from_millis(1), TimerToken(0));
//!     }
//!     fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
//!         let f = Frame::broadcast(ctx.mac(IfaceId(0)), EtherType::Other(0x88b5), vec![1, 2, 3]);
//!         ctx.send_frame(IfaceId(0), f);
//!     }
//!     fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _iface: IfaceId, _frame: &Frame) {
//!         self.got += 1;
//!     }
//! }
//!
//! let mut world = World::new(7);
//! let seg = world.add_segment(Default::default());
//! let echo = world.add_node(Echo);
//! world.add_iface(echo, Some(seg));
//! let probe = world.add_node(Probe { got: 0 });
//! world.add_iface(probe, Some(seg));
//! world.start();
//! world.run_until(SimTime::from_secs(1));
//! assert_eq!(world.node::<Probe>(probe).got, 1);
//! ```
//!
//! # Fault injection
//!
//! The [`faults`] module adds a deterministic fault layer on top of the
//! admin operations: a [`faults::FaultPlan`] of timed [`faults::FaultOp`]s
//! (link flaps, partitions, latency spikes, payload corruption, node
//! crashes with state loss, broadcast suppression) compiled onto the same
//! event queue via [`World::install_faults`].
//!
//! # Structured telemetry
//!
//! The [`telemetry`] crate (re-exported here) adds typed events and causal
//! packet journeys on top of the counters: enable with
//! [`World::set_telemetry`], reconstruct any packet's hop list with
//! [`World::journey_hops`], and capture delivered frames to a
//! Wireshark-readable pcap-ng buffer with [`World::start_pcap_capture`].
//! Everything is off by default and costs nothing until enabled; building
//! `netsim` with `--no-default-features` compiles the hooks out entirely.

#![deny(missing_docs)]

mod arena;
pub mod event;
pub mod faults;
pub mod frame;
pub mod id;
pub mod io;
pub mod node;
pub mod sched;
pub mod segment;
pub mod shard;
pub mod stats;
pub mod time;
pub mod trace;
pub mod world;

pub use faults::{FaultOp, FaultPlan};
pub use frame::Payload;
pub use frame::{EtherType, Frame};
pub use id::{IfaceId, MacAddr, NodeId, PortalId, SegmentId};
pub use io::{Clock, NodeHarness, NodeIo, NullIo};
pub use node::{AsAny, Ctx, LinkEvent, Node, TimerToken};
pub use sched::TimerWheel;
pub use segment::SegmentParams;
pub use shard::{ShardedWorld, SimWorld};
pub use stats::{metric, Counter, HistId, MetricId, SeriesId, Stats};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, Tracer};
pub use world::{AdminOp, World};

pub use telemetry;
pub use telemetry::{
    DropReason, Event, EventKind as TeleEventKind, EventLog, FaultKind, HistSnapshot, Histogram,
    Journey, JourneyId,
};

//! Global statistics: named counters and time series.
//!
//! Counters are cheap and always on; experiments read them at the end of a
//! run. Time series power the "congestion over time" style figures (E05).

use std::collections::BTreeMap;

use crate::time::SimTime;

/// A hub of named counters and `(time, value)` series.
///
/// ```rust
/// use netsim::{Stats, SimTime};
/// let mut s = Stats::new();
/// s.incr("pkt.sent");
/// s.add("pkt.bytes", 120);
/// s.record("queue.depth", SimTime::from_millis(1), 3.0);
/// assert_eq!(s.counter("pkt.sent"), 1);
/// assert_eq!(s.counter("pkt.bytes"), 120);
/// assert_eq!(s.counter("nonexistent"), 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, Vec<(SimTime, f64)>>,
}

impl Stats {
    /// Creates an empty statistics hub.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Increments counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `amount` to counter `name`.
    pub fn add(&mut self, name: &str, amount: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += amount;
    }

    /// Reads counter `name` (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Appends a `(time, value)` sample to series `name`.
    pub fn record(&mut self, name: &str, at: SimTime, value: f64) {
        self.series.entry(name.to_owned()).or_default().push((at, value));
    }

    /// Reads series `name` (empty slice if never written).
    pub fn series(&self, name: &str) -> &[(SimTime, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Resets all counters and series.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.series.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.incr("a");
        s.incr("a");
        s.add("a", 3);
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("b"), 0);
    }

    #[test]
    fn prefix_sum_covers_only_prefix() {
        let mut s = Stats::new();
        s.add("seg.0.bytes", 10);
        s.add("seg.1.bytes", 20);
        s.add("other", 99);
        assert_eq!(s.counter_prefix_sum("seg."), 30);
        assert_eq!(s.counter_prefix_sum("nope."), 0);
    }

    #[test]
    fn series_preserve_order() {
        let mut s = Stats::new();
        s.record("q", SimTime::from_millis(1), 1.0);
        s.record("q", SimTime::from_millis(2), 4.0);
        assert_eq!(s.series("q").len(), 2);
        assert_eq!(s.series("q")[1].1, 4.0);
        assert!(s.series("missing").is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = Stats::new();
        s.incr("x");
        s.record("y", SimTime::ZERO, 0.0);
        s.clear();
        assert_eq!(s.counter("x"), 0);
        assert!(s.series("y").is_empty());
        assert_eq!(s.counters().count(), 0);
    }
}
